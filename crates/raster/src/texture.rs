//! Grayscale intensity textures.
//!
//! Spot noise accumulates intensities into a scalar texture (the paper's
//! 512x512 texture map). The same type doubles as the *spot texture* — the
//! small pre-rendered image of the spot function `h(x)` that is mapped onto
//! each rendered quad or bent-spot mesh.

use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A single-channel floating-point texture, row-major, origin at the
/// bottom-left (matching OpenGL texture conventions).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Texture {
    width: usize,
    height: usize,
    data: Vec<f32>,
}

impl Texture {
    /// Creates a texture filled with zeros.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "texture must be non-empty");
        Texture {
            width,
            height,
            data: vec![0.0; width * height],
        }
    }

    /// Creates a texture by evaluating `f(u, v)` at every texel centre,
    /// where `u, v` are in `[0, 1]`.
    pub fn from_fn(width: usize, height: usize, mut f: impl FnMut(f32, f32) -> f32) -> Self {
        let mut t = Texture::new(width, height);
        for y in 0..height {
            for x in 0..width {
                let u = (x as f32 + 0.5) / width as f32;
                let v = (y as f32 + 0.5) / height as f32;
                t.data[y * width + x] = f(u, v);
            }
        }
        t
    }

    /// Texture width in texels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Texture height in texels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Raw texel storage, row-major from the bottom row.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw texel storage.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Number of bytes occupied by the texel data (used for bus/texture
    /// bandwidth accounting).
    pub fn byte_size(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// Value of the texel at `(x, y)`.
    #[inline]
    pub fn texel(&self, x: usize, y: usize) -> f32 {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.width + x]
    }

    /// Mutable reference to the texel at `(x, y)`.
    #[inline]
    pub fn texel_mut(&mut self, x: usize, y: usize) -> &mut f32 {
        debug_assert!(x < self.width && y < self.height);
        &mut self.data[y * self.width + x]
    }

    /// Sets every texel to `value`.
    pub fn fill(&mut self, value: f32) {
        self.data.fill(value);
    }

    /// Reshapes this texture in place to `width` × `height`, reusing the
    /// existing allocation when it is large enough. When `zero` is set the
    /// texels are cleared to 0 (matching [`Texture::new`]); otherwise the
    /// contents are unspecified and the caller must overwrite every texel.
    /// This is the [`FrameArena`](crate::arena::FrameArena) recycling hook.
    pub(crate) fn reset(&mut self, width: usize, height: usize, zero: bool) {
        assert!(width > 0 && height > 0, "texture must be non-empty");
        let len = width * height;
        self.width = width;
        self.height = height;
        if self.data.len() != len {
            // `resize` zeroes only the grown tail; when dirty reuse is
            // requested that is fine (contents are unspecified anyway).
            // Capacity is deliberately NOT shrunk: a pool shared between
            // differently sized pipelines must keep the larger allocation
            // alive across alternating checkouts, or reuse degenerates into
            // reallocation (capacity is invisible to every consumer).
            self.data.resize(len, 0.0);
        }
        if zero {
            self.data.fill(0.0);
        }
    }

    /// Nearest-neighbour sample at texture coordinates `(u, v)` in `[0,1]`,
    /// clamped at the edges.
    pub fn sample_nearest(&self, u: f32, v: f32) -> f32 {
        let x = ((u * self.width as f32) as isize).clamp(0, self.width as isize - 1) as usize;
        let y = ((v * self.height as f32) as isize).clamp(0, self.height as isize - 1) as usize;
        self.texel(x, y)
    }

    /// Bilinear sample at texture coordinates `(u, v)` in `[0,1]`, clamped at
    /// the edges.
    pub fn sample_bilinear(&self, u: f32, v: f32) -> f32 {
        let fx = (u * self.width as f32 - 0.5).clamp(0.0, self.width as f32 - 1.0);
        let fy = (v * self.height as f32 - 0.5).clamp(0.0, self.height as f32 - 1.0);
        let x0 = fx.floor() as usize;
        let y0 = fy.floor() as usize;
        let x1 = (x0 + 1).min(self.width - 1);
        let y1 = (y0 + 1).min(self.height - 1);
        let tx = fx - x0 as f32;
        let ty = fy - y0 as f32;
        let a = self.texel(x0, y0);
        let b = self.texel(x1, y0);
        let c = self.texel(x0, y1);
        let d = self.texel(x1, y1);
        let bottom = a + (b - a) * tx;
        let top = c + (d - c) * tx;
        bottom + (top - bottom) * ty
    }

    /// Adds `other` texel-wise into `self` (the gather/blend step that
    /// combines per-pipe partial textures into the final texture).
    ///
    /// # Panics
    /// Panics when the dimensions differ.
    pub fn accumulate(&mut self, other: &Texture) {
        assert_eq!(self.width, other.width, "texture widths differ");
        assert_eq!(self.height, other.height, "texture heights differ");
        for (dst, src) in self.data.iter_mut().zip(&other.data) {
            *dst += *src;
        }
    }

    /// Copies a sub-rectangle of `other` into the same location of `self`
    /// (used when composing disjoint texture tiles).
    pub fn blit_region(&mut self, other: &Texture, x0: usize, y0: usize, x1: usize, y1: usize) {
        assert_eq!(self.width, other.width, "texture widths differ");
        assert_eq!(self.height, other.height, "texture heights differ");
        let x1 = x1.min(self.width);
        let y1 = y1.min(self.height);
        for y in y0..y1 {
            for x in x0..x1 {
                self.data[y * self.width + x] = other.data[y * self.width + x];
            }
        }
    }

    /// Minimum and maximum texel value.
    pub fn range(&self) -> (f32, f32) {
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for &v in &self.data {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        (lo, hi)
    }

    /// Mean texel value.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().sum::<f32>() / self.data.len() as f32
    }

    /// Variance of the texel values (the "contrast" of the noise texture).
    pub fn variance(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        let mean = self.mean();
        self.data
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / self.data.len() as f32
    }

    /// Rescales all texels so the value range maps onto `[0, 1]`.
    /// Constant textures map to 0.5.
    pub fn normalized(&self) -> Texture {
        let (lo, hi) = self.range();
        let span = hi - lo;
        let mut out = self.clone();
        if span <= f32::EPSILON {
            out.fill(0.5);
        } else {
            for v in &mut out.data {
                *v = (*v - lo) / span;
            }
        }
        out
    }

    /// Sum of absolute differences against another texture of the same size;
    /// used by the equivalence tests between sequential and parallel paths.
    pub fn absolute_difference(&self, other: &Texture) -> f64 {
        assert_eq!(self.width, other.width);
        assert_eq!(self.height, other.height);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs() as f64)
            .sum()
    }
}

/// Builds the canonical circular spot texture: intensity 1 inside the disc,
/// with a smooth (cosine) fall-off of relative width `softness` at the rim.
///
/// The paper defines the spot function `h(x)` as "everywhere zero except for
/// an area that is small compared to the texture size"; a softened disc is
/// the default shape used throughout.
pub fn disc_spot_texture(size: usize, softness: f32) -> Texture {
    Texture::from_fn(size, size, |u, v| {
        let dx = u - 0.5;
        let dy = v - 0.5;
        let r = (dx * dx + dy * dy).sqrt() * 2.0; // 1.0 at the inscribed circle
        let inner = 1.0 - softness.clamp(0.0, 1.0);
        if r <= inner {
            1.0
        } else if r >= 1.0 {
            0.0
        } else {
            // Cosine roll-off between the inner radius and the rim.
            let t = (r - inner) / (1.0 - inner).max(f32::EPSILON);
            0.5 * (1.0 + (std::f32::consts::PI * t).cos())
        }
    })
}

/// A small mip-free prefiltered pyramid over one spot texture, the backing
/// store of [`SamplingMode::Footprint`](crate::state::SamplingMode).
///
/// Level 0 is the base texture (shared, not copied); each further level is a
/// 2×2 box-filtered half-resolution copy, up to
/// [`FootprintPyramid::MAX_LEVELS`] levels in total. Unlike a full mip chain
/// the pyramid stops after two prefiltered levels — spot textures are tiny
/// (16–32 px) and bent-spot minification rarely exceeds 4 texels per pixel,
/// so deeper levels would never be selected. The pyramid is built once per
/// texture and cached behind an [`Arc`] by the pipe that samples it.
#[derive(Debug, Clone)]
pub struct FootprintPyramid {
    base: Arc<Texture>,
    /// `levels[k]` is the `2^(k+1)`-to-1 downsampled copy of the base.
    levels: Vec<Texture>,
}

impl FootprintPyramid {
    /// Total pyramid depth: the base plus two prefiltered levels.
    pub const MAX_LEVELS: usize = 3;

    /// Builds the pyramid over `base` by repeated 2×2 box filtering.
    pub fn build(base: Arc<Texture>) -> Self {
        let mut levels = Vec::new();
        let mut prev: &Texture = &base;
        while levels.len() + 1 < Self::MAX_LEVELS && (prev.width() > 1 || prev.height() > 1) {
            levels.push(downsample_2x2(prev));
            prev = levels.last().expect("just pushed");
        }
        FootprintPyramid { base, levels }
    }

    /// The base texture the pyramid was built over.
    pub fn base(&self) -> &Texture {
        &self.base
    }

    /// Number of levels available (base included).
    pub fn levels(&self) -> usize {
        1 + self.levels.len()
    }

    /// The texture of pyramid level `level` (0 = base).
    pub fn level(&self, level: usize) -> &Texture {
        if level == 0 {
            &self.base
        } else {
            &self.levels[level - 1]
        }
    }

    /// Selects the level whose texel size best matches a footprint of
    /// `step` *base* texels per target pixel: level `l` texels cover `2^l`
    /// base texels, and the cut-over sits at 1.5× the level's texel size so
    /// the selected level's texels stay within ±50 % of the footprint.
    /// Magnified or unit-scale footprints (`step <= 1.5`) keep the base.
    pub fn level_for_step(&self, step: f32) -> usize {
        let mut level = 0;
        let mut cutover = 1.5f32;
        while level + 1 < self.levels() && step > cutover {
            level += 1;
            cutover *= 2.0;
        }
        level
    }

    /// Nearest sample of pyramid level `level` at `(u, v)` in `[0, 1]`.
    #[inline]
    pub fn sample_nearest(&self, level: usize, u: f32, v: f32) -> f32 {
        self.level(level).sample_nearest(u, v)
    }
}

/// 2×2 box downsample with edge clamping (odd dimensions fold the last
/// row/column onto itself), preserving the mean of constant textures.
fn downsample_2x2(src: &Texture) -> Texture {
    let w = src.width().div_ceil(2);
    let h = src.height().div_ceil(2);
    let mut out = Texture::new(w, h);
    for y in 0..h {
        let y0 = (2 * y).min(src.height() - 1);
        let y1 = (2 * y + 1).min(src.height() - 1);
        for x in 0..w {
            let x0 = (2 * x).min(src.width() - 1);
            let x1 = (2 * x + 1).min(src.width() - 1);
            *out.texel_mut(x, y) = 0.25
                * (src.texel(x0, y0) + src.texel(x1, y0) + src.texel(x0, y1) + src.texel(x1, y1));
        }
    }
    out
}

/// Builds a Gaussian spot texture with standard deviation `sigma` expressed
/// as a fraction of the half-width.
pub fn gaussian_spot_texture(size: usize, sigma: f32) -> Texture {
    let s = sigma.max(1e-6);
    Texture::from_fn(size, size, |u, v| {
        let dx = (u - 0.5) * 2.0;
        let dy = (v - 0.5) * 2.0;
        let r2 = dx * dx + dy * dy;
        (-r2 / (2.0 * s * s)).exp()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_texture_is_zeroed() {
        let t = Texture::new(8, 4);
        assert_eq!(t.width(), 8);
        assert_eq!(t.height(), 4);
        assert!(t.data().iter().all(|&v| v == 0.0));
        assert_eq!(t.byte_size(), 8 * 4 * 4);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_size_texture_rejected() {
        let _ = Texture::new(0, 4);
    }

    #[test]
    fn texel_read_write() {
        let mut t = Texture::new(4, 4);
        *t.texel_mut(2, 3) = 1.5;
        assert_eq!(t.texel(2, 3), 1.5);
        assert_eq!(t.texel(0, 0), 0.0);
    }

    #[test]
    fn bilinear_sampling_of_constant_texture() {
        let mut t = Texture::new(16, 16);
        t.fill(0.7);
        for &(u, v) in &[(0.0, 0.0), (0.5, 0.5), (1.0, 1.0), (0.3, 0.9)] {
            assert!((t.sample_bilinear(u, v) - 0.7).abs() < 1e-6);
            assert!((t.sample_nearest(u, v) - 0.7).abs() < 1e-6);
        }
    }

    #[test]
    fn bilinear_sampling_interpolates_gradient() {
        // A texture with a horizontal ramp: bilinear samples follow the ramp.
        let t = Texture::from_fn(32, 8, |u, _| u);
        let a = t.sample_bilinear(0.25, 0.5);
        let b = t.sample_bilinear(0.75, 0.5);
        assert!(b > a + 0.3);
        // Samples at texel centres hit the stored value exactly.
        let center_u = (5.0 + 0.5) / 32.0;
        assert!((t.sample_bilinear(center_u, 0.5) - t.texel(5, 3)).abs() < 1e-6);
    }

    #[test]
    fn accumulate_adds_texelwise() {
        let mut a = Texture::new(4, 4);
        a.fill(1.0);
        let mut b = Texture::new(4, 4);
        b.fill(0.25);
        a.accumulate(&b);
        assert!(a.data().iter().all(|&v| (v - 1.25).abs() < 1e-6));
    }

    #[test]
    #[should_panic(expected = "widths differ")]
    fn accumulate_rejects_size_mismatch() {
        let mut a = Texture::new(4, 4);
        let b = Texture::new(8, 4);
        a.accumulate(&b);
    }

    #[test]
    fn blit_region_copies_only_requested_rect() {
        let mut dst = Texture::new(8, 8);
        let mut src = Texture::new(8, 8);
        src.fill(2.0);
        dst.blit_region(&src, 2, 2, 4, 4);
        assert_eq!(dst.texel(2, 2), 2.0);
        assert_eq!(dst.texel(3, 3), 2.0);
        assert_eq!(dst.texel(4, 4), 0.0);
        assert_eq!(dst.texel(1, 2), 0.0);
    }

    #[test]
    fn range_mean_variance() {
        let t = Texture::from_fn(4, 1, |u, _| u);
        let (lo, hi) = t.range();
        assert!(lo >= 0.0 && hi <= 1.0 && hi > lo);
        assert!(t.mean() > 0.0);
        assert!(t.variance() > 0.0);
        let mut flat = Texture::new(4, 4);
        flat.fill(3.0);
        assert_eq!(flat.variance(), 0.0);
    }

    #[test]
    fn normalized_maps_to_unit_range() {
        let t = Texture::from_fn(8, 8, |u, v| 5.0 * u - 3.0 * v);
        let n = t.normalized();
        let (lo, hi) = n.range();
        assert!((lo - 0.0).abs() < 1e-6);
        assert!((hi - 1.0).abs() < 1e-6);
        let mut flat = Texture::new(4, 4);
        flat.fill(9.0);
        assert!(flat
            .normalized()
            .data()
            .iter()
            .all(|&v| (v - 0.5).abs() < 1e-6));
    }

    #[test]
    fn disc_spot_is_bright_at_center_dark_at_corner() {
        let t = disc_spot_texture(32, 0.3);
        assert!(t.sample_bilinear(0.5, 0.5) > 0.95);
        assert!(t.sample_bilinear(0.02, 0.02) < 0.05);
        // Radially monotone (roughly): mid radius is between centre and rim.
        let mid = t.sample_bilinear(0.5 + 0.2, 0.5);
        assert!((0.0..=1.0).contains(&mid));
    }

    #[test]
    fn gaussian_spot_peaks_at_center() {
        let t = gaussian_spot_texture(32, 0.4);
        let c = t.sample_bilinear(0.5, 0.5);
        let e = t.sample_bilinear(0.95, 0.5);
        assert!(c > 0.9);
        assert!(e < c);
    }

    #[test]
    fn absolute_difference_zero_for_identical() {
        let t = disc_spot_texture(16, 0.5);
        assert_eq!(t.absolute_difference(&t), 0.0);
        let z = Texture::new(16, 16);
        assert!(t.absolute_difference(&z) > 0.0);
    }

    #[test]
    fn reset_reuses_allocation_and_zeroes_on_request() {
        let mut t = disc_spot_texture(16, 0.5);
        t.reset(16, 16, true);
        assert!(t.data().iter().all(|&v| v == 0.0));
        // Dirty reuse keeps the size but promises nothing about contents.
        t.fill(3.0);
        t.reset(8, 32, false);
        assert_eq!((t.width(), t.height(), t.data().len()), (8, 32, 256));
        // Growing zero-fills the tail via resize; shrinking then zeroing
        // yields a clean texture again.
        t.reset(4, 4, true);
        assert_eq!(t.data().len(), 16);
        assert!(t.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn pyramid_levels_halve_and_preserve_constant_mean() {
        let mut base = Texture::new(32, 32);
        base.fill(0.75);
        let p = FootprintPyramid::build(Arc::new(base));
        assert_eq!(p.levels(), FootprintPyramid::MAX_LEVELS);
        assert_eq!((p.level(1).width(), p.level(1).height()), (16, 16));
        assert_eq!((p.level(2).width(), p.level(2).height()), (8, 8));
        for level in 0..p.levels() {
            assert!(p
                .level(level)
                .data()
                .iter()
                .all(|&v| (v - 0.75).abs() < 1e-6));
        }
    }

    #[test]
    fn pyramid_handles_odd_and_tiny_bases() {
        let p = FootprintPyramid::build(Arc::new(disc_spot_texture(9, 0.5)));
        assert_eq!((p.level(1).width(), p.level(1).height()), (5, 5));
        // A 1x1 base cannot be downsampled further.
        let mut tiny = Texture::new(1, 1);
        tiny.fill(1.0);
        let p = FootprintPyramid::build(Arc::new(tiny));
        assert_eq!(p.levels(), 1);
        assert_eq!(p.sample_nearest(0, 0.5, 0.5), 1.0);
    }

    #[test]
    fn pyramid_downsampling_averages_blocks() {
        // A 2x2 checkerboard collapses to its mean at level 1.
        let base = Texture::from_fn(2, 2, |u, v| if (u < 0.5) ^ (v < 0.5) { 1.0 } else { 0.0 });
        let p = FootprintPyramid::build(Arc::new(base));
        assert_eq!(p.level(1).texel(0, 0), 0.5);
    }

    #[test]
    fn level_selection_follows_footprint_size() {
        let p = FootprintPyramid::build(Arc::new(disc_spot_texture(32, 0.5)));
        assert_eq!(p.level_for_step(0.25), 0, "magnified: keep the base");
        assert_eq!(p.level_for_step(1.0), 0);
        assert_eq!(p.level_for_step(2.0), 1);
        assert_eq!(p.level_for_step(4.0), 2);
        assert_eq!(p.level_for_step(100.0), 2, "clamped to the deepest level");
    }
}
