//! Texture-quality metrics.
//!
//! The paper trades speed against quality ("speed can be traded for quality
//! and higher speeds than presented in the paper are possible") but never
//! defines a quantitative quality measure. For the reproduction's regression
//! tests and ablation benches we need one, so this module provides the two
//! standard measures used in the later texture-based flow-visualization
//! literature:
//!
//! * **directional autocorrelation** — the correlation of the texture with a
//!   copy of itself shifted *along* the local flow direction should be much
//!   higher than with a copy shifted *across* it; their ratio (the
//!   *anisotropy*) measures how well the texture encodes the flow, and
//! * **contrast** — the texture variance, which drops when too few spots (or
//!   too-small spots) cover the texture.
//!
//! These metrics are what the tests use to verify that spot deformation
//! actually works (isotropic noise has anisotropy ≈ 1, flow-deformed spot
//! noise clearly > 1) and that quality degrades gracefully in the ablations.

use flowfield::{Vec2, VectorField};
use softpipe::Texture;

/// Correlation of the texture with itself shifted by `offset` pixels,
/// computed over all texels whose shifted position stays inside the texture.
/// Returns a value in `[-1, 1]`; degenerate (constant) textures return 0.
pub fn shifted_correlation(texture: &Texture, offset: (f64, f64)) -> f64 {
    let w = texture.width();
    let h = texture.height();
    let (dx, dy) = offset;
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for y in 0..h {
        for x in 0..w {
            let sx = x as f64 + dx;
            let sy = y as f64 + dy;
            if sx < 0.0 || sy < 0.0 || sx >= (w - 1) as f64 || sy >= (h - 1) as f64 {
                continue;
            }
            xs.push(texture.texel(x, y) as f64);
            ys.push(
                texture.sample_bilinear((sx as f32 + 0.5) / w as f32, (sy as f32 + 0.5) / h as f32)
                    as f64,
            );
        }
    }
    pearson(&xs, &ys)
}

fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    let denom = (vx * vy).sqrt();
    if denom <= 1e-300 {
        0.0
    } else {
        cov / denom
    }
}

/// Flow-alignment report of a spot-noise texture with respect to the field
/// it was synthesised from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlignmentReport {
    /// Mean correlation for shifts along the local flow direction.
    pub along_flow: f64,
    /// Mean correlation for shifts perpendicular to the local flow.
    pub across_flow: f64,
    /// Shift distance used, in pixels.
    pub shift_pixels: f64,
}

impl AlignmentReport {
    /// Anisotropy ratio `along / across` (clamped away from division by
    /// zero). Values clearly above 1 mean the texture is correlated along
    /// stream lines — the visual signature of spot noise on a flow field.
    pub fn anisotropy(&self) -> f64 {
        let across = self.across_flow.max(1e-3);
        (self.along_flow / across).max(0.0)
    }
}

/// Measures how strongly the texture is correlated along versus across the
/// flow. The texture is sampled on a coarse lattice; at every sample the
/// local flow direction determines the along/across shift directions, and the
/// per-sample correlations of small patches are averaged.
pub fn flow_alignment(
    texture: &Texture,
    field: &dyn VectorField,
    shift_pixels: f64,
    lattice: usize,
) -> AlignmentReport {
    assert!(lattice >= 2, "need at least a 2x2 sampling lattice");
    let w = texture.width();
    let h = texture.height();
    let domain = field.domain();
    let patch = 8usize; // half-size of the correlation patch in texels
    let mut along_vals = Vec::new();
    let mut across_vals = Vec::new();

    for j in 0..lattice {
        for i in 0..lattice {
            let u = (i as f64 + 0.5) / lattice as f64;
            let v = (j as f64 + 0.5) / lattice as f64;
            let p = domain.from_unit(Vec2::new(u, v));
            let dir = field.velocity(p).normalized();
            if dir == Vec2::ZERO {
                continue;
            }
            let cx = (u * w as f64) as isize;
            let cy = (v * h as f64) as isize;
            // Extract a small patch and correlate with along/across shifts.
            let (mut base, mut along, mut across) = (Vec::new(), Vec::new(), Vec::new());
            for dy in -(patch as isize)..=(patch as isize) {
                for dx in -(patch as isize)..=(patch as isize) {
                    let x = cx + dx;
                    let y = cy + dy;
                    if x < 0 || y < 0 || x >= w as isize || y >= h as isize {
                        continue;
                    }
                    let sample = |ox: f64, oy: f64| -> Option<f32> {
                        let sx = x as f64 + ox;
                        let sy = y as f64 + oy;
                        if sx < 0.0 || sy < 0.0 || sx >= (w - 1) as f64 || sy >= (h - 1) as f64 {
                            return None;
                        }
                        Some(texture.sample_bilinear(
                            (sx as f32 + 0.5) / w as f32,
                            (sy as f32 + 0.5) / h as f32,
                        ))
                    };
                    let a = sample(dir.x * shift_pixels, dir.y * shift_pixels);
                    let c = sample(-dir.y * shift_pixels, dir.x * shift_pixels);
                    if let (Some(a), Some(c)) = (a, c) {
                        base.push(texture.texel(x as usize, y as usize) as f64);
                        along.push(a as f64);
                        across.push(c as f64);
                    }
                }
            }
            if base.len() > 16 {
                along_vals.push(pearson(&base, &along));
                across_vals.push(pearson(&base, &across));
            }
        }
    }
    let mean = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    AlignmentReport {
        along_flow: mean(&along_vals),
        across_flow: mean(&across_vals),
        shift_pixels,
    }
}

/// Tolerance on the texture-variance ratio between footprint-sampled and
/// exact synthesis: `|variance(approx)/variance(exact) − 1|` must stay
/// below this. Variance is the paper's "contrast" — the quality measure the
/// speed-for-quality trade is gated on. Measured headroom: random
/// disc/bent workloads sit well under half of this bound.
pub const FOOTPRINT_VARIANCE_TOLERANCE: f64 = 0.25;

/// Tolerance on the mean absolute texel error between footprint-sampled and
/// exact synthesis, normalized by the exact texture's standard deviation
/// (so it is scale-free in the spot intensity amplitude).
pub const FOOTPRINT_MEAN_ERROR_TOLERANCE: f64 = 0.5;

/// Quality deltas of an approximate synthesis against the exact one —
/// the gate for [`SamplingMode::Footprint`](crate::config::SamplingMode).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplingQuality {
    /// `variance(approx) / variance(exact)` (1.0 = contrast preserved).
    pub variance_ratio: f64,
    /// Mean absolute texel error divided by the exact texture's standard
    /// deviation (0.0 = identical).
    pub normalized_mean_error: f64,
}

impl SamplingQuality {
    /// True when both deltas sit within the footprint tolerances.
    pub fn within_footprint_tolerance(&self) -> bool {
        (self.variance_ratio - 1.0).abs() <= FOOTPRINT_VARIANCE_TOLERANCE
            && self.normalized_mean_error <= FOOTPRINT_MEAN_ERROR_TOLERANCE
    }
}

/// Measures how far an approximate synthesis drifted from the exact one.
///
/// # Panics
/// Panics when the texture sizes disagree.
pub fn sampling_quality(exact: &Texture, approx: &Texture) -> SamplingQuality {
    assert_eq!(exact.width(), approx.width(), "texture widths differ");
    assert_eq!(exact.height(), approx.height(), "texture heights differ");
    let exact_var = exact.variance() as f64;
    let approx_var = approx.variance() as f64;
    let variance_ratio = if exact_var > 1e-12 {
        approx_var / exact_var
    } else if approx_var > 1e-12 {
        f64::INFINITY
    } else {
        1.0
    };
    let std = exact_var.sqrt();
    let mean_abs = exact.absolute_difference(approx) / exact.data().len() as f64;
    let normalized_mean_error = if std > 1e-12 {
        mean_abs / std
    } else if mean_abs > 1e-12 {
        f64::INFINITY
    } else {
        0.0
    };
    SamplingQuality {
        variance_ratio,
        normalized_mean_error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SamplingMode, SpotKind, SynthesisConfig};
    use crate::spot::generate_spots;
    use crate::synth::synthesize_sequential;
    use flowfield::analytic::Uniform;
    use flowfield::Rect;

    fn domain() -> Rect {
        Rect::new(Vec2::ZERO, Vec2::new(1.0, 1.0))
    }

    #[test]
    fn shifted_correlation_of_constant_texture_is_zero() {
        let mut t = Texture::new(32, 32);
        t.fill(0.5);
        assert_eq!(shifted_correlation(&t, (3.0, 0.0)), 0.0);
    }

    #[test]
    fn zero_shift_correlation_is_one() {
        let t = Texture::from_fn(64, 64, |u, v| (u * 40.0).sin() + (v * 23.0).cos());
        let c = shifted_correlation(&t, (0.0, 0.0));
        assert!(c > 0.99, "self correlation {c}");
    }

    #[test]
    fn horizontal_stripes_correlate_along_not_across() {
        // A texture of horizontal stripes is perfectly correlated under
        // horizontal shifts and strongly anti-correlated under half-period
        // vertical shifts.
        let t = Texture::from_fn(64, 64, |_, v| (v * 64.0 * std::f32::consts::PI / 4.0).sin());
        let along = shifted_correlation(&t, (5.0, 0.0));
        let across = shifted_correlation(&t, (0.0, 4.0));
        assert!(along > 0.9, "along {along}");
        assert!(across < along);
    }

    #[test]
    fn flow_deformed_spot_noise_is_anisotropic_along_the_flow() {
        // Spot noise over a uniform horizontal flow with strong stretching
        // must be clearly more correlated along x than along y; the same
        // synthesis with stretching disabled must be (nearly) isotropic.
        let field = Uniform {
            velocity: Vec2::new(1.0, 0.0),
            domain: domain(),
        };
        let spots = generate_spots(1500, domain(), 1.0, 7);

        let stretched_cfg = SynthesisConfig {
            texture_size: 192,
            spot_count: 1500,
            spot_radius: 0.02,
            max_stretch: 6.0,
            spot_kind: SpotKind::Disc,
            ..SynthesisConfig::small_test()
        };
        let isotropic_cfg = SynthesisConfig {
            max_stretch: 1.0,
            ..stretched_cfg
        };

        let stretched = synthesize_sequential(&field, &spots, &stretched_cfg);
        let isotropic = synthesize_sequential(&field, &spots, &isotropic_cfg);

        let shift = stretched_cfg.spot_radius_pixels();
        let a_stretched = flow_alignment(&stretched.texture, &field, shift, 4);
        let a_isotropic = flow_alignment(&isotropic.texture, &field, shift, 4);

        assert!(
            a_stretched.anisotropy() > 1.3,
            "stretched anisotropy {:?}",
            a_stretched
        );
        assert!(
            a_stretched.anisotropy() > a_isotropic.anisotropy(),
            "stretched {:?} vs isotropic {:?}",
            a_stretched,
            a_isotropic
        );
        // Along-flow correlation is also absolutely higher for the stretched
        // texture.
        assert!(a_stretched.along_flow > a_isotropic.along_flow - 0.05);
    }

    #[test]
    fn alignment_report_anisotropy_is_safe_for_tiny_across() {
        let r = AlignmentReport {
            along_flow: 0.5,
            across_flow: 0.0,
            shift_pixels: 4.0,
        };
        assert!(r.anisotropy().is_finite());
        let negative = AlignmentReport {
            along_flow: -0.2,
            across_flow: 0.1,
            shift_pixels: 4.0,
        };
        assert_eq!(negative.anisotropy(), 0.0);
    }

    #[test]
    fn sampling_quality_of_identical_textures_is_perfect() {
        let t = Texture::from_fn(32, 32, |u, v| (u * 17.0).sin() * (v * 9.0).cos());
        let q = sampling_quality(&t, &t);
        assert_eq!(q.variance_ratio, 1.0);
        assert_eq!(q.normalized_mean_error, 0.0);
        assert!(q.within_footprint_tolerance());
    }

    #[test]
    fn sampling_quality_flags_gross_divergence() {
        let t = Texture::from_fn(32, 32, |u, v| (u * 17.0).sin() * (v * 9.0).cos());
        let mut flat = Texture::new(32, 32);
        flat.fill(0.0);
        let q = sampling_quality(&t, &flat);
        assert!(!q.within_footprint_tolerance(), "{q:?}");
        // Degenerate exact textures do not divide by zero.
        let q = sampling_quality(&flat, &t);
        assert!(q.variance_ratio.is_infinite());
        let q = sampling_quality(&flat, &flat);
        assert!(q.within_footprint_tolerance());
    }

    #[test]
    fn footprint_synthesis_keeps_anisotropy_and_contrast() {
        // The footprint sampler's license: spot statistics survive coarse
        // per-footprint sampling. Synthesize the same stretched-spot field
        // exactly and with footprint sampling; contrast (variance), the
        // per-texel error, and the flow-alignment signature must all stay
        // within the gated tolerances.
        let field = Uniform {
            velocity: Vec2::new(1.0, 0.0),
            domain: domain(),
        };
        let exact_cfg = SynthesisConfig {
            texture_size: 192,
            spot_count: 1200,
            spot_radius: 0.025,
            max_stretch: 5.0,
            spot_kind: SpotKind::Bent { rows: 12, cols: 3 },
            ..SynthesisConfig::small_test()
        };
        let footprint_cfg = SynthesisConfig {
            sampling: SamplingMode::Footprint,
            ..exact_cfg
        };
        let spots = generate_spots(1200, domain(), 1.0, 23);
        let exact = synthesize_sequential(&field, &spots, &exact_cfg);
        let approx = synthesize_sequential(&field, &spots, &footprint_cfg);
        let q = sampling_quality(&exact.texture, &approx.texture);
        assert!(q.within_footprint_tolerance(), "{q:?}");

        let shift = exact_cfg.spot_radius_pixels();
        let a_exact = flow_alignment(&exact.texture, &field, shift, 4);
        let a_approx = flow_alignment(&approx.texture, &field, shift, 4);
        assert!(
            a_approx.anisotropy() > 1.0 + 0.7 * (a_exact.anisotropy() - 1.0),
            "footprint sampling lost the flow signature: exact {:?} vs footprint {:?}",
            a_exact,
            a_approx
        );
    }

    #[test]
    #[should_panic(expected = "2x2 sampling lattice")]
    fn flow_alignment_rejects_degenerate_lattice() {
        let t = Texture::new(16, 16);
        let field = Uniform {
            velocity: Vec2::new(1.0, 0.0),
            domain: domain(),
        };
        let _ = flow_alignment(&t, &field, 2.0, 1);
    }
}
