//! Bent spots (enhanced spot noise).
//!
//! In highly irregular flows — strong curvature, large direction changes
//! within a spot's footprint — a straight, stretched spot misrepresents the
//! field. Enhanced spot noise [de Leeuw & van Wijk, Vis'95] replaces the
//! single textured polygon by a textured *mesh* tiled around a stream line
//! that is advected through the flow from the spot position. This is the
//! computationally demanding path the paper parallelises: for each spot a
//! stream line must be integrated and a `rows x cols` mesh constructed and
//! rendered (32x17 for the smog application, 16x3 for the DNS application).

use crate::config::{SpotKind, SynthesisConfig};
use crate::spot::{FieldToPixel, Spot, SpotGeometry, SpotJob};
use flowfield::stats::SpeedNormalizer;
use flowfield::streamline::{trace_streamline, Streamline, StreamlineOptions};
use flowfield::{Vec2, VectorField};
use softpipe::cost::CpuWork;
use softpipe::{TexturedMesh, Vertex};

/// Parameters of bent-spot construction derived from the synthesis config.
#[derive(Debug, Clone, Copy)]
pub struct BentSpotParams {
    /// Mesh vertices along the stream line.
    pub rows: usize,
    /// Mesh vertices across the stream line.
    pub cols: usize,
    /// Stream-line length in field units.
    pub length: f64,
    /// Spot half-width across the stream line, in pixels.
    pub half_width_pixels: f64,
}

impl BentSpotParams {
    /// Derives the bent-spot parameters at a given position from the config:
    /// the stream-line length grows with the local speed (up to
    /// `max_stretch` times the base diameter) and the width shrinks
    /// correspondingly, mirroring the standard spot transform.
    pub fn at_position(
        field: &dyn VectorField,
        position: Vec2,
        cfg: &SynthesisConfig,
        mapper: &FieldToPixel,
        normalizer: &SpeedNormalizer,
    ) -> Option<Self> {
        let (rows, cols) = match cfg.spot_kind {
            SpotKind::Bent { rows, cols } => (rows, cols),
            SpotKind::Disc => return None,
        };
        let speed = field.speed(position);
        let s = normalizer.normalize(speed);
        let stretch = 1.0 + (cfg.max_stretch - 1.0) * s;
        let radius_field = mapper.pixels_to_length(cfg.spot_radius_pixels());
        Some(BentSpotParams {
            rows,
            cols,
            length: 2.0 * radius_field * stretch,
            half_width_pixels: cfg.spot_radius_pixels() / stretch.sqrt(),
        })
    }
}

/// Builds the textured mesh of a bent spot by tiling a ribbon of width
/// `2 * half_width` around the resampled stream line. Texture `u` runs along
/// the stream line, `v` across it, so the spot texture is stretched along the
/// flow.
pub fn bent_spot_mesh(
    streamline: &Streamline,
    params: &BentSpotParams,
    mapper: &FieldToPixel,
) -> TexturedMesh {
    let centers_field = streamline.resample(params.rows);
    let centers: Vec<Vec2> = centers_field.iter().map(|p| mapper.to_pixel(*p)).collect();
    let tangents = Streamline::tangents(&centers);
    let mut vertices = Vec::with_capacity(params.rows * params.cols);
    for r in 0..params.rows {
        let u = r as f32 / (params.rows - 1) as f32;
        let center = centers[r];
        // Degenerate tangents (stagnation) fall back to the x axis inside
        // `tangents`, so the normal is always well defined.
        let normal = tangents[r].perp();
        for c in 0..params.cols {
            let v = c as f32 / (params.cols - 1) as f32;
            let offset = (v as f64 * 2.0 - 1.0) * params.half_width_pixels;
            vertices.push(Vertex::new(center + normal * offset, u, v));
        }
    }
    TexturedMesh::new(params.rows, params.cols, vertices)
}

/// Builds the [`SpotJob`] of a bent spot: traces the stream line through the
/// flow, tiles the ribbon mesh and reports the CPU work performed.
///
/// Falls back to a degenerate (but valid) mesh when the stream line collapses
/// to a point (stagnation regions), so the caller never has to special-case.
pub fn build_bent_spot(
    field: &dyn VectorField,
    spot: &Spot,
    cfg: &SynthesisConfig,
    mapper: &FieldToPixel,
    normalizer: &SpeedNormalizer,
) -> SpotJob {
    let params = BentSpotParams::at_position(field, spot.position, cfg, mapper, normalizer)
        .expect("build_bent_spot called with a non-bent spot kind");
    let opts = StreamlineOptions {
        step_fraction: 1.0 / params.rows as f64,
        integrator: cfg.integrator,
        ..Default::default()
    };
    let streamline = trace_streamline(field, spot.position, params.length, &opts);
    let steps = streamline.points.len() as u64;
    let mesh = if streamline.points.len() >= 2 {
        bent_spot_mesh(&streamline, &params, mapper)
    } else {
        // Stagnation: render a tiny isotropic patch instead of nothing, so
        // stagnant regions still receive noise energy.
        degenerate_patch(&params, mapper.to_pixel(spot.position))
    };
    let cpu_work = CpuWork {
        streamline_steps: steps,
        mesh_vertices: mesh.vertex_count() as u64,
        spots: 1,
    };
    SpotJob {
        geometry: SpotGeometry::Mesh(mesh),
        intensity: spot.intensity,
        cpu_work,
        // Bent-spot meshes are always built in software: the stream line has
        // to be integrated on the CPU anyway, so there is nothing to gain
        // from a per-spot pipe transform.
        pipe_transform: None,
    }
}

/// A small axis-aligned patch used when the stream line degenerates.
fn degenerate_patch(params: &BentSpotParams, center: Vec2) -> TexturedMesh {
    let w = params.half_width_pixels.max(0.5);
    let mut vertices = Vec::with_capacity(params.rows * params.cols);
    for r in 0..params.rows {
        let u = r as f32 / (params.rows - 1) as f32;
        for c in 0..params.cols {
            let v = c as f32 / (params.cols - 1) as f32;
            let p = center + Vec2::new((u as f64 * 2.0 - 1.0) * w, (v as f64 * 2.0 - 1.0) * w);
            vertices.push(Vertex::new(p, u, v));
        }
    }
    TexturedMesh::new(params.rows, params.cols, vertices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SpotKind;
    use flowfield::analytic::{Uniform, Vortex};
    use flowfield::stats::SpeedNormalizer;
    use flowfield::Rect;

    fn cfg_bent(rows: usize, cols: usize) -> SynthesisConfig {
        SynthesisConfig {
            spot_kind: SpotKind::Bent { rows, cols },
            texture_size: 256,
            spot_radius: 0.05,
            ..SynthesisConfig::small_test()
        }
    }

    fn domain() -> Rect {
        Rect::new(Vec2::ZERO, Vec2::new(1.0, 1.0))
    }

    #[test]
    fn params_derive_from_config_and_speed() {
        let f = Uniform {
            velocity: Vec2::new(1.0, 0.0),
            domain: domain(),
        };
        let cfg = cfg_bent(16, 3);
        let mapper = FieldToPixel::new(domain(), cfg.texture_size);
        let norm = SpeedNormalizer::new(0.0, 1.0);
        let p = BentSpotParams::at_position(&f, Vec2::new(0.5, 0.5), &cfg, &mapper, &norm).unwrap();
        assert_eq!(p.rows, 16);
        assert_eq!(p.cols, 3);
        // Full speed: length = 2 * radius_field * max_stretch.
        let radius_field = mapper.pixels_to_length(cfg.spot_radius_pixels());
        assert!((p.length - 2.0 * radius_field * cfg.max_stretch).abs() < 1e-9);
        assert!(p.half_width_pixels < cfg.spot_radius_pixels());
    }

    #[test]
    fn params_none_for_disc_kind() {
        let f = Uniform {
            velocity: Vec2::new(1.0, 0.0),
            domain: domain(),
        };
        let cfg = SynthesisConfig::small_test();
        let mapper = FieldToPixel::new(domain(), cfg.texture_size);
        let norm = SpeedNormalizer::new(0.0, 1.0);
        assert!(
            BentSpotParams::at_position(&f, Vec2::new(0.5, 0.5), &cfg, &mapper, &norm).is_none()
        );
    }

    #[test]
    fn bent_spot_in_uniform_flow_is_a_straight_ribbon() {
        let f = Uniform {
            velocity: Vec2::new(1.0, 0.0),
            domain: domain(),
        };
        let cfg = cfg_bent(8, 3);
        let mapper = FieldToPixel::new(domain(), cfg.texture_size);
        let norm = SpeedNormalizer::new(0.0, 1.0);
        let spot = Spot {
            position: Vec2::new(0.5, 0.5),
            intensity: 1.0,
        };
        let job = build_bent_spot(&f, &spot, &cfg, &mapper, &norm);
        let mesh = match &job.geometry {
            SpotGeometry::Mesh(m) => m,
            _ => panic!("expected a mesh"),
        };
        assert_eq!(mesh.rows(), 8);
        assert_eq!(mesh.cols(), 3);
        // In a horizontal uniform flow the ribbon's centre column stays at
        // constant y.
        let y_center = mapper.to_pixel(spot.position).y;
        for r in 0..mesh.rows() {
            let v = mesh.vertex(r, 1); // middle column
            assert!(
                (v.position.y - y_center).abs() < 1.0,
                "row {r}: {:?}",
                v.position
            );
        }
        // CPU work counted.
        assert_eq!(job.cpu_work.spots, 1);
        assert!(job.cpu_work.streamline_steps > 0);
        assert_eq!(job.cpu_work.mesh_vertices, 24);
    }

    #[test]
    fn bent_spot_follows_vortex_curvature() {
        let f = Vortex {
            omega: 1.0,
            center: Vec2::new(0.5, 0.5),
            domain: domain(),
        };
        let cfg = cfg_bent(16, 3);
        let mapper = FieldToPixel::new(domain(), cfg.texture_size);
        let norm = SpeedNormalizer::new(0.0, 0.5);
        let spot = Spot {
            position: Vec2::new(0.8, 0.5),
            intensity: 1.0,
        };
        let job = build_bent_spot(&f, &spot, &cfg, &mapper, &norm);
        let mesh = match &job.geometry {
            SpotGeometry::Mesh(m) => m,
            _ => panic!("expected a mesh"),
        };
        // The centre column of the ribbon stays (roughly) on the circle of
        // radius 0.3 around the vortex centre — i.e. the spot bends.
        let center_px = mapper.to_pixel(Vec2::new(0.5, 0.5));
        let expected_radius = mapper.length_to_pixels(0.3);
        for r in 0..mesh.rows() {
            let v = mesh.vertex(r, 1);
            let d = (v.position - center_px).norm();
            assert!(
                (d - expected_radius).abs() < expected_radius * 0.15,
                "row {r}: radius {d} vs {expected_radius}"
            );
        }
        // And the ribbon is genuinely curved: first and last row tangent
        // directions differ.
        let first = mesh.vertex(1, 1).position - mesh.vertex(0, 1).position;
        let last =
            mesh.vertex(mesh.rows() - 1, 1).position - mesh.vertex(mesh.rows() - 2, 1).position;
        let cos = first.normalized().dot(last.normalized());
        assert!(cos < 0.999, "ribbon did not bend (cos = {cos})");
    }

    #[test]
    fn stagnant_flow_produces_degenerate_patch_not_panic() {
        let f = Uniform {
            velocity: Vec2::ZERO,
            domain: domain(),
        };
        let cfg = cfg_bent(4, 3);
        let mapper = FieldToPixel::new(domain(), cfg.texture_size);
        let norm = SpeedNormalizer::new(0.0, 1.0);
        let spot = Spot {
            position: Vec2::new(0.5, 0.5),
            intensity: 0.5,
        };
        let job = build_bent_spot(&f, &spot, &cfg, &mapper, &norm);
        assert_eq!(job.geometry.vertex_count(), 12);
        let b = job.geometry.bounds();
        assert!(b.contains(mapper.to_pixel(spot.position)));
    }

    #[test]
    fn paper_mesh_resolutions_produce_expected_vertex_counts() {
        let f = Uniform {
            velocity: Vec2::new(1.0, 0.5),
            domain: domain(),
        };
        let norm = SpeedNormalizer::new(0.0, 2.0);
        for (rows, cols) in [(32usize, 17usize), (16, 3)] {
            let cfg = cfg_bent(rows, cols);
            let mapper = FieldToPixel::new(domain(), cfg.texture_size);
            let spot = Spot {
                position: Vec2::new(0.4, 0.6),
                intensity: 1.0,
            };
            let job = build_bent_spot(&f, &spot, &cfg, &mapper, &norm);
            assert_eq!(job.geometry.vertex_count(), rows * cols);
        }
    }

    #[test]
    #[should_panic(expected = "non-bent spot kind")]
    fn build_bent_spot_rejects_disc_config() {
        let f = Uniform {
            velocity: Vec2::new(1.0, 0.0),
            domain: domain(),
        };
        let cfg = SynthesisConfig::small_test();
        let mapper = FieldToPixel::new(domain(), cfg.texture_size);
        let norm = SpeedNormalizer::new(0.0, 1.0);
        let spot = Spot {
            position: Vec2::new(0.5, 0.5),
            intensity: 1.0,
        };
        let _ = build_bent_spot(&f, &spot, &cfg, &mapper, &norm);
    }
}
