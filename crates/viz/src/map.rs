//! Schematic map outline for the atmospheric application.
//!
//! Figure 6 of the paper draws "a map of Europe" over the wind-field
//! texture. The real coastline data set is not part of the reproduction; a
//! schematic, clearly-synthetic coastline polyline (a couple of closed loops
//! vaguely reminiscent of a continent and an island) is used instead so the
//! figure has the same visual structure: texture, colormapped pollutant and
//! line geometry superimposed.

use crate::overlay::draw_polyline;
use flowfield::{Rect, Vec2};
use softpipe::{Framebuffer, Rgb};

/// A named outline: a closed polyline in unit coordinates.
#[derive(Debug, Clone)]
pub struct Outline {
    /// Name of the land mass.
    pub name: &'static str,
    /// Polyline vertices in unit (`[0,1]^2`) coordinates.
    pub points: Vec<Vec2>,
}

/// The schematic continental outline used in place of the Europe map.
pub fn schematic_map() -> Vec<Outline> {
    let mainland = vec![
        (0.18, 0.10),
        (0.42, 0.06),
        (0.66, 0.12),
        (0.82, 0.22),
        (0.88, 0.40),
        (0.80, 0.55),
        (0.84, 0.72),
        (0.70, 0.84),
        (0.52, 0.80),
        (0.40, 0.88),
        (0.28, 0.78),
        (0.34, 0.62),
        (0.22, 0.52),
        (0.28, 0.38),
        (0.16, 0.28),
    ];
    let island = vec![
        (0.10, 0.62),
        (0.20, 0.60),
        (0.24, 0.72),
        (0.14, 0.78),
        (0.08, 0.70),
    ];
    vec![
        Outline {
            name: "mainland",
            points: mainland.into_iter().map(|(x, y)| Vec2::new(x, y)).collect(),
        },
        Outline {
            name: "island",
            points: island.into_iter().map(|(x, y)| Vec2::new(x, y)).collect(),
        },
    ]
}

/// Draws the schematic map over a framebuffer, mapping the unit square onto
/// `domain` (which should be the same domain the flow field uses).
pub fn draw_map(fb: &mut Framebuffer, domain: Rect, color: Rgb) {
    for outline in schematic_map() {
        let points: Vec<Vec2> = outline
            .points
            .iter()
            .map(|p| domain.from_unit(*p))
            .collect();
        draw_polyline(fb, domain, &points, color, true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schematic_map_has_closed_outlines_in_unit_square() {
        let outlines = schematic_map();
        assert_eq!(outlines.len(), 2);
        for o in &outlines {
            assert!(o.points.len() >= 5, "{} too coarse", o.name);
            assert!(o
                .points
                .iter()
                .all(|p| (0.0..=1.0).contains(&p.x) && (0.0..=1.0).contains(&p.y)));
        }
    }

    #[test]
    fn draw_map_marks_pixels() {
        let mut fb = Framebuffer::new(128, 128);
        let domain = Rect::new(Vec2::ZERO, Vec2::new(10.0, 10.0));
        draw_map(&mut fb, domain, Rgb::new(255, 255, 0));
        let lit = fb
            .pixels()
            .iter()
            .filter(|p| **p == Rgb::new(255, 255, 0))
            .count();
        assert!(lit > 100, "map outline too sparse: {lit}");
    }
}
