//! Before/after measurement of the rasterizer hot path.
//!
//! Times the retained naive reference rasterizer (full bounding-box scan,
//! three inside-tests per pixel) against the span walker on the workloads
//! that dominate the paper's pipelines — axis-aligned spot quads on a 512²
//! target, flat-spot quads (the uniform-row nearest-sample fast path), bent
//! 16x3 turbulence meshes — plus the additive gather step. Results feed
//! `BENCH_raster.json`, the perf trajectory's first data point.
//!
//! Every case first asserts that the two paths produce pixel-identical
//! output, so a reported speedup can never come from silently computing
//! something different.

use crate::json::Json;
use flowfield::Vec2;
use softpipe::raster::{axis_aligned_spot_quad, rasterize_quad, reference, RasterStats, Vertex};
use softpipe::{
    disc_spot_texture, gather_additive, BlendMode, FootprintPyramid, Texture, TexturedMesh,
};
use std::sync::Arc;
use std::time::Instant;

/// One measured before/after case.
#[derive(Debug, Clone)]
pub struct BenchCase {
    /// Case identifier.
    pub name: &'static str,
    /// What the case exercises.
    pub description: &'static str,
    /// Fragments produced by one operation (identical for both paths).
    pub fragments_per_op: u64,
    /// Best-of-samples nanoseconds per operation, naive reference path.
    pub reference_ns_per_op: f64,
    /// Best-of-samples nanoseconds per operation, span-walking path.
    pub optimized_ns_per_op: f64,
}

impl BenchCase {
    /// Reference time / optimized time.
    pub fn speedup(&self) -> f64 {
        if self.optimized_ns_per_op > 0.0 {
            self.reference_ns_per_op / self.optimized_ns_per_op
        } else {
            0.0
        }
    }

    /// Fragments per second through the optimized path.
    pub fn optimized_fragments_per_second(&self) -> f64 {
        if self.optimized_ns_per_op > 0.0 {
            self.fragments_per_op as f64 / (self.optimized_ns_per_op * 1e-9)
        } else {
            0.0
        }
    }
}

/// The full report.
#[derive(Debug, Clone)]
pub struct RasterBenchReport {
    /// Worker threads available to the parallel gather.
    pub threads: usize,
    /// SIMD dispatch level the run's kernels executed at
    /// ([`softpipe::simd::active`]), recorded so banked numbers are only
    /// compared against runs of the same kernels.
    pub simd: String,
    /// Raw `SPOTNOISE_SIMD` override the process was started with, if any.
    pub simd_override: Option<String>,
    /// Measured cases.
    pub cases: Vec<BenchCase>,
}

/// Interleaved best-of-samples timer: alternates batches of the two
/// operations so neither is systematically favoured by cache warm-up or
/// scheduler drift, and returns each operation's minimum nanoseconds per
/// call (the minimum is the noise-robust statistic on a shared, loaded
/// host). One warm-up batch of each runs before measurement.
fn time_pair_best(
    samples: usize,
    batch: usize,
    mut a: impl FnMut(),
    mut b: impl FnMut(),
) -> (f64, f64) {
    let time_batch = |op: &mut dyn FnMut()| {
        let start = Instant::now();
        for _ in 0..batch {
            op();
        }
        start.elapsed().as_nanos() as f64 / batch as f64
    };
    time_batch(&mut a);
    time_batch(&mut b);
    let mut best_a = f64::MAX;
    let mut best_b = f64::MAX;
    for _ in 0..samples {
        best_a = best_a.min(time_batch(&mut a));
        best_b = best_b.min(time_batch(&mut b));
    }
    (best_a, best_b)
}

fn batch_for(target_ns_per_sample: f64, probe_ns: f64) -> usize {
    ((target_ns_per_sample / probe_ns.max(1.0)).ceil() as usize).clamp(1, 1_000_000)
}

/// Calibrates, verifies pixel parity, and measures one quad case.
fn quad_case(
    name: &'static str,
    description: &'static str,
    spot: &Texture,
    quad: [Vertex; 4],
    intensity: f32,
) -> BenchCase {
    let mut fast = Texture::new(512, 512);
    let mut slow = Texture::new(512, 512);
    let mut fast_stats = RasterStats::default();
    let mut slow_stats = RasterStats::default();
    rasterize_quad(
        &mut fast,
        spot,
        quad,
        intensity,
        BlendMode::Additive,
        &mut fast_stats,
    );
    reference::rasterize_quad(
        &mut slow,
        spot,
        quad,
        intensity,
        BlendMode::Additive,
        &mut slow_stats,
    );
    assert_eq!(
        fast.absolute_difference(&slow),
        0.0,
        "{name}: span walker diverged from reference"
    );
    assert_eq!(fast_stats, slow_stats, "{name}: stats diverged");

    let mut target = Texture::new(512, 512);
    let probe = {
        let mut stats = RasterStats::default();
        let start = Instant::now();
        reference::rasterize_quad(
            &mut target,
            spot,
            quad,
            intensity,
            BlendMode::Additive,
            &mut stats,
        );
        start.elapsed().as_nanos() as f64
    };
    let batch = batch_for(10.0e6, probe);
    let mut targets = (Texture::new(512, 512), Texture::new(512, 512));
    let (reference_ns, optimized) = time_pair_best(
        9,
        batch,
        || {
            let mut stats = RasterStats::default();
            reference::rasterize_quad(
                &mut targets.0,
                spot,
                quad,
                intensity,
                BlendMode::Additive,
                &mut stats,
            );
        },
        || {
            let mut stats = RasterStats::default();
            rasterize_quad(
                &mut targets.1,
                spot,
                quad,
                intensity,
                BlendMode::Additive,
                &mut stats,
            );
        },
    );
    BenchCase {
        name,
        description,
        fragments_per_op: fast_stats.fragments,
        reference_ns_per_op: reference_ns,
        optimized_ns_per_op: optimized,
    }
}

/// Measures the explicit SIMD dispatch win on the lane-blocked quad fill:
/// the same span-walking rasterization with the kernels forced to the
/// scalar fallback (reference leg) vs the process's active dispatch level
/// (optimized leg). Unlike the other cases, both legs run the *current*
/// span walker — the case isolates what the explicit `core::arch` kernels
/// buy over the autovectorized scalar code, on the same host, in the same
/// process. Under `SPOTNOISE_SIMD=off` both legs are scalar and the case
/// reports ~1.0x, which is why the artifact records its dispatch level.
fn simd_quad_case(
    name: &'static str,
    description: &'static str,
    spot: &Texture,
    quad: [Vertex; 4],
    intensity: f32,
) -> BenchCase {
    use softpipe::simd::{self, SimdLevel};
    // Parity: the forced-scalar and active-level kernels must produce
    // bit-identical textures (the Exact-mode contract this whole module
    // rides on).
    let mut scalar_out = Texture::new(512, 512);
    let mut active_out = Texture::new(512, 512);
    let mut scalar_stats = RasterStats::default();
    let mut active_stats = RasterStats::default();
    simd::force(Some(SimdLevel::Scalar));
    rasterize_quad(
        &mut scalar_out,
        spot,
        quad,
        intensity,
        BlendMode::Additive,
        &mut scalar_stats,
    );
    simd::force(None);
    rasterize_quad(
        &mut active_out,
        spot,
        quad,
        intensity,
        BlendMode::Additive,
        &mut active_stats,
    );
    assert_eq!(
        scalar_out.absolute_difference(&active_out),
        0.0,
        "{name}: SIMD kernels diverged from the scalar fallback"
    );
    assert_eq!(scalar_stats, active_stats, "{name}: stats diverged");

    let mut target = Texture::new(512, 512);
    let probe = {
        simd::force(Some(SimdLevel::Scalar));
        let mut stats = RasterStats::default();
        let start = Instant::now();
        rasterize_quad(
            &mut target,
            spot,
            quad,
            intensity,
            BlendMode::Additive,
            &mut stats,
        );
        let probe = start.elapsed().as_nanos() as f64;
        simd::force(None);
        probe
    };
    let batch = batch_for(10.0e6, probe);
    let mut targets = (Texture::new(512, 512), Texture::new(512, 512));
    let (reference_ns, optimized) = time_pair_best(
        9,
        batch,
        || {
            simd::force(Some(SimdLevel::Scalar));
            let mut stats = RasterStats::default();
            rasterize_quad(
                &mut targets.0,
                spot,
                quad,
                intensity,
                BlendMode::Additive,
                &mut stats,
            );
        },
        || {
            simd::force(None);
            let mut stats = RasterStats::default();
            rasterize_quad(
                &mut targets.1,
                spot,
                quad,
                intensity,
                BlendMode::Additive,
                &mut stats,
            );
        },
    );
    simd::force(None);
    BenchCase {
        name,
        description,
        fragments_per_op: active_stats.fragments,
        reference_ns_per_op: reference_ns,
        optimized_ns_per_op: optimized,
    }
}

/// Builds a bent-ish mesh: a rectangle mesh rotated so neither texture
/// coordinate is row-constant, exercising the general sampling path the way
/// stream-line-advected spots do.
fn rotated_mesh(
    rows: usize,
    cols: usize,
    center: Vec2,
    w: f64,
    h: f64,
    angle: f64,
) -> TexturedMesh {
    let (sin, cos) = angle.sin_cos();
    let mut vertices = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        let t = r as f64 / (rows - 1) as f64;
        for c in 0..cols {
            let s = c as f64 / (cols - 1) as f64;
            let local = Vec2::new((t - 0.5) * w, (s - 0.5) * h);
            let rotated = Vec2::new(local.x * cos - local.y * sin, local.x * sin + local.y * cos);
            vertices.push(Vertex::new(center + rotated, t as f32, s as f32));
        }
    }
    TexturedMesh::new(rows, cols, vertices)
}

fn mesh_case(name: &'static str, description: &'static str, mesh: &TexturedMesh) -> BenchCase {
    let spot = disc_spot_texture(32, 0.5);
    let mut fast = Texture::new(512, 512);
    let mut slow = Texture::new(512, 512);
    let mut fast_stats = RasterStats::default();
    let mut slow_stats = RasterStats::default();
    mesh.rasterize(&mut fast, &spot, 0.5, BlendMode::Additive, &mut fast_stats);
    mesh.rasterize_reference(&mut slow, &spot, 0.5, BlendMode::Additive, &mut slow_stats);
    assert_eq!(
        fast.absolute_difference(&slow),
        0.0,
        "{name}: span walker diverged from reference"
    );
    assert_eq!(fast_stats, slow_stats, "{name}: stats diverged");

    let mut target = Texture::new(512, 512);
    let probe = {
        let mut stats = RasterStats::default();
        let start = Instant::now();
        mesh.rasterize_reference(&mut target, &spot, 0.5, BlendMode::Additive, &mut stats);
        start.elapsed().as_nanos() as f64
    };
    let batch = batch_for(10.0e6, probe);
    let mut targets = (Texture::new(512, 512), Texture::new(512, 512));
    let (reference_ns, optimized) = time_pair_best(
        9,
        batch,
        || {
            let mut stats = RasterStats::default();
            mesh.rasterize_reference(&mut targets.0, &spot, 0.5, BlendMode::Additive, &mut stats);
        },
        || {
            let mut stats = RasterStats::default();
            mesh.rasterize(&mut targets.1, &spot, 0.5, BlendMode::Additive, &mut stats);
        },
    );
    BenchCase {
        name,
        description,
        fragments_per_op: fast_stats.fragments,
        reference_ns_per_op: reference_ns,
        optimized_ns_per_op: optimized,
    }
}

/// Measures footprint sampling against exact bilinear on a bent-style mesh:
/// reference = the exact span walker (the production fast path), optimized =
/// the footprint-sampled walker. Outputs are *not* pixel-identical — that is
/// the point — so instead of the bit-parity assert the case gates on the
/// [`spotnoise::quality`] tolerances before timing.
fn bent_mesh_footprint_case(
    name: &'static str,
    description: &'static str,
    mesh: &TexturedMesh,
    spot_size: usize,
) -> BenchCase {
    use spotnoise::quality::sampling_quality;
    let spot = disc_spot_texture(spot_size, 0.5);
    let pyramid = FootprintPyramid::build(Arc::new(spot.clone()));
    let mut exact = Texture::new(512, 512);
    let mut approx = Texture::new(512, 512);
    let mut exact_stats = RasterStats::default();
    let mut approx_stats = RasterStats::default();
    mesh.rasterize(
        &mut exact,
        &spot,
        0.5,
        BlendMode::Additive,
        &mut exact_stats,
    );
    mesh.rasterize_footprint(
        &mut approx,
        &pyramid,
        0.5,
        BlendMode::Additive,
        &mut approx_stats,
    );
    assert_eq!(
        exact_stats, approx_stats,
        "{name}: footprint mode changed coverage"
    );
    let q = sampling_quality(&exact, &approx);
    assert!(
        q.within_footprint_tolerance(),
        "{name}: footprint sampling out of quality tolerance: {q:?}"
    );

    let mut target = Texture::new(512, 512);
    let probe = {
        let mut stats = RasterStats::default();
        let start = Instant::now();
        mesh.rasterize(&mut target, &spot, 0.5, BlendMode::Additive, &mut stats);
        start.elapsed().as_nanos() as f64
    };
    let batch = batch_for(10.0e6, probe);
    let mut targets = (Texture::new(512, 512), Texture::new(512, 512));
    let (reference_ns, optimized) = time_pair_best(
        9,
        batch,
        || {
            let mut stats = RasterStats::default();
            mesh.rasterize(&mut targets.0, &spot, 0.5, BlendMode::Additive, &mut stats);
        },
        || {
            let mut stats = RasterStats::default();
            mesh.rasterize_footprint(
                &mut targets.1,
                &pyramid,
                0.5,
                BlendMode::Additive,
                &mut stats,
            );
        },
    );
    BenchCase {
        name,
        description,
        fragments_per_op: exact_stats.fragments,
        reference_ns_per_op: reference_ns,
        optimized_ns_per_op: optimized,
    }
}

/// Measures pooled-arena frame production against allocate-per-frame: two
/// identical divide-and-conquer pipelines advance in lockstep, one with the
/// default frame arena (recycling consumed frames) and one with pooling
/// disabled. Output equality is asserted on fresh pipelines before timing —
/// buffer reuse must be invisible in the texels.
fn frame_arena_case() -> BenchCase {
    use softpipe::machine::MachineConfig;
    use spotnoise::config::SynthesisConfig;
    use spotnoise::pipeline::{ExecutionMode, Pipeline};

    let domain = flowfield::Rect::new(Vec2::ZERO, Vec2::new(1.0, 1.0));
    let field = flowfield::analytic::Vortex {
        omega: 1.0,
        center: domain.center(),
        domain,
    };
    // Few spots on a large target: the frame cost is dominated by the
    // framebuffer-sized work (clear, partial readback, gather, allocation),
    // which is exactly what the arena removes.
    let cfg = SynthesisConfig {
        texture_size: 512,
        spot_count: 48,
        spot_radius: 0.02,
        ..SynthesisConfig::small_test()
    };
    let machine = MachineConfig::new(1, 1);
    let mode = ExecutionMode::DivideAndConquer(machine);
    let build = |pooled: bool| {
        let mut p = Pipeline::new(cfg, mode, domain);
        p.set_display_enabled(false);
        // This case isolates the frame arena: pipe pooling is disabled in
        // BOTH legs (it is measured by its own pipe_pool_* cases), so the
        // reference leg stays the classic spawn-per-frame +
        // allocate-per-frame baseline the banked speedup was measured
        // against.
        if !pooled {
            p.set_frame_arena(None);
        }
        p.set_pipe_pool(None);
        p
    };

    // Parity check on fresh pipelines: identical frames with and without
    // the arena.
    let mut pooled = build(true);
    let mut fresh = build(false);
    let mut fragments = 0;
    for _ in 0..3 {
        let a = pooled.advance(&field, 0.05, 0);
        let b = fresh.advance(&field, 0.05, 0);
        assert_eq!(
            a.texture.absolute_difference(&b.texture),
            0.0,
            "frame_arena_reuse: pooled frames diverged from fresh allocation"
        );
        fragments = a.dnc.as_ref().map_or(0, |d| d.total_pipe_work().fragments);
        if let Some(arena) = pooled.frame_arena() {
            arena.recycle_texture(a.texture);
        }
    }

    let mut pooled = build(true);
    let mut fresh = build(false);
    let (reference_ns, optimized) = time_pair_best(
        7,
        24,
        || {
            std::hint::black_box(fresh.advance(&field, 0.05, 0));
        },
        || {
            let out = pooled.advance(&field, 0.05, 0);
            let texture = std::hint::black_box(out.texture);
            // Steady-state consumers (the service) hand the frame buffer
            // back after serializing it; the bench models that.
            if let Some(arena) = pooled.frame_arena() {
                arena.recycle_texture(texture);
            }
        },
    );
    BenchCase {
        name: "frame_arena_reuse",
        description:
            "dnc frame production, pooled FrameArena vs allocate-per-frame (512x512, 48 spots)",
        fragments_per_op: fragments,
        reference_ns_per_op: reference_ns,
        optimized_ns_per_op: optimized,
    }
}

/// Measures persistent pooled pipes against spawn-per-frame: two identical
/// divide-and-conquer pipelines advance in lockstep, both with the default
/// frame arena, one checking pipe workers out of a [`softpipe::PipePool`]
/// and one spawning (and joining) its workers every frame. Output equality
/// is asserted on fresh pipelines before timing — worker reuse must be
/// invisible in the texels — and the pooled pipeline is asserted to spawn
/// zero threads once warm.
fn pipe_pool_case(
    name: &'static str,
    description: &'static str,
    texture_size: usize,
    spot_count: usize,
    pipes: usize,
) -> BenchCase {
    use softpipe::machine::MachineConfig;
    use spotnoise::config::SynthesisConfig;
    use spotnoise::pipeline::{ExecutionMode, Pipeline};

    let domain = flowfield::Rect::new(Vec2::ZERO, Vec2::new(1.0, 1.0));
    let field = flowfield::analytic::Vortex {
        omega: 1.0,
        center: domain.center(),
        domain,
    };
    let cfg = SynthesisConfig {
        texture_size,
        spot_count,
        spot_radius: 0.03,
        ..SynthesisConfig::small_test()
    };
    let machine = MachineConfig::new(pipes, pipes);
    let mode = ExecutionMode::DivideAndConquer(machine);
    let build = |pooled: bool| {
        let mut p = Pipeline::new(cfg, mode, domain);
        p.set_display_enabled(false);
        if !pooled {
            // The bit-identical opt-out: spawn one worker per group per
            // frame, exactly as before the pool existed.
            p.set_pipe_pool(None);
        } else if p.pipe_pool().is_none() {
            // Under SPOTNOISE_PIPE_POOL=off the *default* flips to
            // spawn-per-frame; this case measures the pool itself, so pin
            // one explicitly — both legs stay meaningful in either CI
            // matrix leg.
            p.set_pipe_pool(Some(
                softpipe::PipePool::new(p.frame_arena().cloned()).into(),
            ));
        }
        p
    };

    // Parity check on fresh pipelines: identical frames with and without
    // the pool, and zero spawns once every group's worker exists.
    let mut pooled = build(true);
    let mut fresh = build(false);
    let mut fragments = 0;
    let mut spawned_after_warmup = 0;
    for frame in 0..4 {
        let a = pooled.advance(&field, 0.05, 0);
        let b = fresh.advance(&field, 0.05, 0);
        assert_eq!(
            a.texture.absolute_difference(&b.texture),
            0.0,
            "{name}: pooled frames diverged from spawn-per-frame"
        );
        fragments = a.dnc.as_ref().map_or(0, |d| d.total_pipe_work().fragments);
        if let Some(arena) = pooled.frame_arena() {
            arena.recycle_texture(a.texture);
        }
        let spawned = pooled.pipe_pool().expect("pooled").stats().spawned;
        if frame == 0 {
            spawned_after_warmup = spawned;
        } else {
            assert_eq!(
                spawned, spawned_after_warmup,
                "{name}: steady-state frame spawned a pipe worker"
            );
        }
    }

    let mut pooled = build(true);
    let mut fresh = build(false);
    let (reference_ns, optimized) = time_pair_best(
        9,
        24,
        || {
            let out = fresh.advance(&field, 0.05, 0);
            let texture = std::hint::black_box(out.texture);
            if let Some(arena) = fresh.frame_arena() {
                arena.recycle_texture(texture);
            }
        },
        || {
            let out = pooled.advance(&field, 0.05, 0);
            let texture = std::hint::black_box(out.texture);
            // Steady-state consumers (the service) hand the frame buffer
            // back after serializing it; the bench models that.
            if let Some(arena) = pooled.frame_arena() {
                arena.recycle_texture(texture);
            }
        },
    );
    BenchCase {
        name,
        description,
        fragments_per_op: fragments,
        reference_ns_per_op: reference_ns,
        optimized_ns_per_op: optimized,
    }
}

/// Measures the frame-lifecycle tracing overhead on the interactive hot
/// path: two identical divide-and-conquer pipelines advance in lockstep,
/// the reference with tracing disabled and the "optimized" leg recording
/// advect/synthesize/raster-group/gather/render spans into a ring
/// [`spotnoise::telemetry::TraceSink`]. The speedup is therefore
/// `untraced / traced ≈ 1 / (1 + overhead)` — near parity by design — and
/// banking it turns the ratchet into an overhead budget: if tracing ever
/// becomes expensive on the hot path, the measured ratio falls below the
/// committed floor and CI fails. Output equality is asserted first, and the
/// traced pipeline is asserted to actually record spans (a silently
/// disabled sink would bank a meaningless parity).
fn telemetry_trace_overhead_case() -> BenchCase {
    use softpipe::machine::MachineConfig;
    use spotnoise::config::SynthesisConfig;
    use spotnoise::pipeline::{ExecutionMode, Pipeline};
    use spotnoise::telemetry::{TraceMode, TraceSink, DEFAULT_TRACE_CAPACITY};

    let domain = flowfield::Rect::new(Vec2::ZERO, Vec2::new(1.0, 1.0));
    let field = flowfield::analytic::Vortex {
        omega: 1.0,
        center: domain.center(),
        domain,
    };
    // The service's interactive shape: small frames, where per-frame fixed
    // costs (which is what span recording adds) weigh the most.
    let cfg = SynthesisConfig {
        texture_size: 64,
        spot_count: 200,
        spot_radius: 0.03,
        ..SynthesisConfig::small_test()
    };
    let machine = MachineConfig::new(2, 2);
    let mode = ExecutionMode::DivideAndConquer(machine);
    let build = |traced: bool| {
        let mut p = Pipeline::new(cfg, mode, domain);
        p.set_display_enabled(false);
        if traced {
            p.set_trace_sink(TraceSink::with_mode(
                TraceMode::Ring,
                DEFAULT_TRACE_CAPACITY,
            ));
        }
        p
    };

    // Parity check on fresh pipelines: tracing must be invisible in the
    // texels, and the traced leg must actually be recording.
    let mut traced = build(true);
    let mut plain = build(false);
    let mut fragments = 0;
    for _ in 0..3 {
        let a = traced.advance(&field, 0.05, 0);
        let b = plain.advance(&field, 0.05, 0);
        assert_eq!(
            a.texture.absolute_difference(&b.texture),
            0.0,
            "telemetry_trace_overhead: traced frames diverged from untraced"
        );
        fragments = a.dnc.as_ref().map_or(0, |d| d.total_pipe_work().fragments);
        if let Some(arena) = traced.frame_arena() {
            arena.recycle_texture(a.texture);
        }
        if let Some(arena) = plain.frame_arena() {
            arena.recycle_texture(b.texture);
        }
    }
    assert!(
        traced.trace_sink().recorded() > 0,
        "telemetry_trace_overhead: traced pipeline recorded no spans"
    );

    let mut traced = build(true);
    let mut plain = build(false);
    let (reference_ns, optimized) = time_pair_best(
        9,
        24,
        || {
            let out = plain.advance(&field, 0.05, 0);
            let texture = std::hint::black_box(out.texture);
            if let Some(arena) = plain.frame_arena() {
                arena.recycle_texture(texture);
            }
        },
        || {
            let out = traced.advance(&field, 0.05, 0);
            let texture = std::hint::black_box(out.texture);
            if let Some(arena) = traced.frame_arena() {
                arena.recycle_texture(texture);
            }
        },
    );
    BenchCase {
        name: "telemetry_trace_overhead",
        description: "dnc frame production, lifecycle tracing ring-enabled vs off \
             (64x64, 200 spots, 2 pipes); speedup ~ 1/(1 + tracing overhead)",
        fragments_per_op: fragments,
        reference_ns_per_op: reference_ns,
        optimized_ns_per_op: optimized,
    }
}

fn gather_case() -> BenchCase {
    // Four full-coverage 512² partials, as a 4-pipe machine produces.
    let partials: Vec<Texture> = (0..4)
        .map(|i| {
            let mut t = Texture::new(512, 512);
            t.fill(0.25 * (i + 1) as f32);
            t
        })
        .collect();
    // Sequential baseline: the pre-optimization accumulate loop.
    let sequential = |ps: &[Texture]| {
        let mut texture = ps[0].clone();
        for p in &ps[1..] {
            texture.accumulate(p);
        }
        texture
    };
    let fast = gather_additive(&partials);
    assert_eq!(
        fast.texture.absolute_difference(&sequential(&partials)),
        0.0,
        "parallel gather diverged from sequential"
    );
    let texels = (partials.len() - 1) as u64 * 512 * 512;
    let (reference_ns, optimized) = time_pair_best(
        9,
        20,
        || {
            std::hint::black_box(sequential(&partials));
        },
        || {
            std::hint::black_box(gather_additive(&partials));
        },
    );
    BenchCase {
        name: "gather_additive_512x4",
        description: "blend 4 full 512x512 partials (sequential c term, parallel host impl)",
        fragments_per_op: texels,
        reference_ns_per_op: reference_ns,
        optimized_ns_per_op: optimized,
    }
}

/// Measures the end-to-end divide-and-conquer synthesis at each swept
/// [`SynthesisConfig::spot_batch`] size against unbatched (one pipe message
/// per spot) submission — the batch-size trade-off the ROADMAP flags: big
/// batches amortize the channel round-trip, tiny batches keep the pipe
/// overlapping with shape computation. The unbatched reference and the
/// fragment count are independent of the sweep point, so both are measured
/// once and shared by all three cases.
fn spot_batch_cases() -> Vec<BenchCase> {
    use softpipe::machine::MachineConfig;
    use spotnoise::config::SynthesisConfig;
    use spotnoise::dnc::synthesize_dnc;
    use spotnoise::spot::generate_spots;

    let domain = flowfield::Rect::new(Vec2::ZERO, Vec2::new(1.0, 1.0));
    let field = flowfield::analytic::Vortex {
        omega: 1.0,
        center: domain.center(),
        domain,
    };
    let base = SynthesisConfig {
        spot_count: 1500,
        ..SynthesisConfig::small_test()
    };
    let spots = generate_spots(base.spot_count, domain, base.intensity_amplitude, 7);
    let machine = MachineConfig::new(1, 1);
    let fragments = synthesize_dnc(&field, &spots, &base, &machine)
        .total_pipe_work()
        .fragments;
    let unbatched = SynthesisConfig {
        spot_batch: 1,
        ..base
    };
    let time_best = |cfg: &SynthesisConfig| {
        let mut best = f64::MAX;
        // One warm-up plus best-of-samples, mirroring time_pair_best.
        for _ in 0..6 {
            let start = Instant::now();
            std::hint::black_box(synthesize_dnc(&field, &spots, cfg, &machine));
            best = best.min(start.elapsed().as_nanos() as f64);
        }
        best
    };
    let reference_ns = time_best(&unbatched);
    let sweep: [(usize, &'static str, &'static str); 3] = [
        (
            16,
            "dnc_spot_batch_16",
            "full dnc synthesis, 16-spot pipe batches vs per-spot submission",
        ),
        (
            64,
            "dnc_spot_batch_64",
            "full dnc synthesis, 64-spot pipe batches vs per-spot submission",
        ),
        (
            256,
            "dnc_spot_batch_256",
            "full dnc synthesis, 256-spot pipe batches vs per-spot submission",
        ),
    ];
    sweep
        .into_iter()
        .map(|(batch, name, description)| {
            let cfg = SynthesisConfig {
                spot_batch: batch,
                ..base
            };
            BenchCase {
                name,
                description,
                fragments_per_op: fragments,
                reference_ns_per_op: reference_ns,
                optimized_ns_per_op: time_best(&cfg),
            }
        })
        .collect()
}

/// Runs every case and assembles the report.
pub fn run_raster_bench() -> RasterBenchReport {
    run_raster_bench_filtered(None)
}

/// Like [`run_raster_bench`], but measuring only the cases whose name
/// contains one of the comma-separated substrings in `filter` (all cases
/// when `None`). Each case's measurement is built lazily, so a filtered run
/// really skips the excluded work — this is what lets CI's `--check` smoke
/// run (`--filter quad,mesh,gather`) keep every fast case while leaving out
/// the slow full-synthesis `dnc_spot_batch_*` sweep.
pub fn run_raster_bench_filtered(filter: Option<&str>) -> RasterBenchReport {
    let matches = |name: &str| {
        filter.is_none_or(|f| {
            f.split(',')
                .any(|part| !part.is_empty() && name.contains(part))
        })
    };
    let disc = disc_spot_texture(32, 0.5);
    let mut flat = Texture::new(32, 32);
    flat.fill(1.0);

    type LazyCase<'a> = (&'static str, Box<dyn FnOnce() -> BenchCase + 'a>);
    let singles: Vec<LazyCase> = vec![
        (
            "quad_512_disc_r12",
            Box::new(|| {
                quad_case(
                    "quad_512_disc_r12",
                    "axis-aligned disc-spot quad, radius 12 px, 512x512 target (microbench shape)",
                    &disc,
                    axis_aligned_spot_quad(Vec2::new(256.0, 256.0), 12.0),
                    0.5,
                )
            }),
        ),
        (
            "quad_512_disc_r48",
            Box::new(|| {
                quad_case(
                    "quad_512_disc_r48",
                    "axis-aligned disc-spot quad, radius 48 px (large spots)",
                    &disc,
                    axis_aligned_spot_quad(Vec2::new(256.0, 256.0), 48.0),
                    0.5,
                )
            }),
        ),
        (
            "quad_512_flat_r12",
            Box::new(|| {
                quad_case(
                    "quad_512_flat_r12",
                    "flat spot texture: uniform-row nearest-sample fast path",
                    &flat,
                    axis_aligned_spot_quad(Vec2::new(256.0, 256.0), 12.0),
                    0.5,
                )
            }),
        ),
        (
            "mesh_16x3_rotated",
            Box::new(|| {
                mesh_case(
                    "mesh_16x3_rotated",
                    "bent 16x3 turbulence-style mesh, rotated 30 degrees",
                    &rotated_mesh(16, 3, Vec2::new(256.0, 256.0), 60.0, 12.0, 0.52),
                )
            }),
        ),
        (
            "mesh_32x17_rotated",
            Box::new(|| {
                mesh_case(
                    "mesh_32x17_rotated",
                    "bent 32x17 atmospheric-style mesh, rotated 30 degrees",
                    &rotated_mesh(32, 17, Vec2::new(256.0, 256.0), 80.0, 40.0, 0.52),
                )
            }),
        ),
        (
            "bent_mesh_16x3_r12_footprint",
            Box::new(|| {
                // r = 12 px at stretch 3: a 72x14 ribbon whose rotated 16x3
                // cells have sub-12 px bounding boxes — the narrow-triangle
                // sampling-bound path the footprint sampler targets.
                bent_mesh_footprint_case(
                    "bent_mesh_16x3_r12_footprint",
                    "bent 16x3 mesh, r=12 (narrow triangles): Footprint sampling vs Exact bilinear",
                    &rotated_mesh(16, 3, Vec2::new(256.0, 256.0), 72.0, 14.0, 0.52),
                    16,
                )
            }),
        ),
        (
            "bent_mesh_16x3_r48_footprint",
            Box::new(|| {
                // r = 48 px: wider cells exercise the span-walking footprint
                // fill (lane-blocked nearest) instead of the narrow loop.
                bent_mesh_footprint_case(
                    "bent_mesh_16x3_r48_footprint",
                    "bent 16x3 mesh, r=48 (wide cells): Footprint sampling vs Exact bilinear",
                    &rotated_mesh(16, 3, Vec2::new(256.0, 256.0), 288.0, 55.0, 0.52),
                    32,
                )
            }),
        ),
        (
            "simd_quad_disc_r12",
            Box::new(|| {
                simd_quad_case(
                    "simd_quad_disc_r12",
                    "disc-spot quad r=12: explicit SIMD kernels vs forced-scalar fallback",
                    &disc,
                    axis_aligned_spot_quad(Vec2::new(256.0, 256.0), 12.0),
                    0.5,
                )
            }),
        ),
        (
            "simd_quad_disc_r48",
            Box::new(|| {
                simd_quad_case(
                    "simd_quad_disc_r48",
                    "disc-spot quad r=48: explicit SIMD kernels vs forced-scalar fallback",
                    &disc,
                    axis_aligned_spot_quad(Vec2::new(256.0, 256.0), 48.0),
                    0.5,
                )
            }),
        ),
        ("gather_additive_512x4", Box::new(gather_case)),
        ("frame_arena_reuse", Box::new(frame_arena_case)),
        (
            "pipe_pool_reuse",
            Box::new(|| {
                pipe_pool_case(
                    "pipe_pool_reuse",
                    "dnc frame production, persistent PipePool vs spawn-per-frame \
                     (256x256, 64 spots, 2 pipes)",
                    256,
                    64,
                    2,
                )
            }),
        ),
        (
            "pipe_pool_small_frames",
            Box::new(|| {
                // The interactive/service shape the ROADMAP flags: many
                // small frames, where the per-frame thread spawn is the
                // dominant fixed cost once buffers are pooled.
                pipe_pool_case(
                    "pipe_pool_small_frames",
                    "many small dnc frames, persistent PipePool vs spawn-per-frame \
                     (128x128, 40 spots, 2 pipes)",
                    128,
                    40,
                    2,
                )
            }),
        ),
        (
            "telemetry_trace_overhead",
            Box::new(telemetry_trace_overhead_case),
        ),
    ];

    let mut cases = Vec::new();
    for (name, build) in singles {
        if matches(name) {
            cases.push(build());
        }
    }
    // The spot-batch sweep shares one reference measurement across its three
    // cases, so it runs as a unit when any of its names match.
    let batch_names = [
        "dnc_spot_batch_16",
        "dnc_spot_batch_64",
        "dnc_spot_batch_256",
    ];
    if batch_names.iter().any(|n| matches(n)) {
        cases.extend(spot_batch_cases().into_iter().filter(|c| matches(c.name)));
    }
    RasterBenchReport {
        // The shim honours `rayon::set_current_num_threads`, so thread
        // sweeps record the count they actually ran with.
        threads: rayon::current_num_threads(),
        simd: softpipe::simd::active().name().to_string(),
        simd_override: softpipe::simd::env_override().map(str::to_string),
        cases,
    }
}

/// Human-readable table for stdout.
pub fn format_report(report: &RasterBenchReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "rasterizer before/after ({} threads)\n",
        report.threads
    ));
    out.push_str(&format!(
        "{:<24} {:>12} {:>14} {:>14} {:>9}\n",
        "case", "fragments", "reference", "optimized", "speedup"
    ));
    for case in &report.cases {
        out.push_str(&format!(
            "{:<24} {:>12} {:>11.1} us {:>11.1} us {:>8.2}x\n",
            case.name,
            case.fragments_per_op,
            case.reference_ns_per_op / 1.0e3,
            case.optimized_ns_per_op / 1.0e3,
            case.speedup()
        ));
    }
    out
}

/// Builds the JSON value for one report: the shared body of the single-run
/// `bench_raster/v1` artifact and each entry of the `--threads` sweep's
/// `runs` array. `simd_override` is emitted only when the process was
/// actually started with `SPOTNOISE_SIMD`, so unforced artifacts stay
/// byte-stable against earlier schema revisions plus the two new keys.
fn report_json_value(report: &RasterBenchReport) -> Json {
    let mut pairs: Vec<(&'static str, Json)> = vec![
        ("schema", Json::str("bench_raster/v1")),
        ("threads", Json::num(report.threads as f64)),
        ("simd", Json::str(report.simd.clone())),
    ];
    if let Some(forced) = &report.simd_override {
        pairs.push(("simd_override", Json::str(forced.clone())));
    }
    pairs.push((
        "cases",
        Json::array(report.cases.iter().map(|c| {
            Json::object([
                ("name", Json::str(c.name)),
                ("description", Json::str(c.description)),
                ("fragments_per_op", Json::num(c.fragments_per_op as f64)),
                ("reference_ns_per_op", Json::num(c.reference_ns_per_op)),
                ("optimized_ns_per_op", Json::num(c.optimized_ns_per_op)),
                ("speedup", Json::num(c.speedup())),
                (
                    "optimized_fragments_per_second",
                    Json::num(c.optimized_fragments_per_second()),
                ),
            ])
        })),
    ));
    Json::object(pairs)
}

/// Serializes the report in the `BENCH_raster.json` schema.
pub fn report_to_json(report: &RasterBenchReport) -> String {
    report_json_value(report).to_string_pretty()
}

/// Serializes a `--threads` sweep: one `bench_raster/v1` report per swept
/// worker count, wrapped in a `bench_raster_sweep/v1` envelope so the sweep
/// artifact can never be mistaken for (or ratcheted against) a single-run
/// bank.
pub fn sweep_to_json(reports: &[RasterBenchReport]) -> String {
    Json::object([
        ("schema", Json::str("bench_raster_sweep/v1")),
        ("runs", Json::array(reports.iter().map(report_json_value))),
    ])
    .to_string_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_and_throughput_math() {
        let case = BenchCase {
            name: "x",
            description: "d",
            fragments_per_op: 1000,
            reference_ns_per_op: 2000.0,
            optimized_ns_per_op: 1000.0,
        };
        assert!((case.speedup() - 2.0).abs() < 1e-12);
        assert!((case.optimized_fragments_per_second() - 1.0e9).abs() < 1.0);
    }

    #[test]
    fn filter_that_matches_nothing_runs_nothing() {
        // Lazily built cases: a non-matching filter must return instantly
        // with an empty report instead of measuring and discarding.
        let report = run_raster_bench_filtered(Some("no_such_case"));
        assert!(report.cases.is_empty());
        assert!(report.threads >= 1);
        // Comma-separated alternatives that all miss also run nothing.
        let report = run_raster_bench_filtered(Some("nope,also_nope,"));
        assert!(report.cases.is_empty());
    }

    fn sample_report() -> RasterBenchReport {
        RasterBenchReport {
            threads: 4,
            simd: "avx2".to_string(),
            simd_override: None,
            cases: vec![BenchCase {
                name: "quad",
                description: "d",
                fragments_per_op: 10,
                reference_ns_per_op: 10.0,
                optimized_ns_per_op: 5.0,
            }],
        }
    }

    #[test]
    fn report_json_contains_schema_and_cases() {
        let json = report_to_json(&sample_report());
        assert!(json.contains("\"schema\": \"bench_raster/v1\""));
        assert!(json.contains("\"simd\": \"avx2\""));
        assert!(json.contains("\"speedup\": 2"));
        // No override ran, so the key is absent entirely.
        assert!(!json.contains("simd_override"));
    }

    #[test]
    fn report_json_records_simd_override_when_present() {
        let report = RasterBenchReport {
            simd: "scalar".to_string(),
            simd_override: Some("off".to_string()),
            ..sample_report()
        };
        let json = report_to_json(&report);
        assert!(json.contains("\"simd\": \"scalar\""));
        assert!(json.contains("\"simd_override\": \"off\""));
    }

    #[test]
    fn sweep_json_wraps_one_report_per_run() {
        let mut second = sample_report();
        second.threads = 2;
        let json = sweep_to_json(&[sample_report(), second]);
        assert!(json.contains("\"schema\": \"bench_raster_sweep/v1\""));
        assert!(json.contains("\"schema\": \"bench_raster/v1\""));
        assert!(json.contains("\"threads\": 4"));
        assert!(json.contains("\"threads\": 2"));
    }
}
