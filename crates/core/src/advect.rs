//! Spot animation: coupling spots to advected particles.
//!
//! A spot-noise animation of a flow field is realised "by associating a
//! particle with each spot position. A new frame in the animation sequence is
//! determined by advecting all particles over a small distance through the
//! flow field" (paper §2). The paper's Figure 2 contrasts the *default* mode
//! (independent random positions every frame) with the *advected* mode
//! (particle paths with a life cycle), which is what reveals the separation
//! line on the block. [`SpotAnimator`] implements both modes behind one
//! interface.

use crate::spot::Spot;
use flowfield::particles::{AdvectionStats, ParticleEnsemble, ParticleOptions};
use flowfield::{Rect, VectorField};
use serde::{Deserialize, Serialize};

/// How spot positions evolve from frame to frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PositionMode {
    /// Default spot noise: positions are re-randomised every frame, so
    /// successive frames are statistically independent.
    Random,
    /// Spot positions follow particle paths through the flow, with the
    /// particle life cycle controlling re-seeding.
    Advected,
}

/// Manages the spot population across animation frames.
#[derive(Debug, Clone)]
pub struct SpotAnimator {
    ensemble: ParticleEnsemble,
    mode: PositionMode,
    fade_with_age: bool,
}

impl SpotAnimator {
    /// Creates an animator with `count` spots over `domain`.
    pub fn new(domain: Rect, count: usize, mode: PositionMode, seed: u64) -> Self {
        let options = ParticleOptions {
            count,
            ..Default::default()
        };
        SpotAnimator {
            ensemble: ParticleEnsemble::new(domain, options, seed),
            mode,
            fade_with_age: false,
        }
    }

    /// Creates an animator with full control over the particle life cycle.
    pub fn with_options(
        domain: Rect,
        options: ParticleOptions,
        mode: PositionMode,
        seed: u64,
    ) -> Self {
        SpotAnimator {
            ensemble: ParticleEnsemble::new(domain, options, seed),
            mode,
            fade_with_age: false,
        }
    }

    /// When enabled, spot intensities are modulated by the particle's
    /// remaining life so that spots fade in/out instead of popping. This is
    /// one of the "parameters related to spot position and spot life cycle"
    /// the paper adjusts to produce the lower image of Figure 2.
    pub fn set_fade_with_age(&mut self, fade: bool) {
        self.fade_with_age = fade;
    }

    /// The position mode.
    pub fn mode(&self) -> PositionMode {
        self.mode
    }

    /// Number of spots.
    pub fn len(&self) -> usize {
        self.ensemble.len()
    }

    /// True when the animator manages no spots.
    pub fn is_empty(&self) -> bool {
        self.ensemble.is_empty()
    }

    /// Number of frames advanced so far.
    pub fn frame(&self) -> u64 {
        self.ensemble.frame()
    }

    /// The current spot population (pipeline step 3 input).
    pub fn spots(&self) -> Vec<Spot> {
        self.ensemble
            .particles()
            .iter()
            .map(|p| {
                let fade = if self.fade_with_age {
                    // Triangular fade: 0 at birth and death, 1 at mid-life.
                    let v = p.vitality();
                    (2.0 * v.min(1.0 - v) * 2.0).min(1.0)
                } else {
                    1.0
                };
                Spot {
                    position: p.position,
                    intensity: (p.intensity * fade) as f32,
                }
            })
            .collect()
    }

    /// Advances the animation by one frame: in `Advected` mode particles are
    /// integrated through the field over `dt`; in `Random` mode positions are
    /// re-scrambled (and the life cycle still ticks so intensities change).
    pub fn advance(&mut self, field: &dyn VectorField, dt: f64) -> AdvectionStats {
        match self.mode {
            PositionMode::Advected => self.ensemble.step(field, dt),
            PositionMode::Random => {
                let stats = self.ensemble.step(field, 0.0);
                self.ensemble.scramble_positions();
                stats
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use flowfield::analytic::Vortex;
    use flowfield::particles::ParticleOptions;
    use flowfield::Vec2;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The service's frame-advance path leans on the spot life cycle:
        /// whatever the field, step size or lifetime, after any number of
        /// steps every live spot must still be inside the domain, no
        /// particle may outlive its lifetime, and a respawned particle must
        /// carry a freshly drawn phase (position and random intensity), not
        /// its predecessor's.
        #[test]
        fn life_cycle_keeps_spots_in_domain_and_respawns_fresh(
            seed in 0u64..200,
            steps in 1usize..25,
            mean_lifetime in 2u32..12,
            dt in 0.01f64..0.4,
            omega in -6.0f64..6.0,
        ) {
            let domain = Rect::new(Vec2::ZERO, Vec2::new(1.0, 1.0));
            let field = Vortex { omega, center: Vec2::new(0.8, 0.8), domain };
            let options = ParticleOptions { count: 120, mean_lifetime, ..Default::default() };
            let mut animator =
                SpotAnimator::with_options(domain, options, PositionMode::Advected, seed);
            let mut respawns_seen = 0usize;
            for step in 0..steps {
                let before = animator.ensemble.particles().to_vec();
                animator.advance(&field, dt);
                let after = animator.ensemble.particles();
                prop_assert_eq!(after.len(), before.len());
                for (slot, (prev, p)) in before.iter().zip(after).enumerate() {
                    prop_assert!(
                        domain.contains(p.position),
                        "step {} slot {}: position {:?} escaped the domain",
                        step, slot, p.position
                    );
                    prop_assert!(
                        p.age < p.lifetime,
                        "step {} slot {}: age {} not below lifetime {}",
                        step, slot, p.age, p.lifetime
                    );
                    // Survivors aged by exactly one frame; a particle whose
                    // age reset to 0 was respawned this step and must have a
                    // fresh phase — a newly drawn position *and* intensity,
                    // not the dead particle's values carried over.
                    if p.age == 0 {
                        respawns_seen += 1;
                        prop_assert!(
                            p.position != prev.position && p.intensity != prev.intensity,
                            "step {} slot {}: respawn kept stale phase",
                            step, slot
                        );
                    } else {
                        prop_assert_eq!(p.age, prev.age + 1);
                        prop_assert_eq!(p.intensity, prev.intensity);
                        prop_assert_eq!(p.lifetime, prev.lifetime);
                    }
                }
                // The spots handed to synthesis mirror the ensemble.
                let spots = animator.spots();
                prop_assert!(spots.iter().all(|s| domain.contains(s.position)));
            }
            // With lifetimes far below the step count the cycle must have
            // actually recycled particles, otherwise the property above
            // never exercised the respawn arm.
            if steps as u32 > 2 * mean_lifetime {
                prop_assert!(respawns_seen > 0, "no particle was ever recycled");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowfield::analytic::Uniform;
    use flowfield::Vec2;

    fn domain() -> Rect {
        Rect::new(Vec2::ZERO, Vec2::new(1.0, 1.0))
    }

    fn flow() -> Uniform {
        Uniform {
            velocity: Vec2::new(0.05, 0.0),
            domain: domain(),
        }
    }

    #[test]
    fn animator_produces_requested_spot_count() {
        let a = SpotAnimator::new(domain(), 200, PositionMode::Advected, 1);
        assert_eq!(a.len(), 200);
        assert!(!a.is_empty());
        let spots = a.spots();
        assert_eq!(spots.len(), 200);
        assert!(spots.iter().all(|s| domain().contains(s.position)));
    }

    #[test]
    fn advected_mode_moves_spots_coherently() {
        let mut a = SpotAnimator::new(domain(), 100, PositionMode::Advected, 2);
        let before = a.spots();
        a.advance(&flow(), 1.0);
        let after = a.spots();
        // Most spots moved right by ~0.05 (some were re-seeded).
        let coherent = before
            .iter()
            .zip(&after)
            .filter(|(b, a)| (a.position.x - b.position.x - 0.05).abs() < 1e-9)
            .count();
        assert!(coherent > 60, "only {coherent} spots advected coherently");
        assert_eq!(a.frame(), 1);
    }

    #[test]
    fn random_mode_decorrelates_positions() {
        let mut a = SpotAnimator::new(domain(), 100, PositionMode::Random, 3);
        let before = a.spots();
        a.advance(&flow(), 1.0);
        let after = a.spots();
        // Essentially no spot keeps its position in random mode.
        let kept = before
            .iter()
            .zip(&after)
            .filter(|(b, a)| (a.position - b.position).norm() < 1e-9)
            .count();
        assert!(kept < 5, "{kept} spots kept their position");
        // All positions stay in the domain.
        assert!(after.iter().all(|s| domain().contains(s.position)));
    }

    #[test]
    fn fade_with_age_bounds_intensities() {
        let mut a = SpotAnimator::new(domain(), 500, PositionMode::Advected, 4);
        a.set_fade_with_age(true);
        let raw_max = a
            .spots()
            .iter()
            .map(|s| s.intensity.abs())
            .fold(0.0f32, f32::max);
        assert!(raw_max <= 1.0 + 1e-6);
        // After a step, intensities remain bounded and not all zero.
        a.advance(&flow(), 0.1);
        let spots = a.spots();
        assert!(spots.iter().any(|s| s.intensity != 0.0));
        assert!(spots.iter().all(|s| s.intensity.abs() <= 1.0 + 1e-6));
    }

    #[test]
    fn custom_particle_options_respected() {
        let options = ParticleOptions {
            count: 42,
            mean_lifetime: 5,
            ..Default::default()
        };
        let a = SpotAnimator::with_options(domain(), options, PositionMode::Advected, 9);
        assert_eq!(a.len(), 42);
        assert_eq!(a.mode(), PositionMode::Advected);
    }
}
