//! Session specifications: which field to visualise, with which synthesis
//! configuration, on which virtual machine.
//!
//! A [`SessionSpec`] is everything a frame of a session depends on. Frames
//! are a pure function of `(field, config, frame index)` — steering replaces
//! the field and restarts the session's animation clock — which is what
//! makes the frame cache key `(field hash, config hash, seed, frame index)`
//! sound: a steered-back session re-requests keys it already populated and
//! skips synthesis entirely.

use flowfield::analytic::{DoubleGyre, Saddle, Shear, TaylorGreen, Uniform, Vortex};
use flowfield::{Rect, Vec2, VectorField};
use spotnoise::config::{SamplingMode, SynthesisConfig};
use spotnoise::hash::StableHasher;
use spotnoise::json::Json;

/// The unit domain all service sessions run on.
pub fn service_domain() -> Rect {
    Rect::new(Vec2::ZERO, Vec2::new(1.0, 1.0))
}

/// An analytic vector field a session can be bound (or steered) to.
///
/// The variants mirror `flowfield::analytic`; parameters are plain numbers
/// so a spec can be carried in a request body and content-hashed for the
/// frame cache.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FieldSpec {
    /// Constant flow.
    Uniform {
        /// Velocity x component.
        vx: f64,
        /// Velocity y component.
        vy: f64,
    },
    /// Solid-body rotation around a centre.
    Vortex {
        /// Angular velocity.
        omega: f64,
        /// Centre x.
        cx: f64,
        /// Centre y.
        cy: f64,
    },
    /// Horizontal shear.
    Shear {
        /// Shear rate.
        rate: f64,
    },
    /// Stagnation-point flow.
    Saddle {
        /// Strain rate.
        rate: f64,
        /// Stagnation point x.
        cx: f64,
        /// Stagnation point y.
        cy: f64,
    },
    /// The double-gyre benchmark field.
    DoubleGyre {
        /// Velocity amplitude.
        amplitude: f64,
        /// Gyre-separation oscillation amplitude.
        epsilon: f64,
        /// Oscillation frequency.
        omega: f64,
        /// Evaluation time.
        time: f64,
    },
    /// Taylor–Green cellular vortices.
    TaylorGreen {
        /// Velocity amplitude.
        amplitude: f64,
        /// Cells per axis.
        cells: f64,
    },
}

impl FieldSpec {
    /// The default session field: a unit vortex centred in the domain.
    pub fn default_vortex() -> Self {
        FieldSpec::Vortex {
            omega: 1.0,
            cx: 0.5,
            cy: 0.5,
        }
    }

    /// Instantiates the field over the service domain.
    pub fn build(&self) -> Box<dyn VectorField + Send + Sync> {
        let domain = service_domain();
        match *self {
            FieldSpec::Uniform { vx, vy } => Box::new(Uniform {
                velocity: Vec2::new(vx, vy),
                domain,
            }),
            FieldSpec::Vortex { omega, cx, cy } => Box::new(Vortex {
                omega,
                center: Vec2::new(cx, cy),
                domain,
            }),
            FieldSpec::Shear { rate } => Box::new(Shear { rate, domain }),
            FieldSpec::Saddle { rate, cx, cy } => Box::new(Saddle {
                rate,
                center: Vec2::new(cx, cy),
                domain,
            }),
            FieldSpec::DoubleGyre {
                amplitude,
                epsilon,
                omega,
                time,
            } => Box::new(DoubleGyre {
                amplitude,
                epsilon,
                omega,
                time,
                domain,
            }),
            FieldSpec::TaylorGreen { amplitude, cells } => Box::new(TaylorGreen {
                amplitude,
                cells,
                domain,
            }),
        }
    }

    /// Stable content hash of the field (kind + parameters), half of the
    /// frame-cache key.
    pub fn cache_key(&self) -> u64 {
        let mut h = StableHasher::new();
        h.write_str("FieldSpec/v1");
        match *self {
            FieldSpec::Uniform { vx, vy } => {
                h.write_str("uniform");
                h.write_f64(vx);
                h.write_f64(vy);
            }
            FieldSpec::Vortex { omega, cx, cy } => {
                h.write_str("vortex");
                h.write_f64(omega);
                h.write_f64(cx);
                h.write_f64(cy);
            }
            FieldSpec::Shear { rate } => {
                h.write_str("shear");
                h.write_f64(rate);
            }
            FieldSpec::Saddle { rate, cx, cy } => {
                h.write_str("saddle");
                h.write_f64(rate);
                h.write_f64(cx);
                h.write_f64(cy);
            }
            FieldSpec::DoubleGyre {
                amplitude,
                epsilon,
                omega,
                time,
            } => {
                h.write_str("double_gyre");
                h.write_f64(amplitude);
                h.write_f64(epsilon);
                h.write_f64(omega);
                h.write_f64(time);
            }
            FieldSpec::TaylorGreen { amplitude, cells } => {
                h.write_str("taylor_green");
                h.write_f64(amplitude);
                h.write_f64(cells);
            }
        }
        h.finish()
    }

    /// Parses a field spec from a request-body JSON object, e.g.
    /// `{"kind": "vortex", "omega": 2.0, "cx": 0.5, "cy": 0.5}`. Missing
    /// parameters fall back to sensible defaults; an unknown `kind` is an
    /// error.
    pub fn from_json(value: &Json) -> Result<FieldSpec, String> {
        let num = |key: &str, default: f64| -> Result<f64, String> {
            match value.get(key) {
                None => Ok(default),
                Some(v) => {
                    let n = v
                        .as_f64()
                        .ok_or_else(|| format!("field.{key} not a number"))?;
                    if n.is_finite() {
                        Ok(n)
                    } else {
                        Err(format!("field.{key} not finite"))
                    }
                }
            }
        };
        let kind = value
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("field.kind missing")?;
        match kind {
            "uniform" => Ok(FieldSpec::Uniform {
                vx: num("vx", 0.1)?,
                vy: num("vy", 0.0)?,
            }),
            "vortex" => Ok(FieldSpec::Vortex {
                omega: num("omega", 1.0)?,
                cx: num("cx", 0.5)?,
                cy: num("cy", 0.5)?,
            }),
            "shear" => Ok(FieldSpec::Shear {
                rate: num("rate", 1.0)?,
            }),
            "saddle" => Ok(FieldSpec::Saddle {
                rate: num("rate", 1.0)?,
                cx: num("cx", 0.5)?,
                cy: num("cy", 0.5)?,
            }),
            "double_gyre" => Ok(FieldSpec::DoubleGyre {
                amplitude: num("amplitude", 0.1)?,
                epsilon: num("epsilon", 0.0)?,
                omega: num("omega", 0.0)?,
                time: num("time", 0.0)?,
            }),
            "taylor_green" => Ok(FieldSpec::TaylorGreen {
                amplitude: num("amplitude", 1.0)?,
                cells: num("cells", 2.0)?,
            }),
            other => Err(format!("unknown field kind {other:?}")),
        }
    }

    /// Serializes the spec back to the request-body shape (echoed in
    /// session-info responses).
    pub fn to_json(&self) -> Json {
        match *self {
            FieldSpec::Uniform { vx, vy } => Json::object([
                ("kind", Json::str("uniform")),
                ("vx", Json::num(vx)),
                ("vy", Json::num(vy)),
            ]),
            FieldSpec::Vortex { omega, cx, cy } => Json::object([
                ("kind", Json::str("vortex")),
                ("omega", Json::num(omega)),
                ("cx", Json::num(cx)),
                ("cy", Json::num(cy)),
            ]),
            FieldSpec::Shear { rate } => {
                Json::object([("kind", Json::str("shear")), ("rate", Json::num(rate))])
            }
            FieldSpec::Saddle { rate, cx, cy } => Json::object([
                ("kind", Json::str("saddle")),
                ("rate", Json::num(rate)),
                ("cx", Json::num(cx)),
                ("cy", Json::num(cy)),
            ]),
            FieldSpec::DoubleGyre {
                amplitude,
                epsilon,
                omega,
                time,
            } => Json::object([
                ("kind", Json::str("double_gyre")),
                ("amplitude", Json::num(amplitude)),
                ("epsilon", Json::num(epsilon)),
                ("omega", Json::num(omega)),
                ("time", Json::num(time)),
            ]),
            FieldSpec::TaylorGreen { amplitude, cells } => Json::object([
                ("kind", Json::str("taylor_green")),
                ("amplitude", Json::num(amplitude)),
                ("cells", Json::num(cells)),
            ]),
        }
    }
}

/// Everything a session's frames depend on: the field, the synthesis
/// configuration, the virtual machine shape and the per-frame time step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionSpec {
    /// The field being visualised.
    pub field: FieldSpec,
    /// Synthesis parameters (including the seed).
    pub config: SynthesisConfig,
    /// Processors of the divide-and-conquer machine.
    pub processors: usize,
    /// Graphics pipes of the divide-and-conquer machine.
    pub pipes: usize,
    /// Advection time step between successive frames.
    pub dt: f64,
    /// Subscribe to the shared broadcast channel for this `(field, config,
    /// seed)` instead of owning a private pipeline. Deliberately **not**
    /// part of [`SessionSpec::config_cache_key`]: shared and private
    /// sessions of the same spec render identical texels and must share
    /// frame-cache entries.
    pub shared: bool,
    /// Opt out of pressure-driven quality degradation: a pinned session is
    /// never switched to footprint sampling under load (it sheds instead).
    /// Like `shared`, not part of the cache key — pinning changes *when*
    /// the service may degrade, never what a given config renders.
    pub pinned: bool,
}

impl Default for SessionSpec {
    fn default() -> Self {
        SessionSpec {
            field: FieldSpec::default_vortex(),
            config: SynthesisConfig::small_test(),
            processors: 1,
            pipes: 1,
            dt: 0.05,
            shared: false,
            pinned: false,
        }
    }
}

impl SessionSpec {
    /// Parses a session spec from a request body. An empty body yields the
    /// default spec; otherwise the body is a JSON object with optional
    /// `field`, `config`, `machine` and `dt` keys, each overriding the
    /// default piecewise.
    pub fn from_body(body: &[u8]) -> Result<SessionSpec, String> {
        let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
        if text.trim().is_empty() {
            return Ok(SessionSpec::default());
        }
        let value = Json::parse(text)?;
        let mut spec = SessionSpec::default();
        if let Some(field) = value.get("field") {
            spec.field = FieldSpec::from_json(field)?;
        }
        if let Some(config) = value.get("config") {
            spec.config = parse_config_overrides(config, spec.config)?;
        }
        if let Some(machine) = value.get("machine") {
            spec.processors = parse_count(machine, "processors", spec.processors)?;
            spec.pipes = parse_count(machine, "pipes", spec.pipes)?;
        }
        if let Some(dt) = value.get("dt") {
            spec.dt = dt.as_f64().ok_or("dt not a number")?;
        }
        if let Some(shared) = value.get("shared") {
            spec.shared = shared.as_bool().ok_or("shared not a boolean")?;
        }
        if let Some(pinned) = value.get("pinned") {
            spec.pinned = pinned.as_bool().ok_or("pinned not a boolean")?;
        }
        spec.validate()?;
        Ok(spec)
    }

    /// Validates the spec (delegating config checks to
    /// [`SynthesisConfig::validate`]).
    pub fn validate(&self) -> Result<(), String> {
        self.config.validate()?;
        if !(self.dt.is_finite() && self.dt > 0.0) {
            return Err(format!("dt {} must be finite and positive", self.dt));
        }
        if self.processors == 0 || self.processors > 256 {
            return Err(format!("processors {} out of [1, 256]", self.processors));
        }
        if self.pipes == 0 || self.pipes > self.processors {
            return Err(format!(
                "pipes {} out of [1, processors={}]",
                self.pipes, self.processors
            ));
        }
        if self.config.texture_size > 2048 {
            return Err(format!(
                "texture_size {} above the service cap of 2048",
                self.config.texture_size
            ));
        }
        Ok(())
    }

    /// Stable content hash of the configuration half of the frame-cache key:
    /// the [`SynthesisConfig::cache_key`] extended with the machine shape
    /// and time step, which also determine the rendered texels.
    pub fn config_cache_key(&self) -> u64 {
        let mut h = StableHasher::new();
        h.write_str("SessionConfig/v1");
        h.write_u64(self.config.cache_key());
        h.write_usize(self.processors);
        h.write_usize(self.pipes);
        h.write_f64(self.dt);
        h.finish()
    }

    /// Bytes of one rendered frame (`texture_size² × 4`, little-endian f32).
    pub fn frame_bytes(&self) -> usize {
        self.config.texture_size * self.config.texture_size * 4
    }
}

fn parse_count(obj: &Json, key: &str, default: usize) -> Result<usize, String> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => {
            let n = v
                .as_f64()
                .ok_or_else(|| format!("machine.{key} not a number"))?;
            if n.fract() != 0.0 || !(0.0..=1.0e6).contains(&n) {
                return Err(format!("machine.{key} {n} not a small whole number"));
            }
            Ok(n as usize)
        }
    }
}

/// Applies the optional `config` overrides onto a base configuration.
fn parse_config_overrides(obj: &Json, base: SynthesisConfig) -> Result<SynthesisConfig, String> {
    let mut cfg = base;
    let usize_key = |key: &str, current: usize| -> Result<usize, String> {
        match obj.get(key) {
            None => Ok(current),
            Some(v) => {
                let n = v
                    .as_f64()
                    .ok_or_else(|| format!("config.{key} not a number"))?;
                if n.fract() != 0.0 || !(0.0..=1.0e9).contains(&n) {
                    return Err(format!("config.{key} {n} not a whole number"));
                }
                Ok(n as usize)
            }
        }
    };
    let f64_key = |key: &str, current: f64| -> Result<f64, String> {
        match obj.get(key) {
            None => Ok(current),
            Some(v) => v
                .as_f64()
                .filter(|n| n.is_finite())
                .ok_or_else(|| format!("config.{key} not a finite number")),
        }
    };
    cfg.texture_size = usize_key("texture_size", cfg.texture_size)?;
    cfg.spot_count = usize_key("spot_count", cfg.spot_count)?;
    cfg.spot_texture_size = usize_key("spot_texture_size", cfg.spot_texture_size)?;
    cfg.spot_batch = usize_key("spot_batch", cfg.spot_batch)?;
    cfg.spot_radius = f64_key("spot_radius", cfg.spot_radius)?;
    cfg.max_stretch = f64_key("max_stretch", cfg.max_stretch)?;
    cfg.intensity_amplitude = f64_key("intensity_amplitude", cfg.intensity_amplitude)?;
    if let Some(v) = obj.get("seed") {
        let n = v.as_f64().ok_or("config.seed not a number")?;
        if n.fract() != 0.0 || n < 0.0 {
            return Err(format!("config.seed {n} not a non-negative whole number"));
        }
        cfg.seed = n as u64;
    }
    if let Some(v) = obj.get("use_tiling") {
        cfg.use_tiling = v.as_bool().ok_or("config.use_tiling not a boolean")?;
    }
    if let Some(v) = obj.get("sampling") {
        let text = v.as_str().ok_or("config.sampling not a string")?;
        cfg.sampling = match text {
            "exact" => SamplingMode::Exact,
            "footprint" => SamplingMode::Footprint,
            other => return Err(format!("unknown config.sampling {other:?}")),
        };
    }
    Ok(cfg)
}

/// The wire name of a sampling mode (the `config.sampling` request key and
/// the session-info echo).
pub fn sampling_mode_name(mode: SamplingMode) -> &'static str {
    match mode {
        SamplingMode::Exact => "exact",
        SamplingMode::Footprint => "footprint",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_is_valid() {
        let spec = SessionSpec::default();
        assert!(spec.validate().is_ok());
        assert_eq!(spec.frame_bytes(), 128 * 128 * 4);
    }

    #[test]
    fn empty_body_yields_default_spec() {
        assert_eq!(SessionSpec::from_body(b"").unwrap(), SessionSpec::default());
        assert_eq!(
            SessionSpec::from_body(b"  \n ").unwrap(),
            SessionSpec::default()
        );
    }

    #[test]
    fn body_overrides_apply_piecewise() {
        let body = br#"{
            "field": {"kind": "shear", "rate": 2.5},
            "config": {"texture_size": 64, "spot_count": 100, "seed": 7, "use_tiling": true},
            "machine": {"processors": 4, "pipes": 2},
            "dt": 0.1
        }"#;
        let spec = SessionSpec::from_body(body).unwrap();
        assert_eq!(spec.field, FieldSpec::Shear { rate: 2.5 });
        assert_eq!(spec.config.texture_size, 64);
        assert_eq!(spec.config.spot_count, 100);
        assert_eq!(spec.config.seed, 7);
        assert!(spec.config.use_tiling);
        // Untouched keys keep their defaults.
        assert_eq!(spec.config.spot_batch, 64);
        assert_eq!(spec.config.sampling, SamplingMode::Exact);
        assert_eq!((spec.processors, spec.pipes), (4, 2));
        assert!((spec.dt - 0.1).abs() < 1e-12);
    }

    #[test]
    fn sampling_override_parses_and_keys_the_cache() {
        let footprint =
            SessionSpec::from_body(br#"{"config": {"sampling": "footprint"}}"#).unwrap();
        assert_eq!(footprint.config.sampling, SamplingMode::Footprint);
        let exact = SessionSpec::from_body(br#"{"config": {"sampling": "exact"}}"#).unwrap();
        assert_eq!(exact.config.sampling, SamplingMode::Exact);
        // The two modes render (slightly) different texels, so they must
        // occupy distinct frame-cache keys.
        assert_ne!(footprint.config_cache_key(), exact.config_cache_key());
        assert!(SessionSpec::from_body(br#"{"config": {"sampling": "trilinear"}}"#).is_err());
        assert!(SessionSpec::from_body(br#"{"config": {"sampling": 3}}"#).is_err());
        assert_eq!(sampling_mode_name(SamplingMode::Exact), "exact");
        assert_eq!(sampling_mode_name(SamplingMode::Footprint), "footprint");
    }

    #[test]
    fn shared_flag_parses_without_perturbing_the_cache_key() {
        let shared = SessionSpec::from_body(br#"{"shared": true}"#).unwrap();
        assert!(shared.shared);
        let private = SessionSpec::default();
        assert!(!private.shared);
        // Shared and private sessions of the same spec render identical
        // texels — they must land on the same frame-cache keys.
        assert_eq!(shared.config_cache_key(), private.config_cache_key());
        assert_eq!(shared.field.cache_key(), private.field.cache_key());
        assert!(SessionSpec::from_body(br#"{"shared": 1}"#).is_err());
    }

    #[test]
    fn pinned_flag_parses_without_perturbing_the_cache_key() {
        let pinned = SessionSpec::from_body(br#"{"pinned": true}"#).unwrap();
        assert!(pinned.pinned);
        let default = SessionSpec::default();
        assert!(!default.pinned);
        // Pinning gates *when* degradation may happen, never what a config
        // renders — same cache keys either way.
        assert_eq!(pinned.config_cache_key(), default.config_cache_key());
        assert!(SessionSpec::from_body(br#"{"pinned": "yes"}"#).is_err());
    }

    #[test]
    fn bad_bodies_are_rejected() {
        assert!(SessionSpec::from_body(b"{").is_err());
        assert!(SessionSpec::from_body(br#"{"field": {"kind": "nope"}}"#).is_err());
        assert!(SessionSpec::from_body(br#"{"dt": -1.0}"#).is_err());
        assert!(SessionSpec::from_body(br#"{"config": {"spot_count": 0}}"#).is_err());
        assert!(SessionSpec::from_body(br#"{"machine": {"processors": 0}}"#).is_err());
        assert!(SessionSpec::from_body(br#"{"config": {"texture_size": 4096}}"#).is_err());
        assert!(SessionSpec::from_body(br#"{"field": {"kind": "vortex", "omega": "x"}}"#).is_err());
    }

    #[test]
    fn field_specs_round_trip_through_json() {
        let specs = [
            FieldSpec::Uniform { vx: 0.2, vy: -0.1 },
            FieldSpec::default_vortex(),
            FieldSpec::Shear { rate: 3.0 },
            FieldSpec::Saddle {
                rate: 1.0,
                cx: 0.4,
                cy: 0.6,
            },
            FieldSpec::DoubleGyre {
                amplitude: 0.1,
                epsilon: 0.05,
                omega: 1.0,
                time: 0.3,
            },
            FieldSpec::TaylorGreen {
                amplitude: 1.0,
                cells: 3.0,
            },
        ];
        for spec in specs {
            let round = FieldSpec::from_json(&spec.to_json()).unwrap();
            assert_eq!(round, spec);
            assert_eq!(round.cache_key(), spec.cache_key());
        }
    }

    #[test]
    fn field_cache_keys_discriminate() {
        let a = FieldSpec::Vortex {
            omega: 1.0,
            cx: 0.5,
            cy: 0.5,
        };
        let b = FieldSpec::Vortex {
            omega: 1.5,
            cx: 0.5,
            cy: 0.5,
        };
        let c = FieldSpec::Shear { rate: 1.0 };
        assert_ne!(a.cache_key(), b.cache_key());
        assert_ne!(a.cache_key(), c.cache_key());
        assert_ne!(b.cache_key(), c.cache_key());
        // Identical params, identical key — the steer-back scenario.
        assert_eq!(
            a.cache_key(),
            FieldSpec::Vortex {
                omega: 1.0,
                cx: 0.5,
                cy: 0.5
            }
            .cache_key()
        );
    }

    #[test]
    fn built_fields_evaluate() {
        let spec = FieldSpec::default_vortex();
        let field = spec.build();
        let v = field.velocity(Vec2::new(0.75, 0.5));
        assert!(v.norm() > 0.0);
        assert_eq!(field.domain(), service_domain());
    }

    #[test]
    fn config_cache_key_covers_machine_and_dt() {
        let base = SessionSpec::default();
        let mut other = base;
        other.processors = 2;
        other.pipes = 2;
        assert_ne!(base.config_cache_key(), other.config_cache_key());
        let mut dt = base;
        dt.dt = 0.1;
        assert_ne!(base.config_cache_key(), dt.config_cache_key());
        assert_eq!(
            base.config_cache_key(),
            SessionSpec::default().config_cache_key()
        );
    }
}
