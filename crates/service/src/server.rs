//! The HTTP front end of one synthesis node: a codec/dispatch shell over
//! the transport-free [`NodeCore`].
//!
//! Everything stateful — session registry, frame cache, admission queue,
//! broadcast channels, pressure gauge, synthesis workers — lives in
//! [`crate::node`]. This module only parses HTTP requests ([`crate::http`]
//! does the wire work), dispatches them onto core methods, and serializes
//! the results back: statuses, `X-Frame-*`/`X-Node-Id` headers, frame
//! records for streams. The same connection loop is shared with the
//! cluster [`router`](crate::router) through the [`Frontend`] trait, so
//! both tiers speak identical HTTP with one implementation of keep-alive,
//! framing-error handling and panic containment.

use crate::cache::FrameKey;
use crate::http::{
    finish_chunked, read_request, write_frame_record, write_stream_head, FrameRecord, Request,
    Response,
};
use crate::node::{revalidate_session, FrameResult, NodeCore, ServiceError, ServiceOptions};
use crate::pressure::PressureState;
use crate::session::{format_session_id, parse_session_id};
use crate::spec::{FieldSpec, SessionSpec};
use softpipe::sync::lock_recover;
use spotnoise::json::Json;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::ops::Deref;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The HTTP-facing synthesis server: one [`NodeCore`] plus the codec and
/// dispatch that map requests onto it. `Service` derefs to its core, so
/// in-process callers and tests use the state API directly
/// (`service.create_session(..)`, `service.fetch_frame(..)`, ...).
pub struct Service {
    core: Arc<NodeCore>,
    /// The bound address, filled in by [`serve`] (used by `/shutdown` to
    /// wake the accept loop).
    addr: Mutex<Option<SocketAddr>>,
}

impl Deref for Service {
    type Target = NodeCore;

    fn deref(&self) -> &NodeCore {
        &self.core
    }
}

impl Service {
    /// Creates a service with no front end attached (the API used by unit
    /// tests and in-process embedding; [`serve`] adds the TCP front end).
    pub fn new(options: ServiceOptions) -> Arc<Service> {
        Arc::new(Service {
            core: NodeCore::new(options),
            addr: Mutex::new(None),
        })
    }

    /// The transport-free core this front end dispatches onto.
    pub fn core(&self) -> &Arc<NodeCore> {
        &self.core
    }

    /// Initiates shutdown: closes the queue and pokes the accept loop.
    pub fn request_shutdown(&self) {
        if !self.core.begin_shutdown() {
            return;
        }
        // Wake the accept loop with a no-op connection.
        if let Some(addr) = *lock_recover(&self.addr, |_| {}) {
            let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(200));
        }
    }

    pub(crate) fn error_response(err: &ServiceError) -> Response {
        match err {
            ServiceError::Busy(what) => {
                Response::error(503, "busy", &format!("{what} at capacity, retry later"))
                    .with_header("Retry-After", "1")
            }
            ServiceError::NotFound => Response::error(404, "not_found", "no such session"),
            ServiceError::BadRequest(detail) => Response::error(400, "bad_request", detail),
            ServiceError::ShuttingDown => {
                Response::error(503, "shutting_down", "server is shutting down")
            }
            ServiceError::Internal(detail) => Response::error(500, "internal", detail),
            ServiceError::Quarantined => Response::error(
                500,
                "quarantined",
                "session quarantined after a panicked render; close it and create a fresh one",
            ),
            ServiceError::DeadlineExceeded => Response::error(
                503,
                "deadline",
                "deadline cannot be met under the current queue wait",
            )
            .with_header("Retry-After", "1"),
        }
    }

    fn frame_response(result: &FrameResult) -> Response {
        let cache_state = if result.peer {
            "peer"
        } else if result.cached {
            "hit"
        } else {
            "miss"
        };
        let mut response = Response::shared(200, Arc::clone(&result.bytes))
            .with_header("X-Frame-Cache", cache_state)
            .with_header("X-Frame-Index", result.frame.to_string());
        if result.skipped {
            response = response.with_header("X-Frame-Skipped", "1");
        }
        if result.stale {
            response = response.with_header("X-Frame-Stale", "1");
        }
        if result.degraded {
            response = response.with_header("X-Frame-Degraded", "1");
        }
        response
    }

    fn session_info_response(&self, status: u16, id: u64) -> Response {
        let Some(session) = self.session_handle(id) else {
            return Self::error_response(&ServiceError::NotFound);
        };
        let s = lock_recover(&session, revalidate_session);
        let spec = s.spec();
        Response::json(
            status,
            Json::object([
                ("session", Json::str(format_session_id(id))),
                ("field", spec.field.to_json()),
                (
                    "config",
                    Json::object([
                        ("texture_size", Json::num(spec.config.texture_size as f64)),
                        ("spot_count", Json::num(spec.config.spot_count as f64)),
                        ("seed", Json::num(spec.config.seed as f64)),
                        ("use_tiling", Json::Bool(spec.config.use_tiling)),
                        (
                            "sampling",
                            Json::str(crate::spec::sampling_mode_name(spec.config.sampling)),
                        ),
                    ]),
                ),
                (
                    "machine",
                    Json::object([
                        ("processors", Json::num(spec.processors as f64)),
                        ("pipes", Json::num(spec.pipes as f64)),
                    ]),
                ),
                ("dt", Json::num(spec.dt)),
                ("shared", Json::Bool(s.is_shared())),
                ("pinned", Json::Bool(spec.pinned)),
                ("quarantined", Json::Bool(s.is_quarantined())),
                ("degraded", Json::Bool(s.is_degraded())),
                ("frame_bytes", Json::num(spec.frame_bytes() as f64)),
                ("head_frame", Json::num(s.head_frame() as f64)),
                ("frames_rendered", Json::num(s.frames_rendered() as f64)),
                ("rewinds", Json::num(s.rewinds() as f64)),
                ("steers", Json::num(s.steers() as f64)),
            ]),
        )
    }

    /// Routes one parsed request to a response.
    pub fn route(&self, request: &Request) -> Response {
        self.tag_node(self.route_untagged(request))
    }

    /// Stamps the node's cluster identity onto an outgoing response, so a
    /// client (or the router) can always tell which worker answered.
    fn tag_node(&self, response: Response) -> Response {
        let id = self.node_id();
        if id.is_empty() {
            response
        } else {
            response.with_header("X-Node-Id", id)
        }
    }

    fn route_untagged(&self, request: &Request) -> Response {
        self.counters.http_requests.fetch_add(1, Ordering::Relaxed);
        // Chaos hook for the routing layer itself; a panic fired here is
        // contained by the connection thread's unwind barrier.
        softpipe::fault::fire("route");
        let (path, query) = match request.path.split_once('?') {
            Some((path, query)) => (path, query),
            None => (request.path.as_str(), ""),
        };
        let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
        match (request.method.as_str(), segments.as_slice()) {
            ("GET", ["metrics"]) => {
                Response::text(200, "text/plain; version=0.0.4", self.metrics_text())
            }
            ("GET", ["trace"]) => match parse_trace_query(query) {
                Err(detail) => Response::error(400, "bad_request", &detail),
                Ok(last) => Response::json(200, self.trace_json(last)),
            },
            ("GET", ["healthz"]) => {
                // Tri-state health: `ok` and `elevated` answer 200 (the
                // server is serving, possibly without speculative work),
                // `saturated` answers 503 so load balancers steer away
                // while the ladder degrades instead of collapses.
                let state = self.pressure_tick();
                let shutting_down = self.is_shutting_down();
                let status = if shutting_down || state == PressureState::Saturated {
                    503
                } else {
                    200
                };
                Response::json(
                    status,
                    Json::object([
                        (
                            "status",
                            Json::str(if shutting_down {
                                "shutting_down"
                            } else {
                                state.name()
                            }),
                        ),
                        ("pressure", Json::str(state.name())),
                        ("shutting_down", Json::Bool(shutting_down)),
                    ]),
                )
            }
            ("GET", ["stats"]) => {
                self.sweep_idle();
                Response::json(200, self.stats_json())
            }
            // The peer cache probe: sibling nodes ask for a frame by its
            // content-hash key (hex components). A hit answers the raw
            // bytes, a miss 404 — never synthesis, so probes stay cheap
            // and cannot recurse.
            ("GET", ["cache", field, config, seed, frame]) => {
                let parsed = (
                    u64::from_str_radix(field, 16),
                    u64::from_str_radix(config, 16),
                    u64::from_str_radix(seed, 16),
                    u64::from_str_radix(frame, 16),
                );
                let (Ok(field), Ok(config), Ok(seed), Ok(frame)) = parsed else {
                    return Response::error(400, "bad_request", "cache key not hex");
                };
                let key = FrameKey {
                    field,
                    config,
                    seed,
                    frame,
                };
                match self.peer_peek(key) {
                    Some(bytes) => Response::shared(200, bytes)
                        .with_header("X-Frame-Cache", "hit")
                        .with_header("X-Frame-Index", frame.to_string()),
                    None => Response::error(404, "not_cached", "frame not in this node's cache"),
                }
            }
            ("POST", ["shutdown"]) => {
                self.request_shutdown();
                Response::json(200, Json::object([("status", Json::str("shutting down"))]))
            }
            ("POST", ["sessions"]) => match SessionSpec::from_body(&request.body) {
                Err(detail) => Response::error(400, "bad_request", &detail),
                Ok(spec) => match self.create_session(spec) {
                    Err(err) => Self::error_response(&err),
                    Ok(id) => self.session_info_response(201, id),
                },
            },
            ("GET", ["sessions", sid]) => match parse_session_id(sid) {
                None => Self::error_response(&ServiceError::NotFound),
                Some(id) => self.session_info_response(200, id),
            },
            ("DELETE", ["sessions", sid]) => {
                match parse_session_id(sid).map(|id| self.close_session(id)) {
                    Some(Ok(())) => Response::empty(204),
                    _ => Self::error_response(&ServiceError::NotFound),
                }
            }
            ("POST", ["sessions", sid, "steer"]) => {
                let Some(id) = parse_session_id(sid) else {
                    return Self::error_response(&ServiceError::NotFound);
                };
                let parsed = std::str::from_utf8(&request.body)
                    .map_err(|_| "body is not UTF-8".to_string())
                    .and_then(Json::parse)
                    .and_then(|value| {
                        // Accept either a bare field object or {"field": ...}.
                        let field = value.get("field").unwrap_or(&value).clone();
                        FieldSpec::from_json(&field)
                    });
                match parsed {
                    Err(detail) => Response::error(400, "bad_request", &detail),
                    Ok(field) => match self.steer(id, field) {
                        Ok(()) => self.session_info_response(200, id),
                        Err(err) => Self::error_response(&err),
                    },
                }
            }
            ("POST", ["sessions", sid, "advance"]) => {
                let Some(id) = parse_session_id(sid) else {
                    return Self::error_response(&ServiceError::NotFound);
                };
                match self.advance_deadline(id, request.deadline_ms) {
                    Ok(result) => Self::frame_response(&result),
                    Err(err) => Self::error_response(&err),
                }
            }
            ("GET", ["sessions", sid, "frame", index]) => {
                let Some(id) = parse_session_id(sid) else {
                    return Self::error_response(&ServiceError::NotFound);
                };
                let Ok(frame) = index.parse::<u64>() else {
                    return Response::error(400, "bad_request", "frame index not a number");
                };
                match self.fetch_frame_deadline(id, frame, request.deadline_ms) {
                    Ok(result) => Self::frame_response(&result),
                    Err(err) => Self::error_response(&err),
                }
            }
            (_, ["sessions", ..])
            | (_, ["stats"])
            | (_, ["healthz"])
            | (_, ["shutdown"])
            | (_, ["metrics"])
            | (_, ["trace"])
            | (_, ["cache", ..]) => {
                Response::error(405, "method_not_allowed", "wrong method for this path")
            }
            _ => Response::error(404, "not_found", "unknown path"),
        }
    }

    /// Serves one `GET /session/<id>/stream?from=N&count=k` request: pushes
    /// up to `count` frames as one chunked response, each frame one chunk
    /// ([`FrameRecord`] header + body straight from the shared buffer).
    ///
    /// The first frame is fetched *before* the head is written, so early
    /// failures (unknown session, bad index) still map to real HTTP
    /// statuses. Mid-stream, `Busy` sheds are retried (bounded by the reply
    /// timeout) and other errors end the stream cleanly at the terminal
    /// chunk — the frames already pushed stand, and the connection stays
    /// framed for the next request. On a shared session that falls behind
    /// the broadcast frontier, the skip semantics show through here: the
    /// served record carries the frontier's index and the stream continues
    /// from there, so a slow subscriber loses frames, never stalls the
    /// channel.
    fn handle_stream(
        &self,
        out: &mut impl std::io::Write,
        stream: StreamRequest,
        keep_alive: bool,
    ) -> std::io::Result<()> {
        self.counters.http_requests.fetch_add(1, Ordering::Relaxed);
        let count = stream
            .count
            .clamp(1, self.options().max_stream_frames.max(1));
        let mut result = match self.fetch_frame_retrying(stream.id, stream.from) {
            Ok(result) => result,
            Err(err) => {
                return self
                    .tag_node(Self::error_response(&err))
                    .write_to(out, keep_alive)
            }
        };
        self.counters
            .streams_started
            .fetch_add(1, Ordering::Relaxed);
        // A client that disconnects mid-stream surfaces as a write error
        // (broken pipe / connection reset) on any of the writes below. The
        // error is counted and propagated — never panicked on — and every
        // in-flight guard is already released by the time a fetch returns,
        // so an abandoned stream leaves the session reapable by idle
        // eviction like any other.
        let abort = |e: std::io::Error| {
            self.counters
                .streams_aborted
                .fetch_add(1, Ordering::Relaxed);
            e
        };
        let mut headers = vec![
            ("X-Stream-From".to_string(), stream.from.to_string()),
            ("X-Stream-Count".to_string(), count.to_string()),
        ];
        let node_id = self.node_id();
        if !node_id.is_empty() {
            headers.push(("X-Node-Id".to_string(), node_id));
        }
        write_stream_head(out, 200, &headers, keep_alive).map_err(abort)?;
        let mut sent = 0u64;
        loop {
            let record = FrameRecord {
                frame: result.frame,
                len: result.bytes.len() as u32,
                cached: result.cached,
                skipped: result.skipped,
                stale: result.stale,
                degraded: result.degraded,
                peer: result.peer,
            };
            write_frame_record(out, &record, &result.bytes).map_err(abort)?;
            self.counters
                .frames_streamed
                .fetch_add(1, Ordering::Relaxed);
            sent += 1;
            if sent >= count {
                break;
            }
            match self.fetch_frame_retrying(stream.id, result.frame.saturating_add(1)) {
                Ok(next) => result = next,
                // The status line is long gone: end the stream at the
                // frames already delivered.
                Err(_) => break,
            }
        }
        finish_chunked(out).map_err(abort)
    }
}

/// What a transport front end must provide for the shared connection loop:
/// request dispatch, streaming bypass, shutdown state and panic counting.
/// Implemented by the worker-facing [`Service`] and the cluster
/// [`Router`](crate::router::Router), so both speak HTTP through one
/// keep-alive/framing/containment implementation.
pub trait Frontend: Send + Sync + 'static {
    /// True once shutdown has been requested (new keep-alives are refused).
    fn is_shutting_down(&self) -> bool;

    /// Counts a panic contained by the connection loop's unwind barrier.
    fn note_panic(&self);

    /// Dispatches one buffered request to a response.
    fn route(&self, request: &Request) -> Response;

    /// Claims and serves a streaming request, writing the response
    /// incrementally. Returns `None` when the request is not a stream (it
    /// then goes through [`Frontend::route`] as usual); `Some(result)`
    /// when the stream was handled (successfully or not).
    fn try_stream(
        &self,
        out: &mut TcpStream,
        request: &Request,
        keep_alive: bool,
    ) -> Option<std::io::Result<()>>;
}

impl Frontend for Service {
    fn is_shutting_down(&self) -> bool {
        self.core.is_shutting_down()
    }

    fn note_panic(&self) {
        self.counters.panics_caught.fetch_add(1, Ordering::Relaxed);
    }

    fn route(&self, request: &Request) -> Response {
        Service::route(self, request)
    }

    fn try_stream(
        &self,
        out: &mut TcpStream,
        request: &Request,
        keep_alive: bool,
    ) -> Option<std::io::Result<()>> {
        let raw = match parse_stream_request(request)? {
            Ok(raw) => raw,
            Err(response) => {
                self.counters.http_requests.fetch_add(1, Ordering::Relaxed);
                return Some(response.write_to(out, keep_alive));
            }
        };
        let Some(id) = parse_session_id(&raw.sid) else {
            self.counters.http_requests.fetch_add(1, Ordering::Relaxed);
            return Some(
                self.tag_node(Self::error_response(&ServiceError::NotFound))
                    .write_to(out, keep_alive),
            );
        };
        Some(self.handle_stream(
            out,
            StreamRequest {
                id,
                from: raw.from,
                count: raw.count,
            },
            keep_alive,
        ))
    }
}

/// A parsed frame-stream request (session id resolved to this node).
pub(crate) struct StreamRequest {
    pub(crate) id: u64,
    pub(crate) from: u64,
    pub(crate) count: u64,
}

/// A parsed frame-stream request with the session id still in wire form —
/// the router resolves cluster ids (`n<node>.s-<n>`), the worker local ids
/// (`s-<n>`).
pub(crate) struct RawStreamRequest {
    pub(crate) sid: String,
    pub(crate) from: u64,
    pub(crate) count: u64,
}

/// Parses the `/trace` query string: `last=N` bounds how many of the newest
/// spans are returned (default 256, `0` meaning "everything in the ring").
pub(crate) fn parse_trace_query(query: &str) -> Result<usize, String> {
    let mut last = 256usize;
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        match key {
            "last" => match value.parse::<usize>() {
                Ok(0) => last = usize::MAX,
                Ok(n) => last = n,
                Err(_) => return Err(format!("trace query last={value:?} not a number")),
            },
            other => return Err(format!("unknown trace query key {other:?}")),
        }
    }
    Ok(last)
}

/// Recognizes `GET /sessions/<id>/stream[?from=N&count=k]`. Returns `None`
/// for every other request (which goes through [`Frontend::route`] as
/// usual), `Some(Err(response))` for a malformed stream request, and
/// `Some(Ok(...))` for a well-formed one. The session id is left in wire
/// form so the worker and the router resolve their own id shapes.
pub(crate) fn parse_stream_request(
    request: &Request,
) -> Option<Result<RawStreamRequest, Response>> {
    if request.method != "GET" {
        return None;
    }
    let (path, query) = match request.path.split_once('?') {
        Some((path, query)) => (path, query),
        None => (request.path.as_str(), ""),
    };
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    let ["sessions", sid, "stream"] = segments.as_slice() else {
        return None;
    };
    let sid = sid.to_string();
    let mut from = 0u64;
    let mut count = u64::MAX; // clamped to max_stream_frames by the handler
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        let parsed = match value.parse::<u64>() {
            Ok(n) => n,
            Err(_) => {
                return Some(Err(Response::error(
                    400,
                    "bad_request",
                    &format!("stream query {key}={value:?} not a number"),
                )))
            }
        };
        match key {
            "from" => from = parsed,
            "count" => {
                if parsed == 0 {
                    return Some(Err(Response::error(
                        400,
                        "bad_request",
                        "stream count must be at least 1",
                    )));
                }
                count = parsed;
            }
            other => {
                return Some(Err(Response::error(
                    400,
                    "bad_request",
                    &format!("unknown stream query key {other:?}"),
                )))
            }
        }
    }
    Some(Ok(RawStreamRequest { sid, from, count }))
}

/// How long shutdown waits for in-flight connection threads to finish
/// writing their responses before the process is allowed to exit. Without
/// this grace the `/shutdown` reply races process exit: the responder is a
/// detached thread, and joining only the workers and the accept loop lets
/// `main` return while the response bytes are still unsent (observed as
/// intermittent empty replies to `POST /shutdown`).
const CONNECTION_DRAIN_GRACE: Duration = Duration::from_secs(1);

/// Live connection-thread handles, pruned as threads finish.
type ConnectionSet = Arc<Mutex<Vec<JoinHandle<()>>>>;

/// Waits until every tracked connection thread has finished, up to the
/// drain grace (idle keep-alive connections block in `read` for up to their
/// 60 s timeout — those are abandoned at the deadline, which is safe: they
/// have no response in flight).
fn drain_connections(connections: &ConnectionSet) {
    let deadline = Instant::now() + CONNECTION_DRAIN_GRACE;
    loop {
        {
            let mut conns = lock_recover(connections, |_| {});
            conns.retain(|h| !h.is_finished());
            if conns.is_empty() {
                return;
            }
        }
        if Instant::now() >= deadline {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// A running front end (worker server or cluster router): the bound address
/// plus the handles needed to stop it.
pub struct FrontHandle<F: Frontend> {
    front: Arc<F>,
    addr: SocketAddr,
    threads: Vec<JoinHandle<()>>,
    connections: ConnectionSet,
    /// Tears the front down when the handle is consumed or dropped.
    request_shutdown: fn(&F),
}

/// A running worker server.
pub type ServiceHandle = FrontHandle<Service>;

impl ServiceHandle {
    /// The shared service state (for in-process callers and tests).
    pub fn service(&self) -> &Arc<Service> {
        &self.front
    }
}

impl<F: Frontend> FrontHandle<F> {
    /// The shared front-end state behind this handle.
    pub(crate) fn front(&self) -> &Arc<F> {
        &self.front
    }

    /// The address the front end is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the front end has shut down (e.g. via `POST
    /// /shutdown`), then drains in-flight connection threads so their
    /// responses — the `/shutdown` acknowledgement included — are written
    /// before return.
    pub fn join(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        drain_connections(&self.connections);
        // `self` is dropped on return and Drop drains again; clearing here
        // makes that a no-op so an idle keep-alive connection (which waits
        // out the full grace) cannot double the shutdown latency.
        lock_recover(&self.connections, |_| {}).clear();
    }

    /// Initiates shutdown and waits for workers and the accept loop.
    pub fn shutdown(self) {
        (self.request_shutdown)(&self.front);
        self.join();
    }
}

impl<F: Frontend> Drop for FrontHandle<F> {
    fn drop(&mut self) {
        (self.request_shutdown)(&self.front);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        drain_connections(&self.connections);
    }
}

/// One connection's keep-alive loop, generic over the front end. Transport
/// errors (malformed heads, unframed bodies) are answered here; everything
/// else goes through [`Frontend::try_stream`] / [`Frontend::route`] under
/// an unwind barrier, so a panicking handler costs one request (or one
/// connection, for streams) and never the process.
fn handle_connection<F: Frontend>(front: Arc<F>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    // An idle keep-alive connection eventually times out so connection
    // threads cannot accumulate forever.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(60)));
    let Ok(reader_stream) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(reader_stream);
    let mut writer = stream;
    loop {
        let request = match read_request(&mut reader) {
            Ok(Some(request)) => request,
            Ok(None) => break,
            // Only genuinely malformed input earns a 400. A read timeout or
            // a mid-request hang-up must close silently — writing a response
            // there would leave a stale 400 in the socket for the client to
            // misread as the answer to its *next* request.
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                let _ = Response::error(400, "bad_request", "malformed request")
                    .write_to(&mut writer, false);
                break;
            }
            // A body-bearing request without Content-Length: the unframed
            // body would desync the stream, so answer 411 and close (the
            // close discards whatever body bytes follow).
            Err(e) if e.kind() == std::io::ErrorKind::InvalidInput => {
                let _ = Response::error(
                    411,
                    "length_required",
                    "request bodies must be framed with Content-Length",
                )
                .write_to(&mut writer, false);
                break;
            }
            Err(_) => break,
        };
        let keep_alive = request.keep_alive && !front.is_shutting_down();
        // Streams bypass route(): their response is written incrementally
        // as frames arrive, not built up front. The unwind barrier: a panic
        // mid-stream cannot be turned into a clean 500 (the head may be
        // written), so the connection is dropped — but the thread, and the
        // server, survive.
        let streamed = std::panic::catch_unwind(AssertUnwindSafe(|| {
            front.try_stream(&mut writer, &request, keep_alive)
        }));
        match streamed {
            Ok(Some(Ok(()))) if keep_alive => continue,
            Ok(Some(_)) => break,
            Ok(None) => {}
            Err(_) => {
                front.note_panic();
                break;
            }
        }
        // The same barrier for buffered routes: a panicking handler answers
        // *this* request with a 500 and the connection (and every other
        // session) keeps going.
        let response = match std::panic::catch_unwind(AssertUnwindSafe(|| front.route(&request))) {
            Ok(response) => response,
            Err(_) => {
                front.note_panic();
                Response::error(500, "internal", "request handler panicked")
            }
        };
        if response.write_to(&mut writer, keep_alive).is_err() || !keep_alive {
            break;
        }
    }
}

/// Spawns the accept loop over a bound listener and assembles the running
/// handle. `threads` carries any front-specific threads started before the
/// accept loop (the worker server's synthesis pool); they are joined on
/// shutdown alongside it.
pub(crate) fn serve_front<F: Frontend>(
    listener: TcpListener,
    front: Arc<F>,
    mut threads: Vec<JoinHandle<()>>,
    request_shutdown: fn(&F),
) -> std::io::Result<FrontHandle<F>> {
    let local = listener.local_addr()?;
    let connections: ConnectionSet = Arc::new(Mutex::new(Vec::new()));
    {
        let front = Arc::clone(&front);
        let connections = Arc::clone(&connections);
        threads.push(
            std::thread::Builder::new()
                .name("accept-loop".to_string())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if front.is_shutting_down() {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        let front = Arc::clone(&front);
                        // Connection threads run detached — they exit when
                        // their client hangs up, errors, or idles out — but
                        // their handles are tracked (finished ones pruned)
                        // so shutdown can drain in-flight responses.
                        let handle = std::thread::Builder::new()
                            .name("connection".to_string())
                            .spawn(move || handle_connection(front, stream));
                        if let Ok(handle) = handle {
                            let mut conns = lock_recover(&connections, |_| {});
                            conns.retain(|h| !h.is_finished());
                            conns.push(handle);
                        }
                    }
                })
                .expect("spawn accept loop"),
        );
    }
    Ok(FrontHandle {
        front,
        addr: local,
        threads,
        connections,
        request_shutdown,
    })
}

/// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port), spawns the
/// accept loop and the synthesis worker pool, and returns the running
/// server's handle.
pub fn serve(addr: impl ToSocketAddrs, options: ServiceOptions) -> std::io::Result<ServiceHandle> {
    // Arm the chaos plan, if any: `SPOTNOISE_FAULT=panic:raster:0.02,...`
    // makes every server in this process run under injected faults.
    softpipe::fault::install_from_env();
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let workers = options.workers;
    let service = Service::new(options);
    *lock_recover(&service.addr, |_| {}) = Some(local);
    // An unconfigured node identifies as its bound address — unique within
    // any cluster built from distinct processes.
    service.set_default_node_id(&local.to_string());
    let threads = service.core().start_workers(workers);
    serve_front(listener, service, threads, Service::request_shutdown)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotnoise::config::SynthesisConfig;

    fn tiny_options() -> ServiceOptions {
        ServiceOptions {
            workers: 1,
            cache_bytes: 16 * 32 * 32 * 4,
            ..ServiceOptions::default()
        }
    }

    fn tiny_spec() -> SessionSpec {
        SessionSpec {
            config: SynthesisConfig {
                texture_size: 32,
                spot_count: 40,
                spot_texture_size: 8,
                ..SynthesisConfig::small_test()
            },
            ..SessionSpec::default()
        }
    }

    /// Spin up a full in-process server for API-level tests.
    fn start() -> ServiceHandle {
        serve("127.0.0.1:0", tiny_options()).expect("bind loopback")
    }

    #[test]
    fn fetch_miss_then_hit_through_the_queue() {
        let handle = start();
        let service = handle.service();
        let id = service.create_session(tiny_spec()).unwrap();
        let miss = service.fetch_frame(id, 0).unwrap();
        assert!(!miss.cached);
        assert_eq!(miss.bytes.len(), 32 * 32 * 4);
        let hit = service.fetch_frame(id, 0).unwrap();
        assert!(hit.cached);
        assert_eq!(miss.bytes, hit.bytes);
        let stats = service.stats_json();
        let cache = stats.get("cache").unwrap();
        assert_eq!(cache.get("hits").and_then(Json::as_f64), Some(1.0));
        assert_eq!(cache.get("misses").and_then(Json::as_f64), Some(1.0));
        handle.shutdown();
    }

    #[test]
    fn lookahead_frames_are_cached_and_counted() {
        let handle = start();
        let service = handle.service();
        let id = service.create_session(tiny_spec()).unwrap();
        // Requesting frame 2 renders frames 0 and 1 on the way: three
        // insertions, two of them look-ahead.
        let miss = service.fetch_frame(id, 2).unwrap();
        assert!(!miss.cached);
        let stats = service.stats_json();
        let cache = stats.get("cache").unwrap();
        assert_eq!(cache.get("insertions").and_then(Json::as_f64), Some(3.0));
        assert_eq!(
            cache.get("inserted_lookahead").and_then(Json::as_f64),
            Some(2.0)
        );
        // The look-ahead frames serve later requests straight from cache —
        // without adding further look-ahead counts.
        assert!(service.fetch_frame(id, 1).unwrap().cached);
        let stats = service.stats_json();
        let cache = stats.get("cache").unwrap();
        assert_eq!(
            cache.get("inserted_lookahead").and_then(Json::as_f64),
            Some(2.0)
        );
        handle.shutdown();
    }

    #[test]
    fn advance_walks_the_head_forward() {
        let handle = start();
        let service = handle.service();
        let id = service.create_session(tiny_spec()).unwrap();
        let a = service.advance(id).unwrap();
        let b = service.advance(id).unwrap();
        assert_eq!(a.frame, 0);
        assert_eq!(b.frame, 1);
        assert!(a.bytes != b.bytes);
        handle.shutdown();
    }

    #[test]
    fn advance_keeps_progressing_after_a_cached_rewind() {
        let handle = start();
        let service = handle.service();
        let id = service.create_session(tiny_spec()).unwrap();
        // Walk ahead, then rewind to a cached frame.
        service.fetch_frame(id, 2).unwrap();
        let rewound = service.fetch_frame(id, 0).unwrap();
        assert!(rewound.cached);
        // Advance must continue past the rewound frame — serving cached
        // frames 1 and 2, then rendering fresh frame 3 — never freezing on
        // one index.
        let frames: Vec<u64> = (0..3).map(|_| service.advance(id).unwrap().frame).collect();
        assert_eq!(frames, vec![1, 2, 3]);
        handle.shutdown();
    }

    #[test]
    fn zero_deadline_requests_are_shed_unless_cached() {
        let handle = start();
        let service = handle.service();
        let id = service.create_session(tiny_spec()).unwrap();
        // An uncached frame with no budget left sheds at admission...
        assert!(matches!(
            service.fetch_frame_deadline(id, 0, Some(0)),
            Err(ServiceError::DeadlineExceeded)
        ));
        // ...but once the frame is cached, even a spent deadline serves it
        // (the cache probe costs nothing).
        service.fetch_frame(id, 0).unwrap();
        assert!(service.fetch_frame_deadline(id, 0, Some(0)).unwrap().cached);
        let stats = service.stats_json();
        let pressure = stats.get("pressure").unwrap();
        assert_eq!(
            pressure.get("deadline_shed").and_then(Json::as_f64),
            Some(1.0)
        );
        handle.shutdown();
    }

    #[test]
    fn quarantined_sessions_refuse_requests_and_are_reaped() {
        let handle = start();
        let service = handle.service();
        let id = service.create_session(tiny_spec()).unwrap();
        let session = service.session_handle(id).unwrap();
        assert!(lock_recover(&session, revalidate_session).quarantine());
        assert!(
            matches!(service.fetch_frame(id, 0), Err(ServiceError::Quarantined)),
            "a quarantined session answers every frame request with the typed error"
        );
        assert!(matches!(
            service.steer(id, FieldSpec::Shear { rate: 1.0 }),
            Err(ServiceError::Quarantined)
        ));
        // The /stats sweep reaps it immediately — no idle timeout needed.
        service.sweep_idle();
        assert!(matches!(
            service.fetch_frame(id, 0),
            Err(ServiceError::NotFound)
        ));
        handle.shutdown();
    }

    #[test]
    fn unknown_sessions_and_bad_requests_are_typed_errors() {
        let handle = start();
        let service = handle.service();
        assert!(matches!(
            service.fetch_frame(999, 0),
            Err(ServiceError::NotFound)
        ));
        assert_eq!(service.close_session(999), Err(ServiceError::NotFound));
        let id = service.create_session(tiny_spec()).unwrap();
        match service.fetch_frame(id, 100_000) {
            Err(ServiceError::BadRequest(_)) => {}
            other => panic!("expected BadRequest, got {other:?}"),
        }
        handle.shutdown();
    }

    #[test]
    fn routing_covers_crud_and_errors() {
        let handle = start();
        let service = handle.service();
        let req = |method: &str, path: &str, body: &[u8]| Request {
            method: method.to_string(),
            path: path.to_string(),
            body: body.to_vec(),
            keep_alive: true,
            deadline_ms: None,
        };
        let created = service.route(&req("POST", "/sessions", b""));
        assert_eq!(created.status, 201);
        let doc = Json::parse(std::str::from_utf8(&created.body).unwrap()).unwrap();
        let sid = doc
            .get("session")
            .and_then(Json::as_str)
            .unwrap()
            .to_string();
        assert_eq!(
            doc.get("frame_bytes").and_then(Json::as_f64),
            Some((128 * 128 * 4) as f64)
        );

        let frame = service.route(&req("GET", &format!("/sessions/{sid}/frame/0"), b""));
        assert_eq!(frame.status, 200);
        assert_eq!(frame.body.len(), 128 * 128 * 4);
        assert!(frame
            .headers
            .iter()
            .any(|(k, v)| k == "X-Frame-Cache" && v == "miss"));
        // Every served response carries the node's identity (the bound
        // address when no --node-id was configured).
        assert!(frame.headers.iter().any(|(k, _)| k == "X-Node-Id"));

        assert_eq!(service.route(&req("GET", "/healthz", b"")).status, 200);
        assert_eq!(service.route(&req("GET", "/stats", b"")).status, 200);
        assert_eq!(service.route(&req("GET", "/nope", b"")).status, 404);
        assert_eq!(service.route(&req("PUT", "/stats", b"")).status, 405);
        assert_eq!(
            service
                .route(&req("GET", "/sessions/s-99/frame/0", b""))
                .status,
            404
        );
        assert_eq!(
            service
                .route(&req("GET", &format!("/sessions/{sid}/frame/x"), b""))
                .status,
            400
        );
        let steered = service.route(&req(
            "POST",
            &format!("/sessions/{sid}/steer"),
            br#"{"kind": "shear", "rate": 2.0}"#,
        ));
        assert_eq!(steered.status, 200);
        assert_eq!(
            service
                .route(&req("DELETE", &format!("/sessions/{sid}"), b""))
                .status,
            204
        );
        assert_eq!(
            service
                .route(&req("DELETE", &format!("/sessions/{sid}"), b""))
                .status,
            404
        );
        handle.shutdown();
    }

    #[test]
    fn cache_probe_endpoint_peeks_without_counting() {
        let handle = start();
        let service = handle.service();
        let req = |path: &str| Request {
            method: "GET".to_string(),
            path: path.to_string(),
            body: Vec::new(),
            keep_alive: true,
            deadline_ms: None,
        };
        let id = service.create_session(tiny_spec()).unwrap();
        let rendered = service.fetch_frame(id, 0).unwrap();
        let session = service.session_handle(id).unwrap();
        let key = lock_recover(&session, revalidate_session).key_for(0);
        let path = format!(
            "/cache/{:x}/{:x}/{:x}/{:x}",
            key.field, key.config, key.seed, key.frame
        );
        let probe = service.route(&req(&path));
        assert_eq!(probe.status, 200);
        assert_eq!(&*probe.body, &*rendered.bytes);
        // A probe for a frame nobody rendered answers 404 — and neither
        // probe moved the hit/miss counters (peek is uncounted).
        let miss = service.route(&req(&format!(
            "/cache/{:x}/{:x}/{:x}/{:x}",
            key.field,
            key.config,
            key.seed,
            key.frame + 7
        )));
        assert_eq!(miss.status, 404);
        let stats = service.stats_json();
        let cache = stats.get("cache").unwrap();
        assert_eq!(cache.get("hits").and_then(Json::as_f64), Some(0.0));
        assert_eq!(cache.get("misses").and_then(Json::as_f64), Some(1.0));
        let cluster = stats.get("cluster").unwrap();
        assert_eq!(cluster.get("peer_serves").and_then(Json::as_f64), Some(1.0));
        assert_eq!(service.route(&req("/cache/zz/0/0/0")).status, 400);
        handle.shutdown();
    }
}
