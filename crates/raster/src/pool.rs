//! Persistent graphics-pipe workers, checked out per frame.
//!
//! The paper's machine model is a set of *long-lived* graphics pipes that
//! frames are divided across — yet spawning a [`GraphicsPipe`] per frame
//! (and joining it at `finish`) pays one thread spawn + join per process
//! group per frame, which dominates the fixed cost of small interactive
//! frames once buffers are pooled. A [`PipePool`] keeps the worker threads
//! alive across frames instead: the scheduler engine checks a pipe out per
//! `(width, height, group)` at session open and the checkout guard returns
//! it at session close, so steady-state synthesis spawns zero threads.
//!
//! Reuse is invisible: every checkout queues a session reset
//! ([`PipeCore::reset_session`](crate::pipe::PipeCore::reset_session)) so a
//! recycled worker has the same state machine, counters, texture memory and
//! redundant-filter history as a fresh spawn — outputs and accounting are
//! bit-identical, which the pool tests assert. What reuse *keeps* is the
//! expensive part: the live thread, its warm target buffer and the buffer's
//! dirty-row knowledge (so `Clear` on a retained target stays a dirty-rect
//! sweep).
//!
//! One pool may be shared by many pipelines — the spotnoise service shares a
//! single pool across all sessions, sized by the session cap — because
//! shelves are keyed by target size: a 128² session and a 512² session
//! never exchange pipes.

use crate::arena::FrameArena;
use crate::bus::BusTracker;
use crate::pipe::{GraphicsPipe, PipeOutput, RenderCommand};
use crate::sync::lock_recover;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Callback invoked after every [`PipePool::checkout`] with `(reused, wait)`:
/// whether the checkout was served from a shelf, and how long it took (lock
/// wait + reset-or-spawn). Lets layers above the raster crate observe pool
/// behaviour without this crate depending on their telemetry types.
pub type CheckoutObserver = Arc<dyn Fn(bool, Duration) + Send + Sync>;

/// Default cap on idle pipes retained by a pool (total, over all shelves).
/// One pipe per process group of a typical machine shape; pools serving many
/// sessions size themselves explicitly via [`PipePool::with_capacity`].
const DEFAULT_MAX_IDLE: usize = 32;

/// Shelf key: pipes are interchangeable only within the same target size and
/// process group.
type ShelfKey = (usize, usize, usize);

/// Counter snapshot of a pool (the spawn-counter tests and the bench read
/// this to prove steady-state frames spawn zero threads).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Checkouts that had to spawn a fresh worker thread.
    pub spawned: u64,
    /// Checkouts served by a persistent worker from a shelf.
    pub reused: u64,
    /// Returned pipes dropped (joined) because the pool was at capacity.
    pub retired: u64,
    /// Returned pipes dropped because a command panicked on their worker —
    /// a poisoned pipe never goes back on a shelf; the next checkout for
    /// its key spawns a fresh worker in its place.
    pub discarded: u64,
    /// Idle pipes currently shelved.
    pub idle: usize,
}

/// A pool of persistent [`GraphicsPipe`] workers keyed by
/// `(width, height, group)`.
pub struct PipePool {
    shelves: Mutex<HashMap<ShelfKey, Vec<GraphicsPipe>>>,
    /// Arena the pooled workers use for partial readbacks and batch vectors
    /// (baked into each worker at spawn, so it must be pool-wide).
    arena: Option<Arc<FrameArena>>,
    /// Maximum idle pipes retained over all shelves.
    max_idle: usize,
    spawned: AtomicU64,
    reused: AtomicU64,
    retired: AtomicU64,
    discarded: AtomicU64,
    /// Optional checkout observer (see [`CheckoutObserver`]).
    observer: Mutex<Option<CheckoutObserver>>,
}

impl std::fmt::Debug for PipePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipePool")
            .field("stats", &self.stats())
            .field("max_idle", &self.max_idle)
            .finish()
    }
}

impl Default for PipePool {
    fn default() -> Self {
        PipePool::new(None)
    }
}

impl PipePool {
    /// Creates a pool whose workers recycle buffers through `arena` (pass
    /// the same arena the engine composes with, so partial readbacks stay
    /// zero-alloc), retaining up to a default number of idle pipes.
    pub fn new(arena: Option<Arc<FrameArena>>) -> Self {
        PipePool::with_capacity(arena, DEFAULT_MAX_IDLE)
    }

    /// Like [`PipePool::new`] with an explicit cap on idle pipes (total over
    /// all shelves). The service sizes this by its session cap so every
    /// admitted session can keep its pipes warm.
    pub fn with_capacity(arena: Option<Arc<FrameArena>>, max_idle: usize) -> Self {
        PipePool {
            shelves: Mutex::new(HashMap::new()),
            arena,
            max_idle,
            spawned: AtomicU64::new(0),
            reused: AtomicU64::new(0),
            retired: AtomicU64::new(0),
            discarded: AtomicU64::new(0),
            observer: Mutex::new(None),
        }
    }

    /// Takes the shelf map, recovering from poison by dropping every idle
    /// pipe: a panic while the map was held can leave a half-performed
    /// pop/push, and starting from empty shelves trades warm workers for
    /// certainty (the next checkouts simply respawn).
    fn shelves(&self) -> std::sync::MutexGuard<'_, HashMap<ShelfKey, Vec<GraphicsPipe>>> {
        lock_recover(&self.shelves, HashMap::clear)
    }

    /// Installs (or clears) the checkout observer. At most one is active; the
    /// service installs one that feeds its checkout-latency histogram and
    /// trace sink.
    pub fn set_observer(&self, observer: Option<CheckoutObserver>) {
        // The observer slot is a single `Option` — always whole, so poison
        // recovery needs no revalidation here.
        *lock_recover(&self.observer, |_| {}) = observer;
    }

    /// The arena pooled workers were configured with.
    pub fn arena(&self) -> Option<&Arc<FrameArena>> {
        self.arena.as_ref()
    }

    /// Checks a pipe out for one frame. A shelved worker for the same
    /// `(width, height, group)` is reset and reused; otherwise a fresh
    /// worker is spawned. `bus` receives this checkout's traffic (recording
    /// happens on the submitting side, so per-frame trackers work with
    /// persistent workers). The returned guard submits like a
    /// [`GraphicsPipe`] and shelves the worker when dropped.
    pub fn checkout(
        self: &Arc<Self>,
        group: usize,
        width: usize,
        height: usize,
        bus: Option<BusTracker>,
    ) -> PooledPipe {
        let start = Instant::now();
        let key = (width, height, group);
        let shelved = self.shelves().get_mut(&key).and_then(Vec::pop);
        let was_reused = shelved.is_some();
        let mut pipe = match shelved {
            Some(pipe) => {
                self.reused.fetch_add(1, Ordering::Relaxed);
                // Queued ahead of the frame's commands: the reused worker
                // re-enters the fresh-spawn state before any of them run.
                pipe.reset_session();
                pipe
            }
            None => {
                self.spawned.fetch_add(1, Ordering::Relaxed);
                GraphicsPipe::spawn_with_arena(width, height, None, self.arena.clone())
            }
        };
        pipe.set_bus(bus);
        let observer = lock_recover(&self.observer, |_| {}).clone();
        if let Some(observer) = observer {
            observer(was_reused, start.elapsed());
        }
        PooledPipe {
            pipe: Some(pipe),
            pool: Arc::clone(self),
            key,
        }
    }

    /// Returns a pipe to its shelf (or retires it when the pool is full). A
    /// poisoned pipe — one whose worker panicked mid-frame — is discarded
    /// instead: its target and session state are suspect, so the next
    /// checkout for this key respawns a fresh worker.
    fn check_in(&self, key: ShelfKey, mut pipe: GraphicsPipe) {
        if pipe.is_poisoned() {
            self.discarded.fetch_add(1, Ordering::Relaxed);
            drop(pipe);
            return;
        }
        pipe.set_bus(None);
        let mut shelves = self.shelves();
        let idle: usize = shelves.values().map(Vec::len).sum();
        if idle < self.max_idle {
            shelves.entry(key).or_default().push(pipe);
        } else {
            self.retired.fetch_add(1, Ordering::Relaxed);
            // Dropping joins the worker thread — outside the lock.
            drop(shelves);
            drop(pipe);
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            spawned: self.spawned.load(Ordering::Relaxed),
            reused: self.reused.load(Ordering::Relaxed),
            retired: self.retired.load(Ordering::Relaxed),
            discarded: self.discarded.load(Ordering::Relaxed),
            idle: self.shelves().values().map(Vec::len).sum(),
        }
    }
}

/// A checked-out pipe: submits like a [`GraphicsPipe`] and returns the
/// worker to its pool shelf on drop (after `finish`, the pipe is idle and
/// immediately reusable — no join).
pub struct PooledPipe {
    pipe: Option<GraphicsPipe>,
    pool: Arc<PipePool>,
    key: ShelfKey,
}

impl PooledPipe {
    fn pipe(&self) -> &GraphicsPipe {
        self.pipe.as_ref().expect("pipe present until drop")
    }

    /// Submits a command (see [`GraphicsPipe::submit`]).
    pub fn submit(&self, cmd: RenderCommand) {
        self.pipe().submit(cmd);
    }

    /// Submits many commands as one FIFO entry (see
    /// [`GraphicsPipe::submit_batch`]).
    pub fn submit_batch(&self, cmds: Vec<RenderCommand>) {
        self.pipe().submit_batch(cmds);
    }

    /// Flushes the queue and returns the frame output (see
    /// [`GraphicsPipe::finish`]). The worker stays alive for the next
    /// checkout.
    pub fn finish(&self) -> PipeOutput {
        self.pipe().finish()
    }
}

impl Drop for PooledPipe {
    fn drop(&mut self) {
        if let Some(pipe) = self.pipe.take() {
            self.pool.check_in(self.key, pipe);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raster::axis_aligned_spot_quad;
    use crate::texture::disc_spot_texture;
    use flowfield::Vec2;

    fn frame(pipe: &PooledPipe, offset: f64) -> PipeOutput {
        let spot = Arc::new(disc_spot_texture(16, 0.4));
        pipe.submit_batch(vec![
            RenderCommand::Clear,
            RenderCommand::UploadTexture(1, spot),
            RenderCommand::BindTexture(1),
            RenderCommand::Quad {
                vertices: axis_aligned_spot_quad(Vec2::new(16.0 + offset, 16.0), 5.0),
                intensity: 1.0,
            },
        ]);
        pipe.finish()
    }

    #[test]
    fn checkout_reuses_workers_and_matches_fresh_spawns() {
        let pool = Arc::new(PipePool::new(None));
        let first = {
            let pipe = pool.checkout(0, 48, 48, None);
            frame(&pipe, 0.0)
        };
        assert_eq!(pool.stats().spawned, 1);
        assert_eq!(pool.stats().idle, 1);
        // Same key: the shelved worker serves the next frame, and its output
        // (texels, raster and state accounting) matches the fresh spawn's
        // bit for bit.
        let second = {
            let pipe = pool.checkout(0, 48, 48, None);
            frame(&pipe, 0.0)
        };
        let stats = pool.stats();
        assert_eq!((stats.spawned, stats.reused), (1, 1));
        assert_eq!(first.texture.absolute_difference(&second.texture), 0.0);
        assert_eq!(first.raster, second.raster);
        assert_eq!(first.state, second.state);
    }

    #[test]
    fn shelves_are_keyed_by_size_and_group() {
        let pool = Arc::new(PipePool::new(None));
        drop(pool.checkout(0, 32, 32, None));
        // Different size: fresh spawn.
        drop(pool.checkout(0, 64, 64, None));
        // Different group: fresh spawn even at the same size.
        drop(pool.checkout(1, 32, 32, None));
        // Matching key: reuse.
        drop(pool.checkout(0, 32, 32, None));
        let stats = pool.stats();
        assert_eq!((stats.spawned, stats.reused, stats.idle), (3, 1, 3));
    }

    #[test]
    fn capacity_retires_overflow_pipes() {
        let pool = Arc::new(PipePool::with_capacity(None, 1));
        let a = pool.checkout(0, 16, 16, None);
        let b = pool.checkout(1, 16, 16, None);
        drop(a);
        drop(b);
        let stats = pool.stats();
        assert_eq!(stats.idle, 1);
        assert_eq!(stats.retired, 1);
    }

    #[test]
    fn mid_frame_drop_leaves_the_worker_reusable() {
        // A checkout abandoned between submit and finish (an early exit)
        // returns to the shelf with commands still queued; the next
        // checkout's session reset is FIFO-ordered behind them, so the
        // reused worker still behaves like a fresh spawn.
        let pool = Arc::new(PipePool::new(None));
        {
            let pipe = pool.checkout(0, 48, 48, None);
            pipe.submit(RenderCommand::Quad {
                vertices: axis_aligned_spot_quad(Vec2::new(10.0, 10.0), 40.0),
                intensity: 123.0,
            });
            // No finish: dropped mid-frame.
        }
        let reused = frame(&pool.checkout(0, 48, 48, None), 0.0);
        let fresh = frame(&pool.checkout(1, 48, 48, None), 0.0);
        assert_eq!(reused.texture.absolute_difference(&fresh.texture), 0.0);
        assert_eq!(reused.raster, fresh.raster);
        assert_eq!(reused.state, fresh.state);
    }

    #[test]
    fn reused_worker_keeps_dirty_rect_clears() {
        // Without an arena the pooled worker's target survives checkouts
        // (finish clones), so the second frame's Clear is a dirty-rect
        // sweep instead of a full one.
        let pool = Arc::new(PipePool::new(None));
        let first = frame(&pool.checkout(0, 64, 64, None), 0.0);
        assert_eq!(first.cleared_texels, 0, "fresh target has nothing to clear");
        let second = frame(&pool.checkout(0, 64, 64, None), 8.0);
        assert!(
            second.cleared_texels > 0 && second.cleared_texels < 64 * 64,
            "expected a partial clear, got {}",
            second.cleared_texels
        );
        // And the swept target is genuinely clean outside the new spot.
        assert_eq!(second.texture.texel(16, 16), 0.0);
        assert!(second.texture.texel(24, 16) > 0.0);
    }

    #[test]
    fn checkout_observer_sees_reuse_flag_and_wait() {
        let pool = Arc::new(PipePool::new(None));
        let seen: Arc<Mutex<Vec<bool>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        pool.set_observer(Some(Arc::new(move |reused, wait| {
            assert!(wait >= Duration::ZERO);
            sink.lock().unwrap().push(reused);
        })));
        drop(pool.checkout(0, 32, 32, None));
        drop(pool.checkout(0, 32, 32, None));
        assert_eq!(*seen.lock().unwrap(), vec![false, true]);
        // Clearing the observer stops the callbacks.
        pool.set_observer(None);
        drop(pool.checkout(0, 32, 32, None));
        assert_eq!(seen.lock().unwrap().len(), 2);
    }

    #[test]
    fn pooled_pipes_record_bus_traffic_per_checkout() {
        let pool = Arc::new(PipePool::new(None));
        let bus_a = BusTracker::new();
        {
            let pipe = pool.checkout(0, 32, 32, Some(bus_a.clone()));
            let _ = frame(&pipe, 0.0);
        }
        let bus_b = BusTracker::new();
        {
            let pipe = pool.checkout(0, 32, 32, Some(bus_b.clone()));
            let _ = frame(&pipe, 0.0);
        }
        // Each checkout's traffic lands on its own tracker.
        assert_eq!(bus_a.snapshot().vertex_bytes, 4 * 16);
        assert_eq!(bus_b.snapshot().vertex_bytes, 4 * 16);
    }
}
