//! Analytic vector fields used as test inputs and synthetic workloads.
//!
//! The paper's data sets come from running simulations; for unit tests,
//! examples and calibration of the spot-noise pipeline it is convenient to
//! also have closed-form fields whose derivatives and invariants (e.g. zero
//! divergence) are known exactly.

use crate::grid::VectorField;
use crate::vec2::{Rect, Vec2};
use serde::{Deserialize, Serialize};

/// Constant (uniform) flow.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Uniform {
    /// The constant velocity.
    pub velocity: Vec2,
    /// Domain of definition.
    pub domain: Rect,
}

impl VectorField for Uniform {
    fn velocity(&self, _p: Vec2) -> Vec2 {
        self.velocity
    }
    fn domain(&self) -> Rect {
        self.domain
    }
}

/// Simple shear flow `v = (k * y, 0)`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Shear {
    /// Shear rate.
    pub rate: f64,
    /// Domain of definition.
    pub domain: Rect,
}

impl VectorField for Shear {
    fn velocity(&self, p: Vec2) -> Vec2 {
        Vec2::new(self.rate * (p.y - self.domain.center().y), 0.0)
    }
    fn domain(&self) -> Rect {
        self.domain
    }
}

/// Solid-body rotation around a centre: `v = omega * (-(y-cy), x-cx)`.
///
/// Divergence-free; particles move on circles, which makes it a good test
/// case for integrator accuracy (the radius must be conserved).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Vortex {
    /// Angular velocity (radians per unit time).
    pub omega: f64,
    /// Centre of rotation.
    pub center: Vec2,
    /// Domain of definition.
    pub domain: Rect,
}

impl VectorField for Vortex {
    fn velocity(&self, p: Vec2) -> Vec2 {
        let d = p - self.center;
        Vec2::new(-d.y, d.x) * self.omega
    }
    fn domain(&self) -> Rect {
        self.domain
    }
}

/// Saddle (stagnation-point) flow `v = k * (x-cx, -(y-cy))`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Saddle {
    /// Strain rate.
    pub rate: f64,
    /// Stagnation point.
    pub center: Vec2,
    /// Domain of definition.
    pub domain: Rect,
}

impl VectorField for Saddle {
    fn velocity(&self, p: Vec2) -> Vec2 {
        let d = p - self.center;
        Vec2::new(d.x, -d.y) * self.rate
    }
    fn domain(&self) -> Rect {
        self.domain
    }
}

/// The classic double-gyre benchmark field on `[0,2] x [0,1]` (scaled to an
/// arbitrary domain), optionally time dependent.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DoubleGyre {
    /// Velocity amplitude.
    pub amplitude: f64,
    /// Oscillation amplitude of the gyre separation.
    pub epsilon: f64,
    /// Angular frequency of the oscillation.
    pub omega: f64,
    /// Evaluation time.
    pub time: f64,
    /// Domain of definition.
    pub domain: Rect,
}

impl DoubleGyre {
    /// The standard steady configuration used in tests.
    pub fn steady(domain: Rect) -> Self {
        DoubleGyre {
            amplitude: 0.1,
            epsilon: 0.0,
            omega: 0.0,
            time: 0.0,
            domain,
        }
    }
}

impl VectorField for DoubleGyre {
    fn velocity(&self, p: Vec2) -> Vec2 {
        use std::f64::consts::PI;
        // Map into the canonical [0,2] x [0,1] domain.
        let uv = self.domain.to_unit(p);
        let x = uv.x * 2.0;
        let y = uv.y;
        let a = self.epsilon * (self.omega * self.time).sin();
        let b = 1.0 - 2.0 * a;
        let f = a * x * x + b * x;
        let dfdx = 2.0 * a * x + b;
        let u = -PI * self.amplitude * (PI * f).sin() * (PI * y).cos();
        let v = PI * self.amplitude * (PI * f).cos() * (PI * y).sin() * dfdx;
        // Scale back into world units.
        let s = self.domain.size();
        Vec2::new(u * s.x / 2.0, v * s.y)
    }
    fn domain(&self) -> Rect {
        self.domain
    }
}

/// A Lamb–Oseen (viscous) vortex with finite core radius, useful for
/// exercising the "bent spot" path in regions of strong curvature.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LambOseen {
    /// Circulation of the vortex.
    pub circulation: f64,
    /// Core radius.
    pub core_radius: f64,
    /// Vortex centre.
    pub center: Vec2,
    /// Domain of definition.
    pub domain: Rect,
}

impl VectorField for LambOseen {
    fn velocity(&self, p: Vec2) -> Vec2 {
        let d = p - self.center;
        let r2 = d.norm_sq().max(1e-12);
        let r = r2.sqrt();
        let v_theta = self.circulation / (2.0 * std::f64::consts::PI * r)
            * (1.0 - (-r2 / (self.core_radius * self.core_radius)).exp());
        d.perp() / r * v_theta
    }
    fn domain(&self) -> Rect {
        self.domain
    }
}

/// A synthetic von Kármán-like vortex street: a uniform stream with a row of
/// alternating-sign Lamb–Oseen vortices superimposed, mimicking the wake
/// behind a block without running the DNS solver.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VortexStreet {
    /// Free-stream velocity (along +x).
    pub free_stream: f64,
    /// Circulation magnitude of each shed vortex.
    pub circulation: f64,
    /// Core radius of each vortex.
    pub core_radius: f64,
    /// Horizontal spacing between successive vortices.
    pub spacing: f64,
    /// Vertical offset of the two staggered rows.
    pub offset: f64,
    /// x coordinate at which shedding starts (the block's trailing edge).
    pub start_x: f64,
    /// Number of vortices in each row.
    pub count: usize,
    /// Domain of definition.
    pub domain: Rect,
}

impl VortexStreet {
    /// A street with sensible defaults for a given domain; the block trailing
    /// edge is placed at 25 % of the domain width.
    pub fn new(domain: Rect) -> Self {
        let w = domain.width();
        VortexStreet {
            free_stream: 1.0,
            circulation: 0.8,
            core_radius: 0.04 * w,
            spacing: 0.12 * w,
            offset: 0.05 * domain.height(),
            start_x: domain.min.x + 0.25 * w,
            count: 8,
            domain,
        }
    }

    fn vortices(&self) -> impl Iterator<Item = (Vec2, f64)> + '_ {
        let cy = self.domain.center().y;
        (0..self.count).map(move |k| {
            let sign = if k % 2 == 0 { 1.0 } else { -1.0 };
            let x = self.start_x + (k as f64 + 0.5) * self.spacing;
            let y = cy + sign * self.offset;
            (Vec2::new(x, y), sign * self.circulation)
        })
    }
}

impl VectorField for VortexStreet {
    fn velocity(&self, p: Vec2) -> Vec2 {
        let mut v = Vec2::new(self.free_stream, 0.0);
        for (c, gamma) in self.vortices() {
            let d = p - c;
            let r2 = d.norm_sq().max(1e-12);
            let r = r2.sqrt();
            let v_theta = gamma / (2.0 * std::f64::consts::PI * r)
                * (1.0 - (-r2 / (self.core_radius * self.core_radius)).exp());
            v += d.perp() / r * v_theta;
        }
        v
    }
    fn domain(&self) -> Rect {
        self.domain
    }
}

/// Taylor–Green cellular vortex array, a standard divergence-free test field.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TaylorGreen {
    /// Velocity amplitude.
    pub amplitude: f64,
    /// Number of cells along each axis of the domain.
    pub cells: f64,
    /// Domain of definition.
    pub domain: Rect,
}

impl VectorField for TaylorGreen {
    fn velocity(&self, p: Vec2) -> Vec2 {
        use std::f64::consts::PI;
        let uv = self.domain.to_unit(p);
        let kx = self.cells * PI;
        let ky = self.cells * PI;
        let u = self.amplitude * (kx * uv.x).sin() * (ky * uv.y).cos();
        let v = -self.amplitude * (kx * uv.x).cos() * (ky * uv.y).sin();
        Vec2::new(u, v)
    }
    fn domain(&self) -> Rect {
        self.domain
    }
}

/// A field defined by an arbitrary closure; handy in tests.
pub struct FnField<F: Fn(Vec2) -> Vec2 + Sync> {
    /// The closure evaluated for every query.
    pub f: F,
    /// Domain of definition.
    pub domain: Rect,
}

impl<F: Fn(Vec2) -> Vec2 + Sync> VectorField for FnField<F> {
    fn velocity(&self, p: Vec2) -> Vec2 {
        (self.f)(p)
    }
    fn domain(&self) -> Rect {
        self.domain
    }
}

/// Numerically estimates the divergence of a field at `p` with central
/// differences (used by property tests on divergence-free fields).
pub fn divergence(field: &dyn VectorField, p: Vec2, h: f64) -> f64 {
    let dx = Vec2::new(h, 0.0);
    let dy = Vec2::new(0.0, h);
    let dudx = (field.velocity(p + dx).x - field.velocity(p - dx).x) / (2.0 * h);
    let dvdy = (field.velocity(p + dy).y - field.velocity(p - dy).y) / (2.0 * h);
    dudx + dvdy
}

/// Numerically estimates the scalar curl (vorticity) of a field at `p`.
pub fn curl(field: &dyn VectorField, p: Vec2, h: f64) -> f64 {
    let dx = Vec2::new(h, 0.0);
    let dy = Vec2::new(0.0, h);
    let dvdx = (field.velocity(p + dx).y - field.velocity(p - dx).y) / (2.0 * h);
    let dudy = (field.velocity(p + dy).x - field.velocity(p - dy).x) / (2.0 * h);
    dvdx - dudy
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_domain() -> Rect {
        Rect::new(Vec2::new(-1.0, -1.0), Vec2::new(1.0, 1.0))
    }

    #[test]
    fn uniform_field_is_constant() {
        let f = Uniform {
            velocity: Vec2::new(2.0, -1.0),
            domain: unit_domain(),
        };
        assert_eq!(f.velocity(Vec2::ZERO), Vec2::new(2.0, -1.0));
        assert_eq!(f.velocity(Vec2::new(0.7, -0.3)), Vec2::new(2.0, -1.0));
        assert!((f.speed(Vec2::ZERO) - 5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn vortex_is_divergence_free_and_tangential() {
        let f = Vortex {
            omega: 2.0,
            center: Vec2::ZERO,
            domain: unit_domain(),
        };
        for &(x, y) in &[(0.3, 0.1), (-0.5, 0.4), (0.2, -0.7)] {
            let p = Vec2::new(x, y);
            // Velocity is perpendicular to the radius vector.
            assert!(f.velocity(p).dot(p).abs() < 1e-12);
            assert!(divergence(&f, p, 1e-4).abs() < 1e-6);
        }
    }

    #[test]
    fn vortex_curl_is_twice_omega() {
        let f = Vortex {
            omega: 1.5,
            center: Vec2::ZERO,
            domain: unit_domain(),
        };
        let c = curl(&f, Vec2::new(0.2, 0.3), 1e-4);
        assert!((c - 3.0).abs() < 1e-6);
    }

    #[test]
    fn saddle_divergence_is_zero() {
        let f = Saddle {
            rate: 3.0,
            center: Vec2::new(0.1, -0.2),
            domain: unit_domain(),
        };
        assert!(divergence(&f, Vec2::new(0.4, 0.4), 1e-4).abs() < 1e-6);
        // The stagnation point really is stagnant.
        assert!(f.velocity(Vec2::new(0.1, -0.2)).norm() < 1e-12);
    }

    #[test]
    fn double_gyre_is_divergence_free() {
        let f = DoubleGyre::steady(Rect::new(Vec2::ZERO, Vec2::new(2.0, 1.0)));
        for &(x, y) in &[(0.5, 0.5), (1.3, 0.2), (1.9, 0.9), (0.1, 0.1)] {
            assert!(
                divergence(&f, Vec2::new(x, y), 1e-5).abs() < 1e-5,
                "at ({x},{y})"
            );
        }
    }

    #[test]
    fn double_gyre_boundaries_have_no_normal_flow() {
        let f = DoubleGyre::steady(Rect::new(Vec2::ZERO, Vec2::new(2.0, 1.0)));
        // On the top and bottom walls the vertical component vanishes.
        for x in [0.2, 0.9, 1.7] {
            assert!(f.velocity(Vec2::new(x, 0.0)).y.abs() < 1e-12);
            assert!(f.velocity(Vec2::new(x, 1.0)).y.abs() < 1e-12);
        }
    }

    #[test]
    fn lamb_oseen_velocity_is_finite_at_center() {
        let f = LambOseen {
            circulation: 1.0,
            core_radius: 0.1,
            center: Vec2::ZERO,
            domain: unit_domain(),
        };
        let v = f.velocity(Vec2::ZERO);
        assert!(v.is_finite());
        // Velocity grows from the centre, peaks near the core radius, then decays.
        let near = f.velocity(Vec2::new(0.01, 0.0)).norm();
        let peak = f.velocity(Vec2::new(0.11, 0.0)).norm();
        let far = f.velocity(Vec2::new(0.9, 0.0)).norm();
        assert!(near < peak);
        assert!(far < peak);
    }

    #[test]
    fn vortex_street_mean_flow_downstream() {
        let dom = Rect::new(Vec2::ZERO, Vec2::new(10.0, 4.0));
        let f = VortexStreet::new(dom);
        // Far upstream the street contribution is negligible.
        let v = f.velocity(Vec2::new(0.2, 2.0));
        assert!((v.x - f.free_stream).abs() < 0.2);
        // Near the street the flow fluctuates but stays finite.
        for k in 0..20 {
            let p = Vec2::new(3.0 + 0.3 * k as f64, 2.0 + 0.1 * (k % 3) as f64);
            assert!(f.velocity(p).is_finite());
        }
        assert!(f.velocity(Vec2::new(5.0, 2.3)).norm() > 0.0);
    }

    #[test]
    fn taylor_green_divergence_free() {
        let f = TaylorGreen {
            amplitude: 1.0,
            cells: 2.0,
            domain: Rect::new(Vec2::ZERO, Vec2::new(1.0, 1.0)),
        };
        for &(x, y) in &[(0.25, 0.25), (0.6, 0.4), (0.9, 0.8)] {
            assert!(divergence(&f, Vec2::new(x, y), 1e-5).abs() < 1e-4);
        }
    }

    #[test]
    fn fn_field_delegates_to_closure() {
        let f = FnField {
            f: |p: Vec2| p * 2.0,
            domain: unit_domain(),
        };
        assert_eq!(f.velocity(Vec2::new(0.5, -0.25)), Vec2::new(1.0, -0.5));
    }
}
