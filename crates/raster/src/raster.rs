//! Triangle scan conversion with texture mapping.
//!
//! This is the heart of the software "graphics pipe": it does what the
//! InfiniteReality did for the paper — transform already-computed vertices
//! into fragments, sample the spot texture, and blend the result into the
//! target texture. It also counts vertices and fragments so the cost model
//! can charge simulated pipe time for the work performed.
//!
//! # The span walker
//!
//! The production path is a scanline *span walker*: triangle setup derives a
//! linear form `e(px, py) = c + px·a + py·b` per edge and a planar equation
//! per texture coordinate; each scanline then determines the exact covered
//! pixel interval per edge (the predicate is monotone along a row, so a
//! short binary search with the shared edge evaluator finds the boundary)
//! and the interior pixels are filled through a mutable row slice with
//! **zero** inside-tests. When the interpolated `v` coordinate is constant
//! along the row — true for every axis-aligned spot quad — the bilinear
//! sample collapses to a single pre-fetched texture row pair, and when that
//! row pair is uniform the sample is a per-row constant (the nearest-sample
//! fast path: flat spot textures reduce to a vectorizable `dst += const`
//! loop).
//!
//! A naive per-pixel reference rasterizer is retained behind
//! `#[cfg(any(test, feature = "reference"))]` as the correctness oracle and
//! benchmark baseline. It keeps the pre-optimization *scan structure* (full
//! bounding-box scan, three inside-tests per pixel, per-pixel sampling,
//! bounds-checked texel accessors) but shares the new setup and per-pixel
//! arithmetic, so the two paths' outputs are **pixel-identical** — which the
//! equivalence tests assert exactly. Note the trade-off: because the shared
//! setup is itself cheaper than the seed's three-cross-products-per-pixel
//! code, benchmark speedups against this reference are *conservative*
//! relative to the original implementation.
//!
//! # Fill rule
//!
//! Coverage follows the top-left rule over counter-clockwise triangles, with
//! one refinement over a textbook implementation: every edge is evaluated in
//! a canonical endpoint order (sign-flipped when the traversal direction is
//! reversed), so the two triangles of a quad — or any two mesh cells sharing
//! an edge — compute *exactly* negated edge values on the shared edge. A
//! pixel centre exactly on the shared edge is therefore covered exactly
//! once, by IEEE negation symmetry rather than by luck.

use crate::blend::BlendMode;
use crate::simd::{self, SimdLevel};
use crate::texture::{FootprintPyramid, Texture};
use flowfield::Vec2;
use serde::{Deserialize, Serialize};

/// Fragments per lane block of the vectorized span fills. The fills compute
/// `LANES` samples into a stack array and blend the block in one
/// mode-specialized call ([`BlendMode::apply_block`]), so the compiler sees
/// fixed-width, branch-free inner loops it can autovectorize; a scalar tail
/// handles the remainder. Per-fragment arithmetic is unchanged, so outputs
/// stay bit-identical to the per-pixel path.
const LANES: usize = 8;

/// A vertex as submitted to the graphics pipe: a position in *texture pixel
/// coordinates* and a texture coordinate into the bound spot texture.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Vertex {
    /// Position in target-texture pixel coordinates.
    pub position: Vec2,
    /// Texture coordinate (u, v) in `[0, 1]` into the bound spot texture.
    pub uv: (f32, f32),
}

impl Vertex {
    /// Creates a vertex.
    pub fn new(position: Vec2, u: f32, v: f32) -> Self {
        Vertex {
            position,
            uv: (u, v),
        }
    }
}

/// Counters of the geometry and fragment work a pipe performed; inputs of
/// the simulated-time cost model and of the bus-bandwidth accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RasterStats {
    /// Vertices transformed (as submitted on the bus: 3 per lone triangle,
    /// 4 per quad, one per mesh node).
    pub vertices: u64,
    /// Triangles set up (after trivially-degenerate rejection).
    pub triangles: u64,
    /// Fragments generated (texels touched, before blending).
    pub fragments: u64,
    /// Primitives rejected because they were degenerate or fully outside.
    pub rejected: u64,
}

impl RasterStats {
    /// Accumulates the counters of another stats block.
    pub fn merge(&mut self, other: &RasterStats) {
        self.vertices += other.vertices;
        self.triangles += other.triangles;
        self.fragments += other.fragments;
        self.rejected += other.rejected;
    }
}

#[inline]
fn edge(a: Vec2, b: Vec2, p: Vec2) -> f64 {
    (b - a).cross(p - a)
}

/// Top-left fill rule: with counter-clockwise winding, a pixel centre lying
/// exactly on an edge belongs to the triangle only when the edge is a "left"
/// edge (going upward) or a "top" edge (horizontal, going leftward). This
/// guarantees that adjacent triangles sharing an edge — the two halves of a
/// spot quad, or neighbouring bent-spot mesh cells — cover every texel
/// exactly once, which additive blending requires for correctness.
#[inline]
fn edge_is_top_left(a: Vec2, b: Vec2) -> bool {
    let d = b - a;
    d.y > 0.0 || (d.y == 0.0 && d.x < 0.0)
}

/// One edge of a set-up triangle as a linear form over pixel indices:
/// `e(px, py) = c + px·px_coef + py·py_coef`, evaluated at pixel centres.
/// The form is built from the canonically ordered endpoints; `flip` records
/// whether the triangle traverses the edge against that order, so shared
/// edges of adjacent triangles produce exactly negated values.
#[derive(Debug, Clone, Copy)]
struct EdgeFn {
    px_coef: f64,
    py_coef: f64,
    c: f64,
    flip: bool,
    accept: bool,
}

impl EdgeFn {
    fn setup(a: Vec2, b: Vec2) -> EdgeFn {
        let accept = edge_is_top_left(a, b);
        // Canonical endpoint order: smaller (y, x) first.
        let swap = (b.y, b.x) < (a.y, a.x);
        let (lo, hi) = if swap { (b, a) } else { (a, b) };
        let dx = hi.x - lo.x;
        let dy = hi.y - lo.y;
        EdgeFn {
            px_coef: -dy,
            py_coef: dx,
            // Value at the centre of pixel (0, 0).
            c: dx * (0.5 - lo.y) - dy * (0.5 - lo.x),
            flip: swap,
            accept,
        }
    }

    /// Specializes the edge for one scanline.
    #[inline]
    fn row(&self, py: usize) -> RowEdge {
        RowEdge {
            c: self.c + py as f64 * self.py_coef,
            a: self.px_coef,
            flip: self.flip,
            accept: self.accept,
        }
    }
}

/// An [`EdgeFn`] restricted to one scanline: `e(px) = c + px·a`.
#[derive(Debug, Clone, Copy)]
struct RowEdge {
    c: f64,
    a: f64,
    flip: bool,
    accept: bool,
}

impl RowEdge {
    /// Inside-test at pixel column `px`. This is THE coverage predicate:
    /// both the span walker (at span boundaries) and the reference path (at
    /// every pixel) call it, so coverage decisions agree bit-for-bit.
    #[inline]
    fn covers(&self, px: usize) -> bool {
        let e = self.c + px as f64 * self.a;
        if self.flip {
            e < 0.0 || (e == 0.0 && self.accept)
        } else {
            e > 0.0 || (e == 0.0 && self.accept)
        }
    }

    /// The covered interval within `[x0, x1]`, or `None` when the row is
    /// fully outside this edge. `covers` is monotone along a row (the linear
    /// form is weakly monotone in `px` even in floating point, because
    /// IEEE rounding preserves weak monotonicity), so the covered set is a
    /// prefix, a suffix, or everything, and a binary search over the shared
    /// predicate finds the exact boundary pixel.
    fn interval(&self, x0: usize, x1: usize) -> Option<(usize, usize)> {
        let direction = if self.flip { -self.a } else { self.a };
        if direction == 0.0 {
            return if self.covers(x0) {
                Some((x0, x1))
            } else {
                None
            };
        }
        if direction > 0.0 {
            // Coverage is a suffix of the row.
            if !self.covers(x1) {
                return None;
            }
            if self.covers(x0) {
                return Some((x0, x1));
            }
            let (mut lo, mut hi) = (x0, x1);
            while hi - lo > 1 {
                let mid = lo + (hi - lo) / 2;
                if self.covers(mid) {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            Some((hi, x1))
        } else {
            // Coverage is a prefix of the row.
            if !self.covers(x0) {
                return None;
            }
            if self.covers(x1) {
                return Some((x0, x1));
            }
            let (mut lo, mut hi) = (x0, x1);
            while hi - lo > 1 {
                let mid = lo + (hi - lo) / 2;
                if self.covers(mid) {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            Some((x0, lo))
        }
    }
}

/// Planar interpolation of one texture coordinate:
/// `attr(px, py) = base + (cx − ox)·ddx + (cy − oy)·ddy` with `cx = px + 0.5`.
#[derive(Debug, Clone, Copy)]
struct AttrPlane {
    base: f64,
    ddx: f64,
    ddy: f64,
    ox: f64,
    oy: f64,
}

impl AttrPlane {
    /// Specializes the plane for one scanline.
    #[inline]
    fn row(&self, py: usize) -> AttrRow {
        AttrRow {
            row_base: self.base + ((py as f64 + 0.5) - self.oy) * self.ddy,
            ddx: self.ddx,
            ox: self.ox,
        }
    }
}

/// An [`AttrPlane`] restricted to one scanline. The fields are crate-visible
/// so the SIMD kernels can splat them and evaluate the same affine form per
/// lane.
#[derive(Debug, Clone, Copy)]
pub(crate) struct AttrRow {
    /// Attribute value at the row's reference column `ox`.
    pub(crate) row_base: f64,
    /// Attribute change per pixel step along the row.
    pub(crate) ddx: f64,
    /// Reference column (the triangle's first vertex x).
    pub(crate) ox: f64,
}

impl AttrRow {
    /// Attribute value at pixel column `px`; shared by both raster paths and
    /// mirrored lane-wise (in the same operation order) by the SIMD kernels.
    #[inline]
    pub(crate) fn at(&self, px: usize) -> f64 {
        self.row_base + ((px as f64 + 0.5) - self.ox) * self.ddx
    }
}

/// Everything triangle setup produces: clipped bounding box, the three edge
/// forms, and the two texture-coordinate planes. Shared by the span walker
/// and the reference path so both consume identical per-pixel arithmetic.
#[derive(Debug, Clone, Copy)]
struct TriSetup {
    x0: usize,
    x1: usize,
    y0: usize,
    y1: usize,
    edges: [EdgeFn; 3],
    u_plane: AttrPlane,
    v_plane: AttrPlane,
}

impl TriSetup {
    /// Sets up a triangle against the target, updating the rejection and
    /// triangle counters exactly like the original implementation (vertex
    /// counting is the caller's responsibility, so quads and meshes can
    /// account shared vertices correctly).
    fn new(
        target: &Texture,
        v0: Vertex,
        v1: Vertex,
        v2: Vertex,
        stats: &mut RasterStats,
    ) -> Option<TriSetup> {
        let area = edge(v0.position, v1.position, v2.position);
        if area.abs() < 1e-12 {
            stats.rejected += 1;
            return None;
        }
        // Normalise to counter-clockwise winding so the fill rule is
        // consistent.
        let (v0, v1, v2) = if area > 0.0 {
            (v0, v1, v2)
        } else {
            (v0, v2, v1)
        };
        let area = area.abs();

        // Bounding box clipped to the target.
        let min_x = v0.position.x.min(v1.position.x).min(v2.position.x);
        let max_x = v0.position.x.max(v1.position.x).max(v2.position.x);
        let min_y = v0.position.y.min(v1.position.y).min(v2.position.y);
        let max_y = v0.position.y.max(v1.position.y).max(v2.position.y);
        if max_x < 0.0
            || max_y < 0.0
            || min_x >= target.width() as f64
            || min_y >= target.height() as f64
        {
            stats.rejected += 1;
            return None;
        }
        stats.triangles += 1;
        let x0 = (min_x.floor().max(0.0)) as usize;
        let y0 = (min_y.floor().max(0.0)) as usize;
        let x1 = (max_x.ceil().min(target.width() as f64 - 1.0)) as usize;
        let y1 = (max_y.ceil().min(target.height() as f64 - 1.0)) as usize;

        let (px0, px1, px2) = (v0.position, v1.position, v2.position);
        let inv_area = 1.0 / area;
        let (u0, u1, u2) = (v0.uv.0 as f64, v1.uv.0 as f64, v2.uv.0 as f64);
        let (w0, w1, w2) = (v0.uv.1 as f64, v1.uv.1 as f64, v2.uv.1 as f64);
        // Gradients of the barycentric-interpolated attributes: the plane
        // through the three (position, attribute) samples.
        let u_plane = AttrPlane {
            base: u0,
            ddx: (u0 * (px1.y - px2.y) + u1 * (px2.y - px0.y) + u2 * (px0.y - px1.y)) * inv_area,
            ddy: (u0 * (px2.x - px1.x) + u1 * (px0.x - px2.x) + u2 * (px1.x - px0.x)) * inv_area,
            ox: px0.x,
            oy: px0.y,
        };
        let v_plane = AttrPlane {
            base: w0,
            ddx: (w0 * (px1.y - px2.y) + w1 * (px2.y - px0.y) + w2 * (px0.y - px1.y)) * inv_area,
            ddy: (w0 * (px2.x - px1.x) + w1 * (px0.x - px2.x) + w2 * (px1.x - px0.x)) * inv_area,
            ox: px0.x,
            oy: px0.y,
        };

        Some(TriSetup {
            x0,
            x1,
            y0,
            y1,
            edges: [
                EdgeFn::setup(px1, px2),
                EdgeFn::setup(px2, px0),
                EdgeFn::setup(px0, px1),
            ],
            u_plane,
            v_plane,
        })
    }
}

#[inline]
fn row_is_uniform(row: &[f32]) -> bool {
    let first = row[0];
    row.iter().all(|&v| v == first)
}

/// Fills one covered span `[lo, hi]` of a scanline.
///
/// `row` is the mutable slice of the *span* (index 0 corresponds to column
/// `lo`), so the destination side needs no per-pixel bounds checks after the
/// one slice construction. The hoisted-bilinear and uniform paths run on the
/// explicit SIMD kernels for `level` (see [`crate::simd`]); the general
/// bilinear path keeps scalar sampling but blends through the
/// level-dispatched block kernel. Produces values bit-identical to calling
/// `spot.sample_bilinear` + `blend.apply` per pixel at every level.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn fill_span_with(
    row: &mut [f32],
    lo: usize,
    level: SimdLevel,
    spot: &Texture,
    u_row: AttrRow,
    v_row: AttrRow,
    intensity: f32,
    blend: BlendMode,
) {
    let tex_w = spot.width();
    let tex_h = spot.height();
    if v_row.ddx == 0.0 {
        // `v` is constant along the row (axis-aligned quads, axis-aligned
        // mesh cells): hoist the entire vertical half of the bilinear sample
        // out of the pixel loop. With ddx == ±0.0 the per-pixel formula
        // reduces exactly to `row_base`, so this matches the general path.
        let v = v_row.row_base as f32;
        let fy = (v * tex_h as f32 - 0.5).clamp(0.0, tex_h as f32 - 1.0);
        let ty0 = fy.floor() as usize;
        let ty1 = (ty0 + 1).min(tex_h - 1);
        let ty = fy - ty0 as f32;
        let tex_row0 = &spot.data()[ty0 * tex_w..(ty0 + 1) * tex_w];
        let tex_row1 = &spot.data()[ty1 * tex_w..(ty1 + 1) * tex_w];
        if row_is_uniform(tex_row0) && row_is_uniform(tex_row1) {
            // Nearest-sample fast path: both sampled texture rows are
            // uniform, so every pixel of the span receives the same value
            // and the fill is one uniform (vectorizable) blend sweep.
            let a = tex_row0[0];
            let c = tex_row1[0];
            let sample = (a + (c - a) * ty) * intensity;
            simd::blend_uniform(level, blend, row, sample);
            return;
        }
        simd::fill_hoisted(
            level, row, lo, u_row, tex_row0, tex_row1, ty, intensity, blend,
        );
    } else {
        // General path: both texture coordinates vary along the row. The
        // bilinear sampling stays scalar (its data-dependent row-pair fetches
        // don't lane-block well), but the blend runs on the dispatched block
        // kernel.
        let sample_at = |px: usize| -> f32 {
            let u = u_row.at(px) as f32;
            let v = v_row.at(px) as f32;
            spot.sample_bilinear(u, v) * intensity
        };
        fill_lane_blocked(row, lo, level, blend, sample_at);
    }
}

/// The shared lane-block driver of the span fills: computes [`LANES`]
/// samples at a time with `sample_at` (whose per-lane evaluations are
/// independent, so they vectorize) and blends each block through the
/// level-dispatched kernel; the tail runs scalar with identical arithmetic.
#[inline(always)]
pub(crate) fn fill_lane_blocked(
    row: &mut [f32],
    lo: usize,
    level: SimdLevel,
    blend: BlendMode,
    sample_at: impl Fn(usize) -> f32,
) {
    let mut samples = [0.0f32; LANES];
    let split = row.len() - row.len() % LANES;
    let (blocks, tail) = row.split_at_mut(split);
    let mut px = lo;
    for chunk in blocks.chunks_exact_mut(LANES) {
        for (lane, out) in samples.iter_mut().enumerate() {
            *out = sample_at(px + lane);
        }
        simd::blend_block(level, blend, chunk, &samples);
        px += LANES;
    }
    for (offset, dst) in tail.iter_mut().enumerate() {
        *dst = blend.apply(*dst, sample_at(px + offset));
    }
}

/// Span-walking rasterization of a set-up triangle (no vertex counting).
/// The blend-mode dispatch happens once per triangle; the row loop and span
/// fills run on a monomorphized `apply` closure.
fn rasterize_setup_span(
    target: &mut Texture,
    spot_texture: &Texture,
    setup: &TriSetup,
    intensity: f32,
    blend: BlendMode,
    stats: &mut RasterStats,
) {
    if setup.x1 - setup.x0 < NARROW_TRIANGLE_WIDTH {
        // Narrow triangles keep a per-fragment loop with the blend
        // monomorphized per triangle; keeping it in its own small function
        // (instead of one arm of a big fused walker) is what lets the
        // compiler register-allocate the sampling-bound loop well.
        match blend {
            BlendMode::Additive => {
                walk_narrow(target, spot_texture, setup, intensity, stats, |d, s| d + s)
            }
            mode => walk_narrow(
                target,
                spot_texture,
                setup,
                intensity,
                stats,
                move |d, s| mode.apply(d, s),
            ),
        }
    } else {
        walk_spans_wide(target, spot_texture, setup, intensity, blend, stats);
    }
}

/// Bounding boxes narrower than this skip the span search: the few-pixel
/// triangles of bent-spot meshes are bound by texture sampling, not by
/// inside-tests, so the per-row boundary searches cost more than they save.
/// The narrow path evaluates the same predicate per pixel and shades with
/// the same arithmetic, so outputs remain pixel-identical.
const NARROW_TRIANGLE_WIDTH: usize = 12;

/// The narrow-triangle walker: the per-pixel coverage loop with per-triangle
/// monomorphized blending, bilinear sampling. Structure (and therefore
/// output) identical to the pre-lane-block implementation.
///
/// `#[inline(never)]` is load-bearing: each monomorphized copy must stay a
/// standalone function. Inlining both blend copies into the dispatcher
/// measurably slowed the ~200 ns/triangle bent meshes (the 32x17 case
/// dropped ~10%) through worse register allocation of the shared loop.
#[inline(never)]
fn walk_narrow<F: Fn(f32, f32) -> f32>(
    target: &mut Texture,
    spot_texture: &Texture,
    setup: &TriSetup,
    intensity: f32,
    stats: &mut RasterStats,
    apply: F,
) {
    let width = target.width();
    let data = target.data_mut();
    for py in setup.y0..=setup.y1 {
        let e0 = setup.edges[0].row(py);
        let e1 = setup.edges[1].row(py);
        let e2 = setup.edges[2].row(py);
        let u_row = setup.u_plane.row(py);
        let v_row = setup.v_plane.row(py);
        let row_start = py * width;
        let row = &mut data[row_start + setup.x0..=row_start + setup.x1];
        for (offset, dst) in row.iter_mut().enumerate() {
            let px = setup.x0 + offset;
            if !(e0.covers(px) && e1.covers(px) && e2.covers(px)) {
                continue;
            }
            let u = u_row.at(px) as f32;
            let v = v_row.at(px) as f32;
            let sample = spot_texture.sample_bilinear(u, v) * intensity;
            *dst = apply(*dst, sample);
            stats.fragments += 1;
        }
    }
}

/// The wide-triangle walker: exact span search per scanline, lane-blocked
/// fills with block-specialized blending.
fn walk_spans_wide(
    target: &mut Texture,
    spot_texture: &Texture,
    setup: &TriSetup,
    intensity: f32,
    blend: BlendMode,
    stats: &mut RasterStats,
) {
    let width = target.width();
    let data = target.data_mut();
    let level = simd::active();
    for py in setup.y0..=setup.y1 {
        let Some((lo, hi)) = covered_interval(setup, py) else {
            continue;
        };
        let u_row = setup.u_plane.row(py);
        let v_row = setup.v_plane.row(py);
        let row_start = py * width;
        let span = &mut data[row_start + lo..=row_start + hi];
        fill_span_with(
            span,
            lo,
            level,
            spot_texture,
            u_row,
            v_row,
            intensity,
            blend,
        );
        stats.fragments += (hi - lo + 1) as u64;
    }
}

/// The exact covered pixel interval of scanline `py`, intersecting the three
/// edges' intervals over the clipped bounding box (shared by the exact and
/// the footprint span walkers).
#[inline]
fn covered_interval(setup: &TriSetup, py: usize) -> Option<(usize, usize)> {
    let mut lo = setup.x0;
    let mut hi = setup.x1;
    for edge_fn in &setup.edges {
        let (a, b) = edge_fn.row(py).interval(setup.x0, setup.x1)?;
        lo = lo.max(a);
        hi = hi.min(b);
    }
    (lo <= hi).then_some((lo, hi))
}

/// Rasterizes a set-up triangle with footprint sampling: a single nearest
/// fetch per fragment from the pyramid level selected from the triangle's uv
/// extent, replacing the four-tap bilinear kernel of the exact path.
///
/// The level selection is per scanline in structure, but because the uv
/// planes are affine their gradients — and therefore the footprint (base
/// texels covered per pixel step) — are the same on every row of the
/// triangle, so it is hoisted to triangle setup. Coverage decisions use the
/// same edge predicate as the exact path, so adjacent mesh cells still cover
/// every texel exactly once — footprint mode changes *sampling*, never
/// coverage (a coverage change would double-blend shared edges and break the
/// additive sum).
fn rasterize_setup_footprint(
    target: &mut Texture,
    pyramid: &FootprintPyramid,
    setup: &TriSetup,
    intensity: f32,
    blend: BlendMode,
    stats: &mut RasterStats,
) {
    let level = pyramid.level_for_step(setup_footprint_step(
        setup,
        pyramid.base().width() as f64,
        pyramid.base().height() as f64,
    ));
    rasterize_setup_footprint_at(target, pyramid.level(level), setup, intensity, blend, stats);
}

/// The footprint step of a set-up triangle: base texels covered per pixel
/// step, the input to [`FootprintPyramid::level_for_step`].
#[inline]
fn setup_footprint_step(setup: &TriSetup, base_w: f64, base_h: f64) -> f32 {
    let step_u = setup.u_plane.ddx.abs().max(setup.u_plane.ddy.abs()) * base_w;
    let step_v = setup.v_plane.ddx.abs().max(setup.v_plane.ddy.abs()) * base_h;
    step_u.max(step_v) as f32
}

/// The footprint step a triangle *would* rasterize with, without
/// rasterizing it — `None` for degenerate (rejected) triangles. Lets mesh
/// walkers aggregate a level over several triangles (per-row selection)
/// before committing to one. The uv gradients are winding-invariant in
/// magnitude, so this matches [`setup_footprint_step`] without needing the
/// full setup.
pub(crate) fn triangle_footprint_step(
    v0: Vertex,
    v1: Vertex,
    v2: Vertex,
    base_w: f64,
    base_h: f64,
) -> Option<f32> {
    let area = edge(v0.position, v1.position, v2.position);
    if area.abs() < 1e-12 {
        return None;
    }
    let inv_area = 1.0 / area.abs();
    let (px0, px1, px2) = (v0.position, v1.position, v2.position);
    let (u0, u1, u2) = (v0.uv.0 as f64, v1.uv.0 as f64, v2.uv.0 as f64);
    let (w0, w1, w2) = (v0.uv.1 as f64, v1.uv.1 as f64, v2.uv.1 as f64);
    let u_ddx = (u0 * (px1.y - px2.y) + u1 * (px2.y - px0.y) + u2 * (px0.y - px1.y)) * inv_area;
    let u_ddy = (u0 * (px2.x - px1.x) + u1 * (px0.x - px2.x) + u2 * (px1.x - px0.x)) * inv_area;
    let v_ddx = (w0 * (px1.y - px2.y) + w1 * (px2.y - px0.y) + w2 * (px0.y - px1.y)) * inv_area;
    let v_ddy = (w0 * (px2.x - px1.x) + w1 * (px0.x - px2.x) + w2 * (px1.x - px0.x)) * inv_area;
    let step_u = u_ddx.abs().max(u_ddy.abs()) * base_w;
    let step_v = v_ddx.abs().max(v_ddy.abs()) * base_h;
    Some(step_u.max(step_v) as f32)
}

/// Rasterizes a set-up triangle with nearest sampling of one already-chosen
/// pyramid level `tex` (shared by per-triangle and per-row level selection).
fn rasterize_setup_footprint_at(
    target: &mut Texture,
    tex: &Texture,
    setup: &TriSetup,
    intensity: f32,
    blend: BlendMode,
    stats: &mut RasterStats,
) {
    if setup.x1 - setup.x0 < NARROW_TRIANGLE_WIDTH {
        match blend {
            BlendMode::Additive => {
                walk_narrow_nearest(target, tex, setup, intensity, stats, |d, s| d + s)
            }
            mode => walk_narrow_nearest(target, tex, setup, intensity, stats, move |d, s| {
                mode.apply(d, s)
            }),
        }
    } else {
        walk_spans_wide_nearest(target, tex, setup, intensity, blend, stats);
    }
}

/// Nearest-sample index of `coord` in a `len`-texel axis, matching
/// [`Texture::sample_nearest`]'s clamping exactly (also the scalar oracle of
/// the SIMD nearest fills).
#[inline(always)]
pub(crate) fn nearest_index(coord: f32, len: usize) -> usize {
    ((coord * len as f32) as isize).clamp(0, len as isize - 1) as usize
}

/// The narrow-triangle walker with nearest sampling of one (prefiltered)
/// texture level — the footprint-mode twin of [`walk_narrow`]. Same setup,
/// same coverage predicate; only the shading differs: one clamped fetch
/// instead of the bilinear kernel, which is what makes sampling-bound bent
/// meshes fast.
#[inline(never)]
fn walk_narrow_nearest<F: Fn(f32, f32) -> f32>(
    target: &mut Texture,
    tex: &Texture,
    setup: &TriSetup,
    intensity: f32,
    stats: &mut RasterStats,
    apply: F,
) {
    let width = target.width();
    let data = target.data_mut();
    let tw = tex.width();
    let th = tex.height();
    let texels = tex.data();
    for py in setup.y0..=setup.y1 {
        let e0 = setup.edges[0].row(py);
        let e1 = setup.edges[1].row(py);
        let e2 = setup.edges[2].row(py);
        let u_row = setup.u_plane.row(py);
        let v_row = setup.v_plane.row(py);
        let row_start = py * width;
        let row = &mut data[row_start + setup.x0..=row_start + setup.x1];
        for (offset, dst) in row.iter_mut().enumerate() {
            let px = setup.x0 + offset;
            if !(e0.covers(px) && e1.covers(px) && e2.covers(px)) {
                continue;
            }
            let tx = nearest_index(u_row.at(px) as f32, tw);
            let ty = nearest_index(v_row.at(px) as f32, th);
            let sample = texels[ty * tw + tx] * intensity;
            *dst = apply(*dst, sample);
            stats.fragments += 1;
        }
    }
}

/// The wide-triangle walker with nearest sampling — the footprint-mode twin
/// of [`walk_spans_wide`]: exact span search, lane-blocked nearest fills,
/// uniform-row collapse.
fn walk_spans_wide_nearest(
    target: &mut Texture,
    tex: &Texture,
    setup: &TriSetup,
    intensity: f32,
    blend: BlendMode,
    stats: &mut RasterStats,
) {
    let width = target.width();
    let data = target.data_mut();
    let tw = tex.width();
    let th = tex.height();
    let texels = tex.data();
    let level = simd::active();
    for py in setup.y0..=setup.y1 {
        let Some((lo, hi)) = covered_interval(setup, py) else {
            continue;
        };
        let u_row = setup.u_plane.row(py);
        let v_row = setup.v_plane.row(py);
        let row_start = py * width;
        let span = &mut data[row_start + lo..=row_start + hi];
        if v_row.ddx == 0.0 {
            // Row-constant `v`: one texture row serves the whole span.
            let ty = nearest_index(v_row.row_base as f32, th);
            let tex_row = &texels[ty * tw..(ty + 1) * tw];
            if row_is_uniform(tex_row) {
                simd::blend_uniform(level, blend, span, tex_row[0] * intensity);
            } else {
                simd::fill_nearest_row(level, span, lo, u_row, tex_row, intensity, blend);
            }
        } else {
            simd::fill_nearest_2d(
                level, span, lo, u_row, v_row, texels, tw, th, intensity, blend,
            );
        }
        stats.fragments += (hi - lo + 1) as u64;
    }
}

/// Footprint-mode counterpart of [`rasterize_triangle_uncounted`]: same
/// setup, rejection and fragment accounting, nearest sampling of the
/// pyramid level matching the triangle's uv footprint.
#[allow(clippy::too_many_arguments)]
pub(crate) fn rasterize_triangle_footprint_uncounted(
    target: &mut Texture,
    pyramid: &FootprintPyramid,
    v0: Vertex,
    v1: Vertex,
    v2: Vertex,
    intensity: f32,
    blend: BlendMode,
    stats: &mut RasterStats,
) {
    if let Some(setup) = TriSetup::new(target, v0, v1, v2, stats) {
        rasterize_setup_footprint(target, pyramid, &setup, intensity, blend, stats);
    }
}

/// Footprint-mode rasterization at a caller-chosen pyramid level, for mesh
/// walkers that select one level for a whole *row* of triangles (see
/// [`crate::mesh::TexturedMesh::rasterize_footprint`]) instead of per
/// primitive. Setup, rejection and fragment accounting are identical to
/// [`rasterize_triangle_footprint_uncounted`]; only the level choice moves
/// to the caller.
#[allow(clippy::too_many_arguments)]
pub(crate) fn rasterize_triangle_footprint_leveled(
    target: &mut Texture,
    pyramid: &FootprintPyramid,
    level: usize,
    v0: Vertex,
    v1: Vertex,
    v2: Vertex,
    intensity: f32,
    blend: BlendMode,
    stats: &mut RasterStats,
) {
    if let Some(setup) = TriSetup::new(target, v0, v1, v2, stats) {
        rasterize_setup_footprint_at(
            target,
            pyramid.level(level),
            &setup,
            intensity,
            blend,
            stats,
        );
    }
}

/// Footprint-mode counterpart of [`rasterize_quad`]: both triangles sample
/// the pyramid with the quad's footprint-selected level.
pub fn rasterize_quad_footprint(
    target: &mut Texture,
    pyramid: &FootprintPyramid,
    quad: [Vertex; 4],
    intensity: f32,
    blend: BlendMode,
    stats: &mut RasterStats,
) {
    stats.vertices += 4;
    rasterize_triangle_footprint_uncounted(
        target, pyramid, quad[0], quad[1], quad[2], intensity, blend, stats,
    );
    rasterize_triangle_footprint_uncounted(
        target, pyramid, quad[0], quad[2], quad[3], intensity, blend, stats,
    );
}

/// Rasterizes a triangle without counting its vertices (used by quads and
/// meshes, whose vertex accounting reflects shared vertices).
#[allow(clippy::too_many_arguments)]
pub(crate) fn rasterize_triangle_uncounted(
    target: &mut Texture,
    spot_texture: &Texture,
    v0: Vertex,
    v1: Vertex,
    v2: Vertex,
    intensity: f32,
    blend: BlendMode,
    stats: &mut RasterStats,
) {
    if let Some(setup) = TriSetup::new(target, v0, v1, v2, stats) {
        rasterize_setup_span(target, spot_texture, &setup, intensity, blend, stats);
    }
}

/// Rasterizes a single textured triangle into `target`.
///
/// The spot texture is sampled bilinearly at the interpolated uv coordinate,
/// multiplied by `intensity` (the random spot weight `aᵢ`) and blended into
/// the target using `blend`.
#[allow(clippy::too_many_arguments)]
pub fn rasterize_triangle(
    target: &mut Texture,
    spot_texture: &Texture,
    v0: Vertex,
    v1: Vertex,
    v2: Vertex,
    intensity: f32,
    blend: BlendMode,
    stats: &mut RasterStats,
) {
    stats.vertices += 3;
    rasterize_triangle_uncounted(target, spot_texture, v0, v1, v2, intensity, blend, stats);
}

/// Rasterizes a textured quadrilateral (the standard four-vertex spot) as two
/// triangles. Vertices must be supplied in perimeter order.
///
/// A quad streams exactly 4 vertices over the bus (the two triangles share
/// the `quad[0]`–`quad[2]` diagonal), counted up front — so the accounting
/// stays correct even when one of the triangles is rejected as degenerate.
pub fn rasterize_quad(
    target: &mut Texture,
    spot_texture: &Texture,
    quad: [Vertex; 4],
    intensity: f32,
    blend: BlendMode,
    stats: &mut RasterStats,
) {
    stats.vertices += 4;
    rasterize_triangle_uncounted(
        target,
        spot_texture,
        quad[0],
        quad[1],
        quad[2],
        intensity,
        blend,
        stats,
    );
    rasterize_triangle_uncounted(
        target,
        spot_texture,
        quad[0],
        quad[2],
        quad[3],
        intensity,
        blend,
        stats,
    );
}

/// Builds the axis-aligned quad covering a disc spot of radius `radius`
/// centred at `center` (in pixel coordinates), with uv spanning the full spot
/// texture.
pub fn axis_aligned_spot_quad(center: Vec2, radius: f64) -> [Vertex; 4] {
    let r = radius;
    [
        Vertex::new(center + Vec2::new(-r, -r), 0.0, 0.0),
        Vertex::new(center + Vec2::new(r, -r), 1.0, 0.0),
        Vertex::new(center + Vec2::new(r, r), 1.0, 1.0),
        Vertex::new(center + Vec2::new(-r, r), 0.0, 1.0),
    ]
}

/// The naive per-pixel reference rasterizer: full bounding-box scan with
/// three inside-tests per pixel, per-pixel bilinear sampling and
/// bounds-checked texel accessors. This is the scan *structure* the span
/// walker replaced; it is retained as the correctness oracle (outputs are
/// pixel-identical because both paths share [`TriSetup`], the coverage
/// predicate and the per-pixel shading arithmetic) and as the baseline the
/// benches compare against. Since the shared setup is cheaper than the
/// seed's per-pixel cross products, measured speedups against this path
/// understate the win over the original code.
#[cfg(any(test, feature = "reference"))]
pub mod reference {
    use super::*;

    fn rasterize_setup_naive(
        target: &mut Texture,
        spot_texture: &Texture,
        setup: &TriSetup,
        intensity: f32,
        blend: BlendMode,
        stats: &mut RasterStats,
    ) {
        for py in setup.y0..=setup.y1 {
            let e0 = setup.edges[0].row(py);
            let e1 = setup.edges[1].row(py);
            let e2 = setup.edges[2].row(py);
            let u_row = setup.u_plane.row(py);
            let v_row = setup.v_plane.row(py);
            for px in setup.x0..=setup.x1 {
                if !(e0.covers(px) && e1.covers(px) && e2.covers(px)) {
                    continue;
                }
                let u = u_row.at(px) as f32;
                let v = v_row.at(px) as f32;
                let sample = spot_texture.sample_bilinear(u, v) * intensity;
                let dst = target.texel(px, py);
                *target.texel_mut(px, py) = blend.apply(dst, sample);
                stats.fragments += 1;
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn rasterize_triangle_uncounted(
        target: &mut Texture,
        spot_texture: &Texture,
        v0: Vertex,
        v1: Vertex,
        v2: Vertex,
        intensity: f32,
        blend: BlendMode,
        stats: &mut RasterStats,
    ) {
        if let Some(setup) = TriSetup::new(target, v0, v1, v2, stats) {
            rasterize_setup_naive(target, spot_texture, &setup, intensity, blend, stats);
        }
    }

    /// Reference counterpart of [`super::rasterize_triangle`].
    #[allow(clippy::too_many_arguments)]
    pub fn rasterize_triangle(
        target: &mut Texture,
        spot_texture: &Texture,
        v0: Vertex,
        v1: Vertex,
        v2: Vertex,
        intensity: f32,
        blend: BlendMode,
        stats: &mut RasterStats,
    ) {
        stats.vertices += 3;
        rasterize_triangle_uncounted(target, spot_texture, v0, v1, v2, intensity, blend, stats);
    }

    /// Reference counterpart of [`super::rasterize_quad`].
    pub fn rasterize_quad(
        target: &mut Texture,
        spot_texture: &Texture,
        quad: [Vertex; 4],
        intensity: f32,
        blend: BlendMode,
        stats: &mut RasterStats,
    ) {
        stats.vertices += 4;
        rasterize_triangle_uncounted(
            target,
            spot_texture,
            quad[0],
            quad[1],
            quad[2],
            intensity,
            blend,
            stats,
        );
        rasterize_triangle_uncounted(
            target,
            spot_texture,
            quad[0],
            quad[2],
            quad[3],
            intensity,
            blend,
            stats,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::texture::disc_spot_texture;

    fn flat_spot() -> Texture {
        let mut t = Texture::new(8, 8);
        t.fill(1.0);
        t
    }

    #[test]
    fn triangle_covers_expected_area() {
        let mut target = Texture::new(32, 32);
        let spot = flat_spot();
        let mut stats = RasterStats::default();
        // Right triangle covering half of a 16x16 square.
        let v0 = Vertex::new(Vec2::new(0.0, 0.0), 0.0, 0.0);
        let v1 = Vertex::new(Vec2::new(16.0, 0.0), 1.0, 0.0);
        let v2 = Vertex::new(Vec2::new(0.0, 16.0), 0.0, 1.0);
        rasterize_triangle(
            &mut target,
            &spot,
            v0,
            v1,
            v2,
            1.0,
            BlendMode::Additive,
            &mut stats,
        );
        assert_eq!(stats.triangles, 1);
        assert_eq!(stats.vertices, 3);
        // About half of 256 texels should be covered.
        assert!(
            stats.fragments > 100 && stats.fragments < 160,
            "{}",
            stats.fragments
        );
        // Covered texels got the intensity, others stayed zero.
        assert!(target.texel(2, 2) > 0.0);
        assert_eq!(target.texel(30, 30), 0.0);
    }

    #[test]
    fn winding_does_not_matter() {
        let spot = flat_spot();
        let v0 = Vertex::new(Vec2::new(2.0, 2.0), 0.0, 0.0);
        let v1 = Vertex::new(Vec2::new(12.0, 2.0), 1.0, 0.0);
        let v2 = Vertex::new(Vec2::new(2.0, 12.0), 0.0, 1.0);
        let mut a = Texture::new(16, 16);
        let mut b = Texture::new(16, 16);
        let mut s = RasterStats::default();
        rasterize_triangle(&mut a, &spot, v0, v1, v2, 1.0, BlendMode::Additive, &mut s);
        rasterize_triangle(&mut b, &spot, v0, v2, v1, 1.0, BlendMode::Additive, &mut s);
        assert_eq!(a.absolute_difference(&b), 0.0);
    }

    #[test]
    fn degenerate_triangle_rejected() {
        let mut target = Texture::new(16, 16);
        let spot = flat_spot();
        let mut stats = RasterStats::default();
        let v = Vertex::new(Vec2::new(4.0, 4.0), 0.0, 0.0);
        rasterize_triangle(
            &mut target,
            &spot,
            v,
            v,
            v,
            1.0,
            BlendMode::Additive,
            &mut stats,
        );
        assert_eq!(stats.triangles, 0);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.fragments, 0);
    }

    #[test]
    fn offscreen_triangle_rejected() {
        let mut target = Texture::new(16, 16);
        let spot = flat_spot();
        let mut stats = RasterStats::default();
        let v0 = Vertex::new(Vec2::new(100.0, 100.0), 0.0, 0.0);
        let v1 = Vertex::new(Vec2::new(110.0, 100.0), 1.0, 0.0);
        let v2 = Vertex::new(Vec2::new(100.0, 110.0), 0.0, 1.0);
        rasterize_triangle(
            &mut target,
            &spot,
            v0,
            v1,
            v2,
            1.0,
            BlendMode::Additive,
            &mut stats,
        );
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.fragments, 0);
    }

    #[test]
    fn quad_covers_square_and_counts_four_vertices() {
        let mut target = Texture::new(32, 32);
        let spot = flat_spot();
        let mut stats = RasterStats::default();
        let quad = axis_aligned_spot_quad(Vec2::new(16.0, 16.0), 8.0);
        rasterize_quad(
            &mut target,
            &spot,
            quad,
            2.0,
            BlendMode::Additive,
            &mut stats,
        );
        assert_eq!(stats.vertices, 4);
        assert_eq!(stats.triangles, 2);
        // The 16x16 square around the centre is filled with intensity 2.
        assert!((target.texel(16, 16) - 2.0).abs() < 1e-6);
        assert!((target.texel(10, 20) - 2.0).abs() < 1e-6);
        assert_eq!(target.texel(2, 2), 0.0);
    }

    #[test]
    fn quad_counts_four_vertices_even_when_a_triangle_degenerates() {
        // Regression for the old `saturating_sub(2)` accounting hack: a quad
        // whose first triangle is degenerate (three collinear corners) still
        // streams exactly 4 vertices on the bus.
        let mut target = Texture::new(32, 32);
        let spot = flat_spot();
        let mut stats = RasterStats::default();
        let quad = [
            Vertex::new(Vec2::new(4.0, 4.0), 0.0, 0.0),
            Vertex::new(Vec2::new(10.0, 10.0), 1.0, 0.0),
            Vertex::new(Vec2::new(16.0, 16.0), 1.0, 1.0),
            Vertex::new(Vec2::new(4.0, 16.0), 0.0, 1.0),
        ];
        rasterize_quad(
            &mut target,
            &spot,
            quad,
            1.0,
            BlendMode::Additive,
            &mut stats,
        );
        assert_eq!(stats.vertices, 4);
        assert_eq!(stats.triangles, 1);
        assert_eq!(stats.rejected, 1);
        assert!(stats.fragments > 0);
    }

    #[test]
    fn quad_interior_fragments_not_double_blended_on_diagonal() {
        // Additive blending would show a bright diagonal seam if the shared
        // edge of the two triangles were rasterized twice. Count fragments
        // instead: they must equal the covered area, not exceed it much.
        let mut target = Texture::new(64, 64);
        let spot = flat_spot();
        let mut stats = RasterStats::default();
        let quad = axis_aligned_spot_quad(Vec2::new(32.0, 32.0), 16.0);
        rasterize_quad(
            &mut target,
            &spot,
            quad,
            1.0,
            BlendMode::Additive,
            &mut stats,
        );
        let max = target.data().iter().cloned().fold(0.0f32, f32::max);
        assert!(max <= 1.0 + 1e-5, "diagonal seam double-blended: {max}");
    }

    #[test]
    fn spot_texture_modulates_fragment_intensity() {
        let mut target = Texture::new(64, 64);
        let spot = disc_spot_texture(32, 0.4);
        let mut stats = RasterStats::default();
        let quad = axis_aligned_spot_quad(Vec2::new(32.0, 32.0), 16.0);
        rasterize_quad(
            &mut target,
            &spot,
            quad,
            1.0,
            BlendMode::Additive,
            &mut stats,
        );
        // Centre of the spot is bright, the quad corner (outside the disc) is
        // nearly zero.
        assert!(target.texel(32, 32) > 0.9);
        assert!(target.texel(18, 18) < 0.1);
    }

    #[test]
    fn negative_intensity_darkens() {
        let mut target = Texture::new(32, 32);
        target.fill(1.0);
        let spot = flat_spot();
        let mut stats = RasterStats::default();
        let quad = axis_aligned_spot_quad(Vec2::new(16.0, 16.0), 4.0);
        rasterize_quad(
            &mut target,
            &spot,
            quad,
            -0.5,
            BlendMode::Additive,
            &mut stats,
        );
        assert!((target.texel(16, 16) - 0.5).abs() < 1e-6);
        assert!((target.texel(2, 2) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = RasterStats {
            vertices: 3,
            triangles: 1,
            fragments: 10,
            rejected: 0,
        };
        let b = RasterStats {
            vertices: 4,
            triangles: 2,
            fragments: 20,
            rejected: 1,
        };
        a.merge(&b);
        assert_eq!(a.vertices, 7);
        assert_eq!(a.triangles, 3);
        assert_eq!(a.fragments, 30);
        assert_eq!(a.rejected, 1);
    }

    #[test]
    fn partial_overlap_with_target_edge_is_clipped() {
        let mut target = Texture::new(16, 16);
        let spot = flat_spot();
        let mut stats = RasterStats::default();
        let quad = axis_aligned_spot_quad(Vec2::new(0.0, 8.0), 4.0);
        rasterize_quad(
            &mut target,
            &spot,
            quad,
            1.0,
            BlendMode::Additive,
            &mut stats,
        );
        // Fragments were produced only for the on-screen half.
        assert!(stats.fragments > 0);
        assert!(stats.fragments <= 5 * 9);
    }

    mod equivalence {
        //! Pixel-exact parity between the span walker and the retained
        //! naive reference path, over randomized and adversarial inputs.

        use super::*;
        use crate::mesh::TexturedMesh;
        use rand::{Rng, SeedableRng};
        use rand_chacha::ChaCha8Rng;

        fn assert_identical(
            fast: &Texture,
            fast_stats: &RasterStats,
            slow: &Texture,
            slow_stats: &RasterStats,
            context: &str,
        ) {
            assert_eq!(
                fast.absolute_difference(slow),
                0.0,
                "pixel mismatch: {context}"
            );
            assert_eq!(fast_stats, slow_stats, "stats mismatch: {context}");
        }

        fn random_vertex(rng: &mut ChaCha8Rng, lo: f64, hi: f64) -> Vertex {
            Vertex::new(
                Vec2::new(rng.gen_range(lo..hi), rng.gen_range(lo..hi)),
                rng.gen_range(0.0f32..1.0),
                rng.gen_range(0.0f32..1.0),
            )
        }

        #[test]
        fn random_triangles_match_reference_exactly() {
            let spot = disc_spot_texture(16, 0.5);
            let mut rng = ChaCha8Rng::seed_from_u64(2024);
            for case in 0..300 {
                // Positions deliberately extend outside the target so
                // clipping paths are exercised too.
                let v0 = random_vertex(&mut rng, -10.0, 74.0);
                let v1 = random_vertex(&mut rng, -10.0, 74.0);
                let v2 = random_vertex(&mut rng, -10.0, 74.0);
                let intensity = rng.gen_range(-2.0f32..2.0);
                let mut fast = Texture::new(64, 64);
                let mut slow = Texture::new(64, 64);
                let mut fs = RasterStats::default();
                let mut ss = RasterStats::default();
                rasterize_triangle(
                    &mut fast,
                    &spot,
                    v0,
                    v1,
                    v2,
                    intensity,
                    BlendMode::Additive,
                    &mut fs,
                );
                reference::rasterize_triangle(
                    &mut slow,
                    &spot,
                    v0,
                    v1,
                    v2,
                    intensity,
                    BlendMode::Additive,
                    &mut ss,
                );
                assert_identical(&fast, &fs, &slow, &ss, &format!("triangle case {case}"));
            }
        }

        #[test]
        fn random_quads_match_reference_exactly() {
            let spot = disc_spot_texture(32, 0.4);
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            for case in 0..200 {
                let center = Vec2::new(rng.gen_range(-8.0..72.0), rng.gen_range(-8.0..72.0));
                let radius = rng.gen_range(0.5..20.0);
                let quad = axis_aligned_spot_quad(center, radius);
                let intensity = rng.gen_range(-1.0f32..1.0);
                let mut fast = Texture::new(64, 64);
                let mut slow = Texture::new(64, 64);
                let mut fs = RasterStats::default();
                let mut ss = RasterStats::default();
                rasterize_quad(
                    &mut fast,
                    &spot,
                    quad,
                    intensity,
                    BlendMode::Additive,
                    &mut fs,
                );
                reference::rasterize_quad(
                    &mut slow,
                    &spot,
                    quad,
                    intensity,
                    BlendMode::Additive,
                    &mut ss,
                );
                assert_identical(&fast, &fs, &slow, &ss, &format!("quad case {case}"));
            }
        }

        #[test]
        fn random_sheared_quads_match_reference_exactly() {
            // Non-axis-aligned quads exercise the general (v-varying)
            // sampling path.
            let spot = disc_spot_texture(16, 0.5);
            let mut rng = ChaCha8Rng::seed_from_u64(99);
            for case in 0..200 {
                let c = Vec2::new(rng.gen_range(8.0..56.0), rng.gen_range(8.0..56.0));
                let r = rng.gen_range(2.0..14.0);
                let shear = rng.gen_range(-0.9..0.9);
                let quad = [
                    Vertex::new(c + Vec2::new(-r + shear * r, -r), 0.0, 0.0),
                    Vertex::new(c + Vec2::new(r, -r - shear * r), 1.0, 0.0),
                    Vertex::new(c + Vec2::new(r - shear * r, r), 1.0, 1.0),
                    Vertex::new(c + Vec2::new(-r, r + shear * r), 0.0, 1.0),
                ];
                let mut fast = Texture::new(64, 64);
                let mut slow = Texture::new(64, 64);
                let mut fs = RasterStats::default();
                let mut ss = RasterStats::default();
                rasterize_quad(&mut fast, &spot, quad, 1.0, BlendMode::Additive, &mut fs);
                reference::rasterize_quad(
                    &mut slow,
                    &spot,
                    quad,
                    1.0,
                    BlendMode::Additive,
                    &mut ss,
                );
                assert_identical(&fast, &fs, &slow, &ss, &format!("sheared case {case}"));
            }
        }

        #[test]
        fn random_meshes_match_reference_exactly() {
            let spot = disc_spot_texture(16, 0.5);
            let mut rng = ChaCha8Rng::seed_from_u64(31337);
            for case in 0..40 {
                let rows = rng.gen_range(2usize..8);
                let cols = rng.gen_range(2usize..6);
                let origin = Vec2::new(rng.gen_range(0.0..30.0), rng.gen_range(0.0..30.0));
                let mut vertices = Vec::with_capacity(rows * cols);
                for r in 0..rows {
                    for c in 0..cols {
                        let jitter = Vec2::new(rng.gen_range(-0.4..0.4), rng.gen_range(-0.4..0.4));
                        vertices.push(Vertex::new(
                            origin + Vec2::new(c as f64 * 5.0, r as f64 * 5.0) + jitter,
                            c as f32 / (cols - 1) as f32,
                            r as f32 / (rows - 1) as f32,
                        ));
                    }
                }
                let mesh = TexturedMesh::new(rows, cols, vertices);
                let mut fast = Texture::new(64, 64);
                let mut slow = Texture::new(64, 64);
                let mut fs = RasterStats::default();
                let mut ss = RasterStats::default();
                mesh.rasterize(&mut fast, &spot, 0.7, BlendMode::Additive, &mut fs);
                mesh.rasterize_reference(&mut slow, &spot, 0.7, BlendMode::Additive, &mut ss);
                assert_identical(&fast, &fs, &slow, &ss, &format!("mesh case {case}"));
            }
        }

        #[test]
        fn edges_on_pixel_centres_match_reference_and_cover_exactly_once() {
            // Vertices at half-integer coordinates put triangle edges exactly
            // through pixel centres: the adversarial case for the top-left
            // rule. Both paths must agree pixel-for-pixel AND the quad pair
            // must cover every interior pixel exactly once.
            let spot = flat_spot();
            for &(x0, y0, x1, y1) in &[
                (2.5, 2.5, 12.5, 12.5),
                (0.5, 0.5, 15.5, 9.5),
                (3.5, 1.5, 3.5, 1.5), // degenerate: rejected by both paths
                (4.5, 4.5, 11.5, 4.5),
            ] {
                let quad = [
                    Vertex::new(Vec2::new(x0, y0), 0.0, 0.0),
                    Vertex::new(Vec2::new(x1, y0), 1.0, 0.0),
                    Vertex::new(Vec2::new(x1, y1), 1.0, 1.0),
                    Vertex::new(Vec2::new(x0, y1), 0.0, 1.0),
                ];
                let mut fast = Texture::new(16, 16);
                let mut slow = Texture::new(16, 16);
                let mut fs = RasterStats::default();
                let mut ss = RasterStats::default();
                rasterize_quad(&mut fast, &spot, quad, 1.0, BlendMode::Additive, &mut fs);
                reference::rasterize_quad(
                    &mut slow,
                    &spot,
                    quad,
                    1.0,
                    BlendMode::Additive,
                    &mut ss,
                );
                assert_identical(
                    &fast,
                    &fs,
                    &slow,
                    &ss,
                    &format!("pixel-centre quad ({x0},{y0})-({x1},{y1})"),
                );
                let max = fast.data().iter().cloned().fold(0.0f32, f32::max);
                assert!(max <= 1.0 + 1e-6, "double coverage on exact edges: {max}");
            }
        }

        #[test]
        fn shared_diagonal_pairs_cover_exactly_once_for_random_splits() {
            // Two triangles on opposite sides of a shared edge: canonical
            // edge evaluation guarantees every texel — including centres
            // lying exactly on the seam — is covered by exactly one of them.
            // With a flat unit spot and additive blending, any texel above
            // 1.0 would prove double coverage.
            let spot = flat_spot();
            let mut rng = ChaCha8Rng::seed_from_u64(5150);
            for case in 0..100 {
                let b = random_vertex(&mut rng, 4.0, 60.0);
                let c = random_vertex(&mut rng, 4.0, 60.0);
                let a = random_vertex(&mut rng, 4.0, 60.0);
                // Reflect `a` across the line through b-c so the second
                // apex is guaranteed on the opposite side of the seam.
                let dir = c.position - b.position;
                let len2 = dir.dot(dir);
                if len2 < 1e-9 {
                    continue;
                }
                let rel = a.position - b.position;
                let proj = dir * (rel.dot(dir) / len2);
                let mirrored = b.position + proj * 2.0 - rel;
                let d = Vertex::new(mirrored, 0.5, 0.5);
                let mut target = Texture::new(64, 64);
                let mut stats = RasterStats::default();
                // The shared edge is traversed b->c in one triangle and
                // c->b in the other, as adjacent primitives submit it.
                rasterize_triangle(
                    &mut target,
                    &spot,
                    a,
                    b,
                    c,
                    1.0,
                    BlendMode::Additive,
                    &mut stats,
                );
                rasterize_triangle(
                    &mut target,
                    &spot,
                    d,
                    c,
                    b,
                    1.0,
                    BlendMode::Additive,
                    &mut stats,
                );
                let max = target.data().iter().cloned().fold(0.0f32, f32::max);
                assert!(
                    max <= 1.0 + 1e-6,
                    "case {case}: seam texel covered twice (max {max})"
                );
            }
        }

        #[test]
        fn all_blend_modes_match_reference() {
            use crate::blend::AlphaFactor;
            let spot = disc_spot_texture(16, 0.5);
            let modes = [
                BlendMode::Additive,
                BlendMode::Replace,
                BlendMode::Max,
                BlendMode::Alpha(AlphaFactor::new(0.3)),
            ];
            let quad = axis_aligned_spot_quad(Vec2::new(16.0, 16.0), 9.0);
            for mode in modes {
                let mut fast = Texture::new(32, 32);
                fast.fill(0.25);
                let mut slow = fast.clone();
                let mut fs = RasterStats::default();
                let mut ss = RasterStats::default();
                rasterize_quad(&mut fast, &spot, quad, 0.8, mode, &mut fs);
                reference::rasterize_quad(&mut slow, &spot, quad, 0.8, mode, &mut ss);
                assert_identical(&fast, &fs, &slow, &ss, &format!("blend mode {mode:?}"));
            }
        }

        #[test]
        fn footprint_mode_covers_identically_and_samples_closely() {
            use std::sync::Arc;
            // Footprint sampling must change *sampling only*: the covered
            // fragment set (count and positions) matches the exact path
            // exactly, and on a smooth disc texture the nearest samples stay
            // close to the bilinear ones.
            let spot = disc_spot_texture(32, 0.5);
            let pyramid = FootprintPyramid::build(Arc::new(spot.clone()));
            let mut rng = ChaCha8Rng::seed_from_u64(77);
            for case in 0..100 {
                let v0 = random_vertex(&mut rng, -10.0, 74.0);
                let v1 = random_vertex(&mut rng, -10.0, 74.0);
                let v2 = random_vertex(&mut rng, -10.0, 74.0);
                let mut exact = Texture::new(64, 64);
                let mut approx = Texture::new(64, 64);
                let mut es = RasterStats::default();
                let mut fs = RasterStats::default();
                rasterize_triangle(
                    &mut exact,
                    &spot,
                    v0,
                    v1,
                    v2,
                    1.0,
                    BlendMode::Additive,
                    &mut es,
                );
                fs.vertices += 3;
                rasterize_triangle_footprint_uncounted(
                    &mut approx,
                    &pyramid,
                    v0,
                    v1,
                    v2,
                    1.0,
                    BlendMode::Additive,
                    &mut fs,
                );
                assert_eq!(es, fs, "case {case}: coverage diverged");
                for y in 0..64 {
                    for x in 0..64 {
                        let e = exact.texel(x, y);
                        let a = approx.texel(x, y);
                        // Same coverage, different sampling: values may
                        // differ (nearest vs bilinear, and either can be 0
                        // at the disc rim) but never drift far on a smooth
                        // spot texture.
                        assert!(
                            (e - a).abs() < 0.5,
                            "case {case}: sample drifted at ({x},{y}): {e} vs {a}"
                        );
                    }
                }
            }
        }

        #[test]
        fn footprint_mode_on_flat_texture_is_exact() {
            use std::sync::Arc;
            // Every pyramid level of a constant texture is that constant, so
            // nearest and bilinear sampling agree exactly: flat-spot
            // footprint output must be bit-identical to the exact path.
            let spot = flat_spot();
            let pyramid = FootprintPyramid::build(Arc::new(spot.clone()));
            let mut rng = ChaCha8Rng::seed_from_u64(4242);
            for case in 0..50 {
                let quad = axis_aligned_spot_quad(
                    Vec2::new(rng.gen_range(-8.0..72.0), rng.gen_range(-8.0..72.0)),
                    rng.gen_range(0.5..20.0),
                );
                let intensity = rng.gen_range(-1.0f32..1.0);
                let mut exact = Texture::new(64, 64);
                let mut approx = Texture::new(64, 64);
                let mut es = RasterStats::default();
                let mut fs = RasterStats::default();
                rasterize_quad(
                    &mut exact,
                    &spot,
                    quad,
                    intensity,
                    BlendMode::Additive,
                    &mut es,
                );
                rasterize_quad_footprint(
                    &mut approx,
                    &pyramid,
                    quad,
                    intensity,
                    BlendMode::Additive,
                    &mut fs,
                );
                assert_eq!(
                    exact.absolute_difference(&approx),
                    0.0,
                    "case {case}: flat-texture footprint diverged"
                );
                assert_eq!(es, fs, "case {case}: stats diverged");
            }
        }

        #[test]
        fn footprint_shared_edges_still_cover_exactly_once() {
            use std::sync::Arc;
            // Same seam guarantee as the exact path: footprint mode reuses
            // the coverage predicate, so a flat-spot mesh must never
            // double-blend its internal edges.
            let spot = flat_spot();
            let pyramid = FootprintPyramid::build(Arc::new(spot.clone()));
            let mesh = crate::mesh::rectangle_mesh(5, 4, 8.0, 8.0, 40.0, 40.0);
            let mut target = Texture::new(64, 64);
            let mut stats = RasterStats::default();
            mesh.rasterize_footprint(&mut target, &pyramid, 1.0, BlendMode::Additive, &mut stats);
            let max = target.data().iter().cloned().fold(0.0f32, f32::max);
            assert!(max <= 1.0 + 1e-5, "footprint seam double-blended: {max}");
            assert!((target.texel(20, 20) - 1.0).abs() < 1e-6);
        }

        #[test]
        fn uniform_spot_rows_take_constant_fill_and_match_reference() {
            // A flat spot texture triggers the nearest-sample/uniform-row
            // fast path; the result must still equal the reference exactly.
            let spot = flat_spot();
            let quad = axis_aligned_spot_quad(Vec2::new(20.0, 20.0), 13.0);
            let mut fast = Texture::new(48, 48);
            let mut slow = Texture::new(48, 48);
            let mut fs = RasterStats::default();
            let mut ss = RasterStats::default();
            rasterize_quad(&mut fast, &spot, quad, 1.5, BlendMode::Additive, &mut fs);
            reference::rasterize_quad(&mut slow, &spot, quad, 1.5, BlendMode::Additive, &mut ss);
            assert_identical(&fast, &fs, &slow, &ss, "uniform fast path");
        }
    }
}
