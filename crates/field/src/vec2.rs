//! Two-dimensional vector and point arithmetic.
//!
//! Spot noise operates on 2-D slices of (possibly 3-D) data sets, so a small,
//! `Copy`, `f64`-based vector type is the work-horse of the whole workspace.
//! The type is deliberately minimal: only the operations the visualization
//! pipeline actually needs (affine maps, rotation, norms, lerp) are provided.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A 2-D vector (also used as a point) with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec2 {
    /// Horizontal component.
    pub x: f64,
    /// Vertical component.
    pub y: f64,
}

impl Vec2 {
    /// The zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };
    /// The unit vector along x.
    pub const UNIT_X: Vec2 = Vec2 { x: 1.0, y: 0.0 };
    /// The unit vector along y.
    pub const UNIT_Y: Vec2 = Vec2 { x: 0.0, y: 1.0 };

    /// Creates a vector from its components.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Creates a vector with both components set to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Vec2 { x: v, y: v }
    }

    /// Creates a unit vector at `angle` radians from the positive x axis.
    #[inline]
    pub fn from_angle(angle: f64) -> Self {
        Vec2::new(angle.cos(), angle.sin())
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (the z component of the 3-D cross product).
    #[inline]
    pub fn cross(self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm (avoids the square root).
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Distance to another point.
    #[inline]
    pub fn distance(self, other: Vec2) -> f64 {
        (self - other).norm()
    }

    /// Returns the vector scaled to unit length, or `Vec2::ZERO` when the
    /// norm is too small to normalise reliably.
    #[inline]
    pub fn normalized(self) -> Vec2 {
        let n = self.norm();
        if n > 1e-300 {
            self / n
        } else {
            Vec2::ZERO
        }
    }

    /// The vector rotated by 90 degrees counter-clockwise.
    #[inline]
    pub fn perp(self) -> Vec2 {
        Vec2::new(-self.y, self.x)
    }

    /// The angle of the vector in radians, in `(-pi, pi]`.
    #[inline]
    pub fn angle(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Rotates the vector by `angle` radians counter-clockwise.
    #[inline]
    pub fn rotated(self, angle: f64) -> Vec2 {
        let (s, c) = angle.sin_cos();
        Vec2::new(c * self.x - s * self.y, s * self.x + c * self.y)
    }

    /// Component-wise product.
    #[inline]
    pub fn hadamard(self, other: Vec2) -> Vec2 {
        Vec2::new(self.x * other.x, self.y * other.y)
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: Vec2) -> Vec2 {
        Vec2::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: Vec2) -> Vec2 {
        Vec2::new(self.x.max(other.x), self.y.max(other.y))
    }

    /// Clamps both components into `[lo, hi]` (component-wise bounds).
    #[inline]
    pub fn clamp(self, lo: Vec2, hi: Vec2) -> Vec2 {
        self.max(lo).min(hi)
    }

    /// Linear interpolation: `self` at `t == 0`, `other` at `t == 1`.
    #[inline]
    pub fn lerp(self, other: Vec2, t: f64) -> Vec2 {
        self + (other - self) * t
    }

    /// True when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    #[inline]
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Vec2 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec2) {
        *self = *self + rhs;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Vec2 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec2) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

impl Mul<Vec2> for f64 {
    type Output = Vec2;
    #[inline]
    fn mul(self, rhs: Vec2) -> Vec2 {
        rhs * self
    }
}

impl MulAssign<f64> for Vec2 {
    #[inline]
    fn mul_assign(&mut self, rhs: f64) {
        *self = *self * rhs;
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn div(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x / rhs, self.y / rhs)
    }
}

impl DivAssign<f64> for Vec2 {
    #[inline]
    fn div_assign(&mut self, rhs: f64) {
        *self = *self / rhs;
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    #[inline]
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

impl From<(f64, f64)> for Vec2 {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Vec2::new(x, y)
    }
}

impl From<Vec2> for (f64, f64) {
    #[inline]
    fn from(v: Vec2) -> Self {
        (v.x, v.y)
    }
}

/// A 2x2 matrix used for spot transformations (scaling along the flow
/// direction, rotation into the flow frame).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mat2 {
    /// Row-major entry (0,0).
    pub a: f64,
    /// Row-major entry (0,1).
    pub b: f64,
    /// Row-major entry (1,0).
    pub c: f64,
    /// Row-major entry (1,1).
    pub d: f64,
}

impl Mat2 {
    /// Identity matrix.
    pub const IDENTITY: Mat2 = Mat2 {
        a: 1.0,
        b: 0.0,
        c: 0.0,
        d: 1.0,
    };

    /// Creates a matrix from row-major entries.
    #[inline]
    pub const fn new(a: f64, b: f64, c: f64, d: f64) -> Self {
        Mat2 { a, b, c, d }
    }

    /// Rotation by `angle` radians.
    #[inline]
    pub fn rotation(angle: f64) -> Self {
        let (s, c) = angle.sin_cos();
        Mat2::new(c, -s, s, c)
    }

    /// Anisotropic scaling.
    #[inline]
    pub fn scale(sx: f64, sy: f64) -> Self {
        Mat2::new(sx, 0.0, 0.0, sy)
    }

    /// Matrix-vector product.
    #[inline]
    pub fn apply(self, v: Vec2) -> Vec2 {
        Vec2::new(self.a * v.x + self.b * v.y, self.c * v.x + self.d * v.y)
    }

    /// Matrix-matrix product `self * rhs`.
    #[inline]
    pub fn compose(self, rhs: Mat2) -> Mat2 {
        Mat2::new(
            self.a * rhs.a + self.b * rhs.c,
            self.a * rhs.b + self.b * rhs.d,
            self.c * rhs.a + self.d * rhs.c,
            self.c * rhs.b + self.d * rhs.d,
        )
    }

    /// Determinant.
    #[inline]
    pub fn det(self) -> f64 {
        self.a * self.d - self.b * self.c
    }

    /// Inverse, or `None` when the matrix is singular.
    #[inline]
    pub fn inverse(self) -> Option<Mat2> {
        let det = self.det();
        if det.abs() < 1e-300 {
            return None;
        }
        let inv = 1.0 / det;
        Some(Mat2::new(
            self.d * inv,
            -self.b * inv,
            -self.c * inv,
            self.a * inv,
        ))
    }
}

impl Default for Mat2 {
    fn default() -> Self {
        Mat2::IDENTITY
    }
}

impl Mul<Vec2> for Mat2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, rhs: Vec2) -> Vec2 {
        self.apply(rhs)
    }
}

impl Mul<Mat2> for Mat2 {
    type Output = Mat2;
    #[inline]
    fn mul(self, rhs: Mat2) -> Mat2 {
        self.compose(rhs)
    }
}

/// Axis-aligned bounding rectangle in field coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    /// Lower-left corner.
    pub min: Vec2,
    /// Upper-right corner.
    pub max: Vec2,
}

impl Rect {
    /// Creates a rectangle; corners are reordered so `min <= max` holds.
    pub fn new(a: Vec2, b: Vec2) -> Self {
        Rect {
            min: a.min(b),
            max: a.max(b),
        }
    }

    /// The unit square `[0,1] x [0,1]`.
    pub const UNIT: Rect = Rect {
        min: Vec2::ZERO,
        max: Vec2 { x: 1.0, y: 1.0 },
    };

    /// Width (x extent).
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height (y extent).
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// The extent as a vector `(width, height)`.
    #[inline]
    pub fn size(&self) -> Vec2 {
        self.max - self.min
    }

    /// Geometric centre.
    #[inline]
    pub fn center(&self) -> Vec2 {
        (self.min + self.max) * 0.5
    }

    /// Area of the rectangle.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// True when `p` is inside (inclusive of the boundary).
    #[inline]
    pub fn contains(&self, p: Vec2) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// True when the two rectangles overlap (inclusive of shared edges).
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
    }

    /// Returns the rectangle grown by `margin` on every side.
    #[inline]
    pub fn expanded(&self, margin: f64) -> Rect {
        Rect {
            min: self.min - Vec2::splat(margin),
            max: self.max + Vec2::splat(margin),
        }
    }

    /// Clamps `p` into the rectangle.
    #[inline]
    pub fn clamp(&self, p: Vec2) -> Vec2 {
        p.clamp(self.min, self.max)
    }

    /// Maps a point given in unit coordinates (`[0,1]^2`) into the rectangle.
    #[inline]
    pub fn from_unit(&self, uv: Vec2) -> Vec2 {
        self.min + uv.hadamard(self.size())
    }

    /// Maps a point in the rectangle to unit coordinates.
    ///
    /// Degenerate (zero-extent) axes map to `0.0`.
    #[inline]
    pub fn to_unit(&self, p: Vec2) -> Vec2 {
        let s = self.size();
        Vec2::new(
            if s.x.abs() > 0.0 {
                (p.x - self.min.x) / s.x
            } else {
                0.0
            },
            if s.y.abs() > 0.0 {
                (p.y - self.min.y) / s.y
            } else {
                0.0
            },
        )
    }

    /// Splits the rectangle into `nx` by `ny` equal tiles, returned row-major
    /// from the bottom-left.
    pub fn tiles(&self, nx: usize, ny: usize) -> Vec<Rect> {
        assert!(nx > 0 && ny > 0, "tile grid must be non-empty");
        let mut out = Vec::with_capacity(nx * ny);
        let dx = self.width() / nx as f64;
        let dy = self.height() / ny as f64;
        for j in 0..ny {
            for i in 0..nx {
                let min = Vec2::new(self.min.x + i as f64 * dx, self.min.y + j as f64 * dy);
                let max = Vec2::new(min.x + dx, min.y + dy);
                out.push(Rect { min, max });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn vector_arithmetic_basics() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -4.0);
        assert_eq!(a + b, Vec2::new(4.0, -2.0));
        assert_eq!(a - b, Vec2::new(-2.0, 6.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Vec2::new(0.5, 1.0));
        assert_eq!(-a, Vec2::new(-1.0, -2.0));
    }

    #[test]
    fn dot_cross_norm() {
        let a = Vec2::new(3.0, 4.0);
        assert!(approx(a.norm(), 5.0));
        assert!(approx(a.norm_sq(), 25.0));
        assert!(approx(a.dot(Vec2::new(1.0, 0.0)), 3.0));
        assert!(approx(Vec2::UNIT_X.cross(Vec2::UNIT_Y), 1.0));
        assert!(approx(Vec2::UNIT_Y.cross(Vec2::UNIT_X), -1.0));
    }

    #[test]
    fn normalisation_handles_zero() {
        assert_eq!(Vec2::ZERO.normalized(), Vec2::ZERO);
        let v = Vec2::new(0.0, 2.5).normalized();
        assert!(approx(v.norm(), 1.0));
        assert!(approx(v.y, 1.0));
    }

    #[test]
    fn rotation_and_perp() {
        let v = Vec2::UNIT_X.rotated(std::f64::consts::FRAC_PI_2);
        assert!(approx(v.x, 0.0) && approx(v.y, 1.0));
        assert_eq!(Vec2::UNIT_X.perp(), Vec2::UNIT_Y);
        let angle = Vec2::new(1.0, 1.0).angle();
        assert!(approx(angle, std::f64::consts::FRAC_PI_4));
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(2.0, 4.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec2::new(1.0, 2.0));
    }

    #[test]
    fn mat2_rotation_preserves_norm() {
        let m = Mat2::rotation(1.234);
        let v = Vec2::new(3.0, -7.0);
        assert!(approx((m * v).norm(), v.norm()));
        assert!(approx(m.det(), 1.0));
    }

    #[test]
    fn mat2_inverse_roundtrip() {
        let m = Mat2::new(2.0, 1.0, -1.0, 3.0);
        let inv = m.inverse().unwrap();
        let id = m * inv;
        assert!(approx(id.a, 1.0) && approx(id.d, 1.0));
        assert!(approx(id.b, 0.0) && approx(id.c, 0.0));
        assert!(Mat2::new(1.0, 2.0, 2.0, 4.0).inverse().is_none());
    }

    #[test]
    fn mat2_scale_and_compose() {
        let s = Mat2::scale(2.0, 3.0);
        assert_eq!(s * Vec2::new(1.0, 1.0), Vec2::new(2.0, 3.0));
        let r = Mat2::rotation(std::f64::consts::FRAC_PI_2);
        let c = r * s;
        let v = c * Vec2::UNIT_X;
        assert!(approx(v.x, 0.0) && approx(v.y, 2.0));
    }

    #[test]
    fn rect_contains_and_clamp() {
        let r = Rect::new(Vec2::new(0.0, 0.0), Vec2::new(2.0, 1.0));
        assert!(r.contains(Vec2::new(1.0, 0.5)));
        assert!(!r.contains(Vec2::new(3.0, 0.5)));
        assert_eq!(r.clamp(Vec2::new(5.0, -1.0)), Vec2::new(2.0, 0.0));
        assert!(approx(r.area(), 2.0));
        assert_eq!(r.center(), Vec2::new(1.0, 0.5));
    }

    #[test]
    fn rect_reorders_corners() {
        let r = Rect::new(Vec2::new(2.0, 3.0), Vec2::new(-1.0, 1.0));
        assert_eq!(r.min, Vec2::new(-1.0, 1.0));
        assert_eq!(r.max, Vec2::new(2.0, 3.0));
    }

    #[test]
    fn rect_unit_mapping_roundtrip() {
        let r = Rect::new(Vec2::new(-2.0, 1.0), Vec2::new(4.0, 5.0));
        let p = Vec2::new(1.0, 2.0);
        let uv = r.to_unit(p);
        let q = r.from_unit(uv);
        assert!(approx(p.x, q.x) && approx(p.y, q.y));
        assert_eq!(r.from_unit(Vec2::ZERO), r.min);
        assert_eq!(r.from_unit(Vec2::new(1.0, 1.0)), r.max);
    }

    #[test]
    fn rect_tiles_partition_area() {
        let r = Rect::new(Vec2::ZERO, Vec2::new(4.0, 2.0));
        let tiles = r.tiles(4, 2);
        assert_eq!(tiles.len(), 8);
        let total: f64 = tiles.iter().map(|t| t.area()).sum();
        assert!(approx(total, r.area()));
        // Tiles are disjoint except for shared edges and cover the rect.
        assert!(tiles.iter().all(|t| r.contains(t.min) && r.contains(t.max)));
    }

    #[test]
    fn rect_intersects() {
        let a = Rect::new(Vec2::ZERO, Vec2::new(1.0, 1.0));
        let b = Rect::new(Vec2::new(0.5, 0.5), Vec2::new(2.0, 2.0));
        let c = Rect::new(Vec2::new(1.5, 1.5), Vec2::new(2.0, 2.0));
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        assert!(a.expanded(1.0).intersects(&c));
    }
}
