//! Baseline comparison: sequential synthesis (eq. 2.1) vs divide-and-conquer
//! (eq. 3.2) vs the CPU-only rayon executor that bypasses the graphics
//! subsystem (the paper's "different architectures" discussion).

use criterion::{criterion_group, criterion_main, Criterion};
use softpipe::machine::MachineConfig;
use spotnoise::dnc::{synthesize_cpu_only, synthesize_dnc};
use spotnoise::synth::synthesize_sequential;
use spotnoise_bench::{analytic_small, atmospheric_scaled, Workload};

fn bench_workload(c: &mut Criterion, workload: &Workload, label: &str) {
    let mut group = c.benchmark_group(format!("seq_vs_dnc/{label}"));
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("sequential", |b| {
        b.iter(|| synthesize_sequential(workload.field.as_ref(), &workload.spots, &workload.config))
    });
    let machine = MachineConfig::onyx2_full();
    group.bench_function("dnc_8p_4g", |b| {
        b.iter(|| {
            synthesize_dnc(
                workload.field.as_ref(),
                &workload.spots,
                &workload.config,
                &machine,
            )
        })
    });
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    group.bench_function("cpu_only_rayon", |b| {
        b.iter(|| {
            synthesize_cpu_only(
                workload.field.as_ref(),
                &workload.spots,
                &workload.config,
                threads,
            )
        })
    });
    group.finish();
}

fn bench_seq_vs_dnc(c: &mut Criterion) {
    bench_workload(c, &analytic_small(), "analytic_small");
    bench_workload(c, &atmospheric_scaled(), "atmospheric_scaled");
}

criterion_group!(benches, bench_seq_vs_dnc);
criterion_main!(benches);
