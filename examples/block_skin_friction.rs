//! Separation on the block: default vs advected spot noise (paper Figure 2).
//!
//! ```text
//! cargo run --release -p spotnoise-apps --example block_skin_friction
//! ```
//!
//! Reproduces the paper's Figure-2 experiment: the skin-friction field on the
//! block is visualised twice — once with default spot noise (independent
//! random spot positions every frame) and once with particle-advected spot
//! positions and a tuned life cycle — showing how adjusting those parameters
//! highlights the separation line where the flow splits to pass over or
//! under the block.

use flowfield::particles::ParticleOptions;
use flowsim::{attachment_height, pattern_from_dns, skin_friction_field, DnsConfig, DnsSolver};
use flowviz::{texture_to_framebuffer, Colormap};
use spotnoise::advect::PositionMode;
use spotnoise::config::{SpotKind, SynthesisConfig};
use spotnoise::pipeline::{ExecutionMode, Pipeline};

fn main() {
    // Run the DNS long enough for a meaningful stagnation pattern.
    println!("running the DNS substitute to measure the attachment line ...");
    let mut dns = DnsSolver::new(DnsConfig::small_test());
    for _ in 0..150 {
        dns.step(0.02);
    }
    let h = attachment_height(&dns);
    println!("attachment height on the front face: {h:.2} (fraction of face height)");

    let pattern = pattern_from_dns(&dns);
    let field = skin_friction_field(&pattern, 64, 64);

    let cfg = SynthesisConfig {
        texture_size: 384,
        spot_count: 2000,
        spot_radius: 0.018,
        spot_kind: SpotKind::Bent { rows: 12, cols: 5 },
        ..SynthesisConfig::small_test()
    };

    for (mode, label, lifetime) in [
        (PositionMode::Random, "default", 50u32),
        (PositionMode::Advected, "advected", 25u32),
    ] {
        let mut pipeline = Pipeline::with_animator(
            cfg,
            ExecutionMode::Sequential,
            field.domain(),
            ParticleOptions {
                count: cfg.spot_count,
                mean_lifetime: lifetime,
                ..Default::default()
            },
            mode,
        );
        if mode == PositionMode::Advected {
            // The life-cycle fade is one of the parameters the paper adjusts
            // to bring out the separation line.
            pipeline.animator_mut().set_fade_with_age(true);
        }
        let mut frame = pipeline.advance(&field, 0.02, 0);
        for _ in 0..10 {
            frame = pipeline.advance(&field, 0.02, 0);
        }
        println!(
            "{label:>9} spots: {:.2} textures/s measured over the last frame",
            frame.metrics.measured_textures_per_second()
        );
        let fb = texture_to_framebuffer(
            &frame.display,
            cfg.texture_size,
            cfg.texture_size,
            Colormap::Grayscale,
        );
        let path = std::env::temp_dir().join(format!("spotnoise_skin_friction_{label}.ppm"));
        fb.save_ppm(&path).expect("failed to write image");
        println!("wrote {}", path.display());
    }
}
