//! # spotnoise-service — the multi-session synthesis server
//!
//! The paper's whole point is *interactive* spot noise: users steer a
//! running simulation and receive freshly synthesized textures every frame.
//! This crate is the layer that serves that workload to many concurrent
//! clients — the master/slave service topology the paper runs on the Onyx2,
//! lifted into a long-lived server process over the
//! [`Scheduler`](spotnoise::scheduler::Scheduler) engine:
//!
//! * [`session`] — the session registry: one
//!   [`Pipeline`](spotnoise::pipeline::Pipeline) per session, keyed ids,
//!   create/advance/steer/close, idle eviction;
//! * [`channel`] — shared-field broadcast: one advected spot population and
//!   one synthesis clock per distinct `(field, config, seed)` feeding every
//!   subscribed session, so synthesis cost is O(fields) while delivery is a
//!   fan-out of cached `Arc` frames (steering a shared session forks it
//!   into a private one);
//! * [`cache`] — an LRU frame cache keyed by
//!   `(field hash, config hash, seed, frame index)`, so repeated or
//!   steered-back requests skip synthesis entirely;
//! * [`queue`] — admission control: bounded depth, per-session fairness,
//!   shed-with-`503 Busy` beyond a watermark so overload degrades instead
//!   of OOMing;
//! * [`pressure`] — the graceful-degradation ladder: a tri-state
//!   [`PressureGauge`](pressure::PressureGauge) over queue depth and
//!   queue-wait latency that disables channel look-ahead when elevated and
//!   serves stale frontiers / drops to footprint sampling when saturated,
//!   so overload degrades *quality* before it degrades *availability*;
//! * [`node`] — the transport-free core: one [`NodeCore`](node::NodeCore)
//!   owns all of the above plus the synthesis workers, with no socket in
//!   sight — the seam the cluster tier is built on (and a peer frame-cache
//!   lookup that lets sibling nodes serve each other's cached frames);
//! * [`http`] + [`server`] — a std-only HTTP/1.1 codec/dispatch shell over
//!   [`std::net::TcpListener`] with endpoints for session CRUD, frame fetch
//!   (raw little-endian `f32` texture bytes), `/stats` (JSON), `/metrics`
//!   (Prometheus text over [`spotnoise::telemetry`] histograms) and
//!   `/trace` (Chrome trace-event JSON from the frame-lifecycle span ring);
//! * [`cluster`] + [`router`] — the sharded cluster tier: a consistent-hash
//!   ring placing sessions (and shared-field channels) on worker nodes, a
//!   front-tier router proxying the full API across them, cluster-view
//!   `/stats`, `/metrics` and `/healthz` aggregation, and degraded routing
//!   around saturated nodes;
//! * [`client`] — the blocking client the router, the load bench and the
//!   integration tests drive servers with (with per-address connection
//!   pooling for proxy use);
//! * [`spec`] — field/session specifications and their stable content
//!   hashes.
//!
//! ## Frame model
//!
//! Frames of a session are deterministic: frame `i` is the texture after
//! `i + 1` fixed-`dt` advances from the seed, so a frame is a pure function
//! of `(field, config, index)`. Rewinding replays from the seed; steering
//! rebinds the field and restarts the clock. That purity is what makes the
//! cache key sound — and makes steering *back* to a previous field a pure
//! cache hit.
//!
//! ## Quick start
//!
//! ```no_run
//! use spotnoise_service::{serve, ServiceOptions};
//!
//! let handle = serve("127.0.0.1:7997", ServiceOptions::default()).unwrap();
//! println!("listening on http://{}", handle.addr());
//! handle.join(); // runs until POST /shutdown
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod channel;
pub mod client;
pub mod cluster;
pub mod http;
pub mod node;
pub mod pressure;
pub mod queue;
pub mod router;
pub mod server;
pub mod session;
pub mod spec;

pub use cache::{FrameCache, FrameKey};
pub use channel::{ChannelKey, ChannelRegistry, ChannelSubscription, ChannelTotals, FieldChannel};
pub use client::{
    ClientError, ClientPool, FetchedFrame, FrameStream, PooledClient, RetryPolicy, ServiceClient,
    StreamedFrame,
};
pub use cluster::{ClusterSessionId, HashRing};
pub use node::{FrameResult, NodeCore, ServiceError, ServiceOptions, ServiceTelemetry};
pub use pressure::{PressureConfig, PressureCounters, PressureGauge, PressureState};
pub use queue::{AdmissionConfig, AdmissionError, FrameQueue, QueueStats};
pub use router::{serve_router, Router, RouterHandle, RouterOptions};
pub use server::{serve, FrontHandle, Frontend, Service, ServiceHandle};
pub use session::{ServedFrame, Session, SessionRegistry};
pub use spec::{FieldSpec, SessionSpec};
