//! Triangle scan conversion with texture mapping.
//!
//! This is the heart of the software "graphics pipe": it does what the
//! InfiniteReality did for the paper — transform already-computed vertices
//! into fragments, sample the spot texture, and blend the result into the
//! target texture. The implementation is a straightforward barycentric
//! half-space rasterizer; it also counts vertices and fragments so the cost
//! model can charge simulated pipe time for the work performed.

use crate::blend::BlendMode;
use crate::texture::Texture;
use flowfield::Vec2;
use serde::{Deserialize, Serialize};

/// A vertex as submitted to the graphics pipe: a position in *texture pixel
/// coordinates* and a texture coordinate into the bound spot texture.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Vertex {
    /// Position in target-texture pixel coordinates.
    pub position: Vec2,
    /// Texture coordinate (u, v) in `[0, 1]` into the bound spot texture.
    pub uv: (f32, f32),
}

impl Vertex {
    /// Creates a vertex.
    pub fn new(position: Vec2, u: f32, v: f32) -> Self {
        Vertex {
            position,
            uv: (u, v),
        }
    }
}

/// Counters of the geometry and fragment work a pipe performed; inputs of
/// the simulated-time cost model and of the bus-bandwidth accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RasterStats {
    /// Vertices transformed.
    pub vertices: u64,
    /// Triangles set up (after trivially-degenerate rejection).
    pub triangles: u64,
    /// Fragments generated (texels touched, before blending).
    pub fragments: u64,
    /// Primitives rejected because they were degenerate or fully outside.
    pub rejected: u64,
}

impl RasterStats {
    /// Accumulates the counters of another stats block.
    pub fn merge(&mut self, other: &RasterStats) {
        self.vertices += other.vertices;
        self.triangles += other.triangles;
        self.fragments += other.fragments;
        self.rejected += other.rejected;
    }
}

#[inline]
fn edge(a: Vec2, b: Vec2, p: Vec2) -> f64 {
    (b - a).cross(p - a)
}

/// Top-left fill rule: with counter-clockwise winding, a pixel centre lying
/// exactly on an edge belongs to the triangle only when the edge is a "left"
/// edge (going upward) or a "top" edge (horizontal, going leftward). This
/// guarantees that adjacent triangles sharing an edge — the two halves of a
/// spot quad, or neighbouring bent-spot mesh cells — cover every texel
/// exactly once, which additive blending requires for correctness.
#[inline]
fn edge_is_top_left(a: Vec2, b: Vec2) -> bool {
    let d = b - a;
    d.y > 0.0 || (d.y == 0.0 && d.x < 0.0)
}

/// Rasterizes a single textured triangle into `target`.
///
/// The spot texture is sampled bilinearly at the interpolated uv coordinate,
/// multiplied by `intensity` (the random spot weight `aᵢ`) and blended into
/// the target using `blend`.
pub fn rasterize_triangle(
    target: &mut Texture,
    spot_texture: &Texture,
    v0: Vertex,
    v1: Vertex,
    v2: Vertex,
    intensity: f32,
    blend: BlendMode,
    stats: &mut RasterStats,
) {
    stats.vertices += 3;
    let area = edge(v0.position, v1.position, v2.position);
    if area.abs() < 1e-12 {
        stats.rejected += 1;
        return;
    }
    // Normalise to counter-clockwise winding so the fill rule is consistent.
    let (v0, v1, v2) = if area > 0.0 { (v0, v1, v2) } else { (v0, v2, v1) };
    let area = area.abs();

    // Bounding box clipped to the target.
    let min_x = v0.position.x.min(v1.position.x).min(v2.position.x);
    let max_x = v0.position.x.max(v1.position.x).max(v2.position.x);
    let min_y = v0.position.y.min(v1.position.y).min(v2.position.y);
    let max_y = v0.position.y.max(v1.position.y).max(v2.position.y);
    if max_x < 0.0 || max_y < 0.0 || min_x >= target.width() as f64 || min_y >= target.height() as f64
    {
        stats.rejected += 1;
        return;
    }
    stats.triangles += 1;
    let x0 = (min_x.floor().max(0.0)) as usize;
    let y0 = (min_y.floor().max(0.0)) as usize;
    let x1 = (max_x.ceil().min(target.width() as f64 - 1.0)) as usize;
    let y1 = (max_y.ceil().min(target.height() as f64 - 1.0)) as usize;

    // Zero-weight acceptance per edge under the top-left rule.
    let accept0 = edge_is_top_left(v1.position, v2.position);
    let accept1 = edge_is_top_left(v2.position, v0.position);
    let accept2 = edge_is_top_left(v0.position, v1.position);

    let inv_area = 1.0 / area;
    for py in y0..=y1 {
        for px in x0..=x1 {
            let p = Vec2::new(px as f64 + 0.5, py as f64 + 0.5);
            let e0 = edge(v1.position, v2.position, p);
            let e1 = edge(v2.position, v0.position, p);
            let e2 = edge(v0.position, v1.position, p);
            let inside = (e0 > 0.0 || (e0 == 0.0 && accept0))
                && (e1 > 0.0 || (e1 == 0.0 && accept1))
                && (e2 > 0.0 || (e2 == 0.0 && accept2));
            if !inside {
                continue;
            }
            let w0 = e0 * inv_area;
            let w1 = e1 * inv_area;
            let w2 = e2 * inv_area;
            let u = w0 as f32 * v0.uv.0 + w1 as f32 * v1.uv.0 + w2 as f32 * v2.uv.0;
            let v = w0 as f32 * v0.uv.1 + w1 as f32 * v1.uv.1 + w2 as f32 * v2.uv.1;
            let sample = spot_texture.sample_bilinear(u, v) * intensity;
            let dst = target.texel(px, py);
            *target.texel_mut(px, py) = blend.apply(dst, sample);
            stats.fragments += 1;
        }
    }
}

/// Rasterizes a textured quadrilateral (the standard four-vertex spot) as two
/// triangles. Vertices must be supplied in perimeter order.
pub fn rasterize_quad(
    target: &mut Texture,
    spot_texture: &Texture,
    quad: [Vertex; 4],
    intensity: f32,
    blend: BlendMode,
    stats: &mut RasterStats,
) {
    rasterize_triangle(
        target,
        spot_texture,
        quad[0],
        quad[1],
        quad[2],
        intensity,
        blend,
        stats,
    );
    rasterize_triangle(
        target,
        spot_texture,
        quad[0],
        quad[2],
        quad[3],
        intensity,
        blend,
        stats,
    );
    // A quad is submitted as 4 vertices on the bus even though the two
    // triangles share an edge; correct the double-counted pair.
    stats.vertices = stats.vertices.saturating_sub(2);
}

/// Builds the axis-aligned quad covering a disc spot of radius `radius`
/// centred at `center` (in pixel coordinates), with uv spanning the full spot
/// texture.
pub fn axis_aligned_spot_quad(center: Vec2, radius: f64) -> [Vertex; 4] {
    let r = radius;
    [
        Vertex::new(center + Vec2::new(-r, -r), 0.0, 0.0),
        Vertex::new(center + Vec2::new(r, -r), 1.0, 0.0),
        Vertex::new(center + Vec2::new(r, r), 1.0, 1.0),
        Vertex::new(center + Vec2::new(-r, r), 0.0, 1.0),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::texture::disc_spot_texture;

    fn flat_spot() -> Texture {
        let mut t = Texture::new(8, 8);
        t.fill(1.0);
        t
    }

    #[test]
    fn triangle_covers_expected_area() {
        let mut target = Texture::new(32, 32);
        let spot = flat_spot();
        let mut stats = RasterStats::default();
        // Right triangle covering half of a 16x16 square.
        let v0 = Vertex::new(Vec2::new(0.0, 0.0), 0.0, 0.0);
        let v1 = Vertex::new(Vec2::new(16.0, 0.0), 1.0, 0.0);
        let v2 = Vertex::new(Vec2::new(0.0, 16.0), 0.0, 1.0);
        rasterize_triangle(&mut target, &spot, v0, v1, v2, 1.0, BlendMode::Additive, &mut stats);
        assert_eq!(stats.triangles, 1);
        assert_eq!(stats.vertices, 3);
        // About half of 256 texels should be covered.
        assert!(stats.fragments > 100 && stats.fragments < 160, "{}", stats.fragments);
        // Covered texels got the intensity, others stayed zero.
        assert!(target.texel(2, 2) > 0.0);
        assert_eq!(target.texel(30, 30), 0.0);
    }

    #[test]
    fn winding_does_not_matter() {
        let spot = flat_spot();
        let v0 = Vertex::new(Vec2::new(2.0, 2.0), 0.0, 0.0);
        let v1 = Vertex::new(Vec2::new(12.0, 2.0), 1.0, 0.0);
        let v2 = Vertex::new(Vec2::new(2.0, 12.0), 0.0, 1.0);
        let mut a = Texture::new(16, 16);
        let mut b = Texture::new(16, 16);
        let mut s = RasterStats::default();
        rasterize_triangle(&mut a, &spot, v0, v1, v2, 1.0, BlendMode::Additive, &mut s);
        rasterize_triangle(&mut b, &spot, v0, v2, v1, 1.0, BlendMode::Additive, &mut s);
        assert_eq!(a.absolute_difference(&b), 0.0);
    }

    #[test]
    fn degenerate_triangle_rejected() {
        let mut target = Texture::new(16, 16);
        let spot = flat_spot();
        let mut stats = RasterStats::default();
        let v = Vertex::new(Vec2::new(4.0, 4.0), 0.0, 0.0);
        rasterize_triangle(&mut target, &spot, v, v, v, 1.0, BlendMode::Additive, &mut stats);
        assert_eq!(stats.triangles, 0);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.fragments, 0);
    }

    #[test]
    fn offscreen_triangle_rejected() {
        let mut target = Texture::new(16, 16);
        let spot = flat_spot();
        let mut stats = RasterStats::default();
        let v0 = Vertex::new(Vec2::new(100.0, 100.0), 0.0, 0.0);
        let v1 = Vertex::new(Vec2::new(110.0, 100.0), 1.0, 0.0);
        let v2 = Vertex::new(Vec2::new(100.0, 110.0), 0.0, 1.0);
        rasterize_triangle(&mut target, &spot, v0, v1, v2, 1.0, BlendMode::Additive, &mut stats);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.fragments, 0);
    }

    #[test]
    fn quad_covers_square_and_counts_four_vertices() {
        let mut target = Texture::new(32, 32);
        let spot = flat_spot();
        let mut stats = RasterStats::default();
        let quad = axis_aligned_spot_quad(Vec2::new(16.0, 16.0), 8.0);
        rasterize_quad(&mut target, &spot, quad, 2.0, BlendMode::Additive, &mut stats);
        assert_eq!(stats.vertices, 4);
        assert_eq!(stats.triangles, 2);
        // The 16x16 square around the centre is filled with intensity 2.
        assert!((target.texel(16, 16) - 2.0).abs() < 1e-6);
        assert!((target.texel(10, 20) - 2.0).abs() < 1e-6);
        assert_eq!(target.texel(2, 2), 0.0);
    }

    #[test]
    fn quad_interior_fragments_not_double_blended_on_diagonal() {
        // Additive blending would show a bright diagonal seam if the shared
        // edge of the two triangles were rasterized twice. Count fragments
        // instead: they must equal the covered area, not exceed it much.
        let mut target = Texture::new(64, 64);
        let spot = flat_spot();
        let mut stats = RasterStats::default();
        let quad = axis_aligned_spot_quad(Vec2::new(32.0, 32.0), 16.0);
        rasterize_quad(&mut target, &spot, quad, 1.0, BlendMode::Additive, &mut stats);
        let max = target.data().iter().cloned().fold(0.0f32, f32::max);
        assert!(max <= 1.0 + 1e-5, "diagonal seam double-blended: {max}");
    }

    #[test]
    fn spot_texture_modulates_fragment_intensity() {
        let mut target = Texture::new(64, 64);
        let spot = disc_spot_texture(32, 0.4);
        let mut stats = RasterStats::default();
        let quad = axis_aligned_spot_quad(Vec2::new(32.0, 32.0), 16.0);
        rasterize_quad(&mut target, &spot, quad, 1.0, BlendMode::Additive, &mut stats);
        // Centre of the spot is bright, the quad corner (outside the disc) is
        // nearly zero.
        assert!(target.texel(32, 32) > 0.9);
        assert!(target.texel(18, 18) < 0.1);
    }

    #[test]
    fn negative_intensity_darkens() {
        let mut target = Texture::new(32, 32);
        target.fill(1.0);
        let spot = flat_spot();
        let mut stats = RasterStats::default();
        let quad = axis_aligned_spot_quad(Vec2::new(16.0, 16.0), 4.0);
        rasterize_quad(&mut target, &spot, quad, -0.5, BlendMode::Additive, &mut stats);
        assert!((target.texel(16, 16) - 0.5).abs() < 1e-6);
        assert!((target.texel(2, 2) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = RasterStats {
            vertices: 3,
            triangles: 1,
            fragments: 10,
            rejected: 0,
        };
        let b = RasterStats {
            vertices: 4,
            triangles: 2,
            fragments: 20,
            rejected: 1,
        };
        a.merge(&b);
        assert_eq!(a.vertices, 7);
        assert_eq!(a.triangles, 3);
        assert_eq!(a.fragments, 30);
        assert_eq!(a.rejected, 1);
    }

    #[test]
    fn partial_overlap_with_target_edge_is_clipped() {
        let mut target = Texture::new(16, 16);
        let spot = flat_spot();
        let mut stats = RasterStats::default();
        let quad = axis_aligned_spot_quad(Vec2::new(0.0, 8.0), 4.0);
        rasterize_quad(&mut target, &spot, quad, 1.0, BlendMode::Additive, &mut stats);
        // Fragments were produced only for the on-screen half.
        assert!(stats.fragments > 0);
        assert!(stats.fragments <= 5 * 9);
    }
}
