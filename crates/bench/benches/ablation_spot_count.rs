//! Ablation: spot count vs synthesis speed.
//!
//! "40,000 spots per texture will result in very accurate renderings. Using
//! less spots will result in less accurate renderings, but can increase
//! performance substantially." (paper §5.2). This bench sweeps the number of
//! spots of the turbulence workload at a fixed machine shape.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use softpipe::machine::MachineConfig;
use spotnoise::dnc::synthesize_dnc;
use spotnoise::spot::generate_spots;
use spotnoise_bench::turbulence_scaled;

fn bench_spot_count(c: &mut Criterion) {
    let base = turbulence_scaled();
    let machine = MachineConfig::new(4, 2);
    let mut group = c.benchmark_group("ablation_spot_count");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for count in [500usize, 1000, 2000, 4000, 8000] {
        let mut cfg = base.config;
        cfg.spot_count = count;
        let spots = generate_spots(
            count,
            base.field.domain(),
            cfg.intensity_amplitude,
            cfg.seed,
        );
        let id = BenchmarkId::from_parameter(count);
        group.bench_with_input(id, &cfg, |b, cfg| {
            b.iter(|| synthesize_dnc(base.field.as_ref(), &spots, cfg, &machine))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_spot_count);
criterion_main!(benches);
