//! Analytic performance model — equations 2.1 and 3.2 of the paper.
//!
//! Equation 2.1 models the single-pipe pipeline: because spot-shape
//! computation (processors) and spot blending (graphics pipe) overlap, the
//! texture generation time is the *maximum* of the two, not the sum.
//! Equation 3.2 extends this to the divide-and-conquer setting with `nP`
//! processors and `nG` pipes plus a sequential gather/blend overhead `c`.
//!
//! The model is used in three ways: (1) as the *simulated-Onyx2* timing that
//! reproduces Tables 1 and 2 from the actual work counts measured during a
//! synthesis run, (2) as a sanity check against the real wall-clock of the
//! host, and (3) in tests that verify the implementation exhibits the
//! balanced-resource behaviour the paper describes (≈4 processors saturate a
//! pipe, more pipes only help when there are enough processors).

use serde::{Deserialize, Serialize};
use softpipe::cost::{CostModel, CpuWork, PipeWork};
use softpipe::machine::MachineConfig;

/// Equation 2.1: total time with one processor pool and one pipe working
/// concurrently is the maximum of the two stage times.
pub fn eq_2_1(cpu_seconds: f64, pipe_seconds: f64) -> f64 {
    cpu_seconds.max(pipe_seconds)
}

/// Equation 3.2 in its aggregate form: CPU work divided over `n_processors`,
/// pipe work divided over `n_pipes`, plus the sequential blend overhead `c`.
pub fn eq_3_2(
    total_cpu_seconds: f64,
    total_pipe_seconds: f64,
    n_processors: usize,
    n_pipes: usize,
    blend_overhead: f64,
) -> f64 {
    assert!(n_processors >= 1 && n_pipes >= 1);
    eq_2_1(
        total_cpu_seconds / n_processors as f64,
        total_pipe_seconds / n_pipes as f64,
    ) + blend_overhead
}

/// The measured work of one process group during a synthesis run.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct GroupWork {
    /// CPU-side spot shape work of the group.
    pub cpu: CpuWork,
    /// Pipe-side rasterization work of the group.
    pub pipe: PipeWork,
    /// Number of processors assigned to the group.
    pub processors: usize,
}

/// The model's prediction for one machine configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerfPrediction {
    /// Simulated seconds spent in each process group (max of its CPU and
    /// pipe time, since they overlap).
    pub group_seconds: Vec<f64>,
    /// Simulated seconds of the sequential gather/blend step (`c`).
    pub blend_seconds: f64,
    /// Total simulated seconds for one texture (eq. 3.2).
    pub total_seconds: f64,
    /// Simulated textures per second (the quantity Tables 1 and 2 report).
    pub textures_per_second: f64,
    /// Simulated seconds the vertex traffic occupies on the bus (for the
    /// bandwidth observation of §5.1; always much smaller than the total).
    pub bus_seconds: f64,
}

/// Predicts the texture generation time of a machine configuration from the
/// per-group work records of a synthesis run.
///
/// Each group's CPU work is divided over the processors assigned to that
/// group (fractionally, when processors are oversubscribed); its pipe work
/// runs on the group's single pipe. Group times are overlapped (the frame is
/// done when the slowest group is done), then the sequential gather/blend
/// cost is added.
pub fn predict(
    machine: &MachineConfig,
    groups: &[GroupWork],
    compose_texels: u64,
) -> PerfPrediction {
    assert!(!groups.is_empty(), "need at least one group");
    let cost: &CostModel = &machine.cost;
    // When the machine has fewer processors than pipes, a physical processor
    // time-shares several masters; model it as a fractional share.
    let share_scale = if machine.oversubscribed() {
        machine.processors as f64 / machine.pipes as f64
    } else {
        1.0
    };
    let mut group_seconds = Vec::with_capacity(groups.len());
    let mut total_vertices = 0u64;
    for g in groups {
        let procs = (g.processors as f64 * share_scale).max(1e-9);
        let cpu_s = cost.cpu_seconds(&g.cpu) / procs;
        let pipe_s = cost.pipe_seconds(&g.pipe);
        group_seconds.push(eq_2_1(cpu_s, pipe_s));
        total_vertices += g.pipe.vertices;
    }
    let blend_seconds =
        cost.blend_fixed_overhead + cost.pipe_per_blend_texel * compose_texels as f64;
    let slowest = group_seconds.iter().cloned().fold(0.0, f64::max);
    let total_seconds = slowest + blend_seconds;
    PerfPrediction {
        group_seconds,
        blend_seconds,
        total_seconds,
        textures_per_second: if total_seconds > 0.0 {
            1.0 / total_seconds
        } else {
            0.0
        },
        bus_seconds: cost.bus_seconds(cost.vertex_bytes(total_vertices)),
    }
}

/// Predicts a machine's throughput straight from the per-group reports the
/// scheduler engine produces — the glue between the engine's uniform
/// accounting and the cost model, used by every pipe-backed executor.
pub fn predict_from_reports(
    machine: &MachineConfig,
    reports: &[crate::scheduler::GroupReport],
    compose_texels: u64,
) -> PerfPrediction {
    let group_work: Vec<GroupWork> = reports
        .iter()
        .map(|r| GroupWork {
            cpu: r.cpu_work,
            pipe: r.pipe_work,
            processors: r.processors,
        })
        .collect();
    predict(machine, &group_work, compose_texels)
}

/// Convenience wrapper: predicts a configuration's throughput assuming the
/// total work is split perfectly evenly over the groups (the idealised
/// eq. 3.2 rather than the measured partition). Used by the model-vs-measured
/// comparison in the benchmark harness.
pub fn predict_even_split(
    machine: &MachineConfig,
    total_cpu: &CpuWork,
    total_pipe: &PipeWork,
    texture_size: usize,
) -> PerfPrediction {
    let groups = machine.groups();
    let procs = machine.processors_per_group();
    let div = |v: u64| v / groups as u64;
    let per_group: Vec<GroupWork> = (0..groups)
        .map(|g| GroupWork {
            cpu: CpuWork {
                streamline_steps: div(total_cpu.streamline_steps),
                mesh_vertices: div(total_cpu.mesh_vertices),
                spots: div(total_cpu.spots),
            },
            pipe: PipeWork {
                vertices: div(total_pipe.vertices),
                fragments: div(total_pipe.fragments),
                state_changes: div(total_pipe.state_changes),
                blend_texels: 0,
            },
            processors: procs[g],
        })
        .collect();
    // Gathering n partial full-frame textures touches (n-1) * size^2 texels.
    let compose_texels = (groups.saturating_sub(1) * texture_size * texture_size) as u64;
    predict(machine, &per_group, compose_texels)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Work counts shaped like the paper's atmospheric workload (Table 1).
    fn atmospheric_totals() -> (CpuWork, PipeWork) {
        (
            CpuWork {
                streamline_steps: 2500 * 32,
                mesh_vertices: 2500 * 544,
                spots: 2500,
            },
            PipeWork {
                vertices: 2500 * 544,
                fragments: 2_500 * 600,
                state_changes: 0,
                blend_texels: 0,
            },
        )
    }

    fn machine(p: usize, g: usize) -> MachineConfig {
        MachineConfig::new(p, g)
    }

    #[test]
    fn eq21_is_max_of_overlapping_stages() {
        assert_eq!(eq_2_1(1.0, 0.3), 1.0);
        assert_eq!(eq_2_1(0.2, 0.9), 0.9);
    }

    #[test]
    fn eq32_divides_work_and_adds_overhead() {
        let t = eq_3_2(1.0, 0.4, 4, 2, 0.05);
        assert!((t - 0.3).abs() < 1e-12); // max(0.25, 0.2) + 0.05
    }

    #[test]
    fn single_processor_single_pipe_matches_table1_order_of_magnitude() {
        // Table 1, cell (1,1): 1.0 textures per second.
        let (cpu, pipe) = atmospheric_totals();
        let pred = predict_even_split(&machine(1, 1), &cpu, &pipe, 512);
        assert!(
            pred.textures_per_second > 0.6 && pred.textures_per_second < 1.6,
            "predicted {} tex/s",
            pred.textures_per_second
        );
    }

    #[test]
    fn more_processors_increase_throughput_until_pipe_saturates() {
        let (cpu, pipe) = atmospheric_totals();
        let t1 = predict_even_split(&machine(1, 1), &cpu, &pipe, 512).textures_per_second;
        let t2 = predict_even_split(&machine(2, 1), &cpu, &pipe, 512).textures_per_second;
        let t4 = predict_even_split(&machine(4, 1), &cpu, &pipe, 512).textures_per_second;
        let t8 = predict_even_split(&machine(8, 1), &cpu, &pipe, 512).textures_per_second;
        // Monotone improvement up to ~4 processors...
        assert!(t2 > t1 * 1.5);
        assert!(t4 > t2 * 1.2);
        // ... then the single pipe saturates: 8 processors give no further
        // significant gain (paper: 2.8 -> 2.7).
        assert!((t8 - t4).abs() / t4 < 0.1, "t4={t4} t8={t8}");
    }

    #[test]
    fn more_pipes_only_help_with_enough_processors() {
        let (cpu, pipe) = atmospheric_totals();
        // With 2 processors, adding pipes does not help (paper row 2: 2.0, 2.0).
        let p2g1 = predict_even_split(&machine(2, 1), &cpu, &pipe, 512).textures_per_second;
        let p2g2 = predict_even_split(&machine(2, 2), &cpu, &pipe, 512).textures_per_second;
        assert!((p2g2 - p2g1).abs() / p2g1 < 0.15, "{p2g1} vs {p2g2}");
        // With 8 processors, 2 pipes beat 1 pipe clearly (paper: 2.7 -> 4.9).
        let p8g1 = predict_even_split(&machine(8, 1), &cpu, &pipe, 512).textures_per_second;
        let p8g2 = predict_even_split(&machine(8, 2), &cpu, &pipe, 512).textures_per_second;
        assert!(p8g2 > p8g1 * 1.3, "{p8g1} vs {p8g2}");
    }

    #[test]
    fn speedup_is_sublinear_because_of_sequential_blend() {
        // The paper notes the expected near-linear speedup for (4n procs, n
        // pipes) is not achieved due to the sequential blending term c.
        let (cpu, pipe) = atmospheric_totals();
        let base = predict_even_split(&machine(4, 1), &cpu, &pipe, 512);
        let quad = predict_even_split(&machine(8, 4), &cpu, &pipe, 512);
        let speedup = quad.textures_per_second / base.textures_per_second;
        assert!(speedup > 1.2, "some speedup expected, got {speedup}");
        assert!(speedup < 3.0, "speedup {speedup} should be sub-linear");
        assert!(quad.blend_seconds > base.blend_seconds);
    }

    #[test]
    fn bus_time_is_negligible_compared_to_total() {
        let (cpu, pipe) = atmospheric_totals();
        let pred = predict_even_split(&machine(8, 4), &cpu, &pipe, 512);
        assert!(pred.bus_seconds < 0.3 * pred.total_seconds);
    }

    #[test]
    fn oversubscribed_configuration_does_not_overestimate() {
        // 1 processor driving 2 pipes cannot be faster than 1 processor with
        // 1 pipe on a CPU-bound workload.
        let (cpu, pipe) = atmospheric_totals();
        let p1g1 = predict_even_split(&machine(1, 1), &cpu, &pipe, 512).textures_per_second;
        let p1g2 = predict_even_split(&machine(1, 2), &cpu, &pipe, 512).textures_per_second;
        assert!(p1g2 <= p1g1 * 1.05, "{p1g2} vs {p1g1}");
    }

    #[test]
    fn predict_reports_per_group_times() {
        let groups = vec![
            GroupWork {
                cpu: CpuWork {
                    streamline_steps: 0,
                    mesh_vertices: 1_000_000,
                    spots: 1000,
                },
                pipe: PipeWork {
                    vertices: 1_000_000,
                    fragments: 100_000,
                    state_changes: 0,
                    blend_texels: 0,
                },
                processors: 2,
            };
            2
        ];
        let pred = predict(&machine(4, 2), &groups, 512 * 512);
        assert_eq!(pred.group_seconds.len(), 2);
        assert!(pred.total_seconds > pred.group_seconds[0]);
        assert!(pred.textures_per_second > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one group")]
    fn predict_rejects_empty_groups() {
        let _ = predict(&machine(1, 1), &[], 0);
    }
}
