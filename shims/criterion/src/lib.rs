//! Offline stand-in for `criterion`.
//!
//! Implements the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `criterion_group!`/`criterion_main!` — as a plain wall-clock harness:
//! a warm-up phase calibrates the per-iteration cost, then a measurement
//! phase runs enough iterations to fill the configured measurement time and
//! reports the mean. No statistics, plots or comparisons; results print one
//! line per benchmark.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Returns its argument while preventing the optimizer from deleting it.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Benchmark named only by its parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// Benchmark named `name/parameter`.
    pub fn new<P: Display>(name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            id: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    ns_per_iter: f64,
    iterations: u64,
}

impl Bencher {
    /// Measures `f`, storing the mean wall-clock time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up doubles as calibration.
        let start = Instant::now();
        let mut calibration_iters = 0u64;
        loop {
            black_box(f());
            calibration_iters += 1;
            if start.elapsed() >= self.warm_up {
                break;
            }
        }
        let per_iter = start.elapsed().as_nanos() as f64 / calibration_iters as f64;
        let target = (self.measurement.as_nanos() as f64 / per_iter.max(1.0)).ceil() as u64;
        let target = target.clamp(1, 500_000_000);
        let measured = Instant::now();
        for _ in 0..target {
            black_box(f());
        }
        let elapsed = measured.elapsed();
        self.ns_per_iter = elapsed.as_nanos() as f64 / target as f64;
        self.iterations = target;
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1.0e9 {
        format!("{:.3} s", ns / 1.0e9)
    } else if ns >= 1.0e6 {
        format!("{:.3} ms", ns / 1.0e6)
    } else if ns >= 1.0e3 {
        format!("{:.3} µs", ns / 1.0e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn run_one(name: &str, warm_up: Duration, measurement: Duration, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        warm_up,
        measurement,
        ns_per_iter: 0.0,
        iterations: 0,
    };
    f(&mut bencher);
    println!(
        "{name:<50} time: {:>12}/iter  ({} iterations)",
        format_ns(bencher.ns_per_iter),
        bencher.iterations
    );
}

/// Benchmark registry / configuration root.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(200),
            measurement: Duration::from_millis(700),
        }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.warm_up, self.measurement, &mut f);
        self
    }

    /// Opens a named group whose benchmarks share configuration.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let warm_up = self.warm_up;
        let measurement = self.measurement;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            warm_up,
            measurement,
        }
    }
}

/// A group of related benchmarks with shared settings.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    warm_up: Duration,
    measurement: Duration,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes runs by time instead.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Sets the measurement phase duration.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.measurement = duration.min(Duration::from_secs(10));
        self
    }

    /// Sets the warm-up phase duration.
    pub fn warm_up_time(&mut self, duration: Duration) -> &mut Self {
        self.warm_up = duration.min(Duration::from_secs(5));
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let name = format!("{}/{}", self.name, id.id);
        run_one(&name, self.warm_up, self.measurement, &mut f);
        self
    }

    /// Runs a parameterized benchmark inside the group.
    pub fn bench_with_input<P, F>(&mut self, id: BenchmarkId, input: &P, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &P),
    {
        let name = format!("{}/{}", self.name, id.id);
        run_one(&name, self.warm_up, self.measurement, &mut |b| f(b, input));
        self
    }

    /// Ends the group (printing is immediate, so this is a no-op).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes `--bench` and filter arguments; the shim
            // runs everything unconditionally.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion {
            warm_up: Duration::from_millis(5),
            measurement: Duration::from_millis(10),
        }
    }

    #[test]
    fn bench_function_measures_something() {
        let mut c = quick();
        c.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
    }

    #[test]
    fn group_with_input_runs() {
        let mut c = quick();
        let mut g = c.benchmark_group("g");
        g.sample_size(10)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(5));
        let n = 64u64;
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        g.bench_function("plain", |b| b.iter(|| 1 + 1));
        g.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(8).id, "8");
        assert_eq!(BenchmarkId::new("quads", 512).id, "quads/512");
    }
}
