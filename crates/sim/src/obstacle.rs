//! The block obstacle of the turbulence application.
//!
//! The DNS data set of the paper is the flow around a block placed in a
//! channel; the separation over and under the block and the vortex street
//! behind it are exactly what the spot-noise images show (Figures 2 and 7).

use flowfield::{Rect, Vec2};
use serde::{Deserialize, Serialize};

/// A rectangular solid obstacle inside the flow domain.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// The obstacle's extent in world coordinates.
    pub rect: Rect,
}

impl Block {
    /// The paper-like placement: a block spanning the middle third of the
    /// channel height, positioned at a quarter of the channel length.
    pub fn standard(domain: Rect) -> Self {
        let w = domain.width();
        let h = domain.height();
        let min = domain.min + Vec2::new(0.22 * w, 0.40 * h);
        let max = domain.min + Vec2::new(0.30 * w, 0.60 * h);
        Block {
            rect: Rect::new(min, max),
        }
    }

    /// True when a point is inside the solid.
    pub fn contains(&self, p: Vec2) -> bool {
        self.rect.contains(p)
    }

    /// Builds the solid-cell mask for an `nx` x `ny` node lattice over
    /// `domain` (row-major, `true` = solid).
    pub fn mask(&self, nx: usize, ny: usize, domain: Rect) -> Vec<bool> {
        let mut mask = vec![false; nx * ny];
        for j in 0..ny {
            for i in 0..nx {
                let uv = Vec2::new(i as f64 / (nx - 1) as f64, j as f64 / (ny - 1) as f64);
                let p = domain.from_unit(uv);
                mask[j * nx + i] = self.contains(p);
            }
        }
        mask
    }

    /// The frontal (upstream) face centre — used when extracting the
    /// skin-friction / separation pattern for Figure 2.
    pub fn front_face_center(&self) -> Vec2 {
        Vec2::new(self.rect.min.x, self.rect.center().y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn domain() -> Rect {
        Rect::new(Vec2::ZERO, Vec2::new(10.0, 4.0))
    }

    #[test]
    fn standard_block_is_inside_domain() {
        let b = Block::standard(domain());
        assert!(domain().contains(b.rect.min));
        assert!(domain().contains(b.rect.max));
        // It blocks a fraction of the channel height, not all of it.
        assert!(b.rect.height() < domain().height());
        assert!(b.rect.height() > 0.1 * domain().height());
    }

    #[test]
    fn contains_matches_rect() {
        let b = Block::standard(domain());
        assert!(b.contains(b.rect.center()));
        assert!(!b.contains(domain().min));
    }

    #[test]
    fn mask_marks_solid_nodes_consistently() {
        let b = Block::standard(domain());
        let (nx, ny) = (50, 20);
        let mask = b.mask(nx, ny, domain());
        assert_eq!(mask.len(), nx * ny);
        let solid = mask.iter().filter(|&&s| s).count();
        // Fraction of solid nodes approximates the area fraction of the block.
        let area_fraction = b.rect.area() / domain().area();
        let node_fraction = solid as f64 / (nx * ny) as f64;
        assert!((node_fraction - area_fraction).abs() < 0.05);
        // The block centre node is solid, the domain corners are not.
        assert!(!mask[0]);
        assert!(!mask[nx * ny - 1]);
    }

    #[test]
    fn front_face_center_is_on_upstream_side() {
        let b = Block::standard(domain());
        let f = b.front_face_center();
        assert_eq!(f.x, b.rect.min.x);
        assert!((f.y - b.rect.center().y).abs() < 1e-12);
    }
}
