//! The synthesis server: service state, synthesis workers, request routing
//! and the TCP front end.
//!
//! One [`Service`] owns the session registry, the frame cache and the
//! admission queue. Connection threads parse HTTP, serve cache hits
//! directly, and enqueue cache misses as jobs; a fixed pool of synthesis
//! workers drains the queue session-fairly, renders frames through each
//! session's [`Pipeline`](spotnoise::pipeline::Pipeline), fills the cache
//! and replies through a per-request channel. Overload never grows the
//! queue past its watermark — excess requests are shed with `503 Busy`.

use crate::cache::FrameCache;
use crate::channel::ChannelRegistry;
use crate::http::{
    finish_chunked, read_request, write_frame_record, write_stream_head, FrameRecord, Request,
    Response,
};
use crate::pressure::{PressureConfig, PressureGauge, PressureState};
use crate::queue::{AdmissionConfig, AdmissionError, FrameQueue};
use crate::session::{
    format_session_id, parse_session_id, InFlightGuard, RegistryError, RenderError, Session,
    SessionRegistry, SharedPools,
};
use crate::spec::{FieldSpec, SessionSpec};
use softpipe::sync::lock_recover;
use softpipe::{FrameArena, PipePool};
use spotnoise::json::Json;
use spotnoise::pipeline::pipe_pool_default_enabled;
use spotnoise::telemetry::{
    self, Histogram, HistogramSnapshot, TraceCtx, TraceSink, TraceStage, DEFAULT_TRACE_CAPACITY,
};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables of a service instance.
#[derive(Debug, Clone, Copy)]
pub struct ServiceOptions {
    /// Frame-cache budget in bytes (0 disables caching). Bytes, not
    /// frames: textures up to 2048² (16 MB/frame) are allowed, so an
    /// entry-counted cache could silently hold gigabytes.
    pub cache_bytes: usize,
    /// Admission-control parameters of the frame queue.
    pub admission: AdmissionConfig,
    /// Synthesis worker threads (0 = one per available core).
    pub workers: usize,
    /// Maximum live sessions.
    pub max_sessions: usize,
    /// Sessions idle beyond this are evicted (checked on `/stats` and on
    /// session creation).
    pub idle_timeout: Duration,
    /// Cap on synthesis steps a single frame request may trigger.
    pub max_advances_per_request: u64,
    /// How long a connection waits for its admitted job before giving up.
    /// Tune together with [`max_advances_per_request`](Self::max_advances_per_request)
    /// and the texture sizes you allow: a request near the advance cap on a
    /// large texture can legitimately render longer than this, in which
    /// case the client sees a 500 while the worker still finishes (and
    /// caches) the job.
    pub reply_timeout: Duration,
    /// Frames a shared channel pre-renders past each served request, so the
    /// subscribers behind the frontier-advancing one fan out of the cache.
    pub channel_lookahead: u64,
    /// Cap on frames a single `GET .../stream` request may push (requests
    /// asking for more are clamped).
    pub max_stream_frames: u64,
    /// Deadline applied to frame requests that carry no `X-Deadline-Ms`
    /// header (`None` = no implicit deadline). A request whose remaining
    /// budget is already below the queue's recent p99 wait is shed at
    /// admission with `503` + `Retry-After` instead of queueing to miss.
    pub default_deadline: Option<Duration>,
    /// Thresholds and cadence of the pressure gauge driving the
    /// graceful-degradation ladder.
    pub pressure: PressureConfig,
}

impl Default for ServiceOptions {
    fn default() -> Self {
        ServiceOptions {
            cache_bytes: 64 << 20,
            admission: AdmissionConfig::default(),
            workers: 0,
            max_sessions: 64,
            idle_timeout: Duration::from_secs(300),
            max_advances_per_request: 512,
            reply_timeout: Duration::from_secs(60),
            channel_lookahead: 2,
            max_stream_frames: 256,
            default_deadline: None,
            pressure: PressureConfig::default(),
        }
    }
}

/// Service-level failure modes, mapped onto HTTP statuses by the front end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The server (or one session's fair share) is saturated; retry later.
    Busy(&'static str),
    /// Unknown session.
    NotFound,
    /// The request itself is invalid.
    BadRequest(String),
    /// The server is shutting down.
    ShuttingDown,
    /// An admitted job was dropped (worker died or timed out).
    Internal(&'static str),
    /// The session was quarantined after a panicked render; its pipeline
    /// state can no longer be trusted. Close it and create a fresh one.
    Quarantined,
    /// The request's deadline cannot be met: either it expired while the
    /// job queued, or the queue's recent p99 wait already exceeds the
    /// remaining budget (shed at admission).
    DeadlineExceeded,
}

/// A served frame.
#[derive(Debug, Clone)]
pub struct FrameResult {
    /// Little-endian `f32` texels, row-major from the bottom row.
    pub bytes: Arc<Vec<u8>>,
    /// The frame index served. Equals the requested index except when a
    /// fallen-behind shared subscriber was skipped to the live frontier.
    pub frame: u64,
    /// Whether the frame came out of the cache.
    pub cached: bool,
    /// Whether the serve skipped a fallen-behind shared subscriber forward
    /// to the channel's live frontier.
    pub skipped: bool,
    /// Whether a saturated server served the channel's cached frontier
    /// frame instead of synthesizing the requested index.
    pub stale: bool,
    /// Whether the frame was rendered under pressure-degraded (footprint)
    /// sampling on a session that asked for exact.
    pub degraded: bool,
}

struct FrameJob {
    frame: u64,
    /// When the job was submitted to the admission queue — the start of the
    /// queue-wait trace span a worker records on pickup.
    submitted: Instant,
    /// The session the frame is rendered on. Carried in the job — the
    /// worker never re-resolves the id through the registry, so an
    /// admitted request renders even if its session is closed or evicted
    /// in the instant between the requester's registry lookup and the
    /// in-flight guard taking effect.
    session: Arc<Mutex<Session>>,
    /// The absolute instant this request stops being worth serving; workers
    /// re-check it when the job comes off the queue.
    deadline: Option<Instant>,
    reply: mpsc::Sender<Result<FrameResult, ServiceError>>,
    /// Holds the session's in-flight count from admission until the worker
    /// has finished (the job is dropped after execution — or on shed —
    /// which releases the guard), so idle eviction cannot reap the session
    /// while this job waits in the queue.
    _guard: InFlightGuard,
}

/// Monotonic service-wide counters (lock-free; written by workers and
/// connection threads).
#[derive(Default)]
struct ServiceCounters {
    http_requests: AtomicU64,
    frames_rendered: AtomicU64,
    advect_us: AtomicU64,
    synthesize_us: AtomicU64,
    render_us: AtomicU64,
    streams_started: AtomicU64,
    frames_streamed: AtomicU64,
    streams_aborted: AtomicU64,
    stale_serves: AtomicU64,
    degraded_serves: AtomicU64,
    deadline_shed: AtomicU64,
    quarantined: AtomicU64,
    panics_caught: AtomicU64,
}

/// Revalidation for a poisoned session lock. Render panics are caught
/// before they can unwind through the guard, so poison here means some
/// other holder died mid-update and the session's state cannot be trusted:
/// quarantine it rather than guess at which fields were half-written.
fn revalidate_session(session: &mut Session) {
    session.quarantine();
}

/// The service's end-to-end telemetry: lock-free latency histograms over
/// every hot path plus the frame-lifecycle trace sink. All histograms are
/// in microseconds. Exposed on `/metrics` (Prometheus text), `/trace`
/// (Chrome trace-event JSON) and folded into `/stats` as percentiles.
pub struct ServiceTelemetry {
    /// End-to-end [`Service::fetch_frame`] latency, all outcomes (errors
    /// included — a shed request's latency is part of the client story).
    pub request_us: Arc<Histogram>,
    /// Admission-to-pop wait in the frame queue.
    pub queue_wait_us: Arc<Histogram>,
    /// Per-frame particle-advection stage.
    pub advect_us: Arc<Histogram>,
    /// Per-frame texture-synthesis stage.
    pub synthesize_us: Arc<Histogram>,
    /// Per-frame render stage.
    pub render_us: Arc<Histogram>,
    /// Pipe-pool checkout wait (lock + reset-or-spawn).
    pub checkout_us: Arc<Histogram>,
    /// The frame-lifecycle trace sink; mode comes from `SPOTNOISE_TRACE`
    /// (`off` by default).
    pub trace: TraceSink,
}

impl ServiceTelemetry {
    fn new() -> Self {
        ServiceTelemetry {
            request_us: Arc::new(Histogram::new()),
            queue_wait_us: Arc::new(Histogram::new()),
            advect_us: Arc::new(Histogram::new()),
            synthesize_us: Arc::new(Histogram::new()),
            render_us: Arc::new(Histogram::new()),
            checkout_us: Arc::new(Histogram::new()),
            trace: TraceSink::from_env(DEFAULT_TRACE_CAPACITY),
        }
    }
}

/// The shared state of a running synthesis server.
pub struct Service {
    options: ServiceOptions,
    registry: Mutex<SessionRegistry>,
    /// Shared-field broadcast channels, keyed by `(field, config, seed)`.
    channels: Mutex<ChannelRegistry>,
    cache: Mutex<FrameCache>,
    queue: FrameQueue<FrameJob>,
    /// Service-wide frame-buffer arena and pipe-worker pool, shared by all
    /// sessions (both size-keyed, so mixed frame sizes never collide).
    pools: SharedPools,
    counters: ServiceCounters,
    telemetry: ServiceTelemetry,
    /// The load sensor behind the degradation ladder, re-evaluated (with
    /// its own throttle) on every frame request and `/healthz` probe.
    pressure: PressureGauge,
    shutdown: AtomicBool,
    started: Instant,
    /// The bound address, filled in by [`serve`] (used by `/shutdown` to
    /// wake the accept loop).
    addr: Mutex<Option<SocketAddr>>,
}

impl Service {
    /// Creates a service with no front end attached (the API used by unit
    /// tests and in-process embedding; [`serve`] adds the TCP front end).
    pub fn new(options: ServiceOptions) -> Arc<Service> {
        let service_telemetry = ServiceTelemetry::new();
        let arena = Arc::new(FrameArena::new());
        // One persistent-pipe pool for the whole service, sized by the
        // session cap: every admitted session can keep one warm pipe per
        // typical process group. `SPOTNOISE_PIPE_POOL=off` reverts the
        // service to spawn-per-frame (the CI opt-out matrix leg).
        let pipes = pipe_pool_default_enabled().then(|| {
            Arc::new(PipePool::with_capacity(
                Some(Arc::clone(&arena)),
                options.max_sessions.saturating_mul(2).max(8),
            ))
        });
        if let Some(pool) = &pipes {
            // Bridge pool checkouts into the checkout histogram and the
            // trace ring (the raster crate cannot depend on telemetry, so
            // the pool exposes a plain observer hook instead).
            let checkout_us = Arc::clone(&service_telemetry.checkout_us);
            let trace = service_telemetry.trace.clone();
            pool.set_observer(Some(Arc::new(move |reused, wait| {
                checkout_us.record_duration(wait);
                let start = Instant::now()
                    .checked_sub(wait)
                    .unwrap_or_else(Instant::now);
                trace.record_with(
                    TraceStage::PipeCheckout,
                    telemetry::ctx(),
                    start,
                    wait,
                    reused as u64,
                );
            })));
        }
        let pools = SharedPools {
            arena: Some(arena),
            pipes,
            trace: service_telemetry.trace.clone(),
        };
        let queue = FrameQueue::new(options.admission);
        queue.set_wait_histogram(Arc::clone(&service_telemetry.queue_wait_us));
        let mut cache = FrameCache::new(options.cache_bytes);
        cache.set_trace_sink(service_telemetry.trace.clone());
        Arc::new(Service {
            registry: Mutex::new(SessionRegistry::with_pools(
                options.max_sessions,
                options.idle_timeout,
                pools.clone(),
            )),
            channels: Mutex::new(ChannelRegistry::new(
                pools.clone(),
                options.channel_lookahead,
            )),
            cache: Mutex::new(cache),
            queue,
            pools,
            counters: ServiceCounters::default(),
            telemetry: service_telemetry,
            pressure: PressureGauge::new(options.pressure),
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            addr: Mutex::new(None),
            options,
        })
    }

    /// The service's latency histograms and trace sink.
    pub fn telemetry(&self) -> &ServiceTelemetry {
        &self.telemetry
    }

    /// The service-wide pools every session's pipeline composes on.
    pub fn pools(&self) -> &SharedPools {
        &self.pools
    }

    /// The options the service was built with.
    pub fn options(&self) -> &ServiceOptions {
        &self.options
    }

    /// True once shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Creates a session and returns its id. A spec with `shared: true`
    /// subscribes the session to the broadcast channel for its
    /// `(field, config, seed)` — creating the channel if this is its first
    /// viewer — instead of giving it a private pipeline.
    pub fn create_session(&self, spec: SessionSpec) -> Result<u64, ServiceError> {
        if self.is_shutting_down() {
            return Err(ServiceError::ShuttingDown);
        }
        // Subscribe before touching the registry lock (never hold both).
        // Both registries keep every field individually consistent (maps of
        // finished values plus counters), so poison recovery needs no
        // repair beyond clearing the flag.
        let subscription = spec
            .shared
            .then(|| lock_recover(&self.channels, |_| {}).subscribe(&spec));
        let mut registry = lock_recover(&self.registry, |_| {});
        registry.evict_idle();
        let created = match subscription {
            Some(sub) => registry.create_shared(spec, sub),
            None => registry.create(spec),
        };
        drop(registry);
        // Eviction above (and a shed create: `create_shared` drops the
        // subscription on the cap error) may have unsubscribed channels —
        // retire the ones nobody watches any more.
        self.sweep_channels();
        match created {
            Ok((id, _)) => Ok(id),
            Err(RegistryError::TooManySessions) => Err(ServiceError::Busy("sessions")),
        }
    }

    /// Retires broadcast channels with no subscribers left (their counters
    /// fold into the `/stats` totals).
    fn sweep_channels(&self) {
        lock_recover(&self.channels, |_| {}).sweep();
    }

    /// Re-evaluates the pressure gauge against the queue (throttled inside
    /// the gauge) and applies the *elevated* rung: channel look-ahead is
    /// shut off while pressure is non-healthy and restored on recovery.
    /// The saturated rung (stale frontier serves, sampling degradation) is
    /// applied per-request by [`Service::fetch_frame`].
    fn pressure_tick(&self) -> PressureState {
        let depth = self.queue.stats().depth;
        let state = self.pressure.evaluate(
            depth,
            self.options.admission.watermark,
            &self.telemetry.queue_wait_us,
        );
        let desired = if state == PressureState::Healthy {
            self.options.channel_lookahead
        } else {
            0
        };
        let channels = lock_recover(&self.channels, |_| {});
        if channels.lookahead() != desired {
            channels.set_lookahead(desired);
        }
        state
    }

    /// The current pressure state without re-evaluating the gauge.
    pub fn pressure_state(&self) -> PressureState {
        self.pressure.state()
    }

    /// Steers a session to a new field (restarting its animation clock).
    pub fn steer(&self, id: u64, field: FieldSpec) -> Result<(), ServiceError> {
        let session = lock_recover(&self.registry, |_| {})
            .get(id)
            .ok_or(ServiceError::NotFound)?;
        let mut s = lock_recover(&session, revalidate_session);
        if s.is_quarantined() {
            return Err(ServiceError::Quarantined);
        }
        s.steer(field);
        Ok(())
    }

    /// Closes a session (retiring its broadcast channel if it was the last
    /// subscriber).
    pub fn close_session(&self, id: u64) -> Result<(), ServiceError> {
        if lock_recover(&self.registry, |_| {}).close(id) {
            self.sweep_channels();
            Ok(())
        } else {
            Err(ServiceError::NotFound)
        }
    }

    /// Fetches frame `frame` of session `id`: straight from the cache when
    /// possible, otherwise through the admission queue and a synthesis
    /// worker. Blocks until the frame is ready, the request is shed, or the
    /// reply timeout expires.
    pub fn fetch_frame(&self, id: u64, frame: u64) -> Result<FrameResult, ServiceError> {
        self.fetch_frame_deadline(id, frame, None)
    }

    /// [`Service::fetch_frame`] with an explicit deadline budget in
    /// milliseconds (the `X-Deadline-Ms` header); `None` falls back to
    /// [`ServiceOptions::default_deadline`]. The deadline is enforced at
    /// admission — shed immediately when the queue's recent p99 wait
    /// already exceeds the remaining budget — and re-checked when a worker
    /// picks the job up.
    pub fn fetch_frame_deadline(
        &self,
        id: u64,
        frame: u64,
        deadline_ms: Option<u64>,
    ) -> Result<FrameResult, ServiceError> {
        let start = Instant::now();
        let outcome = self.fetch_frame_inner(id, frame, deadline_ms, start);
        let elapsed = start.elapsed();
        self.telemetry.request_us.record_duration(elapsed);
        if let Ok(result) = &outcome {
            if result.stale {
                self.counters.stale_serves.fetch_add(1, Ordering::Relaxed);
            }
            if result.degraded {
                self.counters
                    .degraded_serves
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        // detail = 1 marks a failed request.
        self.telemetry.trace.record_with(
            TraceStage::Request,
            TraceCtx { actor: id, frame },
            start,
            elapsed,
            outcome.is_err() as u64,
        );
        if let Ok(result) = &outcome {
            // detail = 1 marks a cache-served delivery.
            self.telemetry.trace.record_with(
                TraceStage::Deliver,
                TraceCtx {
                    actor: id,
                    frame: result.frame,
                },
                start,
                elapsed,
                result.cached as u64,
            );
        }
        outcome
    }

    fn fetch_frame_inner(
        &self,
        id: u64,
        frame: u64,
        deadline_ms: Option<u64>,
        start: Instant,
    ) -> Result<FrameResult, ServiceError> {
        if self.is_shutting_down() {
            return Err(ServiceError::ShuttingDown);
        }
        let pressure = self.pressure_tick();
        let deadline = deadline_ms
            .map(Duration::from_millis)
            .or(self.options.default_deadline)
            .map(|budget| start + budget);
        let session = lock_recover(&self.registry, |_| {})
            .get(id)
            .ok_or(ServiceError::NotFound)?;
        let (key, guard, queue_id, channel, degraded) = {
            let mut s = lock_recover(&session, revalidate_session);
            if s.is_quarantined() {
                return Err(ServiceError::Quarantined);
            }
            s.touch();
            // The saturated rung of the ladder switches non-pinned exact
            // sessions to footprint sampling; recovery restores them. Both
            // are no-ops on sessions the rung doesn't apply to, and both
            // happen *before* the cache key is computed so degraded frames
            // cache under the footprint key they were rendered with.
            match pressure {
                PressureState::Saturated => {
                    s.degrade();
                }
                PressureState::Healthy => {
                    s.restore();
                }
                PressureState::Elevated => {}
            }
            // A shared session's synthesis jobs queue under its *channel's*
            // id: the channel is one fair peer of the private sessions, no
            // matter how many subscribers it feeds.
            let queue_id = s.channel().map_or(id, |c| c.queue_id());
            // Mark the prospective job in-flight *before* the cache check
            // and submission: from here until the worker finishes, idle
            // eviction must not reap the session.
            (
                s.key_for(frame),
                s.begin_job(),
                queue_id,
                s.channel().cloned(),
                s.is_degraded(),
            )
        };
        if let Some(bytes) = lock_recover(&self.cache, FrameCache::revalidate).lookup(key) {
            let mut s = lock_recover(&session, revalidate_session);
            s.note_served(frame);
            // A cached serve on a shared session is the broadcast fan-out
            // path: count the delivery on its channel.
            if let Some(channel) = s.channel() {
                channel.note_delivered();
            }
            return Ok(FrameResult {
                bytes,
                frame,
                cached: true,
                skipped: false,
                stale: false,
                degraded,
            });
        }
        // Saturated shared subscribers take the channel's cached frontier
        // frame instead of queueing synthesis: stale, but instant and
        // fan-out-cheap — the first rung before any shed.
        if pressure == PressureState::Saturated {
            if let Some(channel) = &channel {
                if let Some((frontier, bytes)) = channel.latest_frame() {
                    channel.note_delivered();
                    lock_recover(&session, revalidate_session).note_served(frontier);
                    return Ok(FrameResult {
                        bytes,
                        frame: frontier,
                        cached: true,
                        skipped: frontier != frame,
                        stale: true,
                        degraded: false,
                    });
                }
            }
        }
        // Deadline admission: a job whose remaining budget is already below
        // the queue's recent p99 wait would almost surely time out in line —
        // shed it now so the client can retry elsewhere/later.
        if let Some(deadline) = deadline {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() || self.pressure.queue_wait_p99() > remaining {
                self.counters.deadline_shed.fetch_add(1, Ordering::Relaxed);
                return Err(ServiceError::DeadlineExceeded);
            }
        }
        let (tx, rx) = mpsc::channel();
        match self.queue.submit(
            queue_id,
            FrameJob {
                frame,
                submitted: Instant::now(),
                session: Arc::clone(&session),
                deadline,
                reply: tx,
                _guard: guard,
            },
        ) {
            Ok(()) => {}
            Err(AdmissionError::Busy) => return Err(ServiceError::Busy("queue")),
            Err(AdmissionError::SessionBusy) => return Err(ServiceError::Busy("session")),
            Err(AdmissionError::Closed) => return Err(ServiceError::ShuttingDown),
        }
        let outcome = match rx.recv_timeout(self.options.reply_timeout) {
            Ok(outcome) => outcome,
            Err(mpsc::RecvTimeoutError::Timeout) => Err(ServiceError::Internal("reply timeout")),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(ServiceError::Internal("job dropped")),
        };
        if let Ok(result) = &outcome {
            // Note the frame actually served (a skipped shared serve lands
            // on the frontier, not the requested index), so `advance`
            // continues from what the client really saw.
            lock_recover(&session, revalidate_session).note_served(result.frame);
        }
        outcome
    }

    /// Like [`Service::fetch_frame`], but retries `Busy` sheds (bounded by
    /// the reply timeout) instead of surfacing them — the streaming
    /// endpoint's loop cannot hand a 503 to a client mid-stream.
    fn fetch_frame_retrying(&self, id: u64, frame: u64) -> Result<FrameResult, ServiceError> {
        let deadline = Instant::now() + self.options.reply_timeout;
        loop {
            match self.fetch_frame(id, frame) {
                Err(ServiceError::Busy(_)) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(1));
                }
                outcome => return outcome,
            }
        }
    }

    /// Renders and returns the session's next frame: the one after the most
    /// recently served frame (rendered or cached), so repeated advances
    /// always progress — even when a rewound index is still in the cache
    /// and serving it never touches the pipeline.
    pub fn advance(&self, id: u64) -> Result<FrameResult, ServiceError> {
        self.advance_deadline(id, None)
    }

    /// [`Service::advance`] with an explicit deadline budget (the
    /// `X-Deadline-Ms` header), enforced like
    /// [`Service::fetch_frame_deadline`].
    pub fn advance_deadline(
        &self,
        id: u64,
        deadline_ms: Option<u64>,
    ) -> Result<FrameResult, ServiceError> {
        let session = lock_recover(&self.registry, |_| {})
            .get(id)
            .ok_or(ServiceError::NotFound)?;
        let next = lock_recover(&session, revalidate_session).next_advance();
        self.fetch_frame_deadline(id, next, deadline_ms)
    }

    /// One synthesis worker: drains the queue until it closes. The loop is
    /// panic-contained twice over: `execute` catches render panics itself
    /// (quarantining the session), and a panic escaping anywhere else in
    /// the iteration — e.g. an injected fault in the queue — is caught here
    /// so the worker survives; the affected requester sees `Internal` when
    /// its reply sender drops.
    fn worker_loop(&self) {
        loop {
            let popped = match std::panic::catch_unwind(AssertUnwindSafe(|| self.queue.pop())) {
                Ok(popped) => popped,
                Err(_) => {
                    self.counters.panics_caught.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
            };
            let Some((queue_sid, job)) = popped else {
                break;
            };
            let outcome = self.execute(queue_sid, &job);
            // A hung-up client (timeout, disconnect) makes send fail; the
            // work is already done and cached, so that is not an error.
            let _ = job.reply.send(outcome);
            self.queue.complete();
        }
    }

    fn execute(&self, queue_sid: u64, job: &FrameJob) -> Result<FrameResult, ServiceError> {
        // Every span this job's synthesis emits carries the queue id (the
        // session id, or the channel id for shared sessions) as its actor.
        let ctx = TraceCtx {
            actor: queue_sid,
            frame: job.frame,
        };
        let _trace_ctx = telemetry::set_ctx(ctx);
        self.telemetry.trace.record_with(
            TraceStage::QueueWait,
            ctx,
            job.submitted,
            job.submitted.elapsed(),
            0,
        );
        // The deadline is re-checked now that the queue wait is behind us:
        // a job that expired in line is dropped before any synthesis.
        if let Some(deadline) = job.deadline {
            if Instant::now() > deadline {
                self.counters.deadline_shed.fetch_add(1, Ordering::Relaxed);
                return Err(ServiceError::DeadlineExceeded);
            }
        }
        // The job carries its session handle; no registry re-lookup, so an
        // admitted request can never turn into a spurious NotFound however
        // the registry changed while the job was queued.
        let mut s = lock_recover(&job.session, revalidate_session);
        if s.is_quarantined() {
            return Err(ServiceError::Quarantined);
        }
        // Re-check the cache: a racing request for the same frame may have
        // rendered it while this job queued.
        let key = s.key_for(job.frame);
        let degraded = s.is_degraded();
        if let Some(bytes) = lock_recover(&self.cache, FrameCache::revalidate).peek(key) {
            // For shared sessions this is the common fan-out case: the
            // channel (driven by a racing subscriber) rendered the frame
            // while this job queued. Count the delivery.
            if let Some(channel) = s.channel() {
                channel.note_delivered();
            }
            return Ok(FrameResult {
                bytes,
                frame: job.frame,
                cached: true,
                skipped: false,
                stale: false,
                degraded,
            });
        }
        // Render under catch_unwind: the session guard lives *outside* the
        // closure, so a panicking render never unwinds through it (no
        // poison) and the session can be quarantined right here — this
        // request answers 500, every other session keeps serving.
        let rendered = std::panic::catch_unwind(AssertUnwindSafe(|| {
            s.render_frame(
                job.frame,
                self.options.max_advances_per_request,
                |frame_key, bytes, timings| {
                    self.counters
                        .frames_rendered
                        .fetch_add(1, Ordering::Relaxed);
                    self.counters
                        .advect_us
                        .fetch_add(timings.advect_us, Ordering::Relaxed);
                    self.counters
                        .synthesize_us
                        .fetch_add(timings.synthesize_us, Ordering::Relaxed);
                    self.counters
                        .render_us
                        .fetch_add(timings.render_us, Ordering::Relaxed);
                    self.telemetry.advect_us.record(timings.advect_us);
                    self.telemetry.synthesize_us.record(timings.synthesize_us);
                    self.telemetry.render_us.record(timings.render_us);
                    // Frames below the requested index were rendered on the way
                    // there: count them as look-ahead insertions so /stats shows
                    // how much future-serving work the request banked.
                    let lookahead = frame_key.frame != job.frame;
                    lock_recover(&self.cache, FrameCache::revalidate).insert_tagged(
                        frame_key,
                        Arc::clone(bytes),
                        lookahead,
                    );
                },
            )
        }));
        let rendered = match rendered {
            Ok(rendered) => rendered,
            Err(_) => {
                self.counters.panics_caught.fetch_add(1, Ordering::Relaxed);
                if s.quarantine() {
                    self.counters.quarantined.fetch_add(1, Ordering::Relaxed);
                }
                return Err(ServiceError::Internal(
                    "render panicked; session quarantined",
                ));
            }
        };
        match rendered {
            Ok(served) => Ok(FrameResult {
                bytes: served.bytes,
                frame: served.frame,
                cached: false,
                skipped: served.skipped,
                stale: false,
                degraded,
            }),
            Err(RenderError::TooFarAhead { needed, max }) => Err(ServiceError::BadRequest(
                format!("frame needs {needed} synthesis steps, above the per-request cap of {max}"),
            )),
        }
    }

    /// One percentile block of the `/stats` latency section.
    fn latency_json(histogram: &Histogram) -> Json {
        let snap = histogram.snapshot();
        Json::object([
            ("count", Json::num(snap.count as f64)),
            ("mean_us", Json::num(snap.mean())),
            ("p50_us", Json::num(snap.percentile(50.0) as f64)),
            ("p90_us", Json::num(snap.percentile(90.0) as f64)),
            ("p99_us", Json::num(snap.percentile(99.0) as f64)),
            ("max_us", Json::num(snap.max as f64)),
        ])
    }

    /// The `/stats` document. Every subsystem is snapshotted exactly once
    /// (one lock or atomic load per counter), so each block is internally
    /// consistent — no torn multi-counter reads within a subsystem.
    pub fn stats_json(&self) -> Json {
        let registry = lock_recover(&self.registry, |_| {});
        let reg = registry.stats();
        let session_ids = registry.ids();
        let handles: Vec<(u64, Arc<Mutex<Session>>)> = session_ids
            .iter()
            .filter_map(|&id| registry.get(id).map(|handle| (id, handle)))
            .collect();
        drop(registry);
        let cache = lock_recover(&self.cache, FrameCache::revalidate);
        let (cache_len, cache_bytes, cache_cap, cache_stats) = (
            cache.len(),
            cache.bytes(),
            cache.capacity_bytes(),
            cache.stats(),
        );
        drop(cache);
        let channel_totals = lock_recover(&self.channels, |_| {}).totals();
        let q = self.queue.stats();
        let pressure_counters = self.pressure.counters();
        // One load per counter, gathered up front: later JSON building never
        // re-reads a counter it already reported.
        let frames = self.counters.frames_rendered.load(Ordering::Relaxed);
        let advect_us = self.counters.advect_us.load(Ordering::Relaxed);
        let synthesize_us = self.counters.synthesize_us.load(Ordering::Relaxed);
        let render_us = self.counters.render_us.load(Ordering::Relaxed);
        let http_requests = self.counters.http_requests.load(Ordering::Relaxed);
        let streams_started = self.counters.streams_started.load(Ordering::Relaxed);
        let frames_streamed = self.counters.frames_streamed.load(Ordering::Relaxed);
        let streams_aborted = self.counters.streams_aborted.load(Ordering::Relaxed);
        let stale_serves = self.counters.stale_serves.load(Ordering::Relaxed);
        let degraded_serves = self.counters.degraded_serves.load(Ordering::Relaxed);
        let deadline_shed = self.counters.deadline_shed.load(Ordering::Relaxed);
        let quarantined = self.counters.quarantined.load(Ordering::Relaxed);
        let panics_caught = self.counters.panics_caught.load(Ordering::Relaxed);
        let mean_synthesize_us = if frames > 0 {
            synthesize_us as f64 / frames as f64
        } else {
            0.0
        };
        let per_session: Vec<Json> = handles
            .iter()
            .map(|(id, handle)| match handle.try_lock() {
                Ok(s) => {
                    let totals = s.stage_totals();
                    Json::object([
                        ("session", Json::str(format_session_id(*id))),
                        ("shared", Json::Bool(s.is_shared())),
                        ("frames_rendered", Json::num(s.frames_rendered() as f64)),
                        ("head_frame", Json::num(s.head_frame() as f64)),
                        ("rewinds", Json::num(s.rewinds() as f64)),
                        ("steers", Json::num(s.steers() as f64)),
                        ("in_flight", Json::num(s.in_flight() as f64)),
                        (
                            "stage_us",
                            Json::object([
                                ("advect", Json::num(totals.advect_us as f64)),
                                ("synthesize", Json::num(totals.synthesize_us as f64)),
                                ("render", Json::num(totals.render_us as f64)),
                            ]),
                        ),
                    ])
                }
                // A session mid-render holds its lock; report it busy
                // rather than stalling /stats behind synthesis.
                Err(_) => Json::object([
                    ("session", Json::str(format_session_id(*id))),
                    ("busy", Json::Bool(true)),
                ]),
            })
            .collect();
        Json::object([
            ("schema", Json::str("spotnoise_service_stats/v1")),
            (
                "uptime_seconds",
                Json::num(self.started.elapsed().as_secs_f64()),
            ),
            (
                "sessions",
                Json::object([
                    ("live", Json::num(reg.live as f64)),
                    ("created", Json::num(reg.created as f64)),
                    ("evicted", Json::num(reg.evicted as f64)),
                    ("closed", Json::num(reg.closed as f64)),
                    ("quarantined", Json::num(quarantined as f64)),
                    ("capacity", Json::num(self.options.max_sessions as f64)),
                    (
                        "ids",
                        Json::array(
                            session_ids
                                .iter()
                                .map(|&id| Json::str(format_session_id(id))),
                        ),
                    ),
                ]),
            ),
            (
                "frames",
                Json::object([
                    ("rendered", Json::num(frames as f64)),
                    ("advect_us_total", Json::num(advect_us as f64)),
                    ("synthesize_us_total", Json::num(synthesize_us as f64)),
                    ("render_us_total", Json::num(render_us as f64)),
                    ("mean_synthesize_us", Json::num(mean_synthesize_us)),
                ]),
            ),
            (
                "channels",
                Json::object([
                    ("live", Json::num(channel_totals.live as f64)),
                    ("created", Json::num(channel_totals.created as f64)),
                    ("subscribers", Json::num(channel_totals.subscribers as f64)),
                    (
                        "peak_subscribers",
                        Json::num(channel_totals.peak_subscribers as f64),
                    ),
                    ("delivered", Json::num(channel_totals.delivered as f64)),
                    ("synthesized", Json::num(channel_totals.synthesized as f64)),
                    ("skips", Json::num(channel_totals.skips as f64)),
                    (
                        "delivery_ratio",
                        Json::num(if channel_totals.synthesized > 0 {
                            channel_totals.delivered as f64 / channel_totals.synthesized as f64
                        } else {
                            0.0
                        }),
                    ),
                ]),
            ),
            (
                "cache",
                Json::object([
                    ("entries", Json::num(cache_len as f64)),
                    ("bytes", Json::num(cache_bytes as f64)),
                    ("capacity_bytes", Json::num(cache_cap as f64)),
                    ("hits", Json::num(cache_stats.hits as f64)),
                    ("misses", Json::num(cache_stats.misses as f64)),
                    ("insertions", Json::num(cache_stats.insertions as f64)),
                    (
                        "inserted_lookahead",
                        Json::num(cache_stats.inserted_lookahead as f64),
                    ),
                    ("evictions", Json::num(cache_stats.evictions as f64)),
                    ("hit_rate", Json::num(cache_stats.hit_rate())),
                ]),
            ),
            (
                "queue",
                Json::object([
                    ("depth", Json::num(q.depth as f64)),
                    ("peak_depth", Json::num(q.peak_depth as f64)),
                    (
                        "watermark",
                        Json::num(self.options.admission.watermark as f64),
                    ),
                    (
                        "per_session_cap",
                        Json::num(self.options.admission.per_session as f64),
                    ),
                    ("accepted", Json::num(q.accepted as f64)),
                    ("shed_busy", Json::num(q.shed_busy as f64)),
                    ("shed_session", Json::num(q.shed_session as f64)),
                    ("completed", Json::num(q.completed as f64)),
                ]),
            ),
            (
                "pressure",
                Json::object([
                    ("state", Json::str(self.pressure.state().name())),
                    (
                        "entered_elevated",
                        Json::num(pressure_counters.entered_elevated as f64),
                    ),
                    (
                        "entered_saturated",
                        Json::num(pressure_counters.entered_saturated as f64),
                    ),
                    ("recovered", Json::num(pressure_counters.recovered as f64)),
                    ("stale_serves", Json::num(stale_serves as f64)),
                    ("degraded_serves", Json::num(degraded_serves as f64)),
                    ("deadline_shed", Json::num(deadline_shed as f64)),
                ]),
            ),
            (
                "faults",
                Json::object([
                    ("panics_caught", Json::num(panics_caught as f64)),
                    (
                        "lock_recoveries",
                        Json::num(softpipe::sync::recoveries() as f64),
                    ),
                    (
                        "injected_panics",
                        Json::num(softpipe::fault::injected_panics() as f64),
                    ),
                    (
                        "injected_delays",
                        Json::num(softpipe::fault::injected_delays() as f64),
                    ),
                ]),
            ),
            (
                "pipes",
                match &self.pools.pipes {
                    Some(pool) => {
                        let p = pool.stats();
                        Json::object([
                            ("pooled", Json::Bool(true)),
                            ("spawned", Json::num(p.spawned as f64)),
                            ("reused", Json::num(p.reused as f64)),
                            ("retired", Json::num(p.retired as f64)),
                            ("discarded", Json::num(p.discarded as f64)),
                            ("idle", Json::num(p.idle as f64)),
                        ])
                    }
                    None => Json::object([("pooled", Json::Bool(false))]),
                },
            ),
            (
                "http",
                Json::object([
                    ("requests", Json::num(http_requests as f64)),
                    ("streams", Json::num(streams_started as f64)),
                    ("streamed_frames", Json::num(frames_streamed as f64)),
                    ("streams_aborted", Json::num(streams_aborted as f64)),
                ]),
            ),
            (
                "latency",
                Json::object([
                    ("request", Self::latency_json(&self.telemetry.request_us)),
                    (
                        "queue_wait",
                        Self::latency_json(&self.telemetry.queue_wait_us),
                    ),
                    ("advect", Self::latency_json(&self.telemetry.advect_us)),
                    (
                        "synthesize",
                        Self::latency_json(&self.telemetry.synthesize_us),
                    ),
                    ("render", Self::latency_json(&self.telemetry.render_us)),
                    (
                        "pipe_checkout",
                        Self::latency_json(&self.telemetry.checkout_us),
                    ),
                ]),
            ),
            ("per_session", Json::array(per_session)),
        ])
    }

    /// The `/metrics` document: Prometheus text exposition of the latency
    /// histograms and every service counter.
    pub fn metrics_text(&self) -> String {
        let mut out = String::with_capacity(8192);
        let histograms: [(&str, &str, &Arc<Histogram>); 6] = [
            (
                "spotnoise_request_duration_us",
                "End-to-end frame request latency (all outcomes)",
                &self.telemetry.request_us,
            ),
            (
                "spotnoise_queue_wait_us",
                "Admission-to-pop wait in the frame queue",
                &self.telemetry.queue_wait_us,
            ),
            (
                "spotnoise_stage_advect_us",
                "Per-frame particle-advection stage time",
                &self.telemetry.advect_us,
            ),
            (
                "spotnoise_stage_synthesize_us",
                "Per-frame texture-synthesis stage time",
                &self.telemetry.synthesize_us,
            ),
            (
                "spotnoise_stage_render_us",
                "Per-frame render stage time",
                &self.telemetry.render_us,
            ),
            (
                "spotnoise_pipe_checkout_wait_us",
                "Pipe-pool checkout wait",
                &self.telemetry.checkout_us,
            ),
        ];
        for (name, help, histogram) in histograms {
            write_prometheus_histogram(&mut out, name, help, &histogram.snapshot());
        }
        let reg = lock_recover(&self.registry, |_| {}).stats();
        let cache = lock_recover(&self.cache, FrameCache::revalidate);
        let (cache_len, cache_bytes, cache_stats) = (cache.len(), cache.bytes(), cache.stats());
        drop(cache);
        let channels = lock_recover(&self.channels, |_| {}).totals();
        let q = self.queue.stats();
        let pressure = self.pressure.counters();
        let c = &self.counters;
        let singles: [(&str, &str, &str, f64); 41] = [
            // (name, type, help, value)
            (
                "spotnoise_http_requests_total",
                "counter",
                "HTTP requests handled",
                c.http_requests.load(Ordering::Relaxed) as f64,
            ),
            (
                "spotnoise_frames_rendered_total",
                "counter",
                "Frames synthesized",
                c.frames_rendered.load(Ordering::Relaxed) as f64,
            ),
            (
                "spotnoise_streams_started_total",
                "counter",
                "Frame streams started",
                c.streams_started.load(Ordering::Relaxed) as f64,
            ),
            (
                "spotnoise_frames_streamed_total",
                "counter",
                "Frames pushed over streams",
                c.frames_streamed.load(Ordering::Relaxed) as f64,
            ),
            (
                "spotnoise_sessions_live",
                "gauge",
                "Sessions currently live",
                reg.live as f64,
            ),
            (
                "spotnoise_sessions_created_total",
                "counter",
                "Sessions ever created",
                reg.created as f64,
            ),
            (
                "spotnoise_sessions_evicted_total",
                "counter",
                "Sessions removed by idle eviction",
                reg.evicted as f64,
            ),
            (
                "spotnoise_sessions_closed_total",
                "counter",
                "Sessions closed by clients",
                reg.closed as f64,
            ),
            (
                "spotnoise_cache_entries",
                "gauge",
                "Cached frames",
                cache_len as f64,
            ),
            (
                "spotnoise_cache_bytes",
                "gauge",
                "Bytes held by the frame cache",
                cache_bytes as f64,
            ),
            (
                "spotnoise_cache_hits_total",
                "counter",
                "Cache hits",
                cache_stats.hits as f64,
            ),
            (
                "spotnoise_cache_misses_total",
                "counter",
                "Cache misses",
                cache_stats.misses as f64,
            ),
            (
                "spotnoise_cache_insertions_total",
                "counter",
                "Cache insertions",
                cache_stats.insertions as f64,
            ),
            (
                "spotnoise_cache_inserted_lookahead_total",
                "counter",
                "Look-ahead cache insertions",
                cache_stats.inserted_lookahead as f64,
            ),
            (
                "spotnoise_cache_evictions_total",
                "counter",
                "Cache LRU evictions",
                cache_stats.evictions as f64,
            ),
            (
                "spotnoise_queue_depth",
                "gauge",
                "Jobs waiting in the frame queue",
                q.depth as f64,
            ),
            (
                "spotnoise_queue_peak_depth",
                "gauge",
                "Highest queue depth observed",
                q.peak_depth as f64,
            ),
            (
                "spotnoise_queue_accepted_total",
                "counter",
                "Jobs admitted",
                q.accepted as f64,
            ),
            (
                "spotnoise_queue_shed_busy_total",
                "counter",
                "Submissions shed at the watermark",
                q.shed_busy as f64,
            ),
            (
                "spotnoise_queue_shed_session_total",
                "counter",
                "Submissions shed at the per-session cap",
                q.shed_session as f64,
            ),
            (
                "spotnoise_queue_completed_total",
                "counter",
                "Jobs fully executed",
                q.completed as f64,
            ),
            (
                "spotnoise_channels_live",
                "gauge",
                "Broadcast channels live",
                channels.live as f64,
            ),
            (
                "spotnoise_channels_subscribers",
                "gauge",
                "Subscribers across live channels",
                channels.subscribers as f64,
            ),
            (
                "spotnoise_channels_delivered_total",
                "counter",
                "Frames delivered to channel subscribers",
                channels.delivered as f64,
            ),
            (
                "spotnoise_channels_synthesized_total",
                "counter",
                "Frames synthesized on channel clocks",
                channels.synthesized as f64,
            ),
            (
                "spotnoise_channels_skips_total",
                "counter",
                "Fallen-behind serves skipped to the frontier",
                channels.skips as f64,
            ),
            (
                "spotnoise_streams_aborted_total",
                "counter",
                "Streams cut short by a client disconnect mid-write",
                c.streams_aborted.load(Ordering::Relaxed) as f64,
            ),
            (
                "spotnoise_pressure_state",
                "gauge",
                "Pressure ladder state (0 healthy, 1 elevated, 2 saturated)",
                self.pressure.state() as u8 as f64,
            ),
            (
                "spotnoise_pressure_entered_elevated_total",
                "counter",
                "Transitions into the elevated pressure state",
                pressure.entered_elevated as f64,
            ),
            (
                "spotnoise_pressure_entered_saturated_total",
                "counter",
                "Transitions into the saturated pressure state",
                pressure.entered_saturated as f64,
            ),
            (
                "spotnoise_pressure_recovered_total",
                "counter",
                "Pressure de-escalations back down the ladder",
                pressure.recovered as f64,
            ),
            (
                "spotnoise_stale_serves_total",
                "counter",
                "Saturated serves answered with the cached channel frontier",
                c.stale_serves.load(Ordering::Relaxed) as f64,
            ),
            (
                "spotnoise_degraded_serves_total",
                "counter",
                "Frames served under pressure-degraded footprint sampling",
                c.degraded_serves.load(Ordering::Relaxed) as f64,
            ),
            (
                "spotnoise_deadline_shed_total",
                "counter",
                "Requests shed or dropped for missing their deadline",
                c.deadline_shed.load(Ordering::Relaxed) as f64,
            ),
            (
                "spotnoise_sessions_quarantined_total",
                "counter",
                "Sessions quarantined after a panicked render",
                c.quarantined.load(Ordering::Relaxed) as f64,
            ),
            (
                "spotnoise_panics_caught_total",
                "counter",
                "Panics contained by the service's unwind barriers",
                c.panics_caught.load(Ordering::Relaxed) as f64,
            ),
            (
                "spotnoise_lock_recoveries_total",
                "counter",
                "Poisoned locks recovered and revalidated",
                softpipe::sync::recoveries() as f64,
            ),
            (
                "spotnoise_fault_injected_panics_total",
                "counter",
                "Panics injected by the fault plan",
                softpipe::fault::injected_panics() as f64,
            ),
            (
                "spotnoise_fault_injected_delays_total",
                "counter",
                "Delays injected by the fault plan",
                softpipe::fault::injected_delays() as f64,
            ),
            (
                "spotnoise_uptime_seconds",
                "gauge",
                "Seconds since service start",
                self.started.elapsed().as_secs_f64(),
            ),
            (
                "spotnoise_trace_recorded_total",
                "counter",
                "Trace spans recorded",
                self.telemetry.trace.recorded() as f64,
            ),
        ];
        for (name, kind, help, value) in singles {
            write_prometheus_single(&mut out, name, kind, help, value);
        }
        if let Some(pool) = &self.pools.pipes {
            let p = pool.stats();
            let pool_metrics: [(&str, &str, &str, f64); 5] = [
                (
                    "spotnoise_pipes_spawned_total",
                    "counter",
                    "Pipe workers spawned",
                    p.spawned as f64,
                ),
                (
                    "spotnoise_pipes_reused_total",
                    "counter",
                    "Checkouts served by a shelved worker",
                    p.reused as f64,
                ),
                (
                    "spotnoise_pipes_retired_total",
                    "counter",
                    "Returned pipes dropped at capacity",
                    p.retired as f64,
                ),
                (
                    "spotnoise_pipes_discarded_total",
                    "counter",
                    "Poisoned pipes discarded instead of reshelved",
                    p.discarded as f64,
                ),
                (
                    "spotnoise_pipes_idle",
                    "gauge",
                    "Idle pipes currently shelved",
                    p.idle as f64,
                ),
            ];
            for (name, kind, help, value) in pool_metrics {
                write_prometheus_single(&mut out, name, kind, help, value);
            }
        }
        out
    }

    /// The `/trace` document: the newest `last` spans of the trace ring as
    /// Chrome trace-event JSON (load into `chrome://tracing` or Perfetto).
    /// The `tid` lane is the span's actor (session or channel queue id).
    pub fn trace_json(&self, last: usize) -> Json {
        let events = self.telemetry.trace.recent(last);
        Json::object([
            ("displayTimeUnit", Json::str("ms")),
            ("enabled", Json::Bool(self.telemetry.trace.is_enabled())),
            (
                "recorded",
                Json::num(self.telemetry.trace.recorded() as f64),
            ),
            (
                "traceEvents",
                Json::array(events.iter().map(|e| {
                    Json::object([
                        ("name", Json::str(e.stage.name())),
                        ("cat", Json::str("spotnoise")),
                        ("ph", Json::str("X")),
                        ("ts", Json::num(e.start_us as f64)),
                        ("dur", Json::num(e.dur_us as f64)),
                        ("pid", Json::num(1.0)),
                        ("tid", Json::num(e.actor as f64)),
                        (
                            "args",
                            Json::object([
                                ("frame", Json::num(e.frame as f64)),
                                ("detail", Json::num(e.detail as f64)),
                            ]),
                        ),
                    ])
                })),
            ),
        ])
    }

    /// Initiates shutdown: closes the queue and pokes the accept loop.
    pub fn request_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        self.queue.close();
        // Wake the accept loop with a no-op connection.
        if let Some(addr) = *lock_recover(&self.addr, |_| {}) {
            let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(200));
        }
    }

    fn error_response(err: &ServiceError) -> Response {
        match err {
            ServiceError::Busy(what) => {
                Response::error(503, "busy", &format!("{what} at capacity, retry later"))
                    .with_header("Retry-After", "1")
            }
            ServiceError::NotFound => Response::error(404, "not_found", "no such session"),
            ServiceError::BadRequest(detail) => Response::error(400, "bad_request", detail),
            ServiceError::ShuttingDown => {
                Response::error(503, "shutting_down", "server is shutting down")
            }
            ServiceError::Internal(detail) => Response::error(500, "internal", detail),
            ServiceError::Quarantined => Response::error(
                500,
                "quarantined",
                "session quarantined after a panicked render; close it and create a fresh one",
            ),
            ServiceError::DeadlineExceeded => Response::error(
                503,
                "deadline",
                "deadline cannot be met under the current queue wait",
            )
            .with_header("Retry-After", "1"),
        }
    }

    fn frame_response(result: &FrameResult) -> Response {
        let mut response = Response::shared(200, Arc::clone(&result.bytes))
            .with_header("X-Frame-Cache", if result.cached { "hit" } else { "miss" })
            .with_header("X-Frame-Index", result.frame.to_string());
        if result.skipped {
            response = response.with_header("X-Frame-Skipped", "1");
        }
        if result.stale {
            response = response.with_header("X-Frame-Stale", "1");
        }
        if result.degraded {
            response = response.with_header("X-Frame-Degraded", "1");
        }
        response
    }

    fn session_info_response(&self, status: u16, id: u64) -> Response {
        let Some(session) = lock_recover(&self.registry, |_| {}).get(id) else {
            return Self::error_response(&ServiceError::NotFound);
        };
        let s = lock_recover(&session, revalidate_session);
        let spec = s.spec();
        Response::json(
            status,
            Json::object([
                ("session", Json::str(format_session_id(id))),
                ("field", spec.field.to_json()),
                (
                    "config",
                    Json::object([
                        ("texture_size", Json::num(spec.config.texture_size as f64)),
                        ("spot_count", Json::num(spec.config.spot_count as f64)),
                        ("seed", Json::num(spec.config.seed as f64)),
                        ("use_tiling", Json::Bool(spec.config.use_tiling)),
                        (
                            "sampling",
                            Json::str(crate::spec::sampling_mode_name(spec.config.sampling)),
                        ),
                    ]),
                ),
                (
                    "machine",
                    Json::object([
                        ("processors", Json::num(spec.processors as f64)),
                        ("pipes", Json::num(spec.pipes as f64)),
                    ]),
                ),
                ("dt", Json::num(spec.dt)),
                ("shared", Json::Bool(s.is_shared())),
                ("pinned", Json::Bool(spec.pinned)),
                ("quarantined", Json::Bool(s.is_quarantined())),
                ("degraded", Json::Bool(s.is_degraded())),
                ("frame_bytes", Json::num(spec.frame_bytes() as f64)),
                ("head_frame", Json::num(s.head_frame() as f64)),
                ("frames_rendered", Json::num(s.frames_rendered() as f64)),
                ("rewinds", Json::num(s.rewinds() as f64)),
                ("steers", Json::num(s.steers() as f64)),
            ]),
        )
    }

    /// Routes one parsed request to a response.
    pub fn route(&self, request: &Request) -> Response {
        self.counters.http_requests.fetch_add(1, Ordering::Relaxed);
        // Chaos hook for the routing layer itself; a panic fired here is
        // contained by the connection thread's unwind barrier.
        softpipe::fault::fire("route");
        let (path, query) = match request.path.split_once('?') {
            Some((path, query)) => (path, query),
            None => (request.path.as_str(), ""),
        };
        let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
        match (request.method.as_str(), segments.as_slice()) {
            ("GET", ["metrics"]) => {
                Response::text(200, "text/plain; version=0.0.4", self.metrics_text())
            }
            ("GET", ["trace"]) => match parse_trace_query(query) {
                Err(detail) => Response::error(400, "bad_request", &detail),
                Ok(last) => Response::json(200, self.trace_json(last)),
            },
            ("GET", ["healthz"]) => {
                // Tri-state health: `ok` and `elevated` answer 200 (the
                // server is serving, possibly without speculative work),
                // `saturated` answers 503 so load balancers steer away
                // while the ladder degrades instead of collapses.
                let state = self.pressure_tick();
                let shutting_down = self.is_shutting_down();
                let status = if shutting_down || state == PressureState::Saturated {
                    503
                } else {
                    200
                };
                Response::json(
                    status,
                    Json::object([
                        (
                            "status",
                            Json::str(if shutting_down {
                                "shutting_down"
                            } else {
                                state.name()
                            }),
                        ),
                        ("pressure", Json::str(state.name())),
                        ("shutting_down", Json::Bool(shutting_down)),
                    ]),
                )
            }
            ("GET", ["stats"]) => {
                lock_recover(&self.registry, |_| {}).evict_idle();
                self.sweep_channels();
                Response::json(200, self.stats_json())
            }
            ("POST", ["shutdown"]) => {
                self.request_shutdown();
                Response::json(200, Json::object([("status", Json::str("shutting down"))]))
            }
            ("POST", ["sessions"]) => match SessionSpec::from_body(&request.body) {
                Err(detail) => Response::error(400, "bad_request", &detail),
                Ok(spec) => match self.create_session(spec) {
                    Err(err) => Self::error_response(&err),
                    Ok(id) => self.session_info_response(201, id),
                },
            },
            ("GET", ["sessions", sid]) => match parse_session_id(sid) {
                None => Self::error_response(&ServiceError::NotFound),
                Some(id) => self.session_info_response(200, id),
            },
            ("DELETE", ["sessions", sid]) => {
                match parse_session_id(sid).map(|id| self.close_session(id)) {
                    Some(Ok(())) => Response::empty(204),
                    _ => Self::error_response(&ServiceError::NotFound),
                }
            }
            ("POST", ["sessions", sid, "steer"]) => {
                let Some(id) = parse_session_id(sid) else {
                    return Self::error_response(&ServiceError::NotFound);
                };
                let parsed = std::str::from_utf8(&request.body)
                    .map_err(|_| "body is not UTF-8".to_string())
                    .and_then(Json::parse)
                    .and_then(|value| {
                        // Accept either a bare field object or {"field": ...}.
                        let field = value.get("field").unwrap_or(&value).clone();
                        FieldSpec::from_json(&field)
                    });
                match parsed {
                    Err(detail) => Response::error(400, "bad_request", &detail),
                    Ok(field) => match self.steer(id, field) {
                        Ok(()) => self.session_info_response(200, id),
                        Err(err) => Self::error_response(&err),
                    },
                }
            }
            ("POST", ["sessions", sid, "advance"]) => {
                let Some(id) = parse_session_id(sid) else {
                    return Self::error_response(&ServiceError::NotFound);
                };
                match self.advance_deadline(id, request.deadline_ms) {
                    Ok(result) => Self::frame_response(&result),
                    Err(err) => Self::error_response(&err),
                }
            }
            ("GET", ["sessions", sid, "frame", index]) => {
                let Some(id) = parse_session_id(sid) else {
                    return Self::error_response(&ServiceError::NotFound);
                };
                let Ok(frame) = index.parse::<u64>() else {
                    return Response::error(400, "bad_request", "frame index not a number");
                };
                match self.fetch_frame_deadline(id, frame, request.deadline_ms) {
                    Ok(result) => Self::frame_response(&result),
                    Err(err) => Self::error_response(&err),
                }
            }
            (_, ["sessions", ..])
            | (_, ["stats"])
            | (_, ["healthz"])
            | (_, ["shutdown"])
            | (_, ["metrics"])
            | (_, ["trace"]) => {
                Response::error(405, "method_not_allowed", "wrong method for this path")
            }
            _ => Response::error(404, "not_found", "unknown path"),
        }
    }

    /// Serves one `GET /session/<id>/stream?from=N&count=k` request: pushes
    /// up to `count` frames as one chunked response, each frame one chunk
    /// ([`FrameRecord`] header + body straight from the shared buffer).
    ///
    /// The first frame is fetched *before* the head is written, so early
    /// failures (unknown session, bad index) still map to real HTTP
    /// statuses. Mid-stream, `Busy` sheds are retried (bounded by the reply
    /// timeout) and other errors end the stream cleanly at the terminal
    /// chunk — the frames already pushed stand, and the connection stays
    /// framed for the next request. On a shared session that falls behind
    /// the broadcast frontier, the skip semantics show through here: the
    /// served record carries the frontier's index and the stream continues
    /// from there, so a slow subscriber loses frames, never stalls the
    /// channel.
    fn handle_stream(
        &self,
        out: &mut impl std::io::Write,
        stream: StreamRequest,
        keep_alive: bool,
    ) -> std::io::Result<()> {
        self.counters.http_requests.fetch_add(1, Ordering::Relaxed);
        let count = stream.count.clamp(1, self.options.max_stream_frames.max(1));
        let mut result = match self.fetch_frame_retrying(stream.id, stream.from) {
            Ok(result) => result,
            Err(err) => return Self::error_response(&err).write_to(out, keep_alive),
        };
        self.counters
            .streams_started
            .fetch_add(1, Ordering::Relaxed);
        // A client that disconnects mid-stream surfaces as a write error
        // (broken pipe / connection reset) on any of the writes below. The
        // error is counted and propagated — never panicked on — and every
        // in-flight guard is already released by the time a fetch returns,
        // so an abandoned stream leaves the session reapable by idle
        // eviction like any other.
        let abort = |e: std::io::Error| {
            self.counters
                .streams_aborted
                .fetch_add(1, Ordering::Relaxed);
            e
        };
        let headers = vec![
            ("X-Stream-From".to_string(), stream.from.to_string()),
            ("X-Stream-Count".to_string(), count.to_string()),
        ];
        write_stream_head(out, 200, &headers, keep_alive).map_err(abort)?;
        let mut sent = 0u64;
        loop {
            let record = FrameRecord {
                frame: result.frame,
                len: result.bytes.len() as u32,
                cached: result.cached,
                skipped: result.skipped,
                stale: result.stale,
                degraded: result.degraded,
            };
            write_frame_record(out, &record, &result.bytes).map_err(abort)?;
            self.counters
                .frames_streamed
                .fetch_add(1, Ordering::Relaxed);
            sent += 1;
            if sent >= count {
                break;
            }
            match self.fetch_frame_retrying(stream.id, result.frame.saturating_add(1)) {
                Ok(next) => result = next,
                // The status line is long gone: end the stream at the
                // frames already delivered.
                Err(_) => break,
            }
        }
        finish_chunked(out).map_err(abort)
    }
}

/// A parsed frame-stream request.
struct StreamRequest {
    id: u64,
    from: u64,
    count: u64,
}

/// Parses the `/trace` query string: `last=N` bounds how many of the newest
/// spans are returned (default 256, `0` meaning "everything in the ring").
fn parse_trace_query(query: &str) -> Result<usize, String> {
    let mut last = 256usize;
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        match key {
            "last" => match value.parse::<usize>() {
                Ok(0) => last = usize::MAX,
                Ok(n) => last = n,
                Err(_) => return Err(format!("trace query last={value:?} not a number")),
            },
            other => return Err(format!("unknown trace query key {other:?}")),
        }
    }
    Ok(last)
}

/// Appends one histogram in Prometheus text exposition format: cumulative
/// `_bucket{le=...}` lines (ending at `+Inf`), `_sum` and `_count`, plus
/// pre-computed `_p50`/`_p90`/`_p99` gauges so scrapers that do not compute
/// `histogram_quantile` still get the headline percentiles.
fn write_prometheus_histogram(
    out: &mut String,
    name: &str,
    help: &str,
    snapshot: &HistogramSnapshot,
) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} histogram");
    for (le, cumulative) in snapshot.cumulative_buckets() {
        let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", snapshot.count);
    let _ = writeln!(out, "{name}_sum {}", snapshot.sum);
    let _ = writeln!(out, "{name}_count {}", snapshot.count);
    for (suffix, q) in [("p50", 50.0), ("p90", 90.0), ("p99", 99.0)] {
        let _ = writeln!(out, "# TYPE {name}_{suffix} gauge");
        let _ = writeln!(out, "{name}_{suffix} {}", snapshot.percentile(q));
    }
}

/// Appends one counter or gauge in Prometheus text exposition format.
fn write_prometheus_single(out: &mut String, name: &str, kind: &str, help: &str, value: f64) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
    if value.fract() == 0.0 && value.abs() < 9.0e15 {
        let _ = writeln!(out, "{name} {}", value as i64);
    } else {
        let _ = writeln!(out, "{name} {value}");
    }
}

/// Recognizes `GET /sessions/<id>/stream[?from=N&count=k]`. Returns `None`
/// for every other request (which goes through [`Service::route`] as
/// usual), `Some(Err(response))` for a malformed stream request, and
/// `Some(Ok(...))` for a well-formed one.
fn parse_stream_request(request: &Request) -> Option<Result<StreamRequest, Response>> {
    if request.method != "GET" {
        return None;
    }
    let (path, query) = match request.path.split_once('?') {
        Some((path, query)) => (path, query),
        None => (request.path.as_str(), ""),
    };
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    let ["sessions", sid, "stream"] = segments.as_slice() else {
        return None;
    };
    let Some(id) = parse_session_id(sid) else {
        return Some(Err(Service::error_response(&ServiceError::NotFound)));
    };
    let mut from = 0u64;
    let mut count = u64::MAX; // clamped to max_stream_frames by the handler
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        let parsed = match value.parse::<u64>() {
            Ok(n) => n,
            Err(_) => {
                return Some(Err(Response::error(
                    400,
                    "bad_request",
                    &format!("stream query {key}={value:?} not a number"),
                )))
            }
        };
        match key {
            "from" => from = parsed,
            "count" => {
                if parsed == 0 {
                    return Some(Err(Response::error(
                        400,
                        "bad_request",
                        "stream count must be at least 1",
                    )));
                }
                count = parsed;
            }
            other => {
                return Some(Err(Response::error(
                    400,
                    "bad_request",
                    &format!("unknown stream query key {other:?}"),
                )))
            }
        }
    }
    Some(Ok(StreamRequest { id, from, count }))
}

/// How long shutdown waits for in-flight connection threads to finish
/// writing their responses before the process is allowed to exit. Without
/// this grace the `/shutdown` reply races process exit: the responder is a
/// detached thread, and joining only the workers and the accept loop lets
/// `main` return while the response bytes are still unsent (observed as
/// intermittent empty replies to `POST /shutdown`).
const CONNECTION_DRAIN_GRACE: Duration = Duration::from_secs(1);

/// Live connection-thread handles, pruned as threads finish.
type ConnectionSet = Arc<Mutex<Vec<JoinHandle<()>>>>;

/// Waits until every tracked connection thread has finished, up to the
/// drain grace (idle keep-alive connections block in `read` for up to their
/// 60 s timeout — those are abandoned at the deadline, which is safe: they
/// have no response in flight).
fn drain_connections(connections: &ConnectionSet) {
    let deadline = Instant::now() + CONNECTION_DRAIN_GRACE;
    loop {
        {
            let mut conns = lock_recover(connections, |_| {});
            conns.retain(|h| !h.is_finished());
            if conns.is_empty() {
                return;
            }
        }
        if Instant::now() >= deadline {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// A running server: the bound address plus the handles needed to stop it.
pub struct ServiceHandle {
    service: Arc<Service>,
    addr: SocketAddr,
    threads: Vec<JoinHandle<()>>,
    connections: ConnectionSet,
}

impl ServiceHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared service state (for in-process callers and tests).
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Blocks until the server has shut down (e.g. via `POST /shutdown`),
    /// then drains in-flight connection threads so their responses — the
    /// `/shutdown` acknowledgement included — are written before return.
    pub fn join(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        drain_connections(&self.connections);
        // `self` is dropped on return and Drop drains again; clearing here
        // makes that a no-op so an idle keep-alive connection (which waits
        // out the full grace) cannot double the shutdown latency.
        lock_recover(&self.connections, |_| {}).clear();
    }

    /// Initiates shutdown and waits for workers and the accept loop.
    pub fn shutdown(self) {
        self.service.request_shutdown();
        self.join();
    }
}

impl Drop for ServiceHandle {
    fn drop(&mut self) {
        self.service.request_shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        drain_connections(&self.connections);
    }
}

fn handle_connection(service: Arc<Service>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    // An idle keep-alive connection eventually times out so connection
    // threads cannot accumulate forever.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(60)));
    let Ok(reader_stream) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(reader_stream);
    let mut writer = stream;
    loop {
        let request = match read_request(&mut reader) {
            Ok(Some(request)) => request,
            Ok(None) => break,
            // Only genuinely malformed input earns a 400. A read timeout or
            // a mid-request hang-up must close silently — writing a response
            // there would leave a stale 400 in the socket for the client to
            // misread as the answer to its *next* request.
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                let _ = Response::error(400, "bad_request", "malformed request")
                    .write_to(&mut writer, false);
                break;
            }
            // A body-bearing request without Content-Length: the unframed
            // body would desync the stream, so answer 411 and close (the
            // close discards whatever body bytes follow).
            Err(e) if e.kind() == std::io::ErrorKind::InvalidInput => {
                let _ = Response::error(
                    411,
                    "length_required",
                    "request bodies must be framed with Content-Length",
                )
                .write_to(&mut writer, false);
                break;
            }
            Err(_) => break,
        };
        let keep_alive = request.keep_alive && !service.is_shutting_down();
        // Frame streams bypass route(): their response is written
        // incrementally as frames synthesize, not built up front.
        match parse_stream_request(&request) {
            Some(Ok(stream)) => {
                // The unwind barrier: a panic mid-stream cannot be turned
                // into a clean 500 (the head may be written), so the
                // connection is dropped — but the thread, and the server,
                // survive.
                let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    service.handle_stream(&mut writer, stream, keep_alive)
                }));
                match outcome {
                    Ok(Ok(())) if keep_alive => continue,
                    Ok(_) => break,
                    Err(_) => {
                        service
                            .counters
                            .panics_caught
                            .fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                }
            }
            Some(Err(response)) => {
                service
                    .counters
                    .http_requests
                    .fetch_add(1, Ordering::Relaxed);
                if response.write_to(&mut writer, keep_alive).is_err() || !keep_alive {
                    break;
                }
                continue;
            }
            None => {}
        }
        // The same barrier for buffered routes: a panicking handler answers
        // *this* request with a 500 and the connection (and every other
        // session) keeps going.
        let response = match std::panic::catch_unwind(AssertUnwindSafe(|| service.route(&request)))
        {
            Ok(response) => response,
            Err(_) => {
                service
                    .counters
                    .panics_caught
                    .fetch_add(1, Ordering::Relaxed);
                Response::error(500, "internal", "request handler panicked")
            }
        };
        if response.write_to(&mut writer, keep_alive).is_err() || !keep_alive {
            break;
        }
    }
}

/// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port), spawns the
/// accept loop and the synthesis worker pool, and returns the running
/// server's handle.
pub fn serve(addr: impl ToSocketAddrs, options: ServiceOptions) -> std::io::Result<ServiceHandle> {
    // Arm the chaos plan, if any: `SPOTNOISE_FAULT=panic:raster:0.02,...`
    // makes every server in this process run under injected faults.
    softpipe::fault::install_from_env();
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let service = Service::new(options);
    *lock_recover(&service.addr, |_| {}) = Some(local);

    let workers = if options.workers > 0 {
        options.workers
    } else {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    };
    let mut threads = Vec::with_capacity(workers + 1);
    for i in 0..workers {
        let service = Arc::clone(&service);
        threads.push(
            std::thread::Builder::new()
                .name(format!("synth-worker-{i}"))
                .spawn(move || service.worker_loop())
                .expect("spawn worker"),
        );
    }
    let connections: ConnectionSet = Arc::new(Mutex::new(Vec::new()));
    {
        let service = Arc::clone(&service);
        let connections = Arc::clone(&connections);
        threads.push(
            std::thread::Builder::new()
                .name("accept-loop".to_string())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if service.is_shutting_down() {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        let service = Arc::clone(&service);
                        // Connection threads run detached — they exit when
                        // their client hangs up, errors, or idles out — but
                        // their handles are tracked (finished ones pruned)
                        // so shutdown can drain in-flight responses.
                        let handle = std::thread::Builder::new()
                            .name("connection".to_string())
                            .spawn(move || handle_connection(service, stream));
                        if let Ok(handle) = handle {
                            let mut conns = lock_recover(&connections, |_| {});
                            conns.retain(|h| !h.is_finished());
                            conns.push(handle);
                        }
                    }
                })
                .expect("spawn accept loop"),
        );
    }
    Ok(ServiceHandle {
        service,
        addr: local,
        threads,
        connections,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotnoise::config::SynthesisConfig;

    fn tiny_options() -> ServiceOptions {
        ServiceOptions {
            workers: 1,
            cache_bytes: 16 * 32 * 32 * 4,
            ..ServiceOptions::default()
        }
    }

    fn tiny_spec() -> SessionSpec {
        SessionSpec {
            config: SynthesisConfig {
                texture_size: 32,
                spot_count: 40,
                spot_texture_size: 8,
                ..SynthesisConfig::small_test()
            },
            ..SessionSpec::default()
        }
    }

    /// Spin up a full in-process server for API-level tests.
    fn start() -> ServiceHandle {
        serve("127.0.0.1:0", tiny_options()).expect("bind loopback")
    }

    #[test]
    fn fetch_miss_then_hit_through_the_queue() {
        let handle = start();
        let service = handle.service();
        let id = service.create_session(tiny_spec()).unwrap();
        let miss = service.fetch_frame(id, 0).unwrap();
        assert!(!miss.cached);
        assert_eq!(miss.bytes.len(), 32 * 32 * 4);
        let hit = service.fetch_frame(id, 0).unwrap();
        assert!(hit.cached);
        assert_eq!(miss.bytes, hit.bytes);
        let stats = service.stats_json();
        let cache = stats.get("cache").unwrap();
        assert_eq!(cache.get("hits").and_then(Json::as_f64), Some(1.0));
        assert_eq!(cache.get("misses").and_then(Json::as_f64), Some(1.0));
        handle.shutdown();
    }

    #[test]
    fn lookahead_frames_are_cached_and_counted() {
        let handle = start();
        let service = handle.service();
        let id = service.create_session(tiny_spec()).unwrap();
        // Requesting frame 2 renders frames 0 and 1 on the way: three
        // insertions, two of them look-ahead.
        let miss = service.fetch_frame(id, 2).unwrap();
        assert!(!miss.cached);
        let stats = service.stats_json();
        let cache = stats.get("cache").unwrap();
        assert_eq!(cache.get("insertions").and_then(Json::as_f64), Some(3.0));
        assert_eq!(
            cache.get("inserted_lookahead").and_then(Json::as_f64),
            Some(2.0)
        );
        // The look-ahead frames serve later requests straight from cache —
        // without adding further look-ahead counts.
        assert!(service.fetch_frame(id, 1).unwrap().cached);
        let stats = service.stats_json();
        let cache = stats.get("cache").unwrap();
        assert_eq!(
            cache.get("inserted_lookahead").and_then(Json::as_f64),
            Some(2.0)
        );
        handle.shutdown();
    }

    #[test]
    fn advance_walks_the_head_forward() {
        let handle = start();
        let service = handle.service();
        let id = service.create_session(tiny_spec()).unwrap();
        let a = service.advance(id).unwrap();
        let b = service.advance(id).unwrap();
        assert_eq!(a.frame, 0);
        assert_eq!(b.frame, 1);
        assert!(a.bytes != b.bytes);
        handle.shutdown();
    }

    #[test]
    fn advance_keeps_progressing_after_a_cached_rewind() {
        let handle = start();
        let service = handle.service();
        let id = service.create_session(tiny_spec()).unwrap();
        // Walk ahead, then rewind to a cached frame.
        service.fetch_frame(id, 2).unwrap();
        let rewound = service.fetch_frame(id, 0).unwrap();
        assert!(rewound.cached);
        // Advance must continue past the rewound frame — serving cached
        // frames 1 and 2, then rendering fresh frame 3 — never freezing on
        // one index.
        let frames: Vec<u64> = (0..3).map(|_| service.advance(id).unwrap().frame).collect();
        assert_eq!(frames, vec![1, 2, 3]);
        handle.shutdown();
    }

    #[test]
    fn zero_deadline_requests_are_shed_unless_cached() {
        let handle = start();
        let service = handle.service();
        let id = service.create_session(tiny_spec()).unwrap();
        // An uncached frame with no budget left sheds at admission...
        assert!(matches!(
            service.fetch_frame_deadline(id, 0, Some(0)),
            Err(ServiceError::DeadlineExceeded)
        ));
        // ...but once the frame is cached, even a spent deadline serves it
        // (the cache probe costs nothing).
        service.fetch_frame(id, 0).unwrap();
        assert!(service.fetch_frame_deadline(id, 0, Some(0)).unwrap().cached);
        let stats = service.stats_json();
        let pressure = stats.get("pressure").unwrap();
        assert_eq!(
            pressure.get("deadline_shed").and_then(Json::as_f64),
            Some(1.0)
        );
        handle.shutdown();
    }

    #[test]
    fn quarantined_sessions_refuse_requests_and_are_reaped() {
        let handle = start();
        let service = handle.service();
        let id = service.create_session(tiny_spec()).unwrap();
        let session = lock_recover(&service.registry, |_| {}).get(id).unwrap();
        assert!(lock_recover(&session, revalidate_session).quarantine());
        assert!(
            matches!(service.fetch_frame(id, 0), Err(ServiceError::Quarantined)),
            "a quarantined session answers every frame request with the typed error"
        );
        assert!(matches!(
            service.steer(id, FieldSpec::Shear { rate: 1.0 }),
            Err(ServiceError::Quarantined)
        ));
        // The /stats sweep reaps it immediately — no idle timeout needed.
        lock_recover(&service.registry, |_| {}).evict_idle();
        assert!(matches!(
            service.fetch_frame(id, 0),
            Err(ServiceError::NotFound)
        ));
        handle.shutdown();
    }

    #[test]
    fn unknown_sessions_and_bad_requests_are_typed_errors() {
        let handle = start();
        let service = handle.service();
        assert!(matches!(
            service.fetch_frame(999, 0),
            Err(ServiceError::NotFound)
        ));
        assert_eq!(service.close_session(999), Err(ServiceError::NotFound));
        let id = service.create_session(tiny_spec()).unwrap();
        match service.fetch_frame(id, 100_000) {
            Err(ServiceError::BadRequest(_)) => {}
            other => panic!("expected BadRequest, got {other:?}"),
        }
        handle.shutdown();
    }

    #[test]
    fn routing_covers_crud_and_errors() {
        let handle = start();
        let service = handle.service();
        let req = |method: &str, path: &str, body: &[u8]| Request {
            method: method.to_string(),
            path: path.to_string(),
            body: body.to_vec(),
            keep_alive: true,
            deadline_ms: None,
        };
        let created = service.route(&req("POST", "/sessions", b""));
        assert_eq!(created.status, 201);
        let doc = Json::parse(std::str::from_utf8(&created.body).unwrap()).unwrap();
        let sid = doc
            .get("session")
            .and_then(Json::as_str)
            .unwrap()
            .to_string();
        assert_eq!(
            doc.get("frame_bytes").and_then(Json::as_f64),
            Some((128 * 128 * 4) as f64)
        );

        let frame = service.route(&req("GET", &format!("/sessions/{sid}/frame/0"), b""));
        assert_eq!(frame.status, 200);
        assert_eq!(frame.body.len(), 128 * 128 * 4);
        assert!(frame
            .headers
            .iter()
            .any(|(k, v)| k == "X-Frame-Cache" && v == "miss"));

        assert_eq!(service.route(&req("GET", "/healthz", b"")).status, 200);
        assert_eq!(service.route(&req("GET", "/stats", b"")).status, 200);
        assert_eq!(service.route(&req("GET", "/nope", b"")).status, 404);
        assert_eq!(service.route(&req("PUT", "/stats", b"")).status, 405);
        assert_eq!(
            service
                .route(&req("GET", "/sessions/s-99/frame/0", b""))
                .status,
            404
        );
        assert_eq!(
            service
                .route(&req("GET", &format!("/sessions/{sid}/frame/x"), b""))
                .status,
            400
        );
        let steered = service.route(&req(
            "POST",
            &format!("/sessions/{sid}/steer"),
            br#"{"kind": "shear", "rate": 2.0}"#,
        ));
        assert_eq!(steered.status, 200);
        assert_eq!(
            service
                .route(&req("DELETE", &format!("/sessions/{sid}"), b""))
                .status,
            204
        );
        assert_eq!(
            service
                .route(&req("DELETE", &format!("/sessions/{sid}"), b""))
                .status,
            404
        );
        handle.shutdown();
    }
}
