//! The cluster front tier: a stateless router sharding sessions across
//! worker nodes.
//!
//! The paper divides one spot-noise frame over the processors of a single
//! machine; this tier divides many *sessions* over worker processes, which
//! is how the service scales past one box. The router holds no session
//! state at all — placement is a pure function of the session spec (a
//! [`HashRing`] over the worker set), and the cluster session id it hands
//! out (`n<node>.s-<n>`, [`ClusterSessionId`]) embeds the owning node, so
//! every follow-up request routes by parsing its own id. Three design
//! points carry the tier:
//!
//! * **Shared-field co-location** — a shared session's ring key is its
//!   broadcast [`ChannelKey`], so every subscriber to one `(field, config,
//!   seed)` lands on the same worker and the channel fan-out (one
//!   synthesis, N deliveries) keeps working across the cluster. Private
//!   sessions hash a creation counter instead, spreading them evenly.
//! * **Degraded routing** — placement consults each worker's tri-state
//!   `/healthz` (briefly cached): a saturated or dead node is walked past
//!   on the ring, and the router sheds `503` only when *every* worker is
//!   down. Workers route *around* trouble before the cluster turns anyone
//!   away, mirroring the per-node pressure ladder.
//! * **Aggregated observability** — `/stats` serves a cluster view
//!   (per-node documents plus counters folded per
//!   [`stats_aggregation`](crate::cluster::stats_aggregation), so sums are
//!   summed and peaks are maxed), `/metrics` re-exports every worker's
//!   series under a `node` label, and `/healthz` degrades through
//!   `ok`/`degraded`/`unavailable` as workers fall over.
//!
//! Frame responses and streams are relayed intact — `X-Frame-*`,
//! `X-Node-Id`, `Retry-After` and frame-record flags pass through
//! unchanged, so a frame fetched through the router is bit- and
//! metadata-identical to one fetched from the worker directly.

use crate::channel::ChannelKey;
use crate::client::{ClientError, ClientPool, HttpReply, ServiceClient};
use crate::cluster::{aggregate_stats, ClusterSessionId, HashRing};
use crate::http::{
    finish_chunked, write_frame_record, write_stream_head, FrameRecord, Request, Response,
};
use crate::node::write_prometheus_single;
use crate::server::{parse_stream_request, serve_front, FrontHandle, Frontend};
use crate::spec::SessionSpec;
use softpipe::sync::lock_recover;
use spotnoise::hash::StableHasher;
use spotnoise::json::Json;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Configuration for [`serve_router`].
#[derive(Debug, Clone)]
pub struct RouterOptions {
    /// The worker node addresses, in ring order. Index `i` here is node
    /// `i` in every cluster session id, so the list must be identical
    /// (same order) across router replicas.
    pub workers: Vec<SocketAddr>,
    /// The router's own identity for `X-Node-Id` tagging; defaults to
    /// `router@<bound address>`.
    pub node_id: Option<String>,
    /// TCP connect deadline for proxied requests.
    pub connect_timeout: Duration,
    /// Blocking-read deadline for proxied requests (covers synthesis).
    pub read_timeout: Duration,
    /// Connect + read deadline for `/healthz` probes — short, so a hung
    /// worker delays placement by milliseconds, not a synthesis timeout.
    pub health_timeout: Duration,
    /// How long one health probe answer stays fresh. Within the TTL every
    /// placement reuses the cached state; past it the next placement
    /// re-probes.
    pub health_ttl: Duration,
}

impl Default for RouterOptions {
    fn default() -> Self {
        RouterOptions {
            workers: Vec::new(),
            node_id: None,
            connect_timeout: Duration::from_secs(1),
            read_timeout: crate::client::DEFAULT_READ_TIMEOUT,
            health_timeout: Duration::from_millis(250),
            health_ttl: Duration::from_millis(250),
        }
    }
}

/// What the router knows about one worker's health, from its tri-state
/// `/healthz` (plus `Down` for a worker it cannot reach).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeState {
    /// Serving normally.
    Ok,
    /// Serving with speculative work disabled — still a placement target.
    Elevated,
    /// Shedding load (or shutting down): placement walks past it while any
    /// healthier node exists, but it still beats `Down`.
    Saturated,
    /// Unreachable.
    Down,
}

impl NodeState {
    fn name(self) -> &'static str {
        match self {
            NodeState::Ok => "ok",
            NodeState::Elevated => "elevated",
            NodeState::Saturated => "saturated",
            NodeState::Down => "down",
        }
    }
}

struct WorkerNode {
    addr: SocketAddr,
    pool: ClientPool,
}

#[derive(Clone, Copy)]
struct HealthEntry {
    state: NodeState,
    checked: Option<Instant>,
}

#[derive(Default)]
struct RouterCounters {
    http_requests: AtomicU64,
    proxied: AtomicU64,
    sessions_created: AtomicU64,
    /// Placements that landed somewhere other than the ring-preferred node
    /// because it was saturated or down.
    rerouted: AtomicU64,
    /// Requests shed with `503` because every worker was down.
    shed: AtomicU64,
    /// Proxied requests that failed at the transport (the worker was
    /// marked down).
    node_errors: AtomicU64,
    streams_relayed: AtomicU64,
    frames_relayed: AtomicU64,
    panics_caught: AtomicU64,
}

/// The cluster router: consistent-hash placement over worker nodes plus a
/// proxying front end for the full service API.
pub struct Router {
    options: RouterOptions,
    ring: HashRing,
    nodes: Vec<WorkerNode>,
    health: Vec<Mutex<HealthEntry>>,
    node_id: Mutex<String>,
    addr: Mutex<Option<SocketAddr>>,
    shutdown: AtomicBool,
    counters: RouterCounters,
    /// Salts private-session placement so unshared sessions spread over
    /// the ring instead of piling onto one arc.
    create_salt: AtomicU64,
    started: Instant,
}

impl Router {
    /// Builds a router over the workers in `options`. Errors when the
    /// worker list is empty — a router with nothing behind it can serve
    /// nothing.
    pub fn new(options: RouterOptions) -> io::Result<Arc<Router>> {
        if options.workers.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "router needs at least one worker address",
            ));
        }
        let nodes: Vec<WorkerNode> = options
            .workers
            .iter()
            .map(|&addr| WorkerNode {
                addr,
                pool: ClientPool::new(addr)
                    .with_connect_timeout(options.connect_timeout)
                    .with_read_timeout(Some(options.read_timeout)),
            })
            .collect();
        let health = nodes
            .iter()
            .map(|_| {
                Mutex::new(HealthEntry {
                    state: NodeState::Ok,
                    checked: None,
                })
            })
            .collect();
        let node_id = options.node_id.clone().unwrap_or_default();
        Ok(Arc::new(Router {
            ring: HashRing::new(nodes.len()),
            nodes,
            health,
            node_id: Mutex::new(node_id),
            addr: Mutex::new(None),
            shutdown: AtomicBool::new(false),
            counters: RouterCounters::default(),
            create_salt: AtomicU64::new(0),
            started: Instant::now(),
            options,
        }))
    }

    /// The router's cluster identity (`X-Node-Id` on router-origin
    /// responses).
    pub fn node_id(&self) -> String {
        lock_recover(&self.node_id, |_| {}).clone()
    }

    fn set_default_node_id(&self, id: &str) {
        let mut slot = lock_recover(&self.node_id, |_| {});
        if slot.is_empty() {
            *slot = id.to_string();
        }
    }

    /// The worker addresses the router was built over, in node-index
    /// order.
    pub fn workers(&self) -> Vec<SocketAddr> {
        self.nodes.iter().map(|n| n.addr).collect()
    }

    /// Initiates shutdown of the router (the workers keep running) and
    /// pokes the accept loop.
    pub fn request_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        if let Some(addr) = *lock_recover(&self.addr, |_| {}) {
            let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(200));
        }
    }

    /// Probes one worker's `/healthz` with the short health deadlines.
    fn probe_health(&self, idx: usize) -> NodeState {
        let addr = self.nodes[idx].addr;
        let mut client = match ServiceClient::connect_with_timeouts(
            addr,
            Some(self.options.health_timeout),
            Some(self.options.health_timeout),
        ) {
            Ok(client) => client,
            Err(_) => return NodeState::Down,
        };
        let Ok(reply) = client.request("GET", "/healthz", b"") else {
            return NodeState::Down;
        };
        let status = reply
            .json()
            .ok()
            .and_then(|doc| doc.get("status").and_then(Json::as_str).map(str::to_string));
        match status.as_deref() {
            Some("ok") => NodeState::Ok,
            Some("elevated") => NodeState::Elevated,
            Some("saturated") => NodeState::Saturated,
            // A shutting-down worker refuses new work; treat it as gone.
            Some("shutting_down") => NodeState::Down,
            _ => {
                if reply.status == 200 {
                    NodeState::Ok
                } else {
                    NodeState::Down
                }
            }
        }
    }

    /// The worker's health state, re-probing when the cached answer is
    /// older than the TTL.
    fn node_state(&self, idx: usize) -> NodeState {
        {
            let entry = lock_recover(&self.health[idx], |_| {});
            if let Some(checked) = entry.checked {
                if checked.elapsed() < self.options.health_ttl {
                    return entry.state;
                }
            }
        }
        // Probe outside the lock: a slow worker must not serialize every
        // placement behind one probe. Concurrent placements may each probe
        // once at the TTL edge; the last write wins and all agree soon.
        let state = self.probe_health(idx);
        let mut entry = lock_recover(&self.health[idx], |_| {});
        *entry = HealthEntry {
            state,
            checked: Some(Instant::now()),
        };
        state
    }

    /// Marks a worker down after a transport failure on the proxy path —
    /// the next placement walks past it without waiting for a probe.
    fn mark_down(&self, idx: usize) {
        self.counters.node_errors.fetch_add(1, Ordering::Relaxed);
        let mut entry = lock_recover(&self.health[idx], |_| {});
        *entry = HealthEntry {
            state: NodeState::Down,
            checked: Some(Instant::now()),
        };
    }

    /// The ring key a create request places by: shared sessions hash
    /// their broadcast channel key (co-locating every subscriber), private
    /// sessions hash a creation counter (spreading load).
    fn ring_key_for(&self, spec: &SessionSpec) -> u64 {
        let mut h = StableHasher::new();
        if spec.shared {
            let key = ChannelKey::of(spec);
            h.write_str("spotnoise-shared-placement");
            h.write_u64(key.field);
            h.write_u64(key.config);
            h.write_u64(key.seed);
        } else {
            h.write_str("spotnoise-private-placement");
            h.write_u64(self.create_salt.fetch_add(1, Ordering::Relaxed));
        }
        h.finish()
    }

    /// Places a key on the healthiest node in its ring walk: the first
    /// node that is up and not saturated; failing that, the first node
    /// that is at least up; failing *that*, a shed.
    fn place(&self, key: u64) -> Result<usize, Response> {
        let walk: Vec<usize> = self.ring.nodes_for(key).collect();
        let preferred = walk.first().copied();
        let states: Vec<NodeState> = walk.iter().map(|&idx| self.node_state(idx)).collect();
        let chosen = walk
            .iter()
            .zip(&states)
            .find(|(_, &s)| matches!(s, NodeState::Ok | NodeState::Elevated))
            .or_else(|| {
                walk.iter()
                    .zip(&states)
                    .find(|(_, &s)| s == NodeState::Saturated)
            })
            .map(|(&idx, _)| idx);
        match chosen {
            Some(idx) => {
                if preferred != Some(idx) {
                    self.counters.rerouted.fetch_add(1, Ordering::Relaxed);
                }
                Ok(idx)
            }
            None => {
                self.counters.shed.fetch_add(1, Ordering::Relaxed);
                Err(
                    Response::error(503, "cluster_unavailable", "every worker node is down")
                        .with_header("Retry-After", "1"),
                )
            }
        }
    }

    /// Sends one proxied request to a worker, mapping transport failure to
    /// a `503` (and marking the node down).
    fn forward_reply(
        &self,
        idx: usize,
        method: &str,
        path: &str,
        extra_headers: &[(&str, String)],
        body: &[u8],
    ) -> Result<HttpReply, Response> {
        match self.nodes[idx]
            .pool
            .request_with_headers(method, path, extra_headers, body)
        {
            Ok(reply) => {
                self.counters.proxied.fetch_add(1, Ordering::Relaxed);
                Ok(reply)
            }
            Err(_) => {
                self.mark_down(idx);
                Err(Response::error(
                    503,
                    "node_unavailable",
                    &format!("worker node {idx} is unreachable"),
                )
                .with_header("Retry-After", "1"))
            }
        }
    }

    /// Re-encodes a worker reply as a router response: status and body
    /// verbatim, `X-*` and `Retry-After` headers forwarded intact, content
    /// type mapped back onto the codec's static set.
    fn reply_to_response(reply: HttpReply) -> Response {
        let content_type = match reply.header("content-type") {
            Some(value) if value.starts_with("application/json") => "application/json",
            Some(value) if value.starts_with("text/plain") => "text/plain; version=0.0.4",
            _ => "application/octet-stream",
        };
        let mut response = Response {
            status: reply.status,
            content_type,
            headers: Vec::new(),
            body: Arc::new(reply.body),
        };
        for (name, value) in &reply.headers {
            if name.starts_with("x-") || name == "retry-after" {
                response = response.with_header(name, value.clone());
            }
        }
        response
    }

    /// The extra headers a proxied request carries forward.
    fn forward_headers(request: &Request) -> Vec<(&'static str, String)> {
        match request.deadline_ms {
            Some(ms) => vec![("X-Deadline-Ms", ms.to_string())],
            None => Vec::new(),
        }
    }

    /// Handles `POST /sessions`: parse the spec, place it on the ring,
    /// create it on the chosen worker, and rewrite the returned session id
    /// into its cluster form.
    fn create_session(&self, request: &Request) -> Response {
        let spec = match SessionSpec::from_body(&request.body) {
            Ok(spec) => spec,
            Err(detail) => return Response::error(400, "bad_request", &detail),
        };
        let node = match self.place(self.ring_key_for(&spec)) {
            Ok(node) => node,
            Err(response) => return response,
        };
        let reply = match self.forward_reply(
            node,
            "POST",
            "/sessions",
            &Self::forward_headers(request),
            &request.body,
        ) {
            Ok(reply) => reply,
            Err(response) => return response,
        };
        if reply.status != 201 {
            return Self::reply_to_response(reply);
        }
        let Ok(Json::Object(mut entries)) = reply.json() else {
            return Response::error(502, "bad_upstream", "worker create reply is not JSON");
        };
        let mut rewritten = false;
        for (name, value) in entries.iter_mut() {
            if name == "session" {
                if let Json::Str(local) = value {
                    *value = Json::str(
                        ClusterSessionId {
                            node,
                            local: local.clone(),
                        }
                        .format(),
                    );
                    rewritten = true;
                }
            }
        }
        if !rewritten {
            return Response::error(502, "bad_upstream", "worker create reply has no session id");
        }
        self.counters
            .sessions_created
            .fetch_add(1, Ordering::Relaxed);
        let mut response = Response::json(201, Json::Object(entries));
        for (name, value) in &reply.headers {
            if name.starts_with("x-") {
                response = response.with_header(name, value.clone());
            }
        }
        response
    }

    /// Rewrites a cluster session path onto the owning worker and proxies
    /// it. `tail` is everything after the session id segment.
    fn forward_session(
        &self,
        request: &Request,
        cid: &str,
        tail: &[&str],
        query: &str,
    ) -> Response {
        let Some(id) = ClusterSessionId::parse(cid) else {
            return Response::error(
                404,
                "not_found",
                "not a cluster session id (expected n<node>.s-<n>)",
            );
        };
        if id.node >= self.nodes.len() {
            return Response::error(404, "not_found", "session id names an unknown node");
        }
        let mut path = format!("/sessions/{}", id.local);
        for segment in tail {
            path.push('/');
            path.push_str(segment);
        }
        if !query.is_empty() {
            path.push('?');
            path.push_str(query);
        }
        match self.forward_reply(
            id.node,
            &request.method,
            &path,
            &Self::forward_headers(request),
            &request.body,
        ) {
            Ok(reply) => Self::reply_to_response(reply),
            Err(response) => response,
        }
    }

    /// The aggregated cluster `/healthz`: `ok` when every worker is
    /// healthy, `degraded` (still 200) while any worker serves, and
    /// `unavailable` (503) when none does.
    fn healthz_response(&self) -> Response {
        let states: Vec<NodeState> = (0..self.nodes.len()).map(|i| self.node_state(i)).collect();
        let serving = states.iter().filter(|&&s| s != NodeState::Down).count();
        let clean = states.iter().filter(|&&s| s == NodeState::Ok).count();
        let shutting_down = self.is_shutting_down();
        let (status, label) = if shutting_down || serving == 0 {
            (
                503,
                if shutting_down {
                    "shutting_down"
                } else {
                    "unavailable"
                },
            )
        } else if clean == states.len() {
            (200, "ok")
        } else {
            (200, "degraded")
        };
        Response::json(
            status,
            Json::object([
                ("status", Json::str(label)),
                ("workers", Json::num(states.len() as f64)),
                ("serving", Json::num(serving as f64)),
                ("shutting_down", Json::Bool(shutting_down)),
                (
                    "nodes",
                    Json::array(self.nodes.iter().zip(&states).map(|(node, state)| {
                        Json::object([
                            ("addr", Json::str(node.addr.to_string())),
                            ("state", Json::str(state.name())),
                        ])
                    })),
                ),
            ]),
        )
    }

    /// The cluster `/stats` document (schema `spotnoise_cluster_stats/v1`):
    /// router counters, the aggregated cluster view, and every reachable
    /// worker's own document.
    fn stats_response(&self) -> Response {
        let mut docs: Vec<Json> = Vec::new();
        let per_node: Vec<Json> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(idx, node)| {
                let reply = node.pool.request("GET", "/stats", b"").ok();
                let doc = reply.as_ref().and_then(|r| r.json().ok());
                let up = doc.is_some();
                let id = doc
                    .as_ref()
                    .and_then(|d| d.get("node"))
                    .and_then(|n| n.get("id"))
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string();
                let mut fields = vec![
                    ("node".to_string(), Json::num(idx as f64)),
                    ("addr".to_string(), Json::str(node.addr.to_string())),
                    ("up".to_string(), Json::Bool(up)),
                    ("id".to_string(), Json::str(id)),
                ];
                if let Some(doc) = doc {
                    docs.push(doc.clone());
                    fields.push(("stats".to_string(), doc));
                }
                Json::Object(fields)
            })
            .collect();
        Response::json(
            200,
            Json::object([
                ("schema", Json::str("spotnoise_cluster_stats/v1")),
                (
                    "uptime_seconds",
                    Json::num(self.started.elapsed().as_secs_f64()),
                ),
                (
                    "router",
                    Json::object([
                        ("id", Json::str(self.node_id())),
                        ("workers", Json::num(self.nodes.len() as f64)),
                        ("workers_up", Json::num(docs.len() as f64)),
                        (
                            "requests",
                            Json::num(self.counters.http_requests.load(Ordering::Relaxed) as f64),
                        ),
                        (
                            "proxied",
                            Json::num(self.counters.proxied.load(Ordering::Relaxed) as f64),
                        ),
                        (
                            "sessions_created",
                            Json::num(self.counters.sessions_created.load(Ordering::Relaxed) as f64),
                        ),
                        (
                            "rerouted",
                            Json::num(self.counters.rerouted.load(Ordering::Relaxed) as f64),
                        ),
                        (
                            "shed",
                            Json::num(self.counters.shed.load(Ordering::Relaxed) as f64),
                        ),
                        (
                            "node_errors",
                            Json::num(self.counters.node_errors.load(Ordering::Relaxed) as f64),
                        ),
                        (
                            "streams_relayed",
                            Json::num(self.counters.streams_relayed.load(Ordering::Relaxed) as f64),
                        ),
                        (
                            "frames_relayed",
                            Json::num(self.counters.frames_relayed.load(Ordering::Relaxed) as f64),
                        ),
                        (
                            "panics_caught",
                            Json::num(self.counters.panics_caught.load(Ordering::Relaxed) as f64),
                        ),
                    ]),
                ),
                ("cluster", aggregate_stats(&docs)),
                ("per_node", Json::array(per_node)),
            ]),
        )
    }

    /// The cluster `/metrics`: the router's own counters plus every
    /// reachable worker's exposition re-labeled with `node="<addr>"` so
    /// one scrape sees the whole cluster without series colliding.
    fn metrics_response(&self) -> Response {
        let mut out = String::with_capacity(16384);
        let singles: [(&str, &str, &str, u64); 6] = [
            (
                "spotnoise_router_requests_total",
                "counter",
                "Requests handled by the router front end",
                self.counters.http_requests.load(Ordering::Relaxed),
            ),
            (
                "spotnoise_router_proxied_total",
                "counter",
                "Requests proxied to worker nodes",
                self.counters.proxied.load(Ordering::Relaxed),
            ),
            (
                "spotnoise_router_rerouted_total",
                "counter",
                "Placements routed around a saturated or down node",
                self.counters.rerouted.load(Ordering::Relaxed),
            ),
            (
                "spotnoise_router_shed_total",
                "counter",
                "Requests shed because every worker was down",
                self.counters.shed.load(Ordering::Relaxed),
            ),
            (
                "spotnoise_router_node_errors_total",
                "counter",
                "Proxied requests that failed at the transport",
                self.counters.node_errors.load(Ordering::Relaxed),
            ),
            (
                "spotnoise_router_frames_relayed_total",
                "counter",
                "Frame records relayed through stream proxying",
                self.counters.frames_relayed.load(Ordering::Relaxed),
            ),
        ];
        for (name, kind, help, value) in singles {
            write_prometheus_single(&mut out, name, kind, help, value as f64);
        }
        let mut first = true;
        for node in &self.nodes {
            let Ok(reply) = node.pool.request("GET", "/metrics", b"") else {
                continue;
            };
            let Ok(text) = String::from_utf8(reply.body) else {
                continue;
            };
            relabel_metrics(&mut out, &text, &node.addr.to_string(), first);
            first = false;
        }
        Response::text(200, "text/plain; version=0.0.4", out)
    }

    fn route_untagged(&self, request: &Request) -> Response {
        self.counters.http_requests.fetch_add(1, Ordering::Relaxed);
        softpipe::fault::fire("route");
        let (path, query) = match request.path.split_once('?') {
            Some((path, query)) => (path, query),
            None => (request.path.as_str(), ""),
        };
        let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
        match (request.method.as_str(), segments.as_slice()) {
            ("GET", ["healthz"]) => self.healthz_response(),
            ("GET", ["stats"]) => self.stats_response(),
            ("GET", ["metrics"]) => self.metrics_response(),
            ("GET", ["trace"]) => Response::error(
                404,
                "not_found",
                "traces are per-node; query a worker's /trace directly",
            ),
            ("POST", ["shutdown"]) => {
                // Shuts the *router* down; the workers keep serving (and
                // another router replica can pick them up).
                self.request_shutdown();
                Response::json(200, Json::object([("status", Json::str("shutting down"))]))
            }
            ("POST", ["sessions"]) => self.create_session(request),
            (_, ["sessions", cid, tail @ ..]) => self.forward_session(request, cid, tail, query),
            (_, ["sessions"])
            | (_, ["stats"])
            | (_, ["healthz"])
            | (_, ["shutdown"])
            | (_, ["metrics"])
            | (_, ["trace"]) => {
                Response::error(405, "method_not_allowed", "wrong method for this path")
            }
            _ => Response::error(404, "not_found", "unknown path"),
        }
    }

    /// Tags a router-origin response with the router's identity. Proxied
    /// responses already carry the answering worker's `X-Node-Id`, which
    /// is the interesting one — it is left untouched.
    fn tag_node(&self, response: Response) -> Response {
        if response
            .headers
            .iter()
            .any(|(name, _)| name.eq_ignore_ascii_case("x-node-id"))
        {
            return response;
        }
        let id = self.node_id();
        if id.is_empty() {
            response
        } else {
            response.with_header("X-Node-Id", id)
        }
    }

    /// Relays one frame stream from the owning worker: head and every
    /// frame record pass through intact (flags included), re-framed onto
    /// this connection's chunked encoding.
    fn relay_stream(
        &self,
        out: &mut TcpStream,
        sid: &str,
        from: u64,
        count: u64,
        keep_alive: bool,
    ) -> io::Result<()> {
        let Some(id) = ClusterSessionId::parse(sid) else {
            return self
                .tag_node(Response::error(
                    404,
                    "not_found",
                    "not a cluster session id",
                ))
                .write_to(out, keep_alive);
        };
        if id.node >= self.nodes.len() {
            return self
                .tag_node(Response::error(
                    404,
                    "not_found",
                    "session id names an unknown node",
                ))
                .write_to(out, keep_alive);
        }
        let mut client = match self.nodes[id.node].pool.checkout() {
            Ok(client) => client,
            Err(_) => {
                self.mark_down(id.node);
                return Response::error(503, "node_unavailable", "worker node is unreachable")
                    .with_header("Retry-After", "1")
                    .write_to(out, keep_alive);
            }
        };
        let mut upstream = match client.stream_frames(&id.local, from, count) {
            Ok(stream) => stream,
            Err(err) => {
                let response = match err {
                    ClientError::NotFound => {
                        Response::error(404, "not_found", "no such session on its node")
                    }
                    ClientError::Busy { .. } => {
                        Response::error(503, "busy", "worker at capacity, retry later")
                            .with_header("Retry-After", "1")
                    }
                    ClientError::Http(status, body) => Response::error(status, "upstream", &body),
                    ClientError::TimedOut | ClientError::Io(_) => {
                        self.mark_down(id.node);
                        Response::error(503, "node_unavailable", "worker node is unreachable")
                            .with_header("Retry-After", "1")
                    }
                };
                return self.tag_node(response).write_to(out, keep_alive);
            }
        };
        self.counters
            .streams_relayed
            .fetch_add(1, Ordering::Relaxed);
        let mut headers: Vec<(String, String)> = Vec::new();
        for name in ["x-stream-from", "x-stream-count", "x-node-id"] {
            if let Some(value) = upstream.header(name) {
                headers.push((name.to_string(), value.to_string()));
            }
        }
        write_stream_head(out, 200, &headers, keep_alive)?;
        loop {
            match upstream.next_frame() {
                Ok(Some(frame)) => {
                    let record = FrameRecord {
                        frame: frame.frame,
                        len: frame.bytes.len() as u32,
                        cached: frame.cached,
                        skipped: frame.skipped,
                        stale: frame.stale,
                        degraded: frame.degraded,
                        peer: frame.peer,
                    };
                    write_frame_record(out, &record, &frame.bytes)?;
                    self.counters.frames_relayed.fetch_add(1, Ordering::Relaxed);
                }
                Ok(None) => break,
                // The relay's head is long written: end the downstream
                // stream cleanly at the frames already delivered. The
                // upstream connection is desynced and will be discarded
                // rather than reshelved.
                Err(_) => break,
            }
        }
        finish_chunked(out)
    }
}

impl Frontend for Router {
    fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    fn note_panic(&self) {
        self.counters.panics_caught.fetch_add(1, Ordering::Relaxed);
    }

    fn route(&self, request: &Request) -> Response {
        self.tag_node(self.route_untagged(request))
    }

    fn try_stream(
        &self,
        out: &mut TcpStream,
        request: &Request,
        keep_alive: bool,
    ) -> Option<io::Result<()>> {
        let raw = match parse_stream_request(request)? {
            Ok(raw) => raw,
            Err(response) => {
                self.counters.http_requests.fetch_add(1, Ordering::Relaxed);
                return Some(self.tag_node(response).write_to(out, keep_alive));
            }
        };
        self.counters.http_requests.fetch_add(1, Ordering::Relaxed);
        Some(self.relay_stream(out, &raw.sid, raw.from, raw.count, keep_alive))
    }
}

/// Appends one worker's Prometheus exposition to `out` with a
/// `node="<label>"` label spliced into every series, so two workers'
/// identical metric names stay distinct in one scrape. `# HELP`/`# TYPE`
/// lines are kept for the first worker only — they describe the name, not
/// the node.
fn relabel_metrics(out: &mut String, text: &str, label: &str, include_meta: bool) {
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if line.starts_with('#') {
            if include_meta {
                out.push_str(line);
                out.push('\n');
            }
            continue;
        }
        match line.find('{') {
            Some(brace) => {
                out.push_str(&line[..brace]);
                out.push_str(&format!("{{node=\"{label}\","));
                out.push_str(&line[brace + 1..]);
            }
            None => match line.find(' ') {
                Some(space) => {
                    out.push_str(&line[..space]);
                    out.push_str(&format!("{{node=\"{label}\"}}"));
                    out.push_str(&line[space..]);
                }
                None => out.push_str(line),
            },
        }
        out.push('\n');
    }
}

/// A running cluster router.
pub type RouterHandle = FrontHandle<Router>;

impl RouterHandle {
    /// The shared router state (for in-process callers and tests).
    pub fn router(&self) -> &Arc<Router> {
        self.front()
    }
}

/// Binds `addr`, spawns the accept loop, and returns the running router's
/// handle. Fails fast when `options.workers` is empty; the workers
/// themselves may come up later — placement marks unreachable nodes down
/// and retries them as they appear.
pub fn serve_router(addr: impl ToSocketAddrs, options: RouterOptions) -> io::Result<RouterHandle> {
    softpipe::fault::install_from_env();
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let router = Router::new(options)?;
    *lock_recover(&router.addr, |_| {}) = Some(local);
    router.set_default_node_id(&format!("router@{local}"));
    serve_front(listener, router, Vec::new(), Router::request_shutdown)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn router_refuses_an_empty_worker_list() {
        assert!(Router::new(RouterOptions::default()).is_err());
    }

    #[test]
    fn relabel_splices_the_node_label() {
        let text = "# HELP m a metric\n# TYPE m counter\nm 3\nh{le=\"1\"} 2\n";
        let mut first = String::new();
        relabel_metrics(&mut first, text, "a:1", true);
        assert!(first.contains("# HELP m a metric"));
        assert!(first.contains("m{node=\"a:1\"} 3"));
        assert!(first.contains("h{node=\"a:1\",le=\"1\"} 2"));
        let mut second = String::new();
        relabel_metrics(&mut second, text, "b:2", false);
        assert!(!second.contains("# HELP"));
        assert!(second.contains("m{node=\"b:2\"} 3"));
    }

    #[test]
    fn shared_specs_place_deterministically_and_private_specs_spread() {
        let options = RouterOptions {
            workers: vec![
                "127.0.0.1:1".parse().unwrap(),
                "127.0.0.1:2".parse().unwrap(),
            ],
            ..RouterOptions::default()
        };
        let router = Router::new(options).unwrap();
        let shared = SessionSpec::from_body(br#"{"shared": true}"#).unwrap();
        let a = router.ring_key_for(&shared);
        let b = router.ring_key_for(&shared);
        assert_eq!(a, b, "identical shared specs must co-locate");
        let private = SessionSpec::from_body(b"{}").unwrap();
        let c = router.ring_key_for(&private);
        let d = router.ring_key_for(&private);
        assert_ne!(c, d, "private placements must be salted apart");
    }
}
