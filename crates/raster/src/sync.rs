//! Poison-recovering lock helpers.
//!
//! Every shared structure in the pool/arena/queue/cache/channel stack used
//! to take its mutex with `.lock().expect("... poisoned")`, which turns one
//! panicking render thread into a cascade that kills every other session
//! touching the same structure. These helpers recover instead: on poison
//! they [`Mutex::clear_poison`] the lock, take the guard out of the
//! [`std::sync::PoisonError`], and run a caller-supplied *revalidation*
//! closure that restores the protected state to a consistent (possibly
//! conservatively emptied) shape before anyone else observes it.
//!
//! Revalidation is mandatory by construction — the closure parameter is
//! what distinguishes "we thought about what a half-updated value looks
//! like here" from blindly ignoring poison. Callers whose invariants hold
//! for every individually-written field (e.g. an `Option<Arc<_>>` slot)
//! pass `|_| {}` and say so at the call site.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Process-wide count of poison recoveries, for `/stats` and the chaos
/// suite's "no poison escapes" assertion.
static RECOVERIES: AtomicU64 = AtomicU64::new(0);

/// Number of lock-poison recoveries performed so far (monotonic).
pub fn recoveries() -> u64 {
    RECOVERIES.load(Ordering::Relaxed)
}

/// Locks `mutex`, recovering from poison by clearing the flag and running
/// `revalidate` on the protected value before returning the guard.
pub fn lock_recover<'a, T>(
    mutex: &'a Mutex<T>,
    revalidate: impl FnOnce(&mut T),
) -> MutexGuard<'a, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => {
            RECOVERIES.fetch_add(1, Ordering::Relaxed);
            mutex.clear_poison();
            let mut guard = poisoned.into_inner();
            revalidate(&mut guard);
            guard
        }
    }
}

/// [`Condvar::wait_timeout`] with the same poison-recovery contract as
/// [`lock_recover`]: the mutex the guard came from must be supplied so the
/// poison flag can be cleared. Returns the reacquired guard and whether the
/// wait timed out.
pub fn wait_timeout_recover<'a, T>(
    condvar: &Condvar,
    guard: MutexGuard<'a, T>,
    mutex: &'a Mutex<T>,
    timeout: Duration,
    revalidate: impl FnOnce(&mut T),
) -> (MutexGuard<'a, T>, bool) {
    match condvar.wait_timeout(guard, timeout) {
        Ok((guard, timed_out)) => (guard, timed_out.timed_out()),
        Err(poisoned) => {
            RECOVERIES.fetch_add(1, Ordering::Relaxed);
            mutex.clear_poison();
            let (mut guard, timed_out) = poisoned.into_inner();
            revalidate(&mut guard);
            (guard, timed_out.timed_out())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn poisoned_lock_is_recovered_and_revalidated() {
        let shared = Arc::new(Mutex::new(vec![1, 2, 3]));
        let poisoner = Arc::clone(&shared);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.lock().unwrap();
            panic!("poison the lock");
        })
        .join();
        assert!(shared.lock().is_err(), "lock should start poisoned");

        let before = recoveries();
        let guard = lock_recover(&shared, |v| v.clear());
        assert!(guard.is_empty(), "revalidation ran");
        drop(guard);
        assert_eq!(recoveries(), before + 1);
        assert!(shared.lock().is_ok(), "poison flag cleared for later users");
    }

    #[test]
    fn healthy_lock_skips_revalidation() {
        let mutex = Mutex::new(7u32);
        let guard = lock_recover(&mutex, |_| unreachable!("lock is healthy"));
        assert_eq!(*guard, 7);
    }
}
