//! Steering a smog-prediction simulation (paper §5.1, Figure 6).
//!
//! ```text
//! cargo run --release -p spotnoise-apps --example smog_steering
//! ```
//!
//! Runs the atmospheric-pollution model, visualises its wind field with
//! animated spot noise, steers the emission parameters halfway through the
//! run, and reports the textures-per-second of the interactive pipeline.

use flowsim::{SmogModel, SteeringCommand, SteeringQueue};
use flowviz::{draw_map, overlay_scalar_field, texture_to_framebuffer, Colormap};
use softpipe::machine::MachineConfig;
use softpipe::Rgb;
use spotnoise::config::{SpotKind, SynthesisConfig};
use spotnoise::metrics::timed;
use spotnoise::pipeline::{ExecutionMode, Pipeline};

fn main() {
    let frames = 12usize;
    let dt = 0.2;

    // The simulation (pipeline step 1 producer).
    let mut model = SmogModel::paper_resolution(1997);
    let mut steering = SteeringQueue::new();

    // Spot-noise pipeline over the wind field, using bent spots because of
    // the strong fluctuations in the wind field (paper §5.1). The mesh is
    // smaller than the paper's 32x17 so the example runs in seconds.
    let cfg = SynthesisConfig {
        texture_size: 256,
        spot_count: 1200,
        spot_kind: SpotKind::Bent { rows: 12, cols: 7 },
        ..SynthesisConfig::atmospheric_paper()
    };
    let machine = MachineConfig::onyx2_full();
    let mut pipeline = Pipeline::new(
        cfg,
        ExecutionMode::DivideAndConquer(machine),
        model.domain(),
    );

    let mut last_frame = None;
    for frame_idx in 0..frames {
        // The user turns emissions up and the wind down halfway through.
        if frame_idx == frames / 2 {
            steering.push(SteeringCommand::ScaleEmissions(3.0));
            steering.push(SteeringCommand::ScaleWind(0.7));
            println!("-- steering: emissions x3, wind x0.7 --");
        }
        let params = steering.apply_all(*model.params());
        model.set_params(params);

        // Pipeline step 1: advance the simulation (this is the "read data"
        // cost of the frame).
        let (_, read_us) = timed(|| model.step(dt));
        let frame = pipeline.advance(model.wind_field(), dt, read_us);
        println!(
            "frame {frame_idx:>2}: {:>6.2} textures/s measured, {:>5.2} simulated Onyx2, pollutant mass {:.1}",
            frame.metrics.measured_textures_per_second(),
            frame.metrics.simulated_textures_per_second().unwrap_or(0.0),
            model.total_pollutant(),
        );
        last_frame = Some(frame);
    }

    // Compose the last frame exactly like the paper's Figure 6: grayscale
    // wind texture, rainbow pollutant overlay, schematic map.
    let frame = last_frame.expect("at least one frame");
    let size = pipeline.config().texture_size;
    let mut fb = texture_to_framebuffer(&frame.display, size, size, Colormap::Grayscale);
    let range = model.concentration().range();
    overlay_scalar_field(
        &mut fb,
        model.concentration(),
        range,
        Colormap::Rainbow,
        0.55,
    );
    draw_map(&mut fb, model.domain(), Rgb::new(240, 240, 240));
    let path = std::env::temp_dir().join("spotnoise_smog_steering.ppm");
    fb.save_ppm(&path).expect("failed to write image");
    println!("wrote {}", path.display());
}
