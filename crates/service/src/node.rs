//! The transport-free node core: every piece of service state — session
//! registry, broadcast channels, frame cache, admission queue, pressure
//! gauge, counters and telemetry — plus the synthesis workers that drain
//! the queue. Nothing in this module touches a socket.
//!
//! [`NodeCore`] is the seam the cluster tier is built on: the HTTP layer
//! ([`server`](crate::server)) is a codec/dispatch shell that parses
//! requests and serializes responses, and the [`router`](crate::router)
//! composes many `NodeCore`-backed worker processes behind one front tier.
//! Because the core is transport-free, tests can drive session CRUD, frame
//! fetches and quarantine directly against it and assert bit-identical
//! results to the HTTP path.
//!
//! ## Peer frame-cache lookup
//!
//! Frame-cache keys are stable content hashes of `(field, config, seed,
//! frame)`, so any node can serve any cached frame. A core configured with
//! [`ServiceOptions::peers`] consults its sibling nodes on a local cache
//! miss — one cheap `GET /cache/...` probe per peer — before paying for
//! synthesis, so a hot frame is rendered once cluster-wide and then fans
//! out of whichever cache holds it.

use crate::cache::{FrameCache, FrameKey};
use crate::channel::ChannelRegistry;
use crate::client::ClientPool;
use crate::pressure::{PressureConfig, PressureGauge, PressureState};
use crate::queue::{AdmissionConfig, AdmissionError, FrameQueue};
use crate::session::{
    format_session_id, InFlightGuard, RegistryError, RenderError, Session, SessionRegistry,
    SharedPools,
};
use crate::spec::{FieldSpec, SessionSpec};
use softpipe::sync::lock_recover;
use softpipe::{FrameArena, PipePool};
use spotnoise::json::Json;
use spotnoise::pipeline::pipe_pool_default_enabled;
use spotnoise::telemetry::{
    self, Histogram, HistogramSnapshot, TraceCtx, TraceSink, TraceStage, DEFAULT_TRACE_CAPACITY,
};
use std::net::SocketAddr;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables of a service instance.
#[derive(Debug, Clone)]
pub struct ServiceOptions {
    /// Frame-cache budget in bytes (0 disables caching). Bytes, not
    /// frames: textures up to 2048² (16 MB/frame) are allowed, so an
    /// entry-counted cache could silently hold gigabytes.
    pub cache_bytes: usize,
    /// Admission-control parameters of the frame queue.
    pub admission: AdmissionConfig,
    /// Synthesis worker threads (0 = one per available core).
    pub workers: usize,
    /// Maximum live sessions.
    pub max_sessions: usize,
    /// Sessions idle beyond this are evicted (checked on `/stats` and on
    /// session creation).
    pub idle_timeout: Duration,
    /// Cap on synthesis steps a single frame request may trigger.
    pub max_advances_per_request: u64,
    /// How long a connection waits for its admitted job before giving up.
    /// Tune together with [`max_advances_per_request`](Self::max_advances_per_request)
    /// and the texture sizes you allow: a request near the advance cap on a
    /// large texture can legitimately render longer than this, in which
    /// case the client sees a 500 while the worker still finishes (and
    /// caches) the job.
    pub reply_timeout: Duration,
    /// Frames a shared channel pre-renders past each served request, so the
    /// subscribers behind the frontier-advancing one fan out of the cache.
    pub channel_lookahead: u64,
    /// Cap on frames a single `GET .../stream` request may push (requests
    /// asking for more are clamped).
    pub max_stream_frames: u64,
    /// Deadline applied to frame requests that carry no `X-Deadline-Ms`
    /// header (`None` = no implicit deadline). A request whose remaining
    /// budget is already below the queue's recent p99 wait is shed at
    /// admission with `503` + `Retry-After` instead of queueing to miss.
    pub default_deadline: Option<Duration>,
    /// Thresholds and cadence of the pressure gauge driving the
    /// graceful-degradation ladder.
    pub pressure: PressureConfig,
    /// The node's cluster identity, reported as the `X-Node-Id` response
    /// header and in the `/stats` `node` block. `None` lets [`serve`]
    /// (crate::serve) fill in the bound address once it is known.
    pub node_id: Option<String>,
    /// Sibling nodes consulted on a local frame-cache miss before
    /// synthesizing (the peer frame-cache lookup). Empty disables probing.
    pub peers: Vec<SocketAddr>,
    /// Per-probe budget of a peer cache lookup (connect and read); a slow
    /// or dead peer costs at most this before synthesis proceeds locally.
    pub peer_timeout: Duration,
}

impl Default for ServiceOptions {
    fn default() -> Self {
        ServiceOptions {
            cache_bytes: 64 << 20,
            admission: AdmissionConfig::default(),
            workers: 0,
            max_sessions: 64,
            idle_timeout: Duration::from_secs(300),
            max_advances_per_request: 512,
            reply_timeout: Duration::from_secs(60),
            channel_lookahead: 2,
            max_stream_frames: 256,
            default_deadline: None,
            pressure: PressureConfig::default(),
            node_id: None,
            peers: Vec::new(),
            peer_timeout: Duration::from_millis(250),
        }
    }
}

/// Service-level failure modes, mapped onto HTTP statuses by the front end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The server (or one session's fair share) is saturated; retry later.
    Busy(&'static str),
    /// Unknown session.
    NotFound,
    /// The request itself is invalid.
    BadRequest(String),
    /// The server is shutting down.
    ShuttingDown,
    /// An admitted job was dropped (worker died or timed out).
    Internal(&'static str),
    /// The session was quarantined after a panicked render; its pipeline
    /// state can no longer be trusted. Close it and create a fresh one.
    Quarantined,
    /// The request's deadline cannot be met: either it expired while the
    /// job queued, or the queue's recent p99 wait already exceeds the
    /// remaining budget (shed at admission).
    DeadlineExceeded,
}

/// A served frame.
#[derive(Debug, Clone)]
pub struct FrameResult {
    /// Little-endian `f32` texels, row-major from the bottom row.
    pub bytes: Arc<Vec<u8>>,
    /// The frame index served. Equals the requested index except when a
    /// fallen-behind shared subscriber was skipped to the live frontier.
    pub frame: u64,
    /// Whether the frame came out of the cache.
    pub cached: bool,
    /// Whether the serve skipped a fallen-behind shared subscriber forward
    /// to the channel's live frontier.
    pub skipped: bool,
    /// Whether a saturated server served the channel's cached frontier
    /// frame instead of synthesizing the requested index.
    pub stale: bool,
    /// Whether the frame was rendered under pressure-degraded (footprint)
    /// sampling on a session that asked for exact.
    pub degraded: bool,
    /// Whether the frame came out of a *sibling node's* cache (the peer
    /// frame-cache lookup); implies `cached`.
    pub peer: bool,
}

pub(crate) struct FrameJob {
    frame: u64,
    /// When the job was submitted to the admission queue — the start of the
    /// queue-wait trace span a worker records on pickup.
    submitted: Instant,
    /// The session the frame is rendered on. Carried in the job — the
    /// worker never re-resolves the id through the registry, so an
    /// admitted request renders even if its session is closed or evicted
    /// in the instant between the requester's registry lookup and the
    /// in-flight guard taking effect.
    session: Arc<Mutex<Session>>,
    /// The absolute instant this request stops being worth serving; workers
    /// re-check it when the job comes off the queue.
    deadline: Option<Instant>,
    reply: mpsc::Sender<Result<FrameResult, ServiceError>>,
    /// Holds the session's in-flight count from admission until the worker
    /// has finished (the job is dropped after execution — or on shed —
    /// which releases the guard), so idle eviction cannot reap the session
    /// while this job waits in the queue.
    _guard: InFlightGuard,
}

/// Monotonic service-wide counters (lock-free; written by workers and
/// connection threads).
#[derive(Default)]
pub(crate) struct ServiceCounters {
    pub(crate) http_requests: AtomicU64,
    frames_rendered: AtomicU64,
    advect_us: AtomicU64,
    synthesize_us: AtomicU64,
    render_us: AtomicU64,
    pub(crate) streams_started: AtomicU64,
    pub(crate) frames_streamed: AtomicU64,
    pub(crate) streams_aborted: AtomicU64,
    stale_serves: AtomicU64,
    degraded_serves: AtomicU64,
    deadline_shed: AtomicU64,
    quarantined: AtomicU64,
    pub(crate) panics_caught: AtomicU64,
    /// Local misses answered out of a sibling node's cache.
    peer_hits: AtomicU64,
    /// Peer probes that found the frame cached nowhere.
    peer_misses: AtomicU64,
    /// Peer probes that failed at the transport (dead or slow sibling).
    peer_errors: AtomicU64,
    /// Cache entries this node served to a probing sibling.
    peer_serves: AtomicU64,
}

/// Revalidation for a poisoned session lock. Render panics are caught
/// before they can unwind through the guard, so poison here means some
/// other holder died mid-update and the session's state cannot be trusted:
/// quarantine it rather than guess at which fields were half-written.
pub(crate) fn revalidate_session(session: &mut Session) {
    session.quarantine();
}

/// The service's end-to-end telemetry: lock-free latency histograms over
/// every hot path plus the frame-lifecycle trace sink. All histograms are
/// in microseconds. Exposed on `/metrics` (Prometheus text), `/trace`
/// (Chrome trace-event JSON) and folded into `/stats` as percentiles.
pub struct ServiceTelemetry {
    /// End-to-end [`NodeCore::fetch_frame`] latency, all outcomes (errors
    /// included — a shed request's latency is part of the client story).
    pub request_us: Arc<Histogram>,
    /// Admission-to-pop wait in the frame queue.
    pub queue_wait_us: Arc<Histogram>,
    /// Per-frame particle-advection stage.
    pub advect_us: Arc<Histogram>,
    /// Per-frame texture-synthesis stage.
    pub synthesize_us: Arc<Histogram>,
    /// Per-frame render stage.
    pub render_us: Arc<Histogram>,
    /// Pipe-pool checkout wait (lock + reset-or-spawn).
    pub checkout_us: Arc<Histogram>,
    /// The frame-lifecycle trace sink; mode comes from `SPOTNOISE_TRACE`
    /// (`off` by default).
    pub trace: TraceSink,
}

impl ServiceTelemetry {
    fn new() -> Self {
        ServiceTelemetry {
            request_us: Arc::new(Histogram::new()),
            queue_wait_us: Arc::new(Histogram::new()),
            advect_us: Arc::new(Histogram::new()),
            synthesize_us: Arc::new(Histogram::new()),
            render_us: Arc::new(Histogram::new()),
            checkout_us: Arc::new(Histogram::new()),
            trace: TraceSink::from_env(DEFAULT_TRACE_CAPACITY),
        }
    }
}

/// One sibling node the core probes on a cache miss.
struct Peer {
    addr: SocketAddr,
    pool: ClientPool,
}

/// The transport-free state and logic of one synthesis node.
///
/// Owns the session registry, broadcast channels, frame cache, admission
/// queue, pressure gauge, counters and telemetry; synthesis workers started
/// with [`NodeCore::start_workers`] drain the queue. The HTTP front end
/// ([`Service`](crate::Service)) is a thin codec/dispatch shell over this.
pub struct NodeCore {
    pub(crate) options: ServiceOptions,
    pub(crate) registry: Mutex<SessionRegistry>,
    /// Shared-field broadcast channels, keyed by `(field, config, seed)`.
    pub(crate) channels: Mutex<ChannelRegistry>,
    pub(crate) cache: Mutex<FrameCache>,
    pub(crate) queue: FrameQueue<FrameJob>,
    /// Service-wide frame-buffer arena and pipe-worker pool, shared by all
    /// sessions (both size-keyed, so mixed frame sizes never collide).
    pub(crate) pools: SharedPools,
    pub(crate) counters: ServiceCounters,
    pub(crate) telemetry: ServiceTelemetry,
    /// The load sensor behind the degradation ladder, re-evaluated (with
    /// its own throttle) on every frame request and `/healthz` probe.
    pub(crate) pressure: PressureGauge,
    /// Sibling nodes probed on a cache miss, with one keep-alive connection
    /// pool per peer.
    peers: Vec<Peer>,
    /// The node's cluster identity ([`ServiceOptions::node_id`], or the
    /// bound address once [`serve`](crate::serve) knows it).
    node_id: Mutex<String>,
    pub(crate) shutdown: AtomicBool,
    pub(crate) started: Instant,
}

impl NodeCore {
    /// Creates a node core (no transport attached): the API used by unit
    /// tests and in-process embedding; [`serve`](crate::serve) wraps it in
    /// the HTTP front end.
    pub fn new(options: ServiceOptions) -> Arc<NodeCore> {
        let service_telemetry = ServiceTelemetry::new();
        let arena = Arc::new(FrameArena::new());
        // One persistent-pipe pool for the whole service, sized by the
        // session cap: every admitted session can keep one warm pipe per
        // typical process group. `SPOTNOISE_PIPE_POOL=off` reverts the
        // service to spawn-per-frame (the CI opt-out matrix leg).
        let pipes = pipe_pool_default_enabled().then(|| {
            Arc::new(PipePool::with_capacity(
                Some(Arc::clone(&arena)),
                options.max_sessions.saturating_mul(2).max(8),
            ))
        });
        if let Some(pool) = &pipes {
            // Bridge pool checkouts into the checkout histogram and the
            // trace ring (the raster crate cannot depend on telemetry, so
            // the pool exposes a plain observer hook instead).
            let checkout_us = Arc::clone(&service_telemetry.checkout_us);
            let trace = service_telemetry.trace.clone();
            pool.set_observer(Some(Arc::new(move |reused, wait| {
                checkout_us.record_duration(wait);
                let start = Instant::now()
                    .checked_sub(wait)
                    .unwrap_or_else(Instant::now);
                trace.record_with(
                    TraceStage::PipeCheckout,
                    telemetry::ctx(),
                    start,
                    wait,
                    reused as u64,
                );
            })));
        }
        let pools = SharedPools {
            arena: Some(arena),
            pipes,
            trace: service_telemetry.trace.clone(),
        };
        let queue = FrameQueue::new(options.admission);
        queue.set_wait_histogram(Arc::clone(&service_telemetry.queue_wait_us));
        let mut cache = FrameCache::new(options.cache_bytes);
        cache.set_trace_sink(service_telemetry.trace.clone());
        let peers = options
            .peers
            .iter()
            .map(|&addr| Peer {
                addr,
                pool: ClientPool::new(addr)
                    .with_connect_timeout(options.peer_timeout)
                    .with_read_timeout(Some(options.peer_timeout)),
            })
            .collect();
        Arc::new(NodeCore {
            registry: Mutex::new(SessionRegistry::with_pools(
                options.max_sessions,
                options.idle_timeout,
                pools.clone(),
            )),
            channels: Mutex::new(ChannelRegistry::new(
                pools.clone(),
                options.channel_lookahead,
            )),
            cache: Mutex::new(cache),
            queue,
            pools,
            counters: ServiceCounters::default(),
            telemetry: service_telemetry,
            pressure: PressureGauge::new(options.pressure),
            peers,
            node_id: Mutex::new(options.node_id.clone().unwrap_or_default()),
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            options,
        })
    }

    /// The node's cluster identity (empty until configured or bound).
    pub fn node_id(&self) -> String {
        lock_recover(&self.node_id, |_| {}).clone()
    }

    /// Fills in the node identity if none was configured ([`serve`]
    /// (crate::serve) passes the bound address).
    pub fn set_default_node_id(&self, id: &str) {
        let mut node_id = lock_recover(&self.node_id, |_| {});
        if node_id.is_empty() {
            *node_id = id.to_string();
        }
    }

    /// The service's latency histograms and trace sink.
    pub fn telemetry(&self) -> &ServiceTelemetry {
        &self.telemetry
    }

    /// The service-wide pools every session's pipeline composes on.
    pub fn pools(&self) -> &SharedPools {
        &self.pools
    }

    /// The options the service was built with.
    pub fn options(&self) -> &ServiceOptions {
        &self.options
    }

    /// True once shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Starts `n` synthesis workers (0 = one per available core) draining
    /// the admission queue until [`NodeCore::begin_shutdown`] closes it.
    pub fn start_workers(self: &Arc<Self>, n: usize) -> Vec<JoinHandle<()>> {
        let workers = if n > 0 {
            n
        } else {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        };
        (0..workers)
            .map(|i| {
                let core = Arc::clone(self);
                std::thread::Builder::new()
                    .name(format!("synth-worker-{i}"))
                    .spawn(move || core.worker_loop())
                    .expect("spawn worker")
            })
            .collect()
    }

    /// Initiates shutdown of the core: further submissions fail, workers
    /// drain what is queued and exit. The transport layer is responsible
    /// for waking its own accept loop.
    pub fn begin_shutdown(&self) -> bool {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return false;
        }
        self.queue.close();
        true
    }

    /// A session's shared handle, for in-process embedding and tests that
    /// need to reach past the public API (e.g. to quarantine a session the
    /// way a panicked render would).
    pub fn session_handle(&self, id: u64) -> Option<Arc<Mutex<Session>>> {
        lock_recover(&self.registry, |_| {}).get(id)
    }

    /// Evicts idle sessions and retires unwatched channels (the sweep
    /// `/stats` performs before reporting).
    pub fn sweep_idle(&self) {
        lock_recover(&self.registry, |_| {}).evict_idle();
        self.sweep_channels();
    }

    /// Creates a session and returns its id. A spec with `shared: true`
    /// subscribes the session to the broadcast channel for its
    /// `(field, config, seed)` — creating the channel if this is its first
    /// viewer — instead of giving it a private pipeline.
    pub fn create_session(&self, spec: SessionSpec) -> Result<u64, ServiceError> {
        if self.is_shutting_down() {
            return Err(ServiceError::ShuttingDown);
        }
        // Subscribe before touching the registry lock (never hold both).
        // Both registries keep every field individually consistent (maps of
        // finished values plus counters), so poison recovery needs no
        // repair beyond clearing the flag.
        let subscription = spec
            .shared
            .then(|| lock_recover(&self.channels, |_| {}).subscribe(&spec));
        let mut registry = lock_recover(&self.registry, |_| {});
        registry.evict_idle();
        let created = match subscription {
            Some(sub) => registry.create_shared(spec, sub),
            None => registry.create(spec),
        };
        drop(registry);
        // Eviction above (and a shed create: `create_shared` drops the
        // subscription on the cap error) may have unsubscribed channels —
        // retire the ones nobody watches any more.
        self.sweep_channels();
        match created {
            Ok((id, _)) => Ok(id),
            Err(RegistryError::TooManySessions) => Err(ServiceError::Busy("sessions")),
        }
    }

    /// Retires broadcast channels with no subscribers left (their counters
    /// fold into the `/stats` totals).
    pub(crate) fn sweep_channels(&self) {
        lock_recover(&self.channels, |_| {}).sweep();
    }

    /// Re-evaluates the pressure gauge against the queue (throttled inside
    /// the gauge) and applies the *elevated* rung: channel look-ahead is
    /// shut off while pressure is non-healthy and restored on recovery.
    /// The saturated rung (stale frontier serves, sampling degradation) is
    /// applied per-request by [`NodeCore::fetch_frame`].
    pub fn pressure_tick(&self) -> PressureState {
        let depth = self.queue.stats().depth;
        let state = self.pressure.evaluate(
            depth,
            self.options.admission.watermark,
            &self.telemetry.queue_wait_us,
        );
        let desired = if state == PressureState::Healthy {
            self.options.channel_lookahead
        } else {
            0
        };
        let channels = lock_recover(&self.channels, |_| {});
        if channels.lookahead() != desired {
            channels.set_lookahead(desired);
        }
        state
    }

    /// The current pressure state without re-evaluating the gauge.
    pub fn pressure_state(&self) -> PressureState {
        self.pressure.state()
    }

    /// Steers a session to a new field (restarting its animation clock).
    pub fn steer(&self, id: u64, field: FieldSpec) -> Result<(), ServiceError> {
        let session = lock_recover(&self.registry, |_| {})
            .get(id)
            .ok_or(ServiceError::NotFound)?;
        let mut s = lock_recover(&session, revalidate_session);
        if s.is_quarantined() {
            return Err(ServiceError::Quarantined);
        }
        s.steer(field);
        Ok(())
    }

    /// Closes a session (retiring its broadcast channel if it was the last
    /// subscriber).
    pub fn close_session(&self, id: u64) -> Result<(), ServiceError> {
        if lock_recover(&self.registry, |_| {}).close(id) {
            self.sweep_channels();
            Ok(())
        } else {
            Err(ServiceError::NotFound)
        }
    }

    /// Serves a `GET /cache/...` probe from a sibling node: an uncounted
    /// peek of the local frame cache by content-hash key. Never probes
    /// onward — peer lookup is one hop deep by construction, so two nodes
    /// missing the same frame cannot chase each other in a cycle.
    pub fn peer_peek(&self, key: FrameKey) -> Option<Arc<Vec<u8>>> {
        let bytes = lock_recover(&self.cache, FrameCache::revalidate).peek(key)?;
        self.counters.peer_serves.fetch_add(1, Ordering::Relaxed);
        Some(bytes)
    }

    /// Probes the sibling nodes for a frame this node's cache misses.
    /// First hit wins; transport failures are counted and skipped (a dead
    /// peer costs at most [`ServiceOptions::peer_timeout`]).
    fn peer_lookup(&self, key: FrameKey) -> Option<Arc<Vec<u8>>> {
        for peer in &self.peers {
            let mut client = match peer.pool.checkout() {
                Ok(client) => client,
                Err(_) => {
                    self.counters.peer_errors.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
            };
            match client.fetch_cached(key) {
                Ok(Some(bytes)) => {
                    self.counters.peer_hits.fetch_add(1, Ordering::Relaxed);
                    self.telemetry.trace.record_with(
                        TraceStage::Deliver,
                        TraceCtx {
                            actor: key.seed,
                            frame: key.frame,
                        },
                        Instant::now(),
                        Duration::ZERO,
                        2, // detail = 2: peer-cache delivery
                    );
                    return Some(Arc::new(bytes));
                }
                Ok(None) => {
                    self.counters.peer_misses.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {
                    self.counters.peer_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
            let _ = peer.addr; // identity kept for /stats
        }
        None
    }

    /// Fetches frame `frame` of session `id`: straight from the cache when
    /// possible, otherwise through the admission queue and a synthesis
    /// worker. Blocks until the frame is ready, the request is shed, or the
    /// reply timeout expires.
    pub fn fetch_frame(&self, id: u64, frame: u64) -> Result<FrameResult, ServiceError> {
        self.fetch_frame_deadline(id, frame, None)
    }

    /// [`NodeCore::fetch_frame`] with an explicit deadline budget in
    /// milliseconds (the `X-Deadline-Ms` header); `None` falls back to
    /// [`ServiceOptions::default_deadline`]. The deadline is enforced at
    /// admission — shed immediately when the queue's recent p99 wait
    /// already exceeds the remaining budget — and re-checked when a worker
    /// picks the job up.
    pub fn fetch_frame_deadline(
        &self,
        id: u64,
        frame: u64,
        deadline_ms: Option<u64>,
    ) -> Result<FrameResult, ServiceError> {
        let start = Instant::now();
        let outcome = self.fetch_frame_inner(id, frame, deadline_ms, start);
        let elapsed = start.elapsed();
        self.telemetry.request_us.record_duration(elapsed);
        if let Ok(result) = &outcome {
            if result.stale {
                self.counters.stale_serves.fetch_add(1, Ordering::Relaxed);
            }
            if result.degraded {
                self.counters
                    .degraded_serves
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        // detail = 1 marks a failed request.
        self.telemetry.trace.record_with(
            TraceStage::Request,
            TraceCtx { actor: id, frame },
            start,
            elapsed,
            outcome.is_err() as u64,
        );
        if let Ok(result) = &outcome {
            // detail = 1 marks a cache-served delivery.
            self.telemetry.trace.record_with(
                TraceStage::Deliver,
                TraceCtx {
                    actor: id,
                    frame: result.frame,
                },
                start,
                elapsed,
                result.cached as u64,
            );
        }
        outcome
    }

    fn fetch_frame_inner(
        &self,
        id: u64,
        frame: u64,
        deadline_ms: Option<u64>,
        start: Instant,
    ) -> Result<FrameResult, ServiceError> {
        if self.is_shutting_down() {
            return Err(ServiceError::ShuttingDown);
        }
        let pressure = self.pressure_tick();
        let deadline = deadline_ms
            .map(Duration::from_millis)
            .or(self.options.default_deadline)
            .map(|budget| start + budget);
        let session = lock_recover(&self.registry, |_| {})
            .get(id)
            .ok_or(ServiceError::NotFound)?;
        let (key, guard, queue_id, channel, degraded) = {
            let mut s = lock_recover(&session, revalidate_session);
            if s.is_quarantined() {
                return Err(ServiceError::Quarantined);
            }
            s.touch();
            // The saturated rung of the ladder switches non-pinned exact
            // sessions to footprint sampling; recovery restores them. Both
            // are no-ops on sessions the rung doesn't apply to, and both
            // happen *before* the cache key is computed so degraded frames
            // cache under the footprint key they were rendered with.
            match pressure {
                PressureState::Saturated => {
                    s.degrade();
                }
                PressureState::Healthy => {
                    s.restore();
                }
                PressureState::Elevated => {}
            }
            // A shared session's synthesis jobs queue under its *channel's*
            // id: the channel is one fair peer of the private sessions, no
            // matter how many subscribers it feeds.
            let queue_id = s.channel().map_or(id, |c| c.queue_id());
            // Mark the prospective job in-flight *before* the cache check
            // and submission: from here until the worker finishes, idle
            // eviction must not reap the session.
            (
                s.key_for(frame),
                s.begin_job(),
                queue_id,
                s.channel().cloned(),
                s.is_degraded(),
            )
        };
        if let Some(bytes) = lock_recover(&self.cache, FrameCache::revalidate).lookup(key) {
            let mut s = lock_recover(&session, revalidate_session);
            s.note_served(frame);
            // A cached serve on a shared session is the broadcast fan-out
            // path: count the delivery on its channel.
            if let Some(channel) = s.channel() {
                channel.note_delivered();
            }
            return Ok(FrameResult {
                bytes,
                frame,
                cached: true,
                skipped: false,
                stale: false,
                degraded,
                peer: false,
            });
        }
        // The peer frame-cache lookup: frame keys are stable content
        // hashes, so a sibling that already rendered this frame can serve
        // it without this node synthesizing anything. The fetched bytes
        // are inserted locally so the next request is a plain local hit.
        if !self.peers.is_empty() {
            if let Some(bytes) = self.peer_lookup(key) {
                lock_recover(&self.cache, FrameCache::revalidate).insert_tagged(
                    key,
                    Arc::clone(&bytes),
                    false,
                );
                lock_recover(&session, revalidate_session).note_served(frame);
                return Ok(FrameResult {
                    bytes,
                    frame,
                    cached: true,
                    skipped: false,
                    stale: false,
                    degraded,
                    peer: true,
                });
            }
        }
        // Saturated shared subscribers take the channel's cached frontier
        // frame instead of queueing synthesis: stale, but instant and
        // fan-out-cheap — the first rung before any shed.
        if pressure == PressureState::Saturated {
            if let Some(channel) = &channel {
                if let Some((frontier, bytes)) = channel.latest_frame() {
                    channel.note_delivered();
                    lock_recover(&session, revalidate_session).note_served(frontier);
                    return Ok(FrameResult {
                        bytes,
                        frame: frontier,
                        cached: true,
                        skipped: frontier != frame,
                        stale: true,
                        degraded: false,
                        peer: false,
                    });
                }
            }
        }
        // Deadline admission: a job whose remaining budget is already below
        // the queue's recent p99 wait would almost surely time out in line —
        // shed it now so the client can retry elsewhere/later.
        if let Some(deadline) = deadline {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() || self.pressure.queue_wait_p99() > remaining {
                self.counters.deadline_shed.fetch_add(1, Ordering::Relaxed);
                return Err(ServiceError::DeadlineExceeded);
            }
        }
        let (tx, rx) = mpsc::channel();
        match self.queue.submit(
            queue_id,
            FrameJob {
                frame,
                submitted: Instant::now(),
                session: Arc::clone(&session),
                deadline,
                reply: tx,
                _guard: guard,
            },
        ) {
            Ok(()) => {}
            Err(AdmissionError::Busy) => return Err(ServiceError::Busy("queue")),
            Err(AdmissionError::SessionBusy) => return Err(ServiceError::Busy("session")),
            Err(AdmissionError::Closed) => return Err(ServiceError::ShuttingDown),
        }
        let outcome = match rx.recv_timeout(self.options.reply_timeout) {
            Ok(outcome) => outcome,
            Err(mpsc::RecvTimeoutError::Timeout) => Err(ServiceError::Internal("reply timeout")),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(ServiceError::Internal("job dropped")),
        };
        if let Ok(result) = &outcome {
            // Note the frame actually served (a skipped shared serve lands
            // on the frontier, not the requested index), so `advance`
            // continues from what the client really saw.
            lock_recover(&session, revalidate_session).note_served(result.frame);
        }
        outcome
    }

    /// Like [`NodeCore::fetch_frame`], but retries `Busy` sheds (bounded by
    /// the reply timeout) instead of surfacing them — the streaming
    /// endpoint's loop cannot hand a 503 to a client mid-stream.
    pub(crate) fn fetch_frame_retrying(
        &self,
        id: u64,
        frame: u64,
    ) -> Result<FrameResult, ServiceError> {
        let deadline = Instant::now() + self.options.reply_timeout;
        loop {
            match self.fetch_frame(id, frame) {
                Err(ServiceError::Busy(_)) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(1));
                }
                outcome => return outcome,
            }
        }
    }

    /// Renders and returns the session's next frame: the one after the most
    /// recently served frame (rendered or cached), so repeated advances
    /// always progress — even when a rewound index is still in the cache
    /// and serving it never touches the pipeline.
    pub fn advance(&self, id: u64) -> Result<FrameResult, ServiceError> {
        self.advance_deadline(id, None)
    }

    /// [`NodeCore::advance`] with an explicit deadline budget (the
    /// `X-Deadline-Ms` header), enforced like
    /// [`NodeCore::fetch_frame_deadline`].
    pub fn advance_deadline(
        &self,
        id: u64,
        deadline_ms: Option<u64>,
    ) -> Result<FrameResult, ServiceError> {
        let session = lock_recover(&self.registry, |_| {})
            .get(id)
            .ok_or(ServiceError::NotFound)?;
        let next = lock_recover(&session, revalidate_session).next_advance();
        self.fetch_frame_deadline(id, next, deadline_ms)
    }

    /// One synthesis worker: drains the queue until it closes. The loop is
    /// panic-contained twice over: `execute` catches render panics itself
    /// (quarantining the session), and a panic escaping anywhere else in
    /// the iteration — e.g. an injected fault in the queue — is caught here
    /// so the worker survives; the affected requester sees `Internal` when
    /// its reply sender drops.
    pub fn worker_loop(&self) {
        loop {
            let popped = match std::panic::catch_unwind(AssertUnwindSafe(|| self.queue.pop())) {
                Ok(popped) => popped,
                Err(_) => {
                    self.counters.panics_caught.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
            };
            let Some((queue_sid, job)) = popped else {
                break;
            };
            let outcome = self.execute(queue_sid, &job);
            // A hung-up client (timeout, disconnect) makes send fail; the
            // work is already done and cached, so that is not an error.
            let _ = job.reply.send(outcome);
            self.queue.complete();
        }
    }

    fn execute(&self, queue_sid: u64, job: &FrameJob) -> Result<FrameResult, ServiceError> {
        // Every span this job's synthesis emits carries the queue id (the
        // session id, or the channel id for shared sessions) as its actor.
        let ctx = TraceCtx {
            actor: queue_sid,
            frame: job.frame,
        };
        let _trace_ctx = telemetry::set_ctx(ctx);
        self.telemetry.trace.record_with(
            TraceStage::QueueWait,
            ctx,
            job.submitted,
            job.submitted.elapsed(),
            0,
        );
        // The deadline is re-checked now that the queue wait is behind us:
        // a job that expired in line is dropped before any synthesis.
        if let Some(deadline) = job.deadline {
            if Instant::now() > deadline {
                self.counters.deadline_shed.fetch_add(1, Ordering::Relaxed);
                return Err(ServiceError::DeadlineExceeded);
            }
        }
        // The job carries its session handle; no registry re-lookup, so an
        // admitted request can never turn into a spurious NotFound however
        // the registry changed while the job was queued.
        let mut s = lock_recover(&job.session, revalidate_session);
        if s.is_quarantined() {
            return Err(ServiceError::Quarantined);
        }
        // Re-check the cache: a racing request for the same frame may have
        // rendered it while this job queued.
        let key = s.key_for(job.frame);
        let degraded = s.is_degraded();
        if let Some(bytes) = lock_recover(&self.cache, FrameCache::revalidate).peek(key) {
            // For shared sessions this is the common fan-out case: the
            // channel (driven by a racing subscriber) rendered the frame
            // while this job queued. Count the delivery.
            if let Some(channel) = s.channel() {
                channel.note_delivered();
            }
            return Ok(FrameResult {
                bytes,
                frame: job.frame,
                cached: true,
                skipped: false,
                stale: false,
                degraded,
                peer: false,
            });
        }
        // Render under catch_unwind: the session guard lives *outside* the
        // closure, so a panicking render never unwinds through it (no
        // poison) and the session can be quarantined right here — this
        // request answers 500, every other session keeps serving.
        let rendered = std::panic::catch_unwind(AssertUnwindSafe(|| {
            s.render_frame(
                job.frame,
                self.options.max_advances_per_request,
                |frame_key, bytes, timings| {
                    self.counters
                        .frames_rendered
                        .fetch_add(1, Ordering::Relaxed);
                    self.counters
                        .advect_us
                        .fetch_add(timings.advect_us, Ordering::Relaxed);
                    self.counters
                        .synthesize_us
                        .fetch_add(timings.synthesize_us, Ordering::Relaxed);
                    self.counters
                        .render_us
                        .fetch_add(timings.render_us, Ordering::Relaxed);
                    self.telemetry.advect_us.record(timings.advect_us);
                    self.telemetry.synthesize_us.record(timings.synthesize_us);
                    self.telemetry.render_us.record(timings.render_us);
                    // Frames below the requested index were rendered on the way
                    // there: count them as look-ahead insertions so /stats shows
                    // how much future-serving work the request banked.
                    let lookahead = frame_key.frame != job.frame;
                    lock_recover(&self.cache, FrameCache::revalidate).insert_tagged(
                        frame_key,
                        Arc::clone(bytes),
                        lookahead,
                    );
                },
            )
        }));
        let rendered = match rendered {
            Ok(rendered) => rendered,
            Err(_) => {
                self.counters.panics_caught.fetch_add(1, Ordering::Relaxed);
                if s.quarantine() {
                    self.counters.quarantined.fetch_add(1, Ordering::Relaxed);
                }
                return Err(ServiceError::Internal(
                    "render panicked; session quarantined",
                ));
            }
        };
        match rendered {
            Ok(served) => Ok(FrameResult {
                bytes: served.bytes,
                frame: served.frame,
                cached: false,
                skipped: served.skipped,
                stale: false,
                degraded,
                peer: false,
            }),
            Err(RenderError::TooFarAhead { needed, max }) => Err(ServiceError::BadRequest(
                format!("frame needs {needed} synthesis steps, above the per-request cap of {max}"),
            )),
        }
    }

    /// One percentile block of the `/stats` latency section.
    fn latency_json(histogram: &Histogram) -> Json {
        let snap = histogram.snapshot();
        Json::object([
            ("count", Json::num(snap.count as f64)),
            ("mean_us", Json::num(snap.mean())),
            ("p50_us", Json::num(snap.percentile(50.0) as f64)),
            ("p90_us", Json::num(snap.percentile(90.0) as f64)),
            ("p99_us", Json::num(snap.percentile(99.0) as f64)),
            ("max_us", Json::num(snap.max as f64)),
        ])
    }

    /// The `/stats` document. Every subsystem is snapshotted exactly once
    /// (one lock or atomic load per counter), so each block is internally
    /// consistent — no torn multi-counter reads within a subsystem.
    ///
    /// When the router aggregates these documents across nodes, the
    /// sum-vs-max-vs-skip decision per field comes from
    /// [`cluster::stats_aggregation`](crate::cluster::stats_aggregation) —
    /// new numeric fields added here should be classified there.
    pub fn stats_json(&self) -> Json {
        let registry = lock_recover(&self.registry, |_| {});
        let reg = registry.stats();
        let session_ids = registry.ids();
        let handles: Vec<(u64, Arc<Mutex<Session>>)> = session_ids
            .iter()
            .filter_map(|&id| registry.get(id).map(|handle| (id, handle)))
            .collect();
        drop(registry);
        let cache = lock_recover(&self.cache, FrameCache::revalidate);
        let (cache_len, cache_bytes, cache_cap, cache_stats) = (
            cache.len(),
            cache.bytes(),
            cache.capacity_bytes(),
            cache.stats(),
        );
        drop(cache);
        let channel_totals = lock_recover(&self.channels, |_| {}).totals();
        let q = self.queue.stats();
        let pressure_counters = self.pressure.counters();
        // One load per counter, gathered up front: later JSON building never
        // re-reads a counter it already reported.
        let frames = self.counters.frames_rendered.load(Ordering::Relaxed);
        let advect_us = self.counters.advect_us.load(Ordering::Relaxed);
        let synthesize_us = self.counters.synthesize_us.load(Ordering::Relaxed);
        let render_us = self.counters.render_us.load(Ordering::Relaxed);
        let http_requests = self.counters.http_requests.load(Ordering::Relaxed);
        let streams_started = self.counters.streams_started.load(Ordering::Relaxed);
        let frames_streamed = self.counters.frames_streamed.load(Ordering::Relaxed);
        let streams_aborted = self.counters.streams_aborted.load(Ordering::Relaxed);
        let stale_serves = self.counters.stale_serves.load(Ordering::Relaxed);
        let degraded_serves = self.counters.degraded_serves.load(Ordering::Relaxed);
        let deadline_shed = self.counters.deadline_shed.load(Ordering::Relaxed);
        let quarantined = self.counters.quarantined.load(Ordering::Relaxed);
        let panics_caught = self.counters.panics_caught.load(Ordering::Relaxed);
        let peer_hits = self.counters.peer_hits.load(Ordering::Relaxed);
        let peer_misses = self.counters.peer_misses.load(Ordering::Relaxed);
        let peer_errors = self.counters.peer_errors.load(Ordering::Relaxed);
        let peer_serves = self.counters.peer_serves.load(Ordering::Relaxed);
        let mean_synthesize_us = if frames > 0 {
            synthesize_us as f64 / frames as f64
        } else {
            0.0
        };
        let per_session: Vec<Json> = handles
            .iter()
            .map(|(id, handle)| match handle.try_lock() {
                Ok(s) => {
                    let totals = s.stage_totals();
                    Json::object([
                        ("session", Json::str(format_session_id(*id))),
                        ("shared", Json::Bool(s.is_shared())),
                        ("frames_rendered", Json::num(s.frames_rendered() as f64)),
                        ("head_frame", Json::num(s.head_frame() as f64)),
                        ("rewinds", Json::num(s.rewinds() as f64)),
                        ("steers", Json::num(s.steers() as f64)),
                        ("in_flight", Json::num(s.in_flight() as f64)),
                        (
                            "stage_us",
                            Json::object([
                                ("advect", Json::num(totals.advect_us as f64)),
                                ("synthesize", Json::num(totals.synthesize_us as f64)),
                                ("render", Json::num(totals.render_us as f64)),
                            ]),
                        ),
                    ])
                }
                // A session mid-render holds its lock; report it busy
                // rather than stalling /stats behind synthesis.
                Err(_) => Json::object([
                    ("session", Json::str(format_session_id(*id))),
                    ("busy", Json::Bool(true)),
                ]),
            })
            .collect();
        Json::object([
            ("schema", Json::str("spotnoise_service_stats/v1")),
            (
                "uptime_seconds",
                Json::num(self.started.elapsed().as_secs_f64()),
            ),
            (
                "node",
                Json::object([
                    ("id", Json::str(self.node_id())),
                    ("peers", Json::num(self.peers.len() as f64)),
                ]),
            ),
            (
                "cluster",
                Json::object([
                    ("peer_hits", Json::num(peer_hits as f64)),
                    ("peer_misses", Json::num(peer_misses as f64)),
                    ("peer_errors", Json::num(peer_errors as f64)),
                    ("peer_serves", Json::num(peer_serves as f64)),
                ]),
            ),
            (
                "sessions",
                Json::object([
                    ("live", Json::num(reg.live as f64)),
                    ("created", Json::num(reg.created as f64)),
                    ("evicted", Json::num(reg.evicted as f64)),
                    ("closed", Json::num(reg.closed as f64)),
                    ("quarantined", Json::num(quarantined as f64)),
                    ("capacity", Json::num(self.options.max_sessions as f64)),
                    (
                        "ids",
                        Json::array(
                            session_ids
                                .iter()
                                .map(|&id| Json::str(format_session_id(id))),
                        ),
                    ),
                ]),
            ),
            (
                "frames",
                Json::object([
                    ("rendered", Json::num(frames as f64)),
                    ("advect_us_total", Json::num(advect_us as f64)),
                    ("synthesize_us_total", Json::num(synthesize_us as f64)),
                    ("render_us_total", Json::num(render_us as f64)),
                    ("mean_synthesize_us", Json::num(mean_synthesize_us)),
                ]),
            ),
            (
                "channels",
                Json::object([
                    ("live", Json::num(channel_totals.live as f64)),
                    ("created", Json::num(channel_totals.created as f64)),
                    ("subscribers", Json::num(channel_totals.subscribers as f64)),
                    (
                        "peak_subscribers",
                        Json::num(channel_totals.peak_subscribers as f64),
                    ),
                    ("delivered", Json::num(channel_totals.delivered as f64)),
                    ("synthesized", Json::num(channel_totals.synthesized as f64)),
                    ("skips", Json::num(channel_totals.skips as f64)),
                    (
                        "delivery_ratio",
                        Json::num(if channel_totals.synthesized > 0 {
                            channel_totals.delivered as f64 / channel_totals.synthesized as f64
                        } else {
                            0.0
                        }),
                    ),
                ]),
            ),
            (
                "cache",
                Json::object([
                    ("entries", Json::num(cache_len as f64)),
                    ("bytes", Json::num(cache_bytes as f64)),
                    ("capacity_bytes", Json::num(cache_cap as f64)),
                    ("hits", Json::num(cache_stats.hits as f64)),
                    ("misses", Json::num(cache_stats.misses as f64)),
                    ("insertions", Json::num(cache_stats.insertions as f64)),
                    (
                        "inserted_lookahead",
                        Json::num(cache_stats.inserted_lookahead as f64),
                    ),
                    ("evictions", Json::num(cache_stats.evictions as f64)),
                    ("hit_rate", Json::num(cache_stats.hit_rate())),
                ]),
            ),
            (
                "queue",
                Json::object([
                    ("depth", Json::num(q.depth as f64)),
                    ("peak_depth", Json::num(q.peak_depth as f64)),
                    (
                        "watermark",
                        Json::num(self.options.admission.watermark as f64),
                    ),
                    (
                        "per_session_cap",
                        Json::num(self.options.admission.per_session as f64),
                    ),
                    ("accepted", Json::num(q.accepted as f64)),
                    ("shed_busy", Json::num(q.shed_busy as f64)),
                    ("shed_session", Json::num(q.shed_session as f64)),
                    ("completed", Json::num(q.completed as f64)),
                ]),
            ),
            (
                "pressure",
                Json::object([
                    ("state", Json::str(self.pressure.state().name())),
                    (
                        "entered_elevated",
                        Json::num(pressure_counters.entered_elevated as f64),
                    ),
                    (
                        "entered_saturated",
                        Json::num(pressure_counters.entered_saturated as f64),
                    ),
                    ("recovered", Json::num(pressure_counters.recovered as f64)),
                    ("stale_serves", Json::num(stale_serves as f64)),
                    ("degraded_serves", Json::num(degraded_serves as f64)),
                    ("deadline_shed", Json::num(deadline_shed as f64)),
                ]),
            ),
            (
                "faults",
                Json::object([
                    ("panics_caught", Json::num(panics_caught as f64)),
                    (
                        "lock_recoveries",
                        Json::num(softpipe::sync::recoveries() as f64),
                    ),
                    (
                        "injected_panics",
                        Json::num(softpipe::fault::injected_panics() as f64),
                    ),
                    (
                        "injected_delays",
                        Json::num(softpipe::fault::injected_delays() as f64),
                    ),
                ]),
            ),
            (
                "pipes",
                match &self.pools.pipes {
                    Some(pool) => {
                        let p = pool.stats();
                        Json::object([
                            ("pooled", Json::Bool(true)),
                            ("spawned", Json::num(p.spawned as f64)),
                            ("reused", Json::num(p.reused as f64)),
                            ("retired", Json::num(p.retired as f64)),
                            ("discarded", Json::num(p.discarded as f64)),
                            ("idle", Json::num(p.idle as f64)),
                        ])
                    }
                    None => Json::object([("pooled", Json::Bool(false))]),
                },
            ),
            (
                "http",
                Json::object([
                    ("requests", Json::num(http_requests as f64)),
                    ("streams", Json::num(streams_started as f64)),
                    ("streamed_frames", Json::num(frames_streamed as f64)),
                    ("streams_aborted", Json::num(streams_aborted as f64)),
                ]),
            ),
            (
                "latency",
                Json::object([
                    ("request", Self::latency_json(&self.telemetry.request_us)),
                    (
                        "queue_wait",
                        Self::latency_json(&self.telemetry.queue_wait_us),
                    ),
                    ("advect", Self::latency_json(&self.telemetry.advect_us)),
                    (
                        "synthesize",
                        Self::latency_json(&self.telemetry.synthesize_us),
                    ),
                    ("render", Self::latency_json(&self.telemetry.render_us)),
                    (
                        "pipe_checkout",
                        Self::latency_json(&self.telemetry.checkout_us),
                    ),
                ]),
            ),
            ("per_session", Json::array(per_session)),
        ])
    }

    /// The `/metrics` document: Prometheus text exposition of the latency
    /// histograms and every service counter.
    pub fn metrics_text(&self) -> String {
        let mut out = String::with_capacity(8192);
        let histograms: [(&str, &str, &Arc<Histogram>); 6] = [
            (
                "spotnoise_request_duration_us",
                "End-to-end frame request latency (all outcomes)",
                &self.telemetry.request_us,
            ),
            (
                "spotnoise_queue_wait_us",
                "Admission-to-pop wait in the frame queue",
                &self.telemetry.queue_wait_us,
            ),
            (
                "spotnoise_stage_advect_us",
                "Per-frame particle-advection stage time",
                &self.telemetry.advect_us,
            ),
            (
                "spotnoise_stage_synthesize_us",
                "Per-frame texture-synthesis stage time",
                &self.telemetry.synthesize_us,
            ),
            (
                "spotnoise_stage_render_us",
                "Per-frame render stage time",
                &self.telemetry.render_us,
            ),
            (
                "spotnoise_pipe_checkout_wait_us",
                "Pipe-pool checkout wait",
                &self.telemetry.checkout_us,
            ),
        ];
        for (name, help, histogram) in histograms {
            write_prometheus_histogram(&mut out, name, help, &histogram.snapshot());
        }
        let reg = lock_recover(&self.registry, |_| {}).stats();
        let cache = lock_recover(&self.cache, FrameCache::revalidate);
        let (cache_len, cache_bytes, cache_stats) = (cache.len(), cache.bytes(), cache.stats());
        drop(cache);
        let channels = lock_recover(&self.channels, |_| {}).totals();
        let q = self.queue.stats();
        let pressure = self.pressure.counters();
        let c = &self.counters;
        let singles: [(&str, &str, &str, f64); 45] = [
            // (name, type, help, value)
            (
                "spotnoise_http_requests_total",
                "counter",
                "HTTP requests handled",
                c.http_requests.load(Ordering::Relaxed) as f64,
            ),
            (
                "spotnoise_frames_rendered_total",
                "counter",
                "Frames synthesized",
                c.frames_rendered.load(Ordering::Relaxed) as f64,
            ),
            (
                "spotnoise_streams_started_total",
                "counter",
                "Frame streams started",
                c.streams_started.load(Ordering::Relaxed) as f64,
            ),
            (
                "spotnoise_frames_streamed_total",
                "counter",
                "Frames pushed over streams",
                c.frames_streamed.load(Ordering::Relaxed) as f64,
            ),
            (
                "spotnoise_sessions_live",
                "gauge",
                "Sessions currently live",
                reg.live as f64,
            ),
            (
                "spotnoise_sessions_created_total",
                "counter",
                "Sessions ever created",
                reg.created as f64,
            ),
            (
                "spotnoise_sessions_evicted_total",
                "counter",
                "Sessions removed by idle eviction",
                reg.evicted as f64,
            ),
            (
                "spotnoise_sessions_closed_total",
                "counter",
                "Sessions closed by clients",
                reg.closed as f64,
            ),
            (
                "spotnoise_cache_entries",
                "gauge",
                "Cached frames",
                cache_len as f64,
            ),
            (
                "spotnoise_cache_bytes",
                "gauge",
                "Bytes held by the frame cache",
                cache_bytes as f64,
            ),
            (
                "spotnoise_cache_hits_total",
                "counter",
                "Cache hits",
                cache_stats.hits as f64,
            ),
            (
                "spotnoise_cache_misses_total",
                "counter",
                "Cache misses",
                cache_stats.misses as f64,
            ),
            (
                "spotnoise_cache_insertions_total",
                "counter",
                "Cache insertions",
                cache_stats.insertions as f64,
            ),
            (
                "spotnoise_cache_inserted_lookahead_total",
                "counter",
                "Look-ahead cache insertions",
                cache_stats.inserted_lookahead as f64,
            ),
            (
                "spotnoise_cache_evictions_total",
                "counter",
                "Cache LRU evictions",
                cache_stats.evictions as f64,
            ),
            (
                "spotnoise_peer_cache_hits_total",
                "counter",
                "Local misses served out of a sibling node's cache",
                c.peer_hits.load(Ordering::Relaxed) as f64,
            ),
            (
                "spotnoise_peer_cache_misses_total",
                "counter",
                "Peer probes that found the frame cached nowhere",
                c.peer_misses.load(Ordering::Relaxed) as f64,
            ),
            (
                "spotnoise_peer_cache_errors_total",
                "counter",
                "Peer probes that failed at the transport",
                c.peer_errors.load(Ordering::Relaxed) as f64,
            ),
            (
                "spotnoise_peer_cache_serves_total",
                "counter",
                "Cache entries served to probing sibling nodes",
                c.peer_serves.load(Ordering::Relaxed) as f64,
            ),
            (
                "spotnoise_queue_depth",
                "gauge",
                "Jobs waiting in the frame queue",
                q.depth as f64,
            ),
            (
                "spotnoise_queue_peak_depth",
                "gauge",
                "Highest queue depth observed",
                q.peak_depth as f64,
            ),
            (
                "spotnoise_queue_accepted_total",
                "counter",
                "Jobs admitted",
                q.accepted as f64,
            ),
            (
                "spotnoise_queue_shed_busy_total",
                "counter",
                "Submissions shed at the watermark",
                q.shed_busy as f64,
            ),
            (
                "spotnoise_queue_shed_session_total",
                "counter",
                "Submissions shed at the per-session cap",
                q.shed_session as f64,
            ),
            (
                "spotnoise_queue_completed_total",
                "counter",
                "Jobs fully executed",
                q.completed as f64,
            ),
            (
                "spotnoise_channels_live",
                "gauge",
                "Broadcast channels live",
                channels.live as f64,
            ),
            (
                "spotnoise_channels_subscribers",
                "gauge",
                "Subscribers across live channels",
                channels.subscribers as f64,
            ),
            (
                "spotnoise_channels_delivered_total",
                "counter",
                "Frames delivered to channel subscribers",
                channels.delivered as f64,
            ),
            (
                "spotnoise_channels_synthesized_total",
                "counter",
                "Frames synthesized on channel clocks",
                channels.synthesized as f64,
            ),
            (
                "spotnoise_channels_skips_total",
                "counter",
                "Fallen-behind serves skipped to the frontier",
                channels.skips as f64,
            ),
            (
                "spotnoise_streams_aborted_total",
                "counter",
                "Streams cut short by a client disconnect mid-write",
                c.streams_aborted.load(Ordering::Relaxed) as f64,
            ),
            (
                "spotnoise_pressure_state",
                "gauge",
                "Pressure ladder state (0 healthy, 1 elevated, 2 saturated)",
                self.pressure.state() as u8 as f64,
            ),
            (
                "spotnoise_pressure_entered_elevated_total",
                "counter",
                "Transitions into the elevated pressure state",
                pressure.entered_elevated as f64,
            ),
            (
                "spotnoise_pressure_entered_saturated_total",
                "counter",
                "Transitions into the saturated pressure state",
                pressure.entered_saturated as f64,
            ),
            (
                "spotnoise_pressure_recovered_total",
                "counter",
                "Pressure de-escalations back down the ladder",
                pressure.recovered as f64,
            ),
            (
                "spotnoise_stale_serves_total",
                "counter",
                "Saturated serves answered with the cached channel frontier",
                c.stale_serves.load(Ordering::Relaxed) as f64,
            ),
            (
                "spotnoise_degraded_serves_total",
                "counter",
                "Frames served under pressure-degraded footprint sampling",
                c.degraded_serves.load(Ordering::Relaxed) as f64,
            ),
            (
                "spotnoise_deadline_shed_total",
                "counter",
                "Requests shed or dropped for missing their deadline",
                c.deadline_shed.load(Ordering::Relaxed) as f64,
            ),
            (
                "spotnoise_sessions_quarantined_total",
                "counter",
                "Sessions quarantined after a panicked render",
                c.quarantined.load(Ordering::Relaxed) as f64,
            ),
            (
                "spotnoise_panics_caught_total",
                "counter",
                "Panics contained by the service's unwind barriers",
                c.panics_caught.load(Ordering::Relaxed) as f64,
            ),
            (
                "spotnoise_lock_recoveries_total",
                "counter",
                "Poisoned locks recovered and revalidated",
                softpipe::sync::recoveries() as f64,
            ),
            (
                "spotnoise_fault_injected_panics_total",
                "counter",
                "Panics injected by the fault plan",
                softpipe::fault::injected_panics() as f64,
            ),
            (
                "spotnoise_fault_injected_delays_total",
                "counter",
                "Delays injected by the fault plan",
                softpipe::fault::injected_delays() as f64,
            ),
            (
                "spotnoise_uptime_seconds",
                "gauge",
                "Seconds since service start",
                self.started.elapsed().as_secs_f64(),
            ),
            (
                "spotnoise_trace_recorded_total",
                "counter",
                "Trace spans recorded",
                self.telemetry.trace.recorded() as f64,
            ),
        ];
        for (name, kind, help, value) in singles {
            write_prometheus_single(&mut out, name, kind, help, value);
        }
        if let Some(pool) = &self.pools.pipes {
            let p = pool.stats();
            let pool_metrics: [(&str, &str, &str, f64); 5] = [
                (
                    "spotnoise_pipes_spawned_total",
                    "counter",
                    "Pipe workers spawned",
                    p.spawned as f64,
                ),
                (
                    "spotnoise_pipes_reused_total",
                    "counter",
                    "Checkouts served by a shelved worker",
                    p.reused as f64,
                ),
                (
                    "spotnoise_pipes_retired_total",
                    "counter",
                    "Returned pipes dropped at capacity",
                    p.retired as f64,
                ),
                (
                    "spotnoise_pipes_discarded_total",
                    "counter",
                    "Poisoned pipes discarded instead of reshelved",
                    p.discarded as f64,
                ),
                (
                    "spotnoise_pipes_idle",
                    "gauge",
                    "Idle pipes currently shelved",
                    p.idle as f64,
                ),
            ];
            for (name, kind, help, value) in pool_metrics {
                write_prometheus_single(&mut out, name, kind, help, value);
            }
        }
        out
    }

    /// The `/trace` document: the newest `last` spans of the trace ring as
    /// Chrome trace-event JSON (load into `chrome://tracing` or Perfetto).
    /// The `tid` lane is the span's actor (session or channel queue id).
    pub fn trace_json(&self, last: usize) -> Json {
        let events = self.telemetry.trace.recent(last);
        Json::object([
            ("displayTimeUnit", Json::str("ms")),
            ("enabled", Json::Bool(self.telemetry.trace.is_enabled())),
            (
                "recorded",
                Json::num(self.telemetry.trace.recorded() as f64),
            ),
            (
                "traceEvents",
                Json::array(events.iter().map(|e| {
                    Json::object([
                        ("name", Json::str(e.stage.name())),
                        ("cat", Json::str("spotnoise")),
                        ("ph", Json::str("X")),
                        ("ts", Json::num(e.start_us as f64)),
                        ("dur", Json::num(e.dur_us as f64)),
                        ("pid", Json::num(1.0)),
                        ("tid", Json::num(e.actor as f64)),
                        (
                            "args",
                            Json::object([
                                ("frame", Json::num(e.frame as f64)),
                                ("detail", Json::num(e.detail as f64)),
                            ]),
                        ),
                    ])
                })),
            ),
        ])
    }
}

/// Appends one histogram in Prometheus text exposition format: cumulative
/// `_bucket{le=...}` lines (ending at `+Inf`), `_sum` and `_count`, plus
/// pre-computed `_p50`/`_p90`/`_p99` gauges so scrapers that do not compute
/// `histogram_quantile` still get the headline percentiles.
fn write_prometheus_histogram(
    out: &mut String,
    name: &str,
    help: &str,
    snapshot: &HistogramSnapshot,
) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} histogram");
    for (le, cumulative) in snapshot.cumulative_buckets() {
        let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", snapshot.count);
    let _ = writeln!(out, "{name}_sum {}", snapshot.sum);
    let _ = writeln!(out, "{name}_count {}", snapshot.count);
    for (suffix, q) in [("p50", 50.0), ("p90", 90.0), ("p99", 99.0)] {
        let _ = writeln!(out, "# TYPE {name}_{suffix} gauge");
        let _ = writeln!(out, "{name}_{suffix} {}", snapshot.percentile(q));
    }
}

/// Appends one counter or gauge in Prometheus text exposition format.
pub(crate) fn write_prometheus_single(
    out: &mut String,
    name: &str,
    kind: &str,
    help: &str,
    value: f64,
) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
    if value.fract() == 0.0 && value.abs() < 9.0e15 {
        let _ = writeln!(out, "{name} {}", value as i64);
    } else {
        let _ = writeln!(out, "{name} {value}");
    }
}
