//! Cluster-tier primitives shared by the router and its tests: consistent
//! hashing, the cluster session-id codec, and the `/stats` aggregation
//! table.
//!
//! The paper scales spot noise by dividing the work over processors and
//! compositing the results; the service scales the same way over
//! *processes*. A [`HashRing`] places sessions (and shared-field channels)
//! on worker nodes so that the same key always lands on the same node — a
//! prerequisite for the frame cache and the shared-field broadcast
//! channels to keep working across a cluster. [`ClusterSessionId`] embeds
//! the owning node into the client-visible session id, so every later
//! request routes without a lookup table. [`stats_aggregation`] classifies
//! each per-node `/stats` field as summable (monotonic counters, additive
//! gauges), max-able (peaks, uptime), or per-node-only (ratios,
//! configuration, latency quantiles) so the router's cluster view never
//! adds numbers that are meaningless to add.

use spotnoise::hash::StableHasher;
use spotnoise::json::Json;

/// How many virtual points each node contributes to the ring. More points
/// smooth the key distribution across nodes (the classic consistent-hashing
/// trade-off: memory and lookup cost vs placement variance).
pub const VIRTUAL_POINTS: usize = 64;

/// A consistent-hash ring over `n` nodes.
///
/// Each node owns [`VIRTUAL_POINTS`] pseudo-random points on a `u64`
/// circle (positions come from [`StableHasher`], so placement is identical
/// across processes and runs). A key maps to the first point at or after
/// its own hash, wrapping at the top. Adding or removing one node moves
/// only the keys in that node's arcs — sessions on surviving nodes keep
/// their placement, which keeps their frame caches warm.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(position, node)` sorted by position.
    points: Vec<(u64, usize)>,
    nodes: usize,
}

impl HashRing {
    /// Builds a ring over nodes `0..nodes`. A zero-node ring is legal but
    /// places nothing ([`HashRing::node_for`] returns `None`).
    pub fn new(nodes: usize) -> Self {
        let mut points = Vec::with_capacity(nodes * VIRTUAL_POINTS);
        for node in 0..nodes {
            for replica in 0..VIRTUAL_POINTS {
                let mut h = StableHasher::new();
                h.write_str("spotnoise-ring-point");
                h.write_usize(node);
                h.write_usize(replica);
                points.push((h.finish(), node));
            }
        }
        points.sort_unstable();
        HashRing { points, nodes }
    }

    /// How many nodes the ring was built over.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Mixes an arbitrary `u64` key onto the ring circle. Keys here are
    /// already hashes (content hashes, salted session counters), but one
    /// more mix keeps structured key spaces from clustering on the circle.
    fn position(key: u64) -> u64 {
        let mut h = StableHasher::new();
        h.write_str("spotnoise-ring-key");
        h.write_u64(key);
        h.finish()
    }

    /// The node that owns `key`, or `None` for an empty ring.
    pub fn node_for(&self, key: u64) -> Option<usize> {
        self.nodes_for(key).next()
    }

    /// Every node in ring order starting at `key`'s successor point, each
    /// node once. The router walks this to route around saturated or dead
    /// nodes: the first healthy node in the walk owns the key *for now*,
    /// and when the preferred node recovers the key falls back to it.
    pub fn nodes_for(&self, key: u64) -> impl Iterator<Item = usize> + '_ {
        let start = match self.points.is_empty() {
            true => 0,
            false => {
                let pos = Self::position(key);
                self.points.partition_point(|&(p, _)| p < pos) % self.points.len()
            }
        };
        let mut seen = vec![false; self.nodes];
        let mut yielded = 0usize;
        let points = &self.points;
        let nodes = self.nodes;
        (0..points.len()).filter_map(move |offset| {
            if yielded == nodes {
                return None;
            }
            let (_, node) = points[(start + offset) % points.len()];
            if seen[node] {
                return None;
            }
            seen[node] = true;
            yielded += 1;
            Some(node)
        })
    }
}

/// A cluster session id: the owning node's index plus that node's local
/// session id, rendered as `n<node>.<local>` (e.g. `n2.s-17`).
///
/// The id the router hands out *is* the routing table — every follow-up
/// request self-describes which worker owns it, so the router tier stays
/// stateless about sessions and any router replica can proxy any id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterSessionId {
    /// The worker node index that owns the session.
    pub node: usize,
    /// The session id on that node (its `s-<n>` form).
    pub local: String,
}

impl ClusterSessionId {
    /// Renders the id in its wire form.
    pub fn format(&self) -> String {
        format!("n{}.{}", self.node, self.local)
    }

    /// Parses a wire-form id; `None` when it is not a cluster id.
    pub fn parse(text: &str) -> Option<ClusterSessionId> {
        let rest = text.strip_prefix('n')?;
        let (node, local) = rest.split_once('.')?;
        if local.is_empty() {
            return None;
        }
        Some(ClusterSessionId {
            node: node.parse().ok()?,
            local: local.to_string(),
        })
    }
}

impl std::fmt::Display for ClusterSessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}.{}", self.node, self.local)
    }
}

/// How one `/stats` field combines across nodes in the cluster view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatAgg {
    /// Monotonic counters and additive gauges: the cluster value is the
    /// sum (`frames.rendered`, `cache.bytes`, `sessions.live`, ...).
    Sum,
    /// High-water marks and clocks: summing would double-count, so the
    /// cluster value is the max (`queue.peak_depth`, `uptime_seconds`).
    Max,
    /// Ratios, identifiers, configuration and latency quantiles: only
    /// meaningful per node, so the cluster view omits them (consult the
    /// `per_node` section instead).
    Skip,
}

/// Classifies a `(section, field)` pair of the per-node `/stats` document
/// (schema `spotnoise_service_stats/v1`). Unknown numeric fields default
/// to [`StatAgg::Sum`] — counters are the common case, and a wrongly
/// summed peak is visible while a silently dropped counter is not.
pub fn stats_aggregation(section: &str, field: &str) -> StatAgg {
    match (section, field) {
        // Top-level scalars (section "").
        ("", "uptime_seconds") => StatAgg::Max,
        ("", "schema") => StatAgg::Skip,
        // Peaks.
        ("channels", "peak_subscribers") | ("queue", "peak_depth") => StatAgg::Max,
        // Ratios and derived means — recompute from the summed inputs if
        // needed; summing or averaging them is wrong under skewed load.
        ("cache", "hit_rate")
        | ("channels", "delivery_ratio")
        | ("frames", "mean_synthesize_us") => StatAgg::Skip,
        // Per-node configuration: identical across a homogeneous cluster,
        // and summing capacities would misstate any single node's limit.
        ("queue", "watermark") | ("queue", "per_session_cap") => StatAgg::Skip,
        // Identity, enum state and id lists.
        ("node", _) | ("sessions", "ids") | ("pressure", "state") | ("pipes", "pooled") => {
            StatAgg::Skip
        }
        _ => StatAgg::Sum,
    }
}

/// Folds per-node `/stats` documents into one cluster-view object: every
/// section of numeric fields combined per [`stats_aggregation`]. The
/// schema line, latency quantiles and per-session lists are omitted — the
/// router's `/stats` carries per-node documents alongside this view.
pub fn aggregate_stats(per_node: &[Json]) -> Json {
    let mut sections: Vec<(String, Vec<(String, f64)>)> = Vec::new();
    let mut scalars: Vec<(String, f64)> = Vec::new();
    for doc in per_node {
        let Json::Object(entries) = doc else { continue };
        for (section, value) in entries {
            match value {
                Json::Number(n) => {
                    fold_field(&mut scalars, section, *n, stats_aggregation("", section));
                }
                Json::Object(fields) => {
                    let slot = match sections.iter_mut().find(|(name, _)| name == section) {
                        Some((_, slot)) => slot,
                        None => {
                            sections.push((section.clone(), Vec::new()));
                            &mut sections.last_mut().expect("just pushed").1
                        }
                    };
                    for (field, value) in fields {
                        let Json::Number(n) = value else { continue };
                        fold_field(slot, field, *n, stats_aggregation(section, field));
                    }
                }
                _ => {}
            }
        }
    }
    let mut out: Vec<(String, Json)> = scalars
        .into_iter()
        .map(|(name, value)| (name, Json::num(value)))
        .collect();
    for (section, fields) in sections {
        if fields.is_empty() {
            continue;
        }
        out.push((
            section,
            Json::Object(
                fields
                    .into_iter()
                    .map(|(name, value)| (name, Json::num(value)))
                    .collect(),
            ),
        ));
    }
    Json::Object(out)
}

fn fold_field(slot: &mut Vec<(String, f64)>, field: &str, value: f64, agg: StatAgg) {
    let combine: fn(f64, f64) -> f64 = match agg {
        StatAgg::Sum => |a, b| a + b,
        StatAgg::Max => f64::max,
        StatAgg::Skip => return,
    };
    match slot.iter_mut().find(|(name, _)| name == field) {
        Some((_, acc)) => *acc = combine(*acc, value),
        None => slot.push((field.to_string(), value)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_deterministic_and_covers_all_nodes() {
        let a = HashRing::new(3);
        let b = HashRing::new(3);
        let mut owners = [0usize; 3];
        for key in 0..600u64 {
            let node = a.node_for(key).unwrap();
            assert_eq!(Some(node), b.node_for(key), "placement must be stable");
            owners[node] += 1;
        }
        for (node, count) in owners.iter().enumerate() {
            assert!(*count > 0, "node {node} owns no keys out of 600");
        }
    }

    #[test]
    fn ring_walk_yields_each_node_once_starting_at_owner() {
        let ring = HashRing::new(4);
        for key in [0u64, 17, 0xDEAD_BEEF, u64::MAX] {
            let walk: Vec<usize> = ring.nodes_for(key).collect();
            assert_eq!(walk.len(), 4);
            let mut sorted = walk.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3]);
            assert_eq!(walk[0], ring.node_for(key).unwrap());
        }
    }

    #[test]
    fn ring_removal_moves_only_the_lost_nodes_keys() {
        // Consistency property: keys owned by a surviving node keep their
        // owner when the highest node index is dropped from the ring.
        let big = HashRing::new(4);
        let small = HashRing::new(3);
        let mut moved = 0usize;
        for key in 0..1000u64 {
            let before = big.node_for(key).unwrap();
            let after = small.node_for(key).unwrap();
            if before < 3 {
                assert_eq!(before, after, "surviving key {key} moved");
            } else {
                moved += 1;
            }
        }
        assert!(moved > 0, "node 3 owned nothing out of 1000 keys");
    }

    #[test]
    fn empty_ring_places_nothing() {
        let ring = HashRing::new(0);
        assert_eq!(ring.node_for(42), None);
        assert_eq!(ring.nodes_for(42).count(), 0);
    }

    #[test]
    fn cluster_session_id_round_trips() {
        let id = ClusterSessionId {
            node: 2,
            local: "s-17".to_string(),
        };
        assert_eq!(id.format(), "n2.s-17");
        assert_eq!(ClusterSessionId::parse("n2.s-17"), Some(id));
        assert_eq!(ClusterSessionId::parse("s-17"), None);
        assert_eq!(ClusterSessionId::parse("n2"), None);
        assert_eq!(ClusterSessionId::parse("n2."), None);
        assert_eq!(ClusterSessionId::parse("nx.s-1"), None);
    }

    #[test]
    fn aggregation_table_sums_counters_maxes_peaks_skips_ratios() {
        assert_eq!(stats_aggregation("frames", "rendered"), StatAgg::Sum);
        assert_eq!(stats_aggregation("cluster", "peer_hits"), StatAgg::Sum);
        assert_eq!(stats_aggregation("queue", "peak_depth"), StatAgg::Max);
        assert_eq!(stats_aggregation("", "uptime_seconds"), StatAgg::Max);
        assert_eq!(stats_aggregation("cache", "hit_rate"), StatAgg::Skip);
        assert_eq!(stats_aggregation("queue", "watermark"), StatAgg::Skip);
        assert_eq!(stats_aggregation("node", "id"), StatAgg::Skip);
    }

    #[test]
    fn aggregate_stats_folds_documents() {
        let a = Json::parse(
            r#"{"schema": "spotnoise_service_stats/v1", "uptime_seconds": 5,
                "frames": {"rendered": 10, "mean_synthesize_us": 3.5},
                "queue": {"depth": 1, "peak_depth": 4}}"#,
        )
        .unwrap();
        let b = Json::parse(
            r#"{"schema": "spotnoise_service_stats/v1", "uptime_seconds": 9,
                "frames": {"rendered": 7, "mean_synthesize_us": 9.0},
                "queue": {"depth": 2, "peak_depth": 3}}"#,
        )
        .unwrap();
        let merged = aggregate_stats(&[a, b]);
        assert_eq!(merged.get("uptime_seconds").unwrap().as_f64(), Some(9.0));
        let frames = merged.get("frames").unwrap();
        assert_eq!(frames.get("rendered").unwrap().as_f64(), Some(17.0));
        assert!(frames.get("mean_synthesize_us").is_none());
        let queue = merged.get("queue").unwrap();
        assert_eq!(queue.get("depth").unwrap().as_f64(), Some(3.0));
        assert_eq!(queue.get("peak_depth").unwrap().as_f64(), Some(4.0));
        assert!(merged.get("schema").is_none());
    }
}
