//! Browsing a DNS data base of turbulent flow (paper §5.2, Figure 7).
//!
//! ```text
//! cargo run --release -p spotnoise-apps --example turbulence_browser
//! ```
//!
//! Runs the DNS substitute until vortex shedding develops, records slices
//! into the data-browser store, then plays the data base back while
//! visualising each slice with spot noise — reporting whether the playback
//! rate clears the "monitor how the vortices behave over time" threshold.

use flowsim::{record_dns_run, DataBrowser, DnsConfig, DnsSolver};
use flowviz::{draw_rect_outline, texture_to_framebuffer, Colormap};
use softpipe::machine::MachineConfig;
use softpipe::Rgb;
use spotnoise::config::{SpotKind, SynthesisConfig};
use spotnoise::dnc::synthesize_dnc;
use spotnoise::filter::standard_postprocess;
use spotnoise::spot::generate_spots;

fn main() {
    // 1. Produce the data base: run the solver and record slices.
    println!("running the DNS substitute and recording slices ...");
    let mut solver = DnsSolver::new(DnsConfig::small_test());
    // Spin up the wake before recording.
    for _ in 0..120 {
        solver.step(0.02);
    }
    let mut browser = DataBrowser::in_memory();
    record_dns_run(&mut solver, &mut browser, 8, 10, 0.02).expect("recording failed");
    println!(
        "data base: {} frames, {} kB (the real DNS data base reaches terabytes), wake fluctuation {:.3}",
        browser.len(),
        browser.total_bytes() / 1024,
        solver.wake_fluctuation(),
    );

    // 2. Browse: play through the data base and synthesise each slice.
    let cfg = SynthesisConfig {
        texture_size: 256,
        spot_count: 5000,
        spot_kind: SpotKind::Bent { rows: 8, cols: 3 },
        ..SynthesisConfig::turbulence_paper()
    };
    let machine = MachineConfig::onyx2_full();
    let block = *solver.block();

    let mut last_display = None;
    let playback = std::time::Instant::now();
    let frame_count = browser.len();
    for _ in 0..frame_count {
        let (info, grid) = browser.next_frame().expect("playback failed");
        let spots = generate_spots(
            cfg.spot_count,
            grid.domain(),
            cfg.intensity_amplitude,
            cfg.seed,
        );
        let out = synthesize_dnc(&grid, &spots, &cfg, &machine);
        println!(
            "frame {:>2} (t = {:>5.2}): {:>6.2} textures/s measured, {:>5.2} simulated Onyx2",
            info.index,
            info.time,
            out.measured_textures_per_second(),
            out.predicted.textures_per_second,
        );
        last_display = Some((
            standard_postprocess(&out.texture, cfg.spot_radius_pixels()),
            grid,
        ));
    }
    let elapsed = playback.elapsed().as_secs_f64();
    println!(
        "played {} frames in {:.2} s -> {:.2} frames/s end to end",
        frame_count,
        elapsed,
        frame_count as f64 / elapsed
    );

    // 3. Save the last frame as a Figure-7-style image with the block drawn.
    if let Some((display, grid)) = last_display {
        let width = 512usize;
        let height = (width as f64 * grid.domain().height() / grid.domain().width()) as usize;
        let mut fb = texture_to_framebuffer(&display, width, height, Colormap::Grayscale);
        draw_rect_outline(&mut fb, grid.domain(), block.rect, Rgb::new(255, 80, 80));
        let path = std::env::temp_dir().join("spotnoise_turbulence_browser.ppm");
        fb.save_ppm(&path).expect("failed to write image");
        println!("wrote {}", path.display());
    }
}
