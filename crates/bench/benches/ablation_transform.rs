//! Ablation: spot transformation in software vs on the graphics pipe.
//!
//! Paper §4: "An exception to this was the spot transformation which is
//! performed in software by the processors, thus avoiding the high
//! synchronization overhead costs for setting transformation matrices for
//! each rendered spot." This bench measures both variants with standard
//! (disc) spots; the `reproduce` harness and the unit tests additionally
//! compare the *simulated* cost, where the per-spot matrix load is charged
//! the InfiniteReality synchronisation penalty.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flowfield::analytic::Vortex;
use flowfield::{Rect, Vec2};
use softpipe::machine::MachineConfig;
use spotnoise::config::{SpotKind, SynthesisConfig};
use spotnoise::dnc::synthesize_dnc;
use spotnoise::spot::generate_spots;

fn bench_transform(c: &mut Criterion) {
    let domain = Rect::new(Vec2::ZERO, Vec2::new(1.0, 1.0));
    let field = Vortex {
        omega: 1.5,
        center: domain.center(),
        domain,
    };
    let cfg_base = SynthesisConfig {
        texture_size: 256,
        spot_count: 4000,
        spot_radius: 0.02,
        spot_kind: SpotKind::Disc,
        ..SynthesisConfig::small_test()
    };
    let spots = generate_spots(cfg_base.spot_count, domain, 1.0, 1);
    let machine = MachineConfig::new(4, 2);

    let mut group = c.benchmark_group("ablation_transform");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for on_pipe in [false, true] {
        let mut cfg = cfg_base;
        cfg.transform_on_pipe = on_pipe;
        let label = if on_pipe {
            "on_pipe_matrix_loads"
        } else {
            "software_transform"
        };
        group.bench_with_input(BenchmarkId::from_parameter(label), &cfg, |b, cfg| {
            b.iter(|| synthesize_dnc(&field, &spots, cfg, &machine))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_transform);
criterion_main!(benches);
