//! # spotnoise — Divide and Conquer Spot Noise
//!
//! A reproduction of *"Divide and Conquer Spot Noise"* (W.C. de Leeuw and
//! R. van Liere, SuperComputing'97): interactive spot-noise texture synthesis
//! for flow visualization, parallelised over processors and graphics pipes.
//!
//! Spot noise builds a texture `f(x) = Σ aᵢ h(x − xᵢ)` from many randomly
//! weighted, randomly placed spots whose *shape* is deformed by the local
//! flow; animated over particle paths it gives a dense, continuous picture of
//! a 2-D vector field. The divide-and-conquer algorithm partitions the spot
//! collection over *process groups* — each one master processor, a number of
//! slave processors and exactly one graphics pipe — and blends the resulting
//! partial textures into the final texture.
//!
//! ## Crate layout
//!
//! * [`config`] — synthesis parameters and the paper's two workload presets,
//! * [`spot`] — spot instances and standard (stretched-ellipse) spots,
//! * [`bent`] — bent spots: stream-line-advected textured meshes,
//! * [`synth`] — sequential synthesis (the eq. 2.1 baseline),
//! * [`scheduler`] — the generic execution engine: [`ExecBackend`]s
//!   (softpipe pipes, CPU-only), [`WorkSource`]s (static split, dynamic
//!   spot/tile queues) and the streaming gather,
//! * [`dnc`] — the divide-and-conquer executors as thin engine
//!   configurations (round-robin, texture tiling, CPU-only),
//! * [`partition`] — spot partitioning strategies,
//! * [`advect`] — spot/particle animation with life cycles,
//! * [`filter`] — spot filtering and display post-processing,
//! * [`pipeline`] — the interactive four-step pipeline,
//! * [`perfmodel`] — equations 2.1 / 3.2 and the simulated-Onyx2 predictions,
//! * [`metrics`] — throughput, stage-timing and cache instrumentation,
//! * [`telemetry`] — lock-free latency histograms and the frame-lifecycle
//!   trace ring (`SPOTNOISE_TRACE`),
//! * [`hash`] — stable content hashing for frame-cache keys,
//! * [`json`] — the registry-free JSON value type used by the benchmark
//!   artifacts and the synthesis service.
//!
//! ## Quick example
//!
//! ```
//! use flowfield::analytic::Vortex;
//! use flowfield::{Rect, Vec2};
//! use softpipe::machine::MachineConfig;
//! use spotnoise::config::SynthesisConfig;
//! use spotnoise::spot::generate_spots;
//! use spotnoise::dnc::synthesize_dnc;
//!
//! let domain = Rect::new(Vec2::ZERO, Vec2::new(1.0, 1.0));
//! let field = Vortex { omega: 1.0, center: domain.center(), domain };
//! let cfg = SynthesisConfig::small_test();
//! let spots = generate_spots(cfg.spot_count, domain, cfg.intensity_amplitude, cfg.seed);
//! let out = synthesize_dnc(&field, &spots, &cfg, &MachineConfig::new(4, 2));
//! assert_eq!(out.texture.width(), cfg.texture_size);
//! ```

#![warn(missing_docs)]

pub mod advect;
pub mod bent;
pub mod config;
pub mod dnc;
pub mod filter;
pub mod hash;
pub mod json;
pub mod metrics;
pub mod partition;
pub mod perfmodel;
pub mod pipeline;
pub mod quality;
pub mod scheduler;
pub mod spot;
pub mod synth;
pub mod telemetry;

pub use advect::{PositionMode, SpotAnimator};
pub use config::{SpotKind, SynthesisConfig};
pub use dnc::{synthesize_cpu_only, synthesize_dnc, DncOutput, DncReport, GroupReport};
pub use perfmodel::{eq_2_1, eq_3_2, PerfPrediction};
pub use pipeline::{ExecutionMode, FrameOutput, Pipeline};
pub use scheduler::{
    CpuBackend, DynamicSpotQueue, EngineOutput, ExecBackend, ExecSession, ScheduleMode, Scheduler,
    SchedulerOptions, SoftpipeBackend, StaticSpotSource, TileWorkQueue, WorkSource, WorkUnit,
};
pub use spot::{generate_spots, Spot};
pub use synth::{synthesize_sequential, SequentialOutput, SynthesisContext};

#[cfg(test)]
mod proptests {
    use crate::config::{SamplingMode, SpotKind, SynthesisConfig};
    use crate::dnc::synthesize_dnc_with_context;
    use crate::partition::{partition_round_robin, partition_tiled, TilingOptions};
    use crate::quality::sampling_quality;
    use crate::spot::{generate_spots, FieldToPixel};
    use crate::synth::{
        synthesize_sequential, synthesize_sequential_with_context, SynthesisContext,
    };
    use flowfield::analytic::Vortex;
    use flowfield::{Rect, Vec2};
    use proptest::prelude::*;
    use softpipe::machine::MachineConfig;

    fn domain() -> Rect {
        Rect::new(Vec2::ZERO, Vec2::new(1.0, 1.0))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// The central correctness property of the paper: for any machine
        /// shape, divide-and-conquer synthesis matches the sequential result
        /// up to floating-point reassociation.
        #[test]
        fn dnc_equals_sequential(processors in 1usize..6, pipes in 1usize..4, seed in 0u64..50) {
            let pipes = pipes.min(processors);
            let cfg = SynthesisConfig { spot_count: 120, texture_size: 64, ..SynthesisConfig::small_test() };
            let field = Vortex { omega: 1.0, center: Vec2::new(0.5, 0.5), domain: domain() };
            let spots = generate_spots(cfg.spot_count, domain(), 1.0, seed);
            let ctx = SynthesisContext::new(&field, &cfg);
            let seq = synthesize_sequential_with_context(&field, &spots, &cfg, &ctx);
            let machine = MachineConfig::new(processors, pipes);
            let dnc = synthesize_dnc_with_context(&field, &spots, &cfg, &machine, &ctx);
            let mean_diff = seq.texture.absolute_difference(&dnc.texture) / (64.0 * 64.0);
            prop_assert!(mean_diff < 1e-4, "mean texel difference {mean_diff}");
        }

        /// Footprint sampling stays within the quality tolerances of Exact
        /// across random fields, spot sizes and spot kinds — the license
        /// for the speed-for-quality trade, enforced as a property.
        #[test]
        fn footprint_sampling_within_quality_tolerance(
            seed in 0u64..1000,
            omega in 0.5f64..2.5,
            radius in 0.02f64..0.08,
            bent in 0u8..2,
        ) {
            let cfg = SynthesisConfig {
                texture_size: 96,
                spot_count: 220,
                spot_radius: radius,
                spot_kind: if bent == 1 {
                    SpotKind::Bent { rows: 8, cols: 3 }
                } else {
                    SpotKind::Disc
                },
                ..SynthesisConfig::small_test()
            };
            let footprint_cfg = SynthesisConfig { sampling: SamplingMode::Footprint, ..cfg };
            let field = Vortex { omega, center: Vec2::new(0.5, 0.5), domain: domain() };
            let spots = generate_spots(cfg.spot_count, domain(), 1.0, seed);
            let exact = synthesize_sequential(&field, &spots, &cfg);
            let approx = synthesize_sequential(&field, &spots, &footprint_cfg);
            let q = sampling_quality(&exact.texture, &approx.texture);
            prop_assert!(
                q.within_footprint_tolerance(),
                "seed {seed}, radius {radius}, bent {bent}: {q:?}"
            );
        }

        /// Round-robin partitioning is a true partition for any group count.
        #[test]
        fn round_robin_is_partition(n_spots in 1usize..400, groups in 1usize..9) {
            let spots = generate_spots(n_spots, domain(), 1.0, 7);
            let parts = partition_round_robin(&spots, groups);
            prop_assert_eq!(parts.len(), groups);
            let total: usize = parts.iter().map(Vec::len).sum();
            prop_assert_eq!(total, n_spots);
            let max = parts.iter().map(Vec::len).max().unwrap();
            let min = parts.iter().map(Vec::len).min().unwrap();
            prop_assert!(max - min <= 1);
        }

        /// Tiled partitioning never loses a spot, and the duplicate count is
        /// consistent with the per-group totals.
        #[test]
        fn tiling_never_loses_spots(n_spots in 1usize..400, groups in 1usize..9, margin in 0.0f64..30.0) {
            let spots = generate_spots(n_spots, domain(), 1.0, 11);
            let mapper = FieldToPixel::new(domain(), 128);
            let part = partition_tiled(&spots, &mapper, groups, &TilingOptions { overlap_margin_pixels: margin });
            let total: usize = part.groups.iter().map(Vec::len).sum();
            prop_assert_eq!(total, n_spots + part.duplicated);
            prop_assert!(total >= n_spots);
        }
    }
}
