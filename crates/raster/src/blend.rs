//! Fragment blending modes.
//!
//! Spot noise relies on *additive* blending of spot intensities into the
//! texture (the sum in `f(x) = Σ aᵢ h(x−xᵢ)`). The OpenGL-style state
//! machine also supports the other modes a graphics pipe provides, which the
//! presentation layer uses when compositing overlays.

use serde::{Deserialize, Serialize};

/// How an incoming fragment value is combined with the value already stored
/// in the target texture.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlendMode {
    /// Destination is replaced by the source.
    Replace,
    /// Source is added to the destination (the spot-noise accumulation mode).
    #[default]
    Additive,
    /// Destination keeps the maximum of source and destination.
    Max,
    /// Classic alpha blending `dst = src * alpha + dst * (1 - alpha)`, with
    /// the constant alpha stored in the mode.
    Alpha(AlphaFactor),
}

/// A blend factor in `[0, 1]`, wrapped so that `BlendMode` stays `Eq` and
/// hashable while still carrying a floating-point alpha.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlphaFactor(u16);

impl AlphaFactor {
    /// Creates an alpha factor from a float in `[0, 1]` (clamped).
    pub fn new(alpha: f32) -> Self {
        AlphaFactor((alpha.clamp(0.0, 1.0) * u16::MAX as f32).round() as u16)
    }

    /// The alpha value as a float in `[0, 1]`.
    pub fn value(self) -> f32 {
        self.0 as f32 / u16::MAX as f32
    }
}

impl BlendMode {
    /// Applies the blend equation for a single fragment.
    ///
    /// `Max` uses the explicit compare-select `if src > dst { src } else
    /// { dst }` rather than `f32::max`: the two differ only on signed-zero
    /// ties, where `f32::max`'s result depends on how the intrinsic is
    /// lowered (debug and release builds disagree). The compare-select keeps
    /// `dst` on every tie, which is deterministic across build profiles and
    /// exactly reproducible by the SIMD kernels' compare+select.
    #[inline]
    pub fn apply(self, dst: f32, src: f32) -> f32 {
        match self {
            BlendMode::Replace => src,
            BlendMode::Additive => dst + src,
            BlendMode::Max => {
                if src > dst {
                    src
                } else {
                    dst
                }
            }
            BlendMode::Alpha(a) => {
                let alpha = a.value();
                src * alpha + dst * (1.0 - alpha)
            }
        }
    }

    /// Applies the blend equation to a whole block of fragments: the mode is
    /// matched **once per block** and each arm runs a tight, branch-free loop
    /// the compiler can vectorize — this is what the lane-blocked span fills
    /// call instead of dispatching per fragment. Per-texel arithmetic is
    /// exactly [`BlendMode::apply`], so results are bit-identical to the
    /// per-fragment path.
    ///
    /// # Panics
    /// Panics when the slices' lengths differ (debug builds).
    #[inline]
    pub fn apply_block(self, dst: &mut [f32], src: &[f32]) {
        debug_assert_eq!(dst.len(), src.len());
        match self {
            BlendMode::Replace => dst.copy_from_slice(src),
            BlendMode::Additive => {
                for (d, s) in dst.iter_mut().zip(src) {
                    *d += *s;
                }
            }
            BlendMode::Max => {
                for (d, s) in dst.iter_mut().zip(src) {
                    *d = if *s > *d { *s } else { *d };
                }
            }
            BlendMode::Alpha(a) => {
                let alpha = a.value();
                for (d, s) in dst.iter_mut().zip(src) {
                    *d = *s * alpha + *d * (1.0 - alpha);
                }
            }
        }
    }

    /// Applies the blend equation with one uniform source value across a
    /// span (the uniform-row fast path): a single match, then a plain
    /// vectorizable loop per mode. Bit-identical to calling
    /// [`BlendMode::apply`] per texel with the same `src`.
    #[inline]
    pub fn apply_uniform(self, dst: &mut [f32], src: f32) {
        match self {
            BlendMode::Replace => dst.fill(src),
            BlendMode::Additive => {
                for d in dst.iter_mut() {
                    *d += src;
                }
            }
            BlendMode::Max => {
                for d in dst.iter_mut() {
                    *d = if src > *d { src } else { *d };
                }
            }
            BlendMode::Alpha(a) => {
                let alpha = a.value();
                for d in dst.iter_mut() {
                    *d = src * alpha + *d * (1.0 - alpha);
                }
            }
        }
    }

    /// True for modes where the order in which fragments arrive does not
    /// change the final value (up to floating-point rounding). Divide and
    /// conquer relies on this property of the additive mode: partial textures
    /// can be generated independently and blended in any order.
    pub fn is_order_independent(self) -> bool {
        matches!(self, BlendMode::Additive | BlendMode::Max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replace_ignores_destination() {
        assert_eq!(BlendMode::Replace.apply(5.0, 2.0), 2.0);
    }

    #[test]
    fn additive_sums() {
        assert_eq!(BlendMode::Additive.apply(1.0, 2.5), 3.5);
        assert_eq!(BlendMode::Additive.apply(-1.0, 1.0), 0.0);
    }

    #[test]
    fn max_keeps_larger() {
        assert_eq!(BlendMode::Max.apply(1.0, 2.5), 2.5);
        assert_eq!(BlendMode::Max.apply(3.0, 2.5), 3.0);
    }

    #[test]
    fn alpha_interpolates() {
        let half = BlendMode::Alpha(AlphaFactor::new(0.5));
        assert!((half.apply(0.0, 1.0) - 0.5).abs() < 1e-3);
        let opaque = BlendMode::Alpha(AlphaFactor::new(1.0));
        assert!((opaque.apply(0.0, 1.0) - 1.0).abs() < 1e-3);
        let clear = BlendMode::Alpha(AlphaFactor::new(0.0));
        assert!((clear.apply(0.25, 1.0) - 0.25).abs() < 1e-3);
    }

    #[test]
    fn alpha_factor_clamps_input() {
        assert_eq!(AlphaFactor::new(2.0).value(), 1.0);
        assert_eq!(AlphaFactor::new(-1.0).value(), 0.0);
    }

    #[test]
    fn order_independence_classification() {
        assert!(BlendMode::Additive.is_order_independent());
        assert!(BlendMode::Max.is_order_independent());
        assert!(!BlendMode::Replace.is_order_independent());
        assert!(!BlendMode::Alpha(AlphaFactor::new(0.5)).is_order_independent());
    }

    #[test]
    fn block_and_uniform_application_match_per_fragment_exactly() {
        let modes = [
            BlendMode::Replace,
            BlendMode::Additive,
            BlendMode::Max,
            BlendMode::Alpha(AlphaFactor::new(0.37)),
        ];
        let dst_init: Vec<f32> = (0..13).map(|i| (i as f32 * 0.731).sin()).collect();
        let src: Vec<f32> = (0..13).map(|i| (i as f32 * 1.113).cos() * 2.0).collect();
        for mode in modes {
            let mut block = dst_init.clone();
            mode.apply_block(&mut block, &src);
            let per_fragment: Vec<f32> = dst_init
                .iter()
                .zip(&src)
                .map(|(&d, &s)| mode.apply(d, s))
                .collect();
            assert_eq!(block, per_fragment, "{mode:?} block diverged");

            let mut uniform = dst_init.clone();
            mode.apply_uniform(&mut uniform, 0.42);
            let per_fragment: Vec<f32> = dst_init.iter().map(|&d| mode.apply(d, 0.42)).collect();
            assert_eq!(uniform, per_fragment, "{mode:?} uniform diverged");
        }
    }

    #[test]
    fn additive_is_commutative_and_associative() {
        let vals = [0.3f32, 1.7, -0.4, 2.2];
        let forward = vals
            .iter()
            .fold(0.0, |acc, &v| BlendMode::Additive.apply(acc, v));
        let backward = vals
            .iter()
            .rev()
            .fold(0.0, |acc, &v| BlendMode::Additive.apply(acc, v));
        assert!((forward - backward).abs() < 1e-6);
    }
}
