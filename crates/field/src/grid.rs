//! Discrete grids carrying vector- and scalar-valued samples.
//!
//! The paper's two applications use the two grid kinds implemented here:
//!
//! * the smog-prediction wind field lives on a **regular** 53x55 grid
//!   (uniform spacing in both directions), and
//! * the DNS turbulence slice lives on a **rectilinear** 278x208 grid
//!   (per-axis, possibly non-uniform coordinate arrays) — the "non-uniform
//!   data grids" extension of enhanced spot noise.
//!
//! Both provide bilinear interpolation and implement the [`VectorField`]
//! trait used by the rest of the pipeline, so the synthesis code never needs
//! to know which kind it is sampling.

use crate::vec2::{Rect, Vec2};
use serde::{Deserialize, Serialize};

/// A continuous vector field over a rectangular domain.
///
/// This is the interface consumed by particle advection, streamline tracing
/// and spot transformation. Implementors must return a finite vector for any
/// point inside [`VectorField::domain`]; queries outside the domain are
/// clamped to the boundary.
pub trait VectorField: Sync {
    /// Velocity at position `p`.
    fn velocity(&self, p: Vec2) -> Vec2;

    /// The rectangular domain over which the field is defined.
    fn domain(&self) -> Rect;

    /// Velocity magnitude at `p`; override when a cheaper path exists.
    fn speed(&self, p: Vec2) -> f64 {
        self.velocity(p).norm()
    }
}

/// A continuous scalar field over a rectangular domain (used for pollutant
/// concentration, pressure, vorticity overlays ...).
pub trait ScalarField: Sync {
    /// Scalar value at position `p`.
    fn value(&self, p: Vec2) -> f64;

    /// The rectangular domain over which the field is defined.
    fn domain(&self) -> Rect;
}

impl<F: VectorField + ?Sized> VectorField for &F {
    fn velocity(&self, p: Vec2) -> Vec2 {
        (**self).velocity(p)
    }
    fn domain(&self) -> Rect {
        (**self).domain()
    }
    fn speed(&self, p: Vec2) -> f64 {
        (**self).speed(p)
    }
}

impl<F: ScalarField + ?Sized> ScalarField for &F {
    fn value(&self, p: Vec2) -> f64 {
        (**self).value(p)
    }
    fn domain(&self) -> Rect {
        (**self).domain()
    }
}

/// Index helper shared by the grid types: row-major `(i, j)` -> linear.
#[inline]
fn lin(i: usize, j: usize, nx: usize) -> usize {
    j * nx + i
}

/// Locate `x` in the monotone coordinate array `coords`, returning the cell
/// index `i` (so `coords[i] <= x <= coords[i+1]`) and the interpolation
/// weight within that cell. Out-of-range positions are clamped.
fn locate(coords: &[f64], x: f64) -> (usize, f64) {
    let n = coords.len();
    debug_assert!(n >= 2, "need at least two coordinates per axis");
    if x <= coords[0] {
        return (0, 0.0);
    }
    if x >= coords[n - 1] {
        return (n - 2, 1.0);
    }
    // Binary search for the last coordinate <= x.
    let mut lo = 0usize;
    let mut hi = n - 1;
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if coords[mid] <= x {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let w = (x - coords[lo]) / (coords[lo + 1] - coords[lo]);
    (lo, w.clamp(0.0, 1.0))
}

/// A vector field sampled on a uniform (regular) grid, bilinearly
/// interpolated between samples.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegularGrid {
    nx: usize,
    ny: usize,
    domain: Rect,
    /// Row-major `(nx * ny)` velocity samples, index `j * nx + i`.
    data: Vec<Vec2>,
}

impl RegularGrid {
    /// Creates a grid with all samples zero.
    pub fn zeros(nx: usize, ny: usize, domain: Rect) -> Self {
        assert!(nx >= 2 && ny >= 2, "grid needs at least 2x2 samples");
        RegularGrid {
            nx,
            ny,
            domain,
            data: vec![Vec2::ZERO; nx * ny],
        }
    }

    /// Creates a grid by sampling `f` at every node.
    pub fn from_fn(nx: usize, ny: usize, domain: Rect, mut f: impl FnMut(Vec2) -> Vec2) -> Self {
        let mut g = RegularGrid::zeros(nx, ny, domain);
        for j in 0..ny {
            for i in 0..nx {
                let p = g.node_position(i, j);
                g.data[lin(i, j, nx)] = f(p);
            }
        }
        g
    }

    /// Creates a grid by discretising an arbitrary continuous field.
    pub fn sample_field(nx: usize, ny: usize, field: &dyn VectorField) -> Self {
        let domain = field.domain();
        RegularGrid::from_fn(nx, ny, domain, |p| field.velocity(p))
    }

    /// Number of samples along x.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Number of samples along y.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// The rectangular domain covered by the grid.
    pub fn domain(&self) -> Rect {
        self.domain
    }

    /// Grid spacing along each axis.
    pub fn spacing(&self) -> Vec2 {
        Vec2::new(
            self.domain.width() / (self.nx - 1) as f64,
            self.domain.height() / (self.ny - 1) as f64,
        )
    }

    /// World position of node `(i, j)`.
    pub fn node_position(&self, i: usize, j: usize) -> Vec2 {
        let u = i as f64 / (self.nx - 1) as f64;
        let v = j as f64 / (self.ny - 1) as f64;
        self.domain.from_unit(Vec2::new(u, v))
    }

    /// Sample stored at node `(i, j)`.
    pub fn node(&self, i: usize, j: usize) -> Vec2 {
        self.data[lin(i, j, self.nx)]
    }

    /// Mutable access to the sample at node `(i, j)`.
    pub fn node_mut(&mut self, i: usize, j: usize) -> &mut Vec2 {
        &mut self.data[lin(i, j, self.nx)]
    }

    /// Raw sample storage (row-major).
    pub fn samples(&self) -> &[Vec2] {
        &self.data
    }

    /// Overwrites every sample using `f(node_position)`.
    pub fn fill_with(&mut self, mut f: impl FnMut(Vec2) -> Vec2) {
        for j in 0..self.ny {
            for i in 0..self.nx {
                self.data[lin(i, j, self.nx)] = f(self.node_position(i, j));
            }
        }
    }

    /// Bilinear interpolation at an arbitrary point (clamped to the domain).
    pub fn interpolate(&self, p: Vec2) -> Vec2 {
        let uv = self.domain.to_unit(self.domain.clamp(p));
        let fx = uv.x * (self.nx - 1) as f64;
        let fy = uv.y * (self.ny - 1) as f64;
        let i = (fx.floor() as usize).min(self.nx - 2);
        let j = (fy.floor() as usize).min(self.ny - 2);
        let tx = fx - i as f64;
        let ty = fy - j as f64;
        let v00 = self.node(i, j);
        let v10 = self.node(i + 1, j);
        let v01 = self.node(i, j + 1);
        let v11 = self.node(i + 1, j + 1);
        let bottom = v00.lerp(v10, tx);
        let top = v01.lerp(v11, tx);
        bottom.lerp(top, ty)
    }

    /// Maximum velocity magnitude over all nodes.
    pub fn max_speed(&self) -> f64 {
        self.data.iter().map(|v| v.norm()).fold(0.0, f64::max)
    }
}

impl VectorField for RegularGrid {
    fn velocity(&self, p: Vec2) -> Vec2 {
        self.interpolate(p)
    }
    fn domain(&self) -> Rect {
        self.domain
    }
}

/// A scalar field sampled on a uniform grid with bilinear interpolation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScalarGrid {
    nx: usize,
    ny: usize,
    domain: Rect,
    data: Vec<f64>,
}

impl ScalarGrid {
    /// Creates a grid with all samples zero.
    pub fn zeros(nx: usize, ny: usize, domain: Rect) -> Self {
        assert!(nx >= 2 && ny >= 2, "grid needs at least 2x2 samples");
        ScalarGrid {
            nx,
            ny,
            domain,
            data: vec![0.0; nx * ny],
        }
    }

    /// Creates a grid by sampling `f` at every node.
    pub fn from_fn(nx: usize, ny: usize, domain: Rect, mut f: impl FnMut(Vec2) -> f64) -> Self {
        let mut g = ScalarGrid::zeros(nx, ny, domain);
        for j in 0..ny {
            for i in 0..nx {
                let p = g.node_position(i, j);
                g.data[lin(i, j, nx)] = f(p);
            }
        }
        g
    }

    /// Number of samples along x.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Number of samples along y.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// The rectangular domain covered by the grid.
    pub fn domain(&self) -> Rect {
        self.domain
    }

    /// World position of node `(i, j)`.
    pub fn node_position(&self, i: usize, j: usize) -> Vec2 {
        let u = i as f64 / (self.nx - 1) as f64;
        let v = j as f64 / (self.ny - 1) as f64;
        self.domain.from_unit(Vec2::new(u, v))
    }

    /// Value stored at node `(i, j)`.
    pub fn node(&self, i: usize, j: usize) -> f64 {
        self.data[lin(i, j, self.nx)]
    }

    /// Mutable access to the value at node `(i, j)`.
    pub fn node_mut(&mut self, i: usize, j: usize) -> &mut f64 {
        &mut self.data[lin(i, j, self.nx)]
    }

    /// Raw sample storage (row-major).
    pub fn samples(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw sample storage (row-major).
    pub fn samples_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Bilinear interpolation at an arbitrary point (clamped to the domain).
    pub fn interpolate(&self, p: Vec2) -> f64 {
        let uv = self.domain.to_unit(self.domain.clamp(p));
        let fx = uv.x * (self.nx - 1) as f64;
        let fy = uv.y * (self.ny - 1) as f64;
        let i = (fx.floor() as usize).min(self.nx - 2);
        let j = (fy.floor() as usize).min(self.ny - 2);
        let tx = fx - i as f64;
        let ty = fy - j as f64;
        let v00 = self.node(i, j);
        let v10 = self.node(i + 1, j);
        let v01 = self.node(i, j + 1);
        let v11 = self.node(i + 1, j + 1);
        let bottom = v00 + (v10 - v00) * tx;
        let top = v01 + (v11 - v01) * tx;
        bottom + (top - bottom) * ty
    }

    /// Minimum and maximum sample value.
    pub fn range(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in &self.data {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        (lo, hi)
    }
}

impl ScalarField for ScalarGrid {
    fn value(&self, p: Vec2) -> f64 {
        self.interpolate(p)
    }
    fn domain(&self) -> Rect {
        self.domain
    }
}

/// A vector field sampled on a rectilinear grid: per-axis monotone coordinate
/// arrays with possibly non-uniform spacing, as produced by the DNS solver.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RectilinearGrid {
    xs: Vec<f64>,
    ys: Vec<f64>,
    data: Vec<Vec2>,
}

impl RectilinearGrid {
    /// Creates a grid from coordinate arrays with all samples zero.
    ///
    /// # Panics
    /// Panics when either coordinate array has fewer than two entries or is
    /// not strictly increasing.
    pub fn zeros(xs: Vec<f64>, ys: Vec<f64>) -> Self {
        assert!(xs.len() >= 2 && ys.len() >= 2, "need at least 2x2 samples");
        assert!(
            xs.windows(2).all(|w| w[1] > w[0]),
            "x coordinates must be strictly increasing"
        );
        assert!(
            ys.windows(2).all(|w| w[1] > w[0]),
            "y coordinates must be strictly increasing"
        );
        let n = xs.len() * ys.len();
        RectilinearGrid {
            xs,
            ys,
            data: vec![Vec2::ZERO; n],
        }
    }

    /// Creates a grid by sampling `f` at every node.
    pub fn from_fn(xs: Vec<f64>, ys: Vec<f64>, mut f: impl FnMut(Vec2) -> Vec2) -> Self {
        let mut g = RectilinearGrid::zeros(xs, ys);
        for j in 0..g.ny() {
            for i in 0..g.nx() {
                let p = g.node_position(i, j);
                g.data[lin(i, j, g.xs.len())] = f(p);
            }
        }
        g
    }

    /// Builds a rectilinear grid with uniform spacing (convenience for tests
    /// and for wrapping regular data in the rectilinear code path).
    pub fn uniform(nx: usize, ny: usize, domain: Rect) -> Self {
        let xs = (0..nx)
            .map(|i| domain.min.x + domain.width() * i as f64 / (nx - 1) as f64)
            .collect();
        let ys = (0..ny)
            .map(|j| domain.min.y + domain.height() * j as f64 / (ny - 1) as f64)
            .collect();
        RectilinearGrid::zeros(xs, ys)
    }

    /// Builds a grid whose spacing is geometrically stretched away from
    /// `focus` (in unit coordinates), mimicking DNS grids that concentrate
    /// resolution near an obstacle.
    pub fn stretched(nx: usize, ny: usize, domain: Rect, focus: Vec2, strength: f64) -> Self {
        assert!(nx >= 2 && ny >= 2);
        let stretch = |n: usize, lo: f64, hi: f64, f: f64| -> Vec<f64> {
            // Smoothly redistribute samples toward the focus point, then
            // rescale so the first/last samples land exactly on the domain
            // boundary.
            let warped: Vec<f64> = (0..n)
                .map(|i| {
                    let t = i as f64 / (n - 1) as f64;
                    let d = t - f;
                    f + d * (1.0 - strength * (-d * d * 8.0).exp() * 0.5)
                })
                .collect();
            let (w0, w1) = (warped[0], warped[n - 1]);
            warped
                .into_iter()
                .map(|w| lo + (hi - lo) * ((w - w0) / (w1 - w0)))
                .collect()
        };
        let mut xs = stretch(nx, domain.min.x, domain.max.x, focus.x);
        let mut ys = stretch(ny, domain.min.y, domain.max.y, focus.y);
        // Warping keeps order for moderate strengths; enforce monotonicity to
        // protect against extreme parameters.
        for k in 1..xs.len() {
            if xs[k] <= xs[k - 1] {
                xs[k] = xs[k - 1] + 1e-9;
            }
        }
        for k in 1..ys.len() {
            if ys[k] <= ys[k - 1] {
                ys[k] = ys[k - 1] + 1e-9;
            }
        }
        RectilinearGrid::zeros(xs, ys)
    }

    /// Number of samples along x.
    pub fn nx(&self) -> usize {
        self.xs.len()
    }

    /// Number of samples along y.
    pub fn ny(&self) -> usize {
        self.ys.len()
    }

    /// The rectangular domain covered by the grid.
    pub fn domain(&self) -> Rect {
        Rect::new(
            Vec2::new(self.xs[0], self.ys[0]),
            Vec2::new(*self.xs.last().unwrap(), *self.ys.last().unwrap()),
        )
    }

    /// The x coordinate array.
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// The y coordinate array.
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// World position of node `(i, j)`.
    pub fn node_position(&self, i: usize, j: usize) -> Vec2 {
        Vec2::new(self.xs[i], self.ys[j])
    }

    /// Sample stored at node `(i, j)`.
    pub fn node(&self, i: usize, j: usize) -> Vec2 {
        self.data[lin(i, j, self.xs.len())]
    }

    /// Mutable access to the sample at node `(i, j)`.
    pub fn node_mut(&mut self, i: usize, j: usize) -> &mut Vec2 {
        let nx = self.xs.len();
        &mut self.data[lin(i, j, nx)]
    }

    /// Overwrites every sample using `f(node_position)`.
    pub fn fill_with(&mut self, mut f: impl FnMut(Vec2) -> Vec2) {
        for j in 0..self.ny() {
            for i in 0..self.nx() {
                let p = self.node_position(i, j);
                *self.node_mut(i, j) = f(p);
            }
        }
    }

    /// Bilinear interpolation at an arbitrary point (clamped to the domain).
    pub fn interpolate(&self, p: Vec2) -> Vec2 {
        let (i, tx) = locate(&self.xs, p.x);
        let (j, ty) = locate(&self.ys, p.y);
        let v00 = self.node(i, j);
        let v10 = self.node(i + 1, j);
        let v01 = self.node(i, j + 1);
        let v11 = self.node(i + 1, j + 1);
        let bottom = v00.lerp(v10, tx);
        let top = v01.lerp(v11, tx);
        bottom.lerp(top, ty)
    }

    /// Maximum velocity magnitude over all nodes.
    pub fn max_speed(&self) -> f64 {
        self.data.iter().map(|v| v.norm()).fold(0.0, f64::max)
    }
}

impl VectorField for RectilinearGrid {
    fn velocity(&self, p: Vec2) -> Vec2 {
        self.interpolate(p)
    }
    fn domain(&self) -> Rect {
        RectilinearGrid::domain(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn regular_grid_node_positions_span_domain() {
        let dom = Rect::new(Vec2::new(-1.0, 0.0), Vec2::new(1.0, 2.0));
        let g = RegularGrid::zeros(5, 3, dom);
        assert_eq!(g.node_position(0, 0), dom.min);
        assert_eq!(g.node_position(4, 2), dom.max);
        assert!(approx(g.spacing().x, 0.5));
        assert!(approx(g.spacing().y, 1.0));
    }

    #[test]
    fn regular_grid_interpolation_reproduces_linear_field() {
        // Bilinear interpolation must be exact for affine fields.
        let dom = Rect::new(Vec2::ZERO, Vec2::new(4.0, 4.0));
        let field = |p: Vec2| Vec2::new(2.0 * p.x - p.y + 1.0, 0.5 * p.y + 3.0);
        let g = RegularGrid::from_fn(9, 9, dom, field);
        for &(x, y) in &[(0.3, 0.7), (2.5, 1.1), (3.9, 3.9), (0.0, 4.0)] {
            let p = Vec2::new(x, y);
            let got = g.interpolate(p);
            let want = field(p);
            assert!(approx(got.x, want.x) && approx(got.y, want.y), "{p:?}");
        }
    }

    #[test]
    fn regular_grid_interpolation_matches_nodes() {
        let dom = Rect::new(Vec2::ZERO, Vec2::new(1.0, 1.0));
        let g = RegularGrid::from_fn(7, 5, dom, |p| Vec2::new((p.x * 9.0).sin(), p.y * p.x));
        for j in 0..5 {
            for i in 0..7 {
                let p = g.node_position(i, j);
                let v = g.interpolate(p);
                let n = g.node(i, j);
                assert!(approx(v.x, n.x) && approx(v.y, n.y));
            }
        }
    }

    #[test]
    fn regular_grid_clamps_outside_queries() {
        let dom = Rect::new(Vec2::ZERO, Vec2::new(1.0, 1.0));
        let g = RegularGrid::from_fn(4, 4, dom, |p| p);
        let inside = g.interpolate(Vec2::new(1.0, 1.0));
        let outside = g.interpolate(Vec2::new(10.0, 10.0));
        assert!(approx(inside.x, outside.x) && approx(inside.y, outside.y));
    }

    #[test]
    fn scalar_grid_interpolation_and_range() {
        let dom = Rect::new(Vec2::ZERO, Vec2::new(2.0, 2.0));
        let g = ScalarGrid::from_fn(5, 5, dom, |p| p.x + 10.0 * p.y);
        assert!(approx(g.interpolate(Vec2::new(1.0, 1.0)), 11.0));
        let (lo, hi) = g.range();
        assert!(approx(lo, 0.0) && approx(hi, 22.0));
    }

    #[test]
    fn rectilinear_uniform_matches_regular() {
        let dom = Rect::new(Vec2::ZERO, Vec2::new(3.0, 2.0));
        let f = |p: Vec2| Vec2::new(p.y, -p.x);
        let mut rl = RectilinearGrid::uniform(7, 5, dom);
        rl.fill_with(f);
        let rg = RegularGrid::from_fn(7, 5, dom, f);
        for &(x, y) in &[(0.1, 0.2), (1.5, 1.0), (2.9, 1.9)] {
            let p = Vec2::new(x, y);
            let a = rl.interpolate(p);
            let b = rg.interpolate(p);
            assert!(approx(a.x, b.x) && approx(a.y, b.y));
        }
    }

    #[test]
    fn rectilinear_nonuniform_exact_for_linear_field() {
        let xs = vec![0.0, 0.1, 0.5, 1.2, 3.0];
        let ys = vec![-1.0, 0.0, 2.0];
        let f = |p: Vec2| Vec2::new(3.0 * p.x + p.y, p.x - 2.0 * p.y);
        let g = RectilinearGrid::from_fn(xs, ys, f);
        for &(x, y) in &[(0.05, -0.5), (0.8, 1.0), (2.0, 1.5)] {
            let p = Vec2::new(x, y);
            let got = g.interpolate(p);
            let want = f(p);
            assert!(approx(got.x, want.x) && approx(got.y, want.y));
        }
    }

    #[test]
    fn rectilinear_domain_and_clamping() {
        let g = RectilinearGrid::zeros(vec![0.0, 1.0, 4.0], vec![2.0, 3.0]);
        let d = g.domain();
        assert_eq!(d.min, Vec2::new(0.0, 2.0));
        assert_eq!(d.max, Vec2::new(4.0, 3.0));
        // Outside queries clamp rather than panic.
        let _ = g.interpolate(Vec2::new(-5.0, 10.0));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rectilinear_rejects_unsorted_coords() {
        let _ = RectilinearGrid::zeros(vec![0.0, 2.0, 1.0], vec![0.0, 1.0]);
    }

    #[test]
    fn stretched_grid_is_monotone_and_spans_domain() {
        let dom = Rect::new(Vec2::ZERO, Vec2::new(10.0, 4.0));
        let g = RectilinearGrid::stretched(40, 20, dom, Vec2::new(0.3, 0.5), 0.8);
        assert!(g.xs().windows(2).all(|w| w[1] > w[0]));
        assert!(g.ys().windows(2).all(|w| w[1] > w[0]));
        assert!(approx(g.xs()[0], 0.0));
        assert!(approx(*g.xs().last().unwrap(), 10.0));
    }

    #[test]
    fn locate_endpoints_and_interior() {
        let coords = [0.0, 1.0, 3.0, 6.0];
        assert_eq!(locate(&coords, -1.0), (0, 0.0));
        assert_eq!(locate(&coords, 7.0), (2, 1.0));
        let (i, w) = locate(&coords, 2.0);
        assert_eq!(i, 1);
        assert!(approx(w, 0.5));
    }

    #[test]
    fn max_speed_reports_largest_node() {
        let dom = Rect::new(Vec2::ZERO, Vec2::new(1.0, 1.0));
        let g = RegularGrid::from_fn(5, 5, dom, |p| Vec2::new(p.x, 0.0));
        assert!(approx(g.max_speed(), 1.0));
    }
}
