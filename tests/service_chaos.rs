//! Chaos suite: the service under injected faults and hostile clients.
//!
//! These tests install process-global fault plans via [`softpipe::fault`],
//! so they live in their own integration binary (unit tests elsewhere must
//! never see a plan) and serialize on [`fault_lock`] — the plan, the panic
//! hook and the injection counters are all shared process state.
//!
//! The soak length is tunable: `SPOTNOISE_SOAK_SECS` (default 2) stretches
//! the panic-injection soak, letting CI run the 60-second version the
//! fault-containment work item calls for without making local `cargo test`
//! crawl.

use flowfield::analytic::Vortex;
use flowfield::{Rect, Vec2};
use softpipe::fault::{self, FaultPlan};
use softpipe::machine::MachineConfig;
use spotnoise::advect::{PositionMode, SpotAnimator};
use spotnoise::config::SynthesisConfig;
use spotnoise::dnc::synthesize_dnc;
use spotnoise::json::Json;
use spotnoise_service::{
    serve, AdmissionConfig, ClientError, RetryPolicy, ServiceClient, ServiceOptions,
};
use std::io::{Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

/// Serializes every test in this binary: fault plans are process-global.
fn fault_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let lock = LOCK.get_or_init(|| Mutex::new(()));
    match lock.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Swallows the panic spew from injected faults (they are caught and
/// counted by the containment layer; hundreds of backtraces would bury the
/// test output) while still printing genuine panics.
fn quiet_injected_panics() {
    static INSTALLED: OnceLock<()> = OnceLock::new();
    INSTALLED.get_or_init(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.contains("injected fault at site"));
            if !injected {
                default(info);
            }
        }));
    });
}

fn domain() -> Rect {
    Rect::new(Vec2::ZERO, Vec2::new(1.0, 1.0))
}

/// Small sessions keep the soak's render loop tight so the render-site
/// checkpoint fires thousands of times even in the 2-second default run.
fn session_body(seed: u64, omega: f64, texture_size: usize) -> String {
    format!(
        concat!(
            "{{\"field\": {{\"kind\": \"vortex\", \"omega\": {}, \"cx\": 0.5, \"cy\": 0.5}}, ",
            "\"config\": {{\"texture_size\": {}, \"spot_count\": 40, ",
            "\"spot_texture_size\": 8, \"seed\": {}}}, ",
            "\"machine\": {{\"processors\": 2, \"pipes\": 2}}, \"dt\": 0.05}}"
        ),
        omega, texture_size, seed
    )
}

/// Direct engine rendering of the same frame `session_body` describes —
/// the post-recovery oracle.
fn direct_frame_bytes(seed: u64, omega: f64, texture_size: usize, index: u64) -> Vec<u8> {
    let cfg = SynthesisConfig {
        texture_size,
        spot_count: 40,
        spot_texture_size: 8,
        seed,
        ..SynthesisConfig::small_test()
    };
    let field = Vortex {
        omega,
        center: Vec2::new(0.5, 0.5),
        domain: domain(),
    };
    let mut animator =
        SpotAnimator::new(domain(), cfg.spot_count, PositionMode::Advected, cfg.seed);
    for _ in 0..=index {
        animator.advance(&field, 0.05);
    }
    let out = synthesize_dnc(&field, &animator.spots(), &cfg, &MachineConfig::new(2, 2));
    let mut bytes = Vec::with_capacity(out.texture.data().len() * 4);
    for v in out.texture.data() {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    bytes
}

fn stat(doc: &Json, path: &[&str]) -> f64 {
    let mut node = doc;
    for key in path {
        node = node
            .get(key)
            .unwrap_or_else(|| panic!("stats missing {path:?} at {key:?}"));
    }
    node.as_f64()
        .unwrap_or_else(|| panic!("stats {path:?} is not a number"))
}

fn soak_duration() -> Duration {
    let secs = std::env::var("SPOTNOISE_SOAK_SECS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(2);
    Duration::from_secs(secs.max(1))
}

/// The tentpole chaos property: with panics injected into the render stage
/// at 10%, a 4-worker server keeps answering, quarantines exactly the
/// sessions whose renders blew up, never lets a lock poison escape, and —
/// once the plan is cleared — serves frames bit-identical to the direct
/// engine again.
#[test]
fn panic_soak_keeps_serving_quarantines_and_recovers_bit_exact() {
    let _serial = fault_lock();
    quiet_injected_panics();
    fault::clear();

    let handle = serve(
        "127.0.0.1:0",
        ServiceOptions {
            workers: 4,
            cache_bytes: 0, // force every fetch through the render site
            ..ServiceOptions::default()
        },
    )
    .expect("bind loopback");
    let addr = handle.addr();

    fault::install(FaultPlan::parse("panic:render:0.1").expect("plan parses"));

    let deadline = Instant::now() + soak_duration();
    let served = Arc::new(AtomicU64::new(0));
    let quarantine_hits = Arc::new(AtomicU64::new(0));
    let drivers: Vec<_> = (0..4u64)
        .map(|lane| {
            let served = Arc::clone(&served);
            let quarantine_hits = Arc::clone(&quarantine_hits);
            std::thread::spawn(move || {
                let mut client = ServiceClient::connect(addr).expect("connect");
                let mut seed = lane * 1000 + 1;
                while Instant::now() < deadline {
                    seed += 1;
                    let session = match client.create_session(&session_body(seed, 1.0, 32)) {
                        Ok(s) => s,
                        Err(ClientError::Io(_)) | Err(ClientError::TimedOut) => {
                            client.reconnect().expect("reconnect");
                            continue;
                        }
                        Err(e) => panic!("create_session failed: {e}"),
                    };
                    for frame in 0..4u64 {
                        match client.fetch_frame(&session, frame) {
                            Ok(fetched) => {
                                assert_eq!(fetched.frame, frame);
                                served.fetch_add(1, Ordering::Relaxed);
                            }
                            // A 500 is the contained panic answering; the
                            // session is quarantined, move to a fresh one.
                            Err(ClientError::Http(500, _)) => {
                                quarantine_hits.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            Err(ClientError::Busy { .. }) => break,
                            Err(ClientError::Io(_)) | Err(ClientError::TimedOut) => {
                                client.reconnect().expect("reconnect");
                                break;
                            }
                            Err(e) => panic!("fetch failed: {e}"),
                        }
                    }
                    let _ = client.close_session(&session);
                }
            })
        })
        .collect();
    for d in drivers {
        d.join().expect("soak driver panicked");
    }

    // The server is still standing and its books balance.
    let mut observer = ServiceClient::connect(addr).expect("server still accepts");
    let stats = observer.stats().expect("stats after soak");
    let injected = stat(&stats, &["faults", "injected_panics"]);
    let caught = stat(&stats, &["faults", "panics_caught"]);
    let quarantined = stat(&stats, &["sessions", "quarantined"]);
    let accepted = stat(&stats, &["queue", "accepted"]);
    let completed = stat(&stats, &["queue", "completed"]);
    assert!(
        served.load(Ordering::Relaxed) > 0,
        "nothing served during the soak"
    );
    assert!(injected >= 1.0, "fault plan never fired");
    assert!(
        quarantined >= 1.0,
        "injected render panics quarantined no session"
    );
    assert!(
        quarantined <= caught,
        "quarantines ({quarantined}) exceed caught panics ({caught})"
    );
    assert!(
        caught <= injected,
        "service caught more panics ({caught}) than were injected ({injected})"
    );
    assert!(
        quarantine_hits.load(Ordering::Relaxed) as f64 <= injected,
        "clients saw more contained-panic 500s than injected panics"
    );
    assert!(
        completed <= accepted,
        "completed ({completed}) outran accepted ({accepted})"
    );

    // Recovery: with the plan cleared, a fresh session reproduces the
    // direct engine bit for bit — the chaos left no residue in the
    // pipeline, the pools or the caches.
    fault::clear();
    let session = observer
        .create_session(&session_body(777, -1.5, 32))
        .expect("post-recovery session");
    for frame in 0..2u64 {
        let fetched = observer
            .fetch_frame(&session, frame)
            .expect("recovered fetch");
        assert_eq!(
            fetched.bytes,
            direct_frame_bytes(777, -1.5, 32, frame),
            "post-recovery frame {frame} diverged from direct synthesis"
        );
    }
    handle.shutdown();
}

/// Satellite (a): `fetch_frame_with_retry` rides out Busy shedding. A
/// one-worker, watermark-2 server sheds most of a 8-client stampede, yet
/// every client lands its frame because the retry loop honors the backoff
/// and `Retry-After` hints.
#[test]
fn busy_shedding_is_absorbed_by_client_retry() {
    let _serial = fault_lock();

    let handle = serve(
        "127.0.0.1:0",
        ServiceOptions {
            workers: 1,
            cache_bytes: 0,
            admission: AdmissionConfig {
                watermark: 2,
                per_session: 2,
            },
            ..ServiceOptions::default()
        },
    )
    .expect("bind loopback");
    let addr = handle.addr();
    // After serve: boot re-installs any SPOTNOISE_FAULT env plan, and this
    // test wants a fault-free server (the chaos CI leg exports a plan).
    fault::clear();

    let policy = RetryPolicy {
        attempts: 60,
        base: Duration::from_millis(5),
        cap: Duration::from_millis(100),
    };
    let clients: Vec<_> = (0..8u64)
        .map(|i| {
            std::thread::spawn(move || {
                let mut client = ServiceClient::connect(addr).expect("connect");
                let session = client
                    .create_session(&session_body(i + 1, 1.0, 32))
                    .expect("create session");
                let fetched = client
                    .fetch_frame_with_retry(&session, 0, policy)
                    .expect("retry loop must eventually land the frame");
                assert_eq!(fetched.frame, 0);
            })
        })
        .collect();
    for c in clients {
        c.join().expect("retrying client panicked");
    }

    // The success above was earned through retries, not an idle queue.
    let mut observer = ServiceClient::connect(addr).expect("connect stats");
    let stats = observer.stats().expect("stats");
    assert!(
        stat(&stats, &["queue", "shed_busy"]) + stat(&stats, &["queue", "shed_session"]) >= 1.0,
        "stampede was never shed — the retry path went unexercised"
    );
    handle.shutdown();
}

/// Satellite (b): a client that walks away mid-chunked-stream must not
/// leave the session pinned. The broken-pipe write is contained, counted
/// in `http.streams_aborted`, the in-flight guard drains, and idle
/// eviction still reaps the abandoned session.
#[test]
fn abandoned_stream_releases_the_session_for_eviction() {
    let _serial = fault_lock();

    let handle = serve(
        "127.0.0.1:0",
        ServiceOptions {
            idle_timeout: Duration::from_millis(300),
            channel_lookahead: 0,
            ..ServiceOptions::default()
        },
    )
    .expect("bind loopback");
    let addr = handle.addr();
    // Cleared after serve so a SPOTNOISE_FAULT env plan cannot leak in.
    fault::clear();

    // 128² f32 frames (64 KiB each): four of them overflow any socket
    // buffer, so the server's writes hit the dead peer for certain.
    let mut creator = ServiceClient::connect(addr).expect("connect");
    let session = creator
        .create_session(&session_body(5, 2.0, 128))
        .expect("create session");

    let mut raw = std::net::TcpStream::connect(addr).expect("raw connect");
    raw.write_all(
        format!("GET /sessions/{session}/stream?from=0&count=4 HTTP/1.1\r\nHost: x\r\n\r\n")
            .as_bytes(),
    )
    .expect("send stream request");
    let mut partial = [0u8; 256];
    let _ = raw.read(&mut partial).expect("read some of the stream");
    drop(raw); // unread data pending: the close turns into an RST

    // The abort is observed asynchronously — poll until the counter moves.
    let abort_deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = creator.stats().expect("stats while polling abort");
        if stat(&stats, &["http", "streams_aborted"]) >= 1.0 {
            break;
        }
        assert!(
            Instant::now() < abort_deadline,
            "stream abort was never detected"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // Past the idle timeout, the sweep on /stats must evict the session —
    // proof the stream's in-flight guard did not leak.
    std::thread::sleep(Duration::from_millis(400));
    let evict_deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = creator.stats().expect("stats while polling eviction");
        if stat(&stats, &["sessions", "evicted"]) >= 1.0 {
            break;
        }
        assert!(
            Instant::now() < evict_deadline,
            "abandoned session was never evicted: its in-flight guard leaked"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
    assert!(matches!(
        creator.fetch_frame(&session, 0),
        Err(ClientError::NotFound)
    ));
    handle.shutdown();
}

/// The `SPOTNOISE_FAULT` env grammar from the work item parses whole, and
/// a delay-only plan slows the queue without quarantining anything — the
/// degradation ladder's pressure signal, not the panic path.
#[test]
fn env_grammar_delay_fault_pressures_but_never_quarantines() {
    let _serial = fault_lock();

    // The full grammar from the issue text must parse.
    FaultPlan::parse("panic:raster:0.02,delay:queue:5ms").expect("issue example grammar parses");

    let handle = serve(
        "127.0.0.1:0",
        ServiceOptions {
            workers: 2,
            cache_bytes: 0,
            ..ServiceOptions::default()
        },
    )
    .expect("bind loopback");
    let addr = handle.addr();
    fault::install(FaultPlan::parse("delay:queue:2ms").expect("delay plan parses"));

    let mut client = ServiceClient::connect(addr).expect("connect");
    let session = client
        .create_session(&session_body(9, 1.0, 32))
        .expect("create session");
    for frame in 0..3u64 {
        client.fetch_frame(&session, frame).expect("delayed fetch");
    }
    let stats = client.stats().expect("stats");
    assert!(
        stat(&stats, &["faults", "injected_delays"]) >= 1.0,
        "queue delay fault never fired"
    );
    assert_eq!(
        stat(&stats, &["sessions", "quarantined"]),
        0.0,
        "a pure delay plan must not quarantine sessions"
    );
    fault::clear();
    handle.shutdown();
}
