//! Throughput and stage-timing instrumentation.
//!
//! The quantity the paper reports is *textures per second* for the texture
//! synthesis part of the pipeline (steps 2 and 3 only — "Only the time for
//! texture synthesis is given"). The helpers here measure wall-clock stage
//! times on the host, convert them into textures/second, and bundle them with
//! the simulated-machine prediction so the benchmark harness can print both
//! side by side.

use crate::perfmodel::PerfPrediction;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Wall-clock durations of the four pipeline stages of one frame.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageTimings {
    /// Step 1: reading / producing the data set (microseconds).
    pub read_us: u64,
    /// Step 2: particle advection (microseconds).
    pub advect_us: u64,
    /// Step 3: texture synthesis (microseconds).
    pub synthesize_us: u64,
    /// Step 4: rendering the final scene (microseconds).
    pub render_us: u64,
}

impl StageTimings {
    /// Total wall-clock time of the frame in seconds.
    pub fn total_seconds(&self) -> f64 {
        (self.read_us + self.advect_us + self.synthesize_us + self.render_us) as f64 / 1.0e6
    }

    /// The texture-synthesis time (steps 2 + 3) in seconds — the quantity the
    /// paper's tables are based on.
    pub fn synthesis_seconds(&self) -> f64 {
        (self.advect_us + self.synthesize_us) as f64 / 1.0e6
    }

    /// Textures per second implied by the synthesis time of this frame.
    pub fn textures_per_second(&self) -> f64 {
        let s = self.synthesis_seconds();
        if s > 0.0 {
            1.0 / s
        } else {
            0.0
        }
    }

    /// Adds another frame's stage times into this accumulator (saturating,
    /// so long-lived per-session totals can never wrap).
    pub fn accumulate(&mut self, other: &StageTimings) {
        self.read_us = self.read_us.saturating_add(other.read_us);
        self.advect_us = self.advect_us.saturating_add(other.advect_us);
        self.synthesize_us = self.synthesize_us.saturating_add(other.synthesize_us);
        self.render_us = self.render_us.saturating_add(other.render_us);
    }
}

/// Measures a closure and returns its result together with the elapsed
/// microseconds.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_micros() as u64)
}

/// Hard cap on the instants a [`ThroughputMeter`] retains. Without it, a
/// long window combined with fast ticks grows the Vec without bound (the
/// window-based retain only drops instants *older* than the window); with
/// it, memory is flat and the rate estimate degrades gracefully to "over
/// the retained span" instead of "over the window".
pub const THROUGHPUT_METER_MAX_RETAINED: usize = 4096;

/// A sliding frame-rate meter for interactive sessions.
#[derive(Debug, Clone)]
pub struct ThroughputMeter {
    window: Duration,
    frames: Vec<Instant>,
}

impl ThroughputMeter {
    /// Creates a meter averaging over the given window.
    pub fn new(window: Duration) -> Self {
        ThroughputMeter {
            window,
            frames: Vec::new(),
        }
    }

    /// Records the completion of one frame (texture).
    pub fn tick(&mut self) {
        let now = Instant::now();
        self.frames.push(now);
        let cutoff = now.checked_sub(self.window);
        if let Some(cutoff) = cutoff {
            self.frames.retain(|t| *t >= cutoff);
        }
        if self.frames.len() > THROUGHPUT_METER_MAX_RETAINED {
            let excess = self.frames.len() - THROUGHPUT_METER_MAX_RETAINED;
            self.frames.drain(..excess);
        }
    }

    /// Number of frames recorded within the current window.
    pub fn frames_in_window(&self) -> usize {
        self.frames.len()
    }

    /// Estimated textures per second over the window.
    pub fn textures_per_second(&self) -> f64 {
        if self.frames.len() < 2 {
            return 0.0;
        }
        let span = self
            .frames
            .last()
            .unwrap()
            .duration_since(*self.frames.first().unwrap())
            .as_secs_f64();
        if span <= 0.0 {
            0.0
        } else {
            (self.frames.len() - 1) as f64 / span
        }
    }
}

/// Hit/miss/eviction counters of a frame cache, as exposed by the synthesis
/// service's `/stats` endpoint. Lookup outcomes are counted per *requested*
/// frame: a `hit` served the frame without synthesis, a `miss` admitted a
/// synthesis job. `insertions`/`evictions` track the entry population;
/// look-ahead frames rendered on the way to a requested index are inserted
/// without a counted lookup (so `insertions` can exceed `misses`) and are
/// additionally counted in `inserted_lookahead` — the measure of how much
/// future-serving work each synthesis burst banks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Frame requests served straight from the cache.
    pub hits: u64,
    /// Frame requests that required synthesis.
    pub misses: u64,
    /// Entries stored.
    pub insertions: u64,
    /// The subset of `insertions` that were look-ahead frames: rendered on
    /// the way to a requested index rather than for the request itself.
    pub inserted_lookahead: u64,
    /// Entries expelled by the LRU policy to respect the capacity.
    pub evictions: u64,
}

impl CacheStats {
    /// Fraction of counted lookups that hit, in `[0, 1]` (0 when no lookup
    /// has happened yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Folds another counter snapshot into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.insertions += other.insertions;
        self.inserted_lookahead += other.inserted_lookahead;
        self.evictions += other.evictions;
    }
}

/// A frame's complete measurement record: wall-clock stage times plus (when
/// the divide-and-conquer executor ran) the simulated-machine prediction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FrameMetrics {
    /// Wall-clock stage timings on the host.
    pub timings: StageTimings,
    /// Simulated Onyx2 prediction for the same work, when available.
    pub predicted: Option<PerfPrediction>,
    /// Number of spots synthesised in the frame.
    pub spots: usize,
}

impl FrameMetrics {
    /// Wall-clock textures per second of this frame.
    pub fn measured_textures_per_second(&self) -> f64 {
        self.timings.textures_per_second()
    }

    /// Simulated textures per second, when a prediction is attached.
    pub fn simulated_textures_per_second(&self) -> Option<f64> {
        self.predicted.as_ref().map(|p| p.textures_per_second)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_timings_totals() {
        let t = StageTimings {
            read_us: 1_000,
            advect_us: 2_000,
            synthesize_us: 7_000,
            render_us: 500,
        };
        assert!((t.total_seconds() - 0.0105).abs() < 1e-9);
        assert!((t.synthesis_seconds() - 0.009).abs() < 1e-9);
        assert!((t.textures_per_second() - 1.0 / 0.009).abs() < 1e-6);
        let zero = StageTimings::default();
        assert_eq!(zero.textures_per_second(), 0.0);
    }

    #[test]
    fn timed_measures_and_returns_value() {
        let (v, us) = timed(|| {
            std::thread::sleep(Duration::from_millis(5));
            42
        });
        assert_eq!(v, 42);
        assert!(us >= 4_000, "elapsed {us}us");
    }

    #[test]
    fn throughput_meter_counts_recent_frames() {
        let mut m = ThroughputMeter::new(Duration::from_secs(10));
        assert_eq!(m.textures_per_second(), 0.0);
        for _ in 0..5 {
            m.tick();
        }
        assert_eq!(m.frames_in_window(), 5);
        // Five immediate ticks give a very high (but finite or zero) rate;
        // the meter must not panic or return NaN.
        assert!(m.textures_per_second().is_finite());
    }

    #[test]
    fn throughput_meter_caps_retained_instants() {
        // A huge window never expires anything; the hard cap must bound the
        // Vec regardless.
        let mut m = ThroughputMeter::new(Duration::from_secs(100_000));
        for _ in 0..(THROUGHPUT_METER_MAX_RETAINED + 5_000) {
            m.tick();
        }
        assert_eq!(m.frames_in_window(), THROUGHPUT_METER_MAX_RETAINED);
        assert!(m.textures_per_second().is_finite());
    }

    #[test]
    fn stage_timings_accumulate_and_saturate() {
        let mut total = StageTimings::default();
        let frame = StageTimings {
            read_us: 1,
            advect_us: 2,
            synthesize_us: 3,
            render_us: 4,
        };
        total.accumulate(&frame);
        total.accumulate(&frame);
        assert_eq!(
            total,
            StageTimings {
                read_us: 2,
                advect_us: 4,
                synthesize_us: 6,
                render_us: 8,
            }
        );
        let mut near_max = StageTimings {
            advect_us: u64::MAX - 1,
            ..StageTimings::default()
        };
        near_max.accumulate(&frame);
        assert_eq!(
            near_max.advect_us,
            u64::MAX,
            "saturates instead of wrapping"
        );
    }

    #[test]
    fn cache_stats_rate_and_merge() {
        let mut s = CacheStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        s.hits = 3;
        s.misses = 1;
        s.insertions = 1;
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        s.merge(&CacheStats {
            hits: 1,
            misses: 3,
            insertions: 3,
            inserted_lookahead: 2,
            evictions: 2,
        });
        assert_eq!(
            s,
            CacheStats {
                hits: 4,
                misses: 4,
                insertions: 4,
                inserted_lookahead: 2,
                evictions: 2,
            }
        );
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn frame_metrics_expose_both_rates() {
        let fm = FrameMetrics {
            timings: StageTimings {
                read_us: 0,
                advect_us: 0,
                synthesize_us: 100_000,
                render_us: 0,
            },
            predicted: None,
            spots: 100,
        };
        assert!((fm.measured_textures_per_second() - 10.0).abs() < 1e-9);
        assert!(fm.simulated_textures_per_second().is_none());
    }
}
