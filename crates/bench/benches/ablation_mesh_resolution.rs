//! Ablation: bent-spot mesh resolution vs synthesis speed.
//!
//! "Using a 32x17 mesh to represent each spot will result in very accurate
//! renderings. Lower resolution meshes will result in less accurate
//! renderings, but can increase performance substantially." (paper §5.1).
//! This bench sweeps the mesh resolution at a fixed machine shape.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use softpipe::machine::MachineConfig;
use spotnoise::config::SpotKind;
use spotnoise::dnc::synthesize_dnc;
use spotnoise_bench::atmospheric_scaled;

fn bench_mesh_resolution(c: &mut Criterion) {
    let base = atmospheric_scaled();
    let machine = MachineConfig::new(4, 2);
    let mut group = c.benchmark_group("ablation_mesh_resolution");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (rows, cols) in [(32usize, 17usize), (16, 9), (12, 7), (8, 5), (4, 3)] {
        let mut cfg = base.config;
        cfg.spot_kind = SpotKind::Bent { rows, cols };
        let id = BenchmarkId::from_parameter(format!("{rows}x{cols}"));
        group.bench_with_input(id, &cfg, |b, cfg| {
            b.iter(|| synthesize_dnc(base.field.as_ref(), &base.spots, cfg, &machine))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mesh_resolution);
criterion_main!(benches);
