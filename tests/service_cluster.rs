//! Integration tests of the cluster tier: a router sharding sessions over
//! real worker servers on loopback, peer frame-cache lookup between
//! workers, and the cluster-wide health/stats views.
//!
//! The headline property carries over from the single-node suite: a frame
//! fetched *through the router* is bit-identical to calling the advect +
//! `synthesize_dnc` path directly — the cluster tier moves bytes between
//! sockets without perturbing a single texel.

use flowfield::analytic::Vortex;
use flowfield::{Rect, Vec2};
use softpipe::machine::MachineConfig;
use spotnoise::advect::{PositionMode, SpotAnimator};
use spotnoise::config::SynthesisConfig;
use spotnoise::dnc::synthesize_dnc;
use spotnoise::json::Json;
use spotnoise_service::{
    serve, serve_router, ClusterSessionId, RouterHandle, RouterOptions, ServiceClient,
    ServiceHandle, ServiceOptions,
};
use std::net::{SocketAddr, TcpListener};
use std::time::Duration;

fn domain() -> Rect {
    Rect::new(Vec2::ZERO, Vec2::new(1.0, 1.0))
}

/// The test sessions' synthesis configuration, mirrored on both sides.
fn test_config(seed: u64) -> SynthesisConfig {
    SynthesisConfig {
        texture_size: 64,
        spot_count: 120,
        spot_texture_size: 16,
        seed,
        ..SynthesisConfig::small_test()
    }
}

// Masters-only machine (no slaves → no submission reordering) so the
// divide-and-conquer output is bit-identical run to run; same idiom as the
// loopback suite.
fn session_body(seed: u64, omega: f64, shared: bool) -> String {
    format!(
        concat!(
            "{{\"field\": {{\"kind\": \"vortex\", \"omega\": {}, \"cx\": 0.5, \"cy\": 0.5}}, ",
            "\"config\": {{\"texture_size\": 64, \"spot_count\": 120, ",
            "\"spot_texture_size\": 16, \"seed\": {}}}, ",
            "\"machine\": {{\"processors\": 2, \"pipes\": 2}}, \"dt\": 0.05{}}}"
        ),
        omega,
        seed,
        if shared { ", \"shared\": true" } else { "" }
    )
}

/// Computes frame `index` with direct engine calls: advect `index + 1`
/// steps from the seed, then one divide-and-conquer synthesis, serialized
/// as little-endian f32.
fn direct_frame_bytes(seed: u64, omega: f64, index: u64) -> Vec<u8> {
    let cfg = test_config(seed);
    let field = Vortex {
        omega,
        center: Vec2::new(0.5, 0.5),
        domain: domain(),
    };
    let mut animator =
        SpotAnimator::new(domain(), cfg.spot_count, PositionMode::Advected, cfg.seed);
    for _ in 0..=index {
        animator.advance(&field, 0.05);
    }
    let spots = animator.spots();
    let out = synthesize_dnc(&field, &spots, &cfg, &MachineConfig::new(2, 2));
    let mut bytes = Vec::with_capacity(out.texture.data().len() * 4);
    for v in out.texture.data() {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    bytes
}

/// Starts `n` loopback workers (no peer links) and a router over them with
/// a short health TTL so degradation tests converge quickly.
fn start_cluster(n: usize) -> (Vec<ServiceHandle>, RouterHandle) {
    let workers: Vec<ServiceHandle> = (0..n)
        .map(|i| {
            serve(
                "127.0.0.1:0",
                ServiceOptions {
                    node_id: Some(format!("w{i}")),
                    ..ServiceOptions::default()
                },
            )
            .expect("bind worker")
        })
        .collect();
    let router = serve_router(
        "127.0.0.1:0",
        RouterOptions {
            workers: workers.iter().map(|w| w.addr()).collect(),
            node_id: Some("test-router".to_string()),
            health_ttl: Duration::from_millis(50),
            health_timeout: Duration::from_millis(250),
            ..RouterOptions::default()
        },
    )
    .expect("bind router");
    (workers, router)
}

#[test]
fn frames_through_the_router_match_direct_synthesis_bit_for_bit() {
    let (workers, router) = start_cluster(2);
    let mut client = ServiceClient::connect(router.addr()).expect("connect router");
    let (seed, omega) = (11u64, 1.0f64);
    let session = client
        .create_session(&session_body(seed, omega, false))
        .expect("create through router");
    let id = ClusterSessionId::parse(&session).expect("router must return a cluster id");
    assert!(id.node < workers.len(), "cluster id names a real node");
    for frame in 0..3u64 {
        let fetched = client.fetch_frame(&session, frame).expect("routed fetch");
        assert_eq!(fetched.frame, frame);
        assert_eq!(
            fetched.bytes,
            direct_frame_bytes(seed, omega, frame),
            "frame {frame}: texture through the router diverged from direct synthesize_dnc"
        );
        assert_eq!(
            fetched.node.as_deref(),
            Some(format!("w{}", id.node).as_str()),
            "the owning worker's X-Node-Id must survive the proxy"
        );
    }
    // Re-fetching is a cache hit on the owning node, still byte-identical.
    let again = client.fetch_frame(&session, 1).expect("routed refetch");
    assert!(again.cache_hit);
    assert_eq!(again.bytes, direct_frame_bytes(seed, omega, 1));
    client
        .close_session(&session)
        .expect("close through router");
    assert!(
        client.fetch_frame(&session, 0).is_err(),
        "closed session must be gone"
    );
    router.shutdown();
    for w in workers {
        w.shutdown();
    }
}

#[test]
fn same_spec_shared_sessions_colocate_on_one_node() {
    let (workers, router) = start_cluster(3);
    let mut client = ServiceClient::connect(router.addr()).expect("connect router");
    let mut nodes = std::collections::BTreeSet::new();
    let mut sessions = Vec::new();
    for _ in 0..6 {
        let session = client
            .create_session(&session_body(77, 1.0, true))
            .expect("create shared session");
        let id = ClusterSessionId::parse(&session).expect("cluster id");
        nodes.insert(id.node);
        sessions.push(session);
    }
    assert_eq!(
        nodes.len(),
        1,
        "same-spec shared sessions spread over nodes {nodes:?}; subscribers must \
         co-locate on the channel-owning node to share one synthesis"
    );
    // All subscribers see the one broadcast frame, byte-identical.
    let expected = direct_frame_bytes(77, 1.0, 0);
    for session in &sessions {
        let fetched = client.fetch_frame(session, 0).expect("subscriber fetch");
        assert_eq!(fetched.bytes, expected);
    }
    // Private sessions with distinct salts do spread (statistically: 12
    // creates over 3 nodes all landing on one node is ~3e-6).
    let mut private_nodes = std::collections::BTreeSet::new();
    for _ in 0..12 {
        let session = client
            .create_session(&session_body(77, 1.0, false))
            .expect("create private session");
        private_nodes.insert(ClusterSessionId::parse(&session).expect("cluster id").node);
    }
    assert!(
        private_nodes.len() > 1,
        "12 private sessions all landed on one of 3 nodes"
    );
    router.shutdown();
    for w in workers {
        w.shutdown();
    }
}

#[test]
fn a_node_serves_its_siblings_cached_frames_instead_of_rendering() {
    // Two workers, each listing the other as a peer. The ports must be
    // known before either starts (the peer list is plain addresses), so
    // reserve ephemeral ports first.
    let reserve = || -> u16 {
        TcpListener::bind("127.0.0.1:0")
            .expect("reserve port")
            .local_addr()
            .expect("local addr")
            .port()
    };
    let (pa, pb) = (reserve(), reserve());
    let addr = |p: u16| -> SocketAddr { format!("127.0.0.1:{p}").parse().expect("addr") };
    let worker_a = serve(
        ("127.0.0.1", pa),
        ServiceOptions {
            node_id: Some("a".to_string()),
            peers: vec![addr(pb)],
            ..ServiceOptions::default()
        },
    )
    .expect("bind worker a");
    let worker_b = serve(
        ("127.0.0.1", pb),
        ServiceOptions {
            node_id: Some("b".to_string()),
            peers: vec![addr(pa)],
            ..ServiceOptions::default()
        },
    )
    .expect("bind worker b");

    let (seed, omega) = (42u64, 1.0f64);
    // Render frame 0 on node A.
    let mut client_a = ServiceClient::connect(worker_a.addr()).expect("connect a");
    let session_a = client_a
        .create_session(&session_body(seed, omega, false))
        .expect("create on a");
    let rendered = client_a.fetch_frame(&session_a, 0).expect("render on a");
    assert!(!rendered.cache_hit, "first fetch must synthesize");

    // The same spec on node B: the frame key is content-addressed, so B's
    // local miss must be answered by A's cache, not a second render.
    let mut client_b = ServiceClient::connect(worker_b.addr()).expect("connect b");
    let session_b = client_b
        .create_session(&session_body(seed, omega, false))
        .expect("create on b");
    let fetched = client_b.fetch_frame(&session_b, 0).expect("fetch on b");
    assert!(
        fetched.peer,
        "node b should have served the frame from its sibling's cache"
    );
    assert!(fetched.cache_hit, "a peer serve counts as a cache hit");
    assert_eq!(
        fetched.bytes, rendered.bytes,
        "peer-served bytes must equal the original render"
    );
    assert_eq!(fetched.bytes, direct_frame_bytes(seed, omega, 0));

    // Both sides counted the exchange.
    let stats_b = client_b.stats().expect("stats b");
    let counter = |doc: &Json, name: &str| -> f64 {
        doc.get("cluster")
            .and_then(|c| c.get(name))
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
    };
    assert!(
        counter(&stats_b, "peer_hits") >= 1.0,
        "node b must count its peer cache hit"
    );
    let stats_a = client_a.stats().expect("stats a");
    assert!(
        counter(&stats_a, "peer_serves") >= 1.0,
        "node a must count the probe it answered"
    );
    // A frame B already holds locally is NOT re-probed from peers.
    let local = client_b.fetch_frame(&session_b, 0).expect("refetch on b");
    assert!(local.cache_hit && !local.peer, "refetch is a local hit");
    worker_a.shutdown();
    worker_b.shutdown();
}

#[test]
fn the_router_degrades_and_routes_around_a_dead_worker() {
    let (mut workers, router) = start_cluster(2);
    let mut client = ServiceClient::connect(router.addr()).expect("connect router");
    let healthz = |client: &mut ServiceClient| -> (u16, String) {
        let reply = client.request("GET", "/healthz", b"").expect("healthz");
        let status = Json::parse(&String::from_utf8_lossy(&reply.body))
            .ok()
            .and_then(|doc| doc.get("status").and_then(Json::as_str).map(String::from))
            .unwrap_or_default();
        (reply.status, status)
    };
    assert_eq!(healthz(&mut client), (200, "ok".to_string()));

    // Kill worker 0; after the health cache TTL the router must report a
    // degraded (but serving, hence 200) cluster.
    workers.remove(0).shutdown();
    std::thread::sleep(Duration::from_millis(120));
    let (code, status) = healthz(&mut client);
    assert_eq!(
        (code, status.as_str()),
        (200, "degraded"),
        "one dead worker of two must degrade, not kill, the cluster"
    );

    // Creates keep landing on the survivor — enough of them that some must
    // have preferred the dead node and been rerouted.
    for i in 0..16 {
        let session = client
            .create_session(&session_body(1000 + i, 1.0, false))
            .expect("create with one worker down");
        let id = ClusterSessionId::parse(&session).expect("cluster id");
        assert_eq!(id.node, 1, "placements must avoid the dead node");
        let fetched = client
            .fetch_frame(&session, 0)
            .expect("fetch from survivor");
        assert_eq!(fetched.bytes, direct_frame_bytes(1000 + i, 1.0, 0));
    }
    let stats = client.stats().expect("router stats");
    let rerouted = stats
        .get("router")
        .and_then(|r| r.get("rerouted"))
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    assert!(
        rerouted >= 1.0,
        "16 placements with half the ring dead must reroute at least once \
         (got {rerouted})"
    );

    // Kill the survivor too: the cluster is unavailable and creates shed.
    workers.remove(0).shutdown();
    std::thread::sleep(Duration::from_millis(120));
    let (code, status) = healthz(&mut client);
    assert_eq!(
        (code, status.as_str()),
        (503, "unavailable"),
        "an all-dead cluster must fail health checks"
    );
    assert!(
        client.create_session(&session_body(9, 1.0, false)).is_err(),
        "creates must shed when every node is down"
    );
    router.shutdown();
}

#[test]
fn cluster_stats_aggregate_and_streams_relay_bit_identically() {
    let (workers, router) = start_cluster(2);
    let mut client = ServiceClient::connect(router.addr()).expect("connect router");
    let (seed, omega) = (5u64, -2.0f64);
    let session = client
        .create_session(&session_body(seed, omega, false))
        .expect("create through router");

    // A relayed stream is byte-identical to direct synthesis and keeps the
    // worker's identity headers.
    let node = ClusterSessionId::parse(&session).expect("cluster id").node;
    {
        let mut stream = client.stream_frames(&session, 0, 3).expect("routed stream");
        assert_eq!(stream.header("x-stream-from"), Some("0"));
        assert_eq!(stream.header("x-stream-count"), Some("3"));
        assert_eq!(
            stream.header("x-node-id"),
            Some(format!("w{node}").as_str())
        );
        let mut frames = Vec::new();
        while let Some(frame) = stream.next_frame().expect("stream frame") {
            frames.push(frame);
        }
        assert_eq!(frames.len(), 3);
        for (i, frame) in frames.iter().enumerate() {
            assert_eq!(frame.frame, i as u64);
            assert_eq!(
                frame.bytes,
                direct_frame_bytes(seed, omega, i as u64),
                "streamed frame {i} through the router diverged"
            );
        }
    }
    // The connection survives the relay (terminal chunk left it in sync).
    client.fetch_frame(&session, 0).expect("reuse after stream");

    // The aggregated stats view: cluster schema, per-node detail, and the
    // summed render counter covering the streamed frames.
    let stats = client.stats().expect("router stats");
    assert_eq!(
        stats.get("schema").and_then(Json::as_str),
        Some("spotnoise_cluster_stats/v1")
    );
    let per_node = stats
        .get("per_node")
        .and_then(Json::as_array)
        .expect("per_node array");
    assert_eq!(per_node.len(), 2);
    for entry in per_node {
        assert_eq!(entry.get("up").and_then(Json::as_bool), Some(true));
    }
    let rendered = stats
        .get("cluster")
        .and_then(|c| c.get("frames"))
        .and_then(|f| f.get("rendered"))
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    assert!(
        rendered >= 3.0,
        "cluster view must sum worker render counters (got {rendered})"
    );
    // The router's own metrics expose per-node relabeled series.
    let metrics = client.metrics().expect("router metrics");
    assert!(metrics.contains("spotnoise_router_requests_total"));
    assert!(metrics.contains("node=\""));
    router.shutdown();
    for w in workers {
        w.shutdown();
    }
}
