//! The interactive spot-noise pipeline (paper figure 3 / figure 5).
//!
//! One frame of the interactive visualization consists of four steps:
//!
//! 1. *read data* — the application produces (or loads) the current vector
//!    field; for steering and browsing this happens 5–15 times a second,
//! 2. *advect particles* — spot positions follow particle paths,
//! 3. *generate texture* — the spots are synthesised into a texture, either
//!    sequentially or with the divide-and-conquer executor,
//! 4. *render scene* — the texture is post-processed and handed to the
//!    presentation layer (colormapping, overlays) for display.
//!
//! [`Pipeline`] owns the state that persists between frames (the spot
//! animator and the synthesis configuration) and measures per-stage timings,
//! so applications only have to supply a field per frame.

use crate::advect::{PositionMode, SpotAnimator};
use crate::config::SynthesisConfig;
use crate::dnc::{synthesize_dnc_with_telemetry, DncReport};
use crate::filter::standard_postprocess;
use crate::metrics::{timed, FrameMetrics, StageTimings};
use crate::scheduler::SchedulerOptions;
use crate::synth::{synthesize_sequential, SynthesisContext};
use crate::telemetry::{TraceSink, TraceStage};
use flowfield::particles::ParticleOptions;
use flowfield::{Rect, VectorField};
use softpipe::machine::MachineConfig;
use softpipe::{FrameArena, PipePool, Texture};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How the texture-synthesis step is executed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExecutionMode {
    /// One processor, one (synchronous) pipe — the baseline of eq. 2.1.
    Sequential,
    /// The divide-and-conquer executor on a virtual machine configuration.
    DivideAndConquer(MachineConfig),
}

/// Result of one pipeline frame.
#[derive(Debug, Clone)]
pub struct FrameOutput {
    /// The raw (signed) spot-noise texture.
    pub texture: Texture,
    /// The display-ready texture after spot filtering and contrast stretch
    /// (a 1×1 placeholder when display production is disabled via
    /// [`Pipeline::set_display_enabled`]).
    pub display: Texture,
    /// Measurements of the frame.
    pub metrics: FrameMetrics,
    /// The divide-and-conquer report, when that executor ran.
    pub dnc: Option<DncReport>,
}

/// The persistent state of the interactive pipeline.
#[derive(Debug)]
pub struct Pipeline {
    cfg: SynthesisConfig,
    mode: ExecutionMode,
    sched: SchedulerOptions,
    animator: SpotAnimator,
    postprocess: bool,
    display: bool,
    arena: Option<Arc<FrameArena>>,
    pool: Option<Arc<PipePool>>,
    /// The persistent synthesis context, refreshed (not rebuilt) per frame
    /// so the spot texture and pyramid survive across frames.
    ctx: Option<SynthesisContext>,
    frames: u64,
    /// Frame-lifecycle trace sink: per-stage spans (advect, synthesize,
    /// render) plus the per-group spans the scheduler records through it.
    /// Disabled by default — recording is one branch per stage.
    sink: TraceSink,
}

/// Whether pipelines (and the service) pool pipe workers by default. The
/// `SPOTNOISE_PIPE_POOL=off` environment switch flips the *default* to
/// spawn-per-frame — this is what the CI matrix uses to run the whole test
/// suite down the opt-out path; explicit [`Pipeline::set_pipe_pool`] calls
/// always win.
pub fn pipe_pool_default_enabled() -> bool {
    std::env::var("SPOTNOISE_PIPE_POOL").map_or(true, |v| v != "off")
}

impl Pipeline {
    fn from_parts(cfg: SynthesisConfig, mode: ExecutionMode, animator: SpotAnimator) -> Self {
        let arena = Some(Arc::new(FrameArena::new()));
        // The default pool shares the pipeline's arena so pooled workers
        // recycle their partial readbacks into the same buffers the gather
        // composes with.
        let pool = pipe_pool_default_enabled().then(|| Arc::new(PipePool::new(arena.clone())));
        Pipeline {
            cfg,
            mode,
            sched: SchedulerOptions::default(),
            animator,
            postprocess: true,
            display: true,
            arena,
            pool,
            ctx: None,
            frames: 0,
            sink: TraceSink::disabled(),
        }
    }

    /// Creates a pipeline for a field domain, with spots advected along
    /// particle paths.
    pub fn new(cfg: SynthesisConfig, mode: ExecutionMode, domain: Rect) -> Self {
        cfg.validate().expect("invalid synthesis configuration");
        let animator = SpotAnimator::new(domain, cfg.spot_count, PositionMode::Advected, cfg.seed);
        Pipeline::from_parts(cfg, mode, animator)
    }

    /// Creates a pipeline with full control over the spot life cycle and
    /// position mode (used to reproduce Figure 2's default-vs-advected
    /// comparison).
    pub fn with_animator(
        cfg: SynthesisConfig,
        mode: ExecutionMode,
        domain: Rect,
        particle_options: ParticleOptions,
        position_mode: PositionMode,
    ) -> Self {
        cfg.validate().expect("invalid synthesis configuration");
        let animator =
            SpotAnimator::with_options(domain, particle_options, position_mode, cfg.seed);
        Pipeline::from_parts(cfg, mode, animator)
    }

    /// Enables or disables the display post-processing (spot filtering and
    /// contrast stretch) of step 4.
    pub fn set_postprocess(&mut self, enabled: bool) {
        self.postprocess = enabled;
    }

    /// Enables or disables display-texture production entirely. Servers
    /// that ship the raw synthesis texture (the spotnoise service) disable
    /// it to skip one framebuffer-sized allocation + pass per frame;
    /// [`FrameOutput::display`] then holds a 1×1 placeholder.
    pub fn set_display_enabled(&mut self, enabled: bool) {
        self.display = enabled;
    }

    /// Replaces the pipeline's frame arena. Pipelines pool frame buffers by
    /// default; pass `None` to reproduce the classic allocate-per-frame
    /// behaviour (the `frame_arena_reuse` bench baseline), or share one
    /// arena across pipelines. Outputs are bit-identical either way.
    ///
    /// When the pipeline owns a pipe pool, the pool is rebuilt against the
    /// new arena (pooled workers bake their arena in at spawn); a pool
    /// installed explicitly via [`Pipeline::set_pipe_pool`] afterwards is
    /// left alone, so set the arena *before* sharing a pool.
    pub fn set_frame_arena(&mut self, arena: Option<Arc<FrameArena>>) {
        self.arena = arena;
        if self.pool.is_some() {
            self.pool = Some(Arc::new(PipePool::new(self.arena.clone())));
        }
    }

    /// Replaces the pipeline's pipe pool. Pipelines keep pipe workers alive
    /// across frames by default; pass `None` to reproduce the classic
    /// spawn-per-frame behaviour bit-identically (the `pipe_pool_reuse`
    /// bench baseline), or share one pool across pipelines — the service
    /// shares a single pool over all sessions. Build shared pools against
    /// the same arena the pipelines compose with.
    pub fn set_pipe_pool(&mut self, pool: Option<Arc<PipePool>>) {
        self.pool = pool;
    }

    /// The pipeline's pipe pool, when worker pooling is enabled.
    pub fn pipe_pool(&self) -> Option<&Arc<PipePool>> {
        self.pool.as_ref()
    }

    /// The persistent synthesis context, once a divide-and-conquer frame
    /// has been produced (`None` before the first frame and in sequential
    /// mode). Exposed so tests can assert the expensive parts are reused.
    pub fn synthesis_context(&self) -> Option<&SynthesisContext> {
        self.ctx.as_ref()
    }

    /// The pipeline's frame arena, when pooling is enabled. Callers that
    /// drop a [`FrameOutput`] after consuming it can recycle its texture
    /// here to close the zero-allocation loop.
    pub fn frame_arena(&self) -> Option<&Arc<FrameArena>> {
        self.arena.as_ref()
    }

    /// Installs a frame-lifecycle trace sink: [`Pipeline::advance`] records
    /// advect/synthesize/render spans through it, and the divide-and-conquer
    /// executor records per-group raster and gather spans. The default
    /// (disabled) sink records nothing at one branch per stage.
    pub fn set_trace_sink(&mut self, sink: TraceSink) {
        self.sink = sink;
    }

    /// The pipeline's trace sink.
    pub fn trace_sink(&self) -> &TraceSink {
        &self.sink
    }

    /// Selects how the divide-and-conquer executor schedules work over its
    /// process groups (static split vs dynamic spot queue, tile
    /// oversubscription). Ignored in sequential mode.
    pub fn set_scheduler_options(&mut self, options: SchedulerOptions) {
        self.sched = options;
    }

    /// The scheduling options used by the divide-and-conquer executor.
    pub fn scheduler_options(&self) -> SchedulerOptions {
        self.sched
    }

    /// The synthesis configuration.
    pub fn config(&self) -> &SynthesisConfig {
        &self.cfg
    }

    /// Switches the spot-sampling mode in place — the degradation hook the
    /// service's pressure ladder uses to flip an overloaded session from
    /// `Exact` to the cheaper `Footprint` sampling (and back on recovery)
    /// without touching the animator: advection is sampling-independent, so
    /// frame `n` after a flip is bit-identical to frame `n` of a session
    /// configured that way from the start. The persistent synthesis context
    /// adapts on the next frame's refresh (building or dropping the
    /// footprint pyramid).
    pub fn set_sampling(&mut self, sampling: softpipe::SamplingMode) {
        self.cfg.sampling = sampling;
    }

    /// The execution mode.
    pub fn mode(&self) -> ExecutionMode {
        self.mode
    }

    /// Mutable access to the spot animator (to tweak life-cycle parameters
    /// interactively, as the paper's Figure 2 does).
    pub fn animator_mut(&mut self) -> &mut SpotAnimator {
        &mut self.animator
    }

    /// Number of frames produced so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Produces one frame: advects the spots over `dt` through `field`,
    /// synthesises the texture and post-processes it for display.
    ///
    /// `read_us` is the wall-clock cost of producing `field` (pipeline step
    /// 1), which the caller measures because data production lives in the
    /// application; pass 0 when not relevant.
    pub fn advance(&mut self, field: &dyn VectorField, dt: f64, read_us: u64) -> FrameOutput {
        // Step 2: particle advection. Each stage opens with a fault
        // checkpoint (one relaxed load when chaos testing is off) so the
        // service's containment layer can be exercised at every boundary.
        softpipe::fault::fire("advect");
        let advect_start = Instant::now();
        let (_, advect_us) = timed(|| self.animator.advance(field, dt));
        self.sink.record(
            TraceStage::Advect,
            advect_start,
            Duration::from_micros(advect_us),
        );
        let spots = self.animator.spots();

        // Step 3: texture synthesis.
        softpipe::fault::fire("synthesize");
        let mode = self.mode;
        let cfg = self.cfg;
        let sched = self.sched;
        let arena = self.arena.as_ref();
        let pool = self.pool.as_ref();
        let sink = &self.sink;
        let ctx_slot = &mut self.ctx;
        let synthesize_start = Instant::now();
        let ((texture, dnc), synthesize_us) = timed(|| match mode {
            ExecutionMode::Sequential => {
                let out = synthesize_sequential(field, &spots, &cfg);
                (out.texture, None)
            }
            ExecutionMode::DivideAndConquer(machine) => {
                // Refresh the persistent context instead of rebuilding it:
                // the mapper and normaliser follow the (possibly advanced)
                // field, while the spot texture and pyramid survive frames
                // whose spot-shape parameters are unchanged.
                let ctx = match ctx_slot {
                    Some(ctx) => {
                        ctx.refresh(field, &cfg);
                        ctx
                    }
                    None => ctx_slot.insert(SynthesisContext::new(field, &cfg)),
                };
                let out = synthesize_dnc_with_telemetry(
                    field, &spots, &cfg, &machine, ctx, &sched, arena, pool, sink,
                );
                // Texture and report separate without cloning: the frame
                // keeps the texture once instead of once per struct.
                let (texture, report) = out.into_parts();
                (texture, Some(report))
            }
        });
        self.sink.record(
            TraceStage::Synthesize,
            synthesize_start,
            Duration::from_micros(synthesize_us),
        );

        // Step 4: display post-processing (skipped entirely when display
        // production is disabled — raw-texture servers never read it).
        softpipe::fault::fire("render");
        let postprocess = self.postprocess;
        let produce_display = self.display;
        let render_start = Instant::now();
        let (display, render_us) = timed(|| {
            if !produce_display {
                Texture::new(1, 1)
            } else if postprocess {
                standard_postprocess(&texture, cfg.spot_radius_pixels())
            } else {
                texture.normalized()
            }
        });
        self.sink.record(
            TraceStage::Render,
            render_start,
            Duration::from_micros(render_us),
        );

        self.frames += 1;
        let timings = StageTimings {
            read_us,
            advect_us,
            synthesize_us,
            render_us,
        };
        let predicted = dnc.as_ref().map(|d| d.predicted.clone());
        FrameOutput {
            texture,
            display,
            metrics: FrameMetrics {
                timings,
                predicted,
                spots: spots.len(),
            },
            dnc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowfield::analytic::Vortex;
    use flowfield::Vec2;

    fn domain() -> Rect {
        Rect::new(Vec2::ZERO, Vec2::new(1.0, 1.0))
    }

    fn field() -> Vortex {
        Vortex {
            omega: 1.0,
            center: Vec2::new(0.5, 0.5),
            domain: domain(),
        }
    }

    #[test]
    fn sequential_pipeline_produces_frames() {
        let cfg = SynthesisConfig::small_test();
        let mut p = Pipeline::new(cfg, ExecutionMode::Sequential, domain());
        let f = field();
        let frame = p.advance(&f, 0.05, 123);
        assert_eq!(frame.texture.width(), cfg.texture_size);
        assert!(frame.dnc.is_none());
        assert_eq!(frame.metrics.timings.read_us, 123);
        assert!(frame.metrics.timings.synthesize_us > 0);
        assert_eq!(frame.metrics.spots, cfg.spot_count);
        assert_eq!(p.frames(), 1);
        // Display texture is in [0, 1].
        let (lo, hi) = frame.display.range();
        assert!(lo >= 0.0 && hi <= 1.0);
    }

    #[test]
    fn dnc_pipeline_attaches_report_and_prediction() {
        let cfg = SynthesisConfig::small_test();
        let machine = MachineConfig::new(4, 2);
        let mut p = Pipeline::new(cfg, ExecutionMode::DivideAndConquer(machine), domain());
        let f = field();
        let frame = p.advance(&f, 0.05, 0);
        let dnc = frame.dnc.expect("dnc report expected");
        assert_eq!(dnc.groups.len(), 2);
        assert!(frame.metrics.predicted.is_some());
        assert!(frame.metrics.simulated_textures_per_second().unwrap() > 0.0);
    }

    #[test]
    fn successive_frames_differ_because_spots_advect() {
        let cfg = SynthesisConfig::small_test();
        let mut p = Pipeline::new(cfg, ExecutionMode::Sequential, domain());
        let f = field();
        let a = p.advance(&f, 0.1, 0);
        let b = p.advance(&f, 0.1, 0);
        assert!(a.texture.absolute_difference(&b.texture) > 0.0);
        assert_eq!(p.frames(), 2);
    }

    #[test]
    fn postprocess_can_be_disabled() {
        let cfg = SynthesisConfig::small_test();
        let mut p = Pipeline::new(cfg, ExecutionMode::Sequential, domain());
        p.set_postprocess(false);
        let frame = p.advance(&field(), 0.05, 0);
        // Without the high-pass filter the display is just the normalised
        // texture, which still lies in [0, 1].
        let (lo, hi) = frame.display.range();
        assert!(lo >= 0.0 && hi <= 1.0);
    }

    #[test]
    fn dynamic_scheduling_produces_equivalent_frames() {
        use crate::scheduler::SchedulerOptions;
        let cfg = SynthesisConfig::small_test();
        let machine = MachineConfig::new(4, 2);
        let mut static_p = Pipeline::new(cfg, ExecutionMode::DivideAndConquer(machine), domain());
        let mut dynamic_p = Pipeline::new(cfg, ExecutionMode::DivideAndConquer(machine), domain());
        dynamic_p.set_scheduler_options(SchedulerOptions::dynamic());
        assert_eq!(dynamic_p.scheduler_options(), SchedulerOptions::dynamic());
        let f = field();
        let a = static_p.advance(&f, 0.05, 0);
        let b = dynamic_p.advance(&f, 0.05, 0);
        let mean_diff = a.texture.absolute_difference(&b.texture)
            / (cfg.texture_size * cfg.texture_size) as f64;
        assert!(mean_diff < 1e-4, "mean texel difference {mean_diff}");
        let dnc = b.dnc.expect("dnc report");
        assert!(dnc.groups.iter().all(|g| g.queue_exhausted));
    }

    #[test]
    fn sampling_flip_mid_stream_matches_a_native_footprint_session() {
        // The pressure ladder degrades overloaded sessions by flipping them
        // to footprint sampling mid-stream. Advection is independent of the
        // sampling mode, so frame n after the flip must be bit-identical to
        // frame n of a session configured for footprint from the start —
        // which also makes degraded frames cacheable under the footprint
        // config key.
        use softpipe::SamplingMode;
        let cfg = SynthesisConfig::small_test();
        let mut footprint_cfg = cfg;
        footprint_cfg.sampling = SamplingMode::Footprint;
        let machine = MachineConfig::new(2, 2);
        let mut flipped = Pipeline::new(cfg, ExecutionMode::DivideAndConquer(machine), domain());
        let mut native = Pipeline::new(
            footprint_cfg,
            ExecutionMode::DivideAndConquer(machine),
            domain(),
        );
        let f = field();
        let _ = flipped.advance(&f, 0.05, 0);
        let _ = native.advance(&f, 0.05, 0);
        flipped.set_sampling(SamplingMode::Footprint);
        assert_eq!(flipped.config().sampling, SamplingMode::Footprint);
        let a = flipped.advance(&f, 0.05, 0);
        let b = native.advance(&f, 0.05, 0);
        assert_eq!(a.texture.absolute_difference(&b.texture), 0.0);
        // And flipping back restores exact sampling frames.
        flipped.set_sampling(SamplingMode::Exact);
        let mut exact = Pipeline::new(cfg, ExecutionMode::DivideAndConquer(machine), domain());
        let _ = exact.advance(&f, 0.05, 0);
        let _ = exact.advance(&f, 0.05, 0);
        let c = flipped.advance(&f, 0.05, 0);
        let d = exact.advance(&f, 0.05, 0);
        assert_eq!(c.texture.absolute_difference(&d.texture), 0.0);
    }

    #[test]
    fn with_animator_uses_requested_position_mode() {
        let cfg = SynthesisConfig::small_test();
        let opts = ParticleOptions {
            count: cfg.spot_count,
            mean_lifetime: 20,
            ..Default::default()
        };
        let p = Pipeline::with_animator(
            cfg,
            ExecutionMode::Sequential,
            domain(),
            opts,
            PositionMode::Random,
        );
        assert_eq!(p.config().spot_count, cfg.spot_count);
        assert_eq!(p.mode(), ExecutionMode::Sequential);
    }
}
