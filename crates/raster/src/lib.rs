//! # softpipe — a software graphics subsystem for spot-noise synthesis
//!
//! The paper runs on an SGI Onyx2 whose InfiniteReality pipes rasterize,
//! texture and blend the spots. This crate is the reproduction's substitute:
//! a software rasterizer exposed through an OpenGL-like command interface,
//! with worker-thread "pipes", state-change accounting, bus-bandwidth
//! tracking and a calibrated cost model so that both the *behaviour*
//! (textures produced) and the *performance shape* (Tables 1 and 2) of the
//! original system can be reproduced.
//!
//! Module map:
//!
//! * [`texture`] — grayscale intensity textures, spot-function textures and
//!   the footprint-sampling pyramid,
//! * [`arena`] — pooled per-frame buffers (zero-alloc steady state),
//! * [`blend`] — blend modes (additive blending is the spot-noise sum),
//! * [`raster`] — triangle/quad scan conversion with texture mapping,
//! * [`mesh`] — textured meshes for bent spots,
//! * [`framebuffer`] — RGB framebuffer and PPM export for the final scene,
//! * [`state`] — the OpenGL-like state machine with change counting,
//! * [`pipe`] — synchronous pipe core and threaded [`pipe::GraphicsPipe`],
//! * [`pool`] — persistent pipe workers checked out per frame,
//! * [`compose`] — gathering/blending partial textures (the sequential step),
//! * [`simd`] — explicit SSE2/AVX2/NEON kernels behind runtime dispatch,
//! * [`bus`] — host-to-graphics bus traffic accounting,
//! * [`cost`] — the Onyx2-calibrated cost model,
//! * [`machine`] — the workstation model (processors, pipes, assignment),
//! * [`fault`] — chaos-testing fault injection (`SPOTNOISE_FAULT`),
//! * [`sync`] — poison-recovering lock helpers used across the stack.

#![warn(missing_docs)]

pub mod arena;
pub mod blend;
pub mod bus;
pub mod compose;
pub mod cost;
pub mod fault;
pub mod framebuffer;
pub mod machine;
pub mod mesh;
pub mod pipe;
pub mod pool;
pub mod raster;
pub mod simd;
pub mod state;
pub mod sync;
pub mod texture;

pub use arena::{ArenaStats, FrameArena};
pub use blend::BlendMode;
pub use bus::{BusStats, BusTracker, Traffic};
pub use compose::{compose_tiles, gather_additive, ComposeResult, PixelTile, StreamingGather};
pub use cost::{CostModel, CpuWork, PipeWork};
pub use fault::{FaultKind, FaultPlan, FaultRule};
pub use framebuffer::{Framebuffer, Rgb};
pub use machine::MachineConfig;
pub use mesh::TexturedMesh;
pub use pipe::{GraphicsPipe, PipeCore, PipeOutput, RenderCommand};
pub use pool::{PipePool, PoolStats, PooledPipe};
pub use raster::{RasterStats, Vertex};
pub use simd::SimdLevel;
pub use state::{SamplingMode, StateChangeStats, StateMachine, Transform2};
pub use texture::{disc_spot_texture, gaussian_spot_texture, FootprintPyramid, Texture};

#[cfg(test)]
mod proptests {
    use crate::blend::BlendMode;
    use crate::compose::gather_additive;
    use crate::raster::{axis_aligned_spot_quad, rasterize_quad, RasterStats};
    use crate::texture::{disc_spot_texture, Texture};
    use flowfield::Vec2;
    use proptest::prelude::*;

    proptest! {
        /// Additive blending of a spot never changes texels outside the
        /// spot's bounding box.
        #[test]
        fn spot_rendering_is_local(cx in 8.0f64..56.0, cy in 8.0f64..56.0, r in 1.0f64..8.0) {
            let mut target = Texture::new(64, 64);
            let spot = disc_spot_texture(16, 0.5);
            let mut stats = RasterStats::default();
            let quad = axis_aligned_spot_quad(Vec2::new(cx, cy), r);
            rasterize_quad(&mut target, &spot, quad, 1.0, BlendMode::Additive, &mut stats);
            for y in 0..64usize {
                for x in 0..64usize {
                    let inside = (x as f64 + 0.5 - cx).abs() <= r + 1.0
                        && (y as f64 + 0.5 - cy).abs() <= r + 1.0;
                    if !inside {
                        prop_assert_eq!(target.texel(x, y), 0.0);
                    }
                }
            }
        }

        /// Gathering partial textures is independent of the partition: a set
        /// of spots rendered into one texture equals the same spots split
        /// into two textures and gathered.
        #[test]
        fn gather_equals_single_pass(split in 1usize..7, seed in 0u64..500) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let spots: Vec<(Vec2, f64, f32)> = (0..8)
                .map(|_| {
                    (
                        Vec2::new(rng.gen_range(4.0..60.0), rng.gen_range(4.0..60.0)),
                        rng.gen_range(2.0..6.0),
                        rng.gen_range(-1.0..1.0f32),
                    )
                })
                .collect();
            let spot_tex = disc_spot_texture(16, 0.5);
            let render = |subset: &[(Vec2, f64, f32)]| {
                let mut t = Texture::new(64, 64);
                let mut stats = RasterStats::default();
                for (c, r, a) in subset {
                    rasterize_quad(
                        &mut t,
                        &spot_tex,
                        axis_aligned_spot_quad(*c, *r),
                        *a,
                        BlendMode::Additive,
                        &mut stats,
                    );
                }
                t
            };
            let all = render(&spots);
            let first = render(&spots[..split]);
            let second = render(&spots[split..]);
            let gathered = gather_additive(&[first, second]);
            let diff = all.absolute_difference(&gathered.texture);
            prop_assert!(diff < 1e-3, "difference {diff}");
        }

        /// The blend modes' algebraic identities hold for arbitrary inputs.
        #[test]
        fn blend_identities(dst in -10.0f32..10.0, src in -10.0f32..10.0) {
            prop_assert_eq!(BlendMode::Replace.apply(dst, src), src);
            prop_assert_eq!(BlendMode::Additive.apply(dst, src), dst + src);
            prop_assert!(BlendMode::Max.apply(dst, src) >= dst);
            prop_assert!(BlendMode::Max.apply(dst, src) >= src);
        }
    }
}
