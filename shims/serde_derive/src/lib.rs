//! Derive macros for the offline `serde` shim.
//!
//! The derives parse just enough of the item to find its name and emit an
//! empty marker impl. Generic types are rejected with a clear error because
//! the workspace does not contain any; supporting them would require a real
//! parser (`syn`), which is unavailable offline.

use proc_macro::{TokenStream, TokenTree};

fn type_name(input: TokenStream) -> String {
    let mut iter = input.into_iter().peekable();
    while let Some(tt) = iter.next() {
        match tt {
            // Skip attributes: `#` followed by a bracketed group.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                let _ = iter.next();
            }
            TokenTree::Ident(id) => {
                let kw = id.to_string();
                if kw == "struct" || kw == "enum" || kw == "union" {
                    match iter.next() {
                        Some(TokenTree::Ident(name)) => {
                            if let Some(TokenTree::Punct(p)) = iter.peek() {
                                if p.as_char() == '<' {
                                    panic!(
                                        "serde shim derive does not support generic types \
                                         (found on `{name}`)"
                                    );
                                }
                            }
                            return name.to_string();
                        }
                        _ => panic!("serde shim derive: missing type name after `{kw}`"),
                    }
                }
                // `pub`, `crate`, etc.: keep scanning.
            }
            _ => {}
        }
    }
    panic!("serde shim derive: no struct/enum/union found in input");
}

/// Emits `impl serde::Serialize for T {}`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    format!("impl ::serde::Serialize for {} {{}}", type_name(input))
        .parse()
        .expect("serde shim derive: generated impl failed to parse")
}

/// Emits `impl<'de> serde::Deserialize<'de> for T {}`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {} {{}}",
        type_name(input)
    )
    .parse()
    .expect("serde shim derive: generated impl failed to parse")
}
