//! Gathering and blending partial textures.
//!
//! After each process group finishes its particle set, the per-pipe partial
//! textures are gathered and blended into the final spot-noise texture. This
//! is the *sequential* step of the divide-and-conquer algorithm — the `c`
//! term of equation 3.2 — and it is what prevents perfectly linear speedups
//! in the paper's tables. Two composition strategies are provided, matching
//! the two partitioning strategies of the implementation section:
//!
//! * [`gather_additive`] — partial textures cover the whole target and are
//!   summed texel by texel (pure spot-set partitioning), and
//! * [`compose_tiles`] — each partial texture only owns a pixel region of the
//!   target (texture tiling) and regions are copied into place.
//!
//! Although the `c` term stays *sequential in the performance model* (the
//! simulated Onyx2 charges it at full blend cost, exactly as eq. 3.2
//! prescribes), the host implementation parallelizes the texel work over row
//! chunks with rayon: every output row is owned by exactly one task, and the
//! per-texel accumulation order over the partials is unchanged, so the
//! result is bit-identical to the sequential loop.

use crate::texture::Texture;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Rows per parallel task when composing textures.
const COMPOSE_ROW_CHUNK: usize = 32;

/// Below this texel count the textures are composed on the calling thread;
/// spawning workers costs more than the memory traffic saves.
const PARALLEL_COMPOSE_MIN_TEXELS: usize = 64 * 1024;

/// A pixel-space tile: the half-open region `[x0, x1) x [y0, y1)` of the
/// final texture owned by one process group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PixelTile {
    /// Left edge (inclusive).
    pub x0: usize,
    /// Bottom edge (inclusive).
    pub y0: usize,
    /// Right edge (exclusive).
    pub x1: usize,
    /// Top edge (exclusive).
    pub y1: usize,
}

impl PixelTile {
    /// Number of texels in the tile.
    pub fn area(&self) -> usize {
        self.x1.saturating_sub(self.x0) * self.y1.saturating_sub(self.y0)
    }

    /// True when the pixel `(x, y)` lies inside the tile.
    pub fn contains(&self, x: usize, y: usize) -> bool {
        x >= self.x0 && x < self.x1 && y >= self.y0 && y < self.y1
    }

    /// Splits a `width` x `height` texture into an `nx` x `ny` grid of tiles
    /// covering every texel exactly once.
    pub fn grid(width: usize, height: usize, nx: usize, ny: usize) -> Vec<PixelTile> {
        assert!(nx > 0 && ny > 0, "tile grid must be non-empty");
        let mut out = Vec::with_capacity(nx * ny);
        for j in 0..ny {
            for i in 0..nx {
                out.push(PixelTile {
                    x0: width * i / nx,
                    y0: height * j / ny,
                    x1: width * (i + 1) / nx,
                    y1: height * (j + 1) / ny,
                });
            }
        }
        out
    }
}

/// Result of a composition: the final texture plus the number of texels that
/// had to be blended or copied (the work the cost model charges as the
/// sequential `c` term).
#[derive(Debug, Clone)]
pub struct ComposeResult {
    /// The composed final texture.
    pub texture: Texture,
    /// Texels processed during composition.
    pub blend_texels: u64,
}

/// Blends partial textures (all covering the full target) by texel-wise
/// addition. The additive blend is order independent, so the result does not
/// depend on the order of `partials` — the property the divide-and-conquer
/// correctness tests verify.
///
/// # Panics
/// Panics when `partials` is empty or the sizes disagree.
pub fn gather_additive(partials: &[Texture]) -> ComposeResult {
    assert!(!partials.is_empty(), "nothing to gather");
    let mut texture = partials[0].clone();
    let rest = &partials[1..];
    for partial in rest {
        assert_eq!(texture.width(), partial.width(), "texture widths differ");
        assert_eq!(texture.height(), partial.height(), "texture heights differ");
    }
    let width = texture.width();
    let texels = texture.data().len();
    let blend_texels = (rest.len() * texels) as u64;
    if rest.is_empty() {
        return ComposeResult {
            texture,
            blend_texels,
        };
    }
    if texels < PARALLEL_COMPOSE_MIN_TEXELS || rayon::current_num_threads() == 1 {
        for partial in rest {
            texture.accumulate(partial);
        }
        return ComposeResult {
            texture,
            blend_texels,
        };
    }
    let chunk_len = width * COMPOSE_ROW_CHUNK;
    texture
        .data_mut()
        .par_chunks_mut(chunk_len)
        .enumerate()
        .for_each(|(chunk_index, chunk)| {
            let start = chunk_index * chunk_len;
            for partial in rest {
                let src = &partial.data()[start..start + chunk.len()];
                for (dst, s) in chunk.iter_mut().zip(src) {
                    *dst += *s;
                }
            }
        });
    ComposeResult {
        texture,
        blend_texels,
    }
}

/// Composes per-tile partial textures by copying each tile's pixel region
/// into the final texture. Tiles must not overlap; texels not covered by any
/// tile remain zero.
///
/// # Panics
/// Panics when `partials` is empty, sizes disagree, or tile counts mismatch.
pub fn compose_tiles(partials: &[Texture], tiles: &[PixelTile]) -> ComposeResult {
    assert!(!partials.is_empty(), "nothing to compose");
    assert_eq!(partials.len(), tiles.len(), "one tile per partial texture");
    let width = partials[0].width();
    let height = partials[0].height();
    for partial in partials {
        assert_eq!(partial.width(), width, "texture widths differ");
        assert_eq!(partial.height(), height, "texture heights differ");
    }
    let mut texture = Texture::new(width, height);
    let blend_texels = tiles.iter().map(|t| t.area() as u64).sum();
    if width * height < PARALLEL_COMPOSE_MIN_TEXELS || rayon::current_num_threads() == 1 {
        for (partial, tile) in partials.iter().zip(tiles) {
            texture.blit_region(partial, tile.x0, tile.y0, tile.x1, tile.y1);
        }
        return ComposeResult {
            texture,
            blend_texels,
        };
    }
    let chunk_len = width * COMPOSE_ROW_CHUNK;
    texture
        .data_mut()
        .par_chunks_mut(chunk_len)
        .enumerate()
        .for_each(|(chunk_index, chunk)| {
            let y_start = chunk_index * COMPOSE_ROW_CHUNK;
            let rows = chunk.len() / width;
            for (partial, tile) in partials.iter().zip(tiles) {
                let x1 = tile.x1.min(width);
                if tile.x0 >= x1 {
                    continue;
                }
                let y_lo = tile.y0.max(y_start);
                let y_hi = tile.y1.min(height).min(y_start + rows);
                for y in y_lo..y_hi {
                    let local = (y - y_start) * width;
                    let row_start = y * width;
                    chunk[local + tile.x0..local + x1]
                        .copy_from_slice(&partial.data()[row_start + tile.x0..row_start + x1]);
                }
            }
        });
    ComposeResult {
        texture,
        blend_texels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn constant(w: usize, h: usize, v: f32) -> Texture {
        let mut t = Texture::new(w, h);
        t.fill(v);
        t
    }

    #[test]
    fn gather_sums_partials() {
        let partials = vec![
            constant(8, 8, 0.25),
            constant(8, 8, 0.5),
            constant(8, 8, 1.0),
        ];
        let r = gather_additive(&partials);
        assert!(r.texture.data().iter().all(|&v| (v - 1.75).abs() < 1e-6));
        assert_eq!(r.blend_texels, 2 * 64);
    }

    #[test]
    fn gather_is_order_independent() {
        let a = constant(4, 4, 0.3);
        let b = constant(4, 4, 1.1);
        let c = constant(4, 4, -0.4);
        let fwd = gather_additive(&[a.clone(), b.clone(), c.clone()]);
        let rev = gather_additive(&[c, b, a]);
        assert!(fwd.texture.absolute_difference(&rev.texture) < 1e-5);
    }

    #[test]
    #[should_panic(expected = "nothing to gather")]
    fn gather_rejects_empty_input() {
        let _ = gather_additive(&[]);
    }

    #[test]
    fn tile_grid_partitions_texture_exactly() {
        let tiles = PixelTile::grid(512, 512, 2, 2);
        assert_eq!(tiles.len(), 4);
        let total: usize = tiles.iter().map(|t| t.area()).sum();
        assert_eq!(total, 512 * 512);
        // Every pixel is inside exactly one tile.
        for &(x, y) in &[(0, 0), (255, 255), (256, 256), (511, 511), (100, 400)] {
            let owners = tiles.iter().filter(|t| t.contains(x, y)).count();
            assert_eq!(owners, 1, "pixel ({x},{y}) owned by {owners} tiles");
        }
    }

    #[test]
    fn tile_grid_handles_non_divisible_sizes() {
        let tiles = PixelTile::grid(10, 7, 3, 2);
        let total: usize = tiles.iter().map(|t| t.area()).sum();
        assert_eq!(total, 70);
    }

    #[test]
    fn compose_tiles_copies_each_region() {
        let tiles = PixelTile::grid(8, 8, 2, 1);
        let mut left = Texture::new(8, 8);
        for y in 0..8 {
            for x in 0..4 {
                *left.texel_mut(x, y) = 1.0;
            }
        }
        let mut right = Texture::new(8, 8);
        for y in 0..8 {
            for x in 4..8 {
                *right.texel_mut(x, y) = 2.0;
            }
        }
        let r = compose_tiles(&[left, right], &tiles);
        assert_eq!(r.texture.texel(0, 0), 1.0);
        assert_eq!(r.texture.texel(3, 7), 1.0);
        assert_eq!(r.texture.texel(4, 0), 2.0);
        assert_eq!(r.texture.texel(7, 7), 2.0);
        assert_eq!(r.blend_texels, 64);
    }

    #[test]
    fn compose_tiles_ignores_content_outside_owned_region() {
        let tiles = PixelTile::grid(8, 8, 2, 1);
        // The left-tile texture also has garbage in the right half, which
        // must not leak into the final texture (overlap-boundary spots render
        // into both tiles; each tile only contributes its owned region).
        let mut left = constant(8, 8, 1.0);
        let right = constant(8, 8, 2.0);
        *left.texel_mut(6, 6) = 99.0;
        let r = compose_tiles(&[left, right], &tiles);
        assert_eq!(r.texture.texel(6, 6), 2.0);
    }

    #[test]
    #[should_panic(expected = "one tile per partial texture")]
    fn compose_tiles_rejects_count_mismatch() {
        let tiles = PixelTile::grid(8, 8, 2, 2);
        let _ = compose_tiles(&[constant(8, 8, 1.0)], &tiles);
    }
}
