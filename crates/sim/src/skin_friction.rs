//! Skin-friction field on the block (the data behind Figure 2).
//!
//! The paper's Figure 2 shows spot noise applied to the *skin friction* field
//! on the front of the block, to answer "where does the flow pass over or
//! under the block?". The original field is the wall-shear vector on the 3-D
//! block surface; with a 2-D DNS substitute there is no spanwise direction,
//! so the reproduction builds the skin-friction pattern as follows
//! (documented substitution, see DESIGN.md):
//!
//! * the *attachment height* — the height on the front face where the
//!   oncoming flow stagnates and splits into an over-branch and an
//!   under-branch — is measured from the 2-D DNS solution, and
//! * the field on the (span `s`, height `t`) face patch is reconstructed as a
//!   diverging pattern away from that attachment line, with a small spanwise
//!   component so the texture is not degenerate.
//!
//! Spot noise on this field shows exactly the separation-line structure of
//! the paper's figure: texture streaks diverging from a horizontal line whose
//! height moves with the stagnation point.

use crate::dns::DnsSolver;
use flowfield::{Rect, RegularGrid, Vec2};
use serde::{Deserialize, Serialize};

/// The parameters of the reconstructed skin-friction pattern.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SkinFrictionPattern {
    /// Height (0..1, fraction of the face) of the attachment line at the
    /// left edge of the face patch.
    pub attachment_left: f64,
    /// Height of the attachment line at the right edge (a tilt models the
    /// slight asymmetry of the instantaneous flow).
    pub attachment_right: f64,
    /// Magnitude of the shear away from the attachment line.
    pub shear_strength: f64,
    /// Magnitude of the spanwise (cross-face) drift component.
    pub spanwise_drift: f64,
}

impl Default for SkinFrictionPattern {
    fn default() -> Self {
        SkinFrictionPattern {
            attachment_left: 0.5,
            attachment_right: 0.5,
            shear_strength: 1.0,
            spanwise_drift: 0.15,
        }
    }
}

/// Measures the attachment height on the front face of the block from the
/// DNS solution: the height at which the vertical velocity just upstream of
/// the face changes sign (flow going over above, under below). Returns a
/// fraction in `[0, 1]` of the face height.
pub fn attachment_height(dns: &DnsSolver) -> f64 {
    let block = dns.block().rect;
    let x_probe = block.min.x - 0.02 * dns.config().domain.width();
    let samples = 64;
    let mut crossing = 0.5;
    let mut prev_v = None;
    for k in 0..=samples {
        let t = k as f64 / samples as f64;
        let y = block.min.y + t * block.height();
        let v = dns.sample(Vec2::new(x_probe, y)).y;
        if let Some(pv) = prev_v {
            // Sign change from negative (down, under the block) to positive
            // (up, over the block) marks the attachment point.
            if pv <= 0.0 && v > 0.0 {
                crossing = t;
                break;
            }
        }
        prev_v = Some(v);
    }
    crossing.clamp(0.0, 1.0)
}

/// Builds the skin-friction pattern from the DNS solution: the attachment
/// line height comes from [`attachment_height`] and the shear strength from
/// the inflow speed.
pub fn pattern_from_dns(dns: &DnsSolver) -> SkinFrictionPattern {
    let h = attachment_height(dns);
    SkinFrictionPattern {
        attachment_left: h,
        // A mild tilt derived from the instantaneous wake asymmetry.
        attachment_right: (h + 0.1 * dns.wake_fluctuation().clamp(-1.0, 1.0)).clamp(0.0, 1.0),
        shear_strength: dns.config().inflow,
        spanwise_drift: 0.15 * dns.config().inflow,
    }
}

/// Samples the reconstructed skin-friction field on an `nx` x `ny` grid over
/// the unit face patch (`s` = spanwise position, `t` = height).
pub fn skin_friction_field(pattern: &SkinFrictionPattern, nx: usize, ny: usize) -> RegularGrid {
    let domain = Rect::new(Vec2::ZERO, Vec2::new(1.0, 1.0));
    let p = *pattern;
    RegularGrid::from_fn(nx, ny, domain, move |pos| {
        let attach = p.attachment_left + (p.attachment_right - p.attachment_left) * pos.x;
        // Shear diverges away from the attachment line (up above it, down
        // below it) and saturates smoothly.
        let d = pos.y - attach;
        let vertical = p.shear_strength * (d * 6.0).tanh();
        // A gentle spanwise drift that changes sign across the face midline
        // gives the texture visible spanwise structure.
        let spanwise = p.spanwise_drift * (std::f64::consts::PI * (pos.x - 0.5)).sin();
        Vec2::new(spanwise, vertical)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dns::{DnsConfig, DnsSolver};

    #[test]
    fn default_pattern_is_symmetric() {
        let p = SkinFrictionPattern::default();
        assert_eq!(p.attachment_left, 0.5);
        assert_eq!(p.attachment_right, 0.5);
    }

    #[test]
    fn attachment_height_is_near_mid_face_for_symmetric_flow() {
        let mut dns = DnsSolver::new(DnsConfig::small_test());
        for _ in 0..40 {
            dns.step(0.02);
        }
        let h = attachment_height(&dns);
        assert!((0.0..=1.0).contains(&h));
        // For a block centred in the channel the attachment point is roughly
        // mid-face.
        assert!((h - 0.5).abs() < 0.4, "attachment height {h}");
    }

    #[test]
    fn pattern_from_dns_uses_measured_height() {
        let mut dns = DnsSolver::new(DnsConfig::small_test());
        for _ in 0..30 {
            dns.step(0.02);
        }
        let p = pattern_from_dns(&dns);
        assert!(p.shear_strength > 0.0);
        assert!((0.0..=1.0).contains(&p.attachment_left));
        assert!((0.0..=1.0).contains(&p.attachment_right));
    }

    #[test]
    fn skin_friction_field_diverges_from_attachment_line() {
        let p = SkinFrictionPattern {
            attachment_left: 0.4,
            attachment_right: 0.4,
            shear_strength: 1.0,
            spanwise_drift: 0.1,
        };
        let g = skin_friction_field(&p, 32, 32);
        // Above the attachment line the flow goes up, below it goes down.
        let above = g.interpolate(Vec2::new(0.5, 0.8));
        let below = g.interpolate(Vec2::new(0.5, 0.1));
        assert!(above.y > 0.0);
        assert!(below.y < 0.0);
        // Exactly on the line the vertical component is (close to) zero.
        let on = g.interpolate(Vec2::new(0.5, 0.4));
        assert!(on.y.abs() < 0.15);
    }

    #[test]
    fn tilted_attachment_line_moves_with_span() {
        let p = SkinFrictionPattern {
            attachment_left: 0.3,
            attachment_right: 0.7,
            shear_strength: 1.0,
            spanwise_drift: 0.0,
        };
        let g = skin_friction_field(&p, 48, 48);
        // At the left edge, height 0.5 lies above the line -> upward flow;
        // at the right edge the same height lies below the line -> downward.
        assert!(g.interpolate(Vec2::new(0.05, 0.5)).y > 0.0);
        assert!(g.interpolate(Vec2::new(0.95, 0.5)).y < 0.0);
    }
}
