//! Table 1 — textures per second for the atmospheric-pollution workload,
//! swept over the paper's processor x pipe grid.
//!
//! The Criterion bench measures *host wall-clock* time of the
//! divide-and-conquer executor on a scaled version of the workload (the full
//! 512x512 / 2500x32x17 workload is run once per configuration by the
//! `reproduce` binary, which also evaluates the calibrated Onyx2 cost model
//! that is compared against the published table).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use softpipe::machine::MachineConfig;
use spotnoise::dnc::synthesize_dnc;
use spotnoise_bench::atmospheric_scaled;

fn bench_table1(c: &mut Criterion) {
    let workload = atmospheric_scaled();
    let mut group = c.benchmark_group("table1_atmospheric");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for machine in MachineConfig::paper_sweep() {
        let id = BenchmarkId::from_parameter(format!("{}p_{}g", machine.processors, machine.pipes));
        group.bench_with_input(id, &machine, |b, machine| {
            b.iter(|| {
                synthesize_dnc(
                    workload.field.as_ref(),
                    &workload.spots,
                    &workload.config,
                    machine,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
