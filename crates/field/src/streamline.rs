//! Stream-line tracing.
//!
//! Bent spots (enhanced spot noise, [4] in the paper) are built by advecting
//! a stream line through the flow and tiling a surface around it. The tracer
//! here integrates in both directions from a seed point, with arc-length
//! parameterisation so that the resulting polyline can be resampled into the
//! fixed-resolution meshes the paper uses (32x17 and 16x3 vertices).

use crate::grid::VectorField;
use crate::integrate::Integrator;
use crate::vec2::Vec2;
use serde::{Deserialize, Serialize};

/// Parameters controlling stream-line tracing.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct StreamlineOptions {
    /// Integration step size expressed as a fraction of the requested
    /// stream-line length.
    pub step_fraction: f64,
    /// Integration scheme.
    pub integrator: Integrator,
    /// Stop tracing when the local speed drops below this threshold
    /// (stagnation regions).
    pub min_speed: f64,
    /// Hard cap on the number of integration steps per direction.
    pub max_steps: usize,
}

impl Default for StreamlineOptions {
    fn default() -> Self {
        StreamlineOptions {
            step_fraction: 0.05,
            integrator: Integrator::RungeKutta4,
            min_speed: 1e-9,
            max_steps: 2048,
        }
    }
}

/// A traced stream line: an ordered polyline through the field, with the
/// index of the vertex corresponding to the original seed point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Streamline {
    /// Polyline vertices ordered upstream to downstream.
    pub points: Vec<Vec2>,
    /// Index into `points` of the seed position.
    pub seed_index: usize,
}

impl Streamline {
    /// Total arc length of the polyline.
    pub fn arc_length(&self) -> f64 {
        self.points.windows(2).map(|w| (w[1] - w[0]).norm()).sum()
    }

    /// Resamples the polyline to exactly `n` points, uniformly spaced in arc
    /// length. Degenerate (single-point) stream lines return `n` copies of
    /// that point.
    pub fn resample(&self, n: usize) -> Vec<Vec2> {
        assert!(n >= 2, "resampling needs at least two points");
        if self.points.len() < 2 {
            return vec![self.points.first().copied().unwrap_or(Vec2::ZERO); n];
        }
        let total = self.arc_length();
        if total <= 0.0 {
            return vec![self.points[0]; n];
        }
        // Cumulative arc length per vertex.
        let mut cum = Vec::with_capacity(self.points.len());
        cum.push(0.0);
        for w in self.points.windows(2) {
            let last = *cum.last().unwrap();
            cum.push(last + (w[1] - w[0]).norm());
        }
        let mut out = Vec::with_capacity(n);
        let mut seg = 0usize;
        for k in 0..n {
            let target = total * k as f64 / (n - 1) as f64;
            while seg + 1 < cum.len() - 1 && cum[seg + 1] < target {
                seg += 1;
            }
            let span = (cum[seg + 1] - cum[seg]).max(1e-300);
            let t = ((target - cum[seg]) / span).clamp(0.0, 1.0);
            out.push(self.points[seg].lerp(self.points[seg + 1], t));
        }
        out
    }

    /// Unit tangent vectors at each vertex of a polyline (central differences
    /// in the interior, one-sided at the ends).
    pub fn tangents(points: &[Vec2]) -> Vec<Vec2> {
        let n = points.len();
        let mut out = vec![Vec2::UNIT_X; n];
        if n < 2 {
            return out;
        }
        for i in 0..n {
            let d = if i == 0 {
                points[1] - points[0]
            } else if i == n - 1 {
                points[n - 1] - points[n - 2]
            } else {
                points[i + 1] - points[i - 1]
            };
            let t = d.normalized();
            out[i] = if t == Vec2::ZERO {
                out[i.saturating_sub(1)]
            } else {
                t
            };
        }
        out
    }
}

/// Traces a stream line of approximately `length` arc length centred on
/// `seed`: half the length is integrated upstream (against the flow), half
/// downstream. Tracing stops early at domain boundaries or stagnation.
pub fn trace_streamline(
    field: &dyn VectorField,
    seed: Vec2,
    length: f64,
    opts: &StreamlineOptions,
) -> Streamline {
    let domain = field.domain();
    let seed = domain.clamp(seed);
    let step = (length * opts.step_fraction).max(1e-12);
    let half_steps = ((length * 0.5) / step).ceil() as usize;
    let half_steps = half_steps.clamp(1, opts.max_steps);

    // Normalised-velocity tracing: equal arc length per step, which is what
    // the mesh resampling needs.
    let march = |start: Vec2, sign: f64| -> Vec<Vec2> {
        let mut pts = Vec::with_capacity(half_steps);
        let mut p = start;
        for _ in 0..half_steps {
            let v = field.velocity(p);
            let speed = v.norm();
            if speed < opts.min_speed {
                break;
            }
            // Step with a normalised field so every step covers `step` of arc
            // length; use the configured integrator on the normalised field.
            let unit_field = NormalizedField { inner: field };
            let next = opts.integrator.step(&unit_field, p, sign * step);
            let next = domain.clamp(next);
            if (next - p).norm() < step * 1e-6 {
                break; // stuck on the boundary
            }
            p = next;
            pts.push(p);
        }
        pts
    };

    let upstream = march(seed, -1.0);
    let downstream = march(seed, 1.0);

    let mut points = Vec::with_capacity(upstream.len() + 1 + downstream.len());
    points.extend(upstream.iter().rev().copied());
    let seed_index = points.len();
    points.push(seed);
    points.extend(downstream);
    Streamline { points, seed_index }
}

/// Wraps a field so that its velocity is normalised to unit magnitude;
/// integrating through it advances by arc length instead of time.
struct NormalizedField<'a> {
    inner: &'a dyn VectorField,
}

impl VectorField for NormalizedField<'_> {
    fn velocity(&self, p: Vec2) -> Vec2 {
        self.inner.velocity(p).normalized()
    }
    fn domain(&self) -> crate::vec2::Rect {
        self.inner.domain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::{Uniform, Vortex};
    use crate::vec2::Rect;

    #[test]
    fn uniform_flow_streamline_is_straight_and_centered() {
        let f = Uniform {
            velocity: Vec2::new(1.0, 0.0),
            domain: Rect::new(Vec2::new(-10.0, -10.0), Vec2::new(10.0, 10.0)),
        };
        let sl = trace_streamline(&f, Vec2::ZERO, 2.0, &StreamlineOptions::default());
        assert!(sl.points.len() > 10);
        // All points lie on the x axis.
        assert!(sl.points.iter().all(|p| p.y.abs() < 1e-9));
        // Arc length is close to the requested length.
        assert!((sl.arc_length() - 2.0).abs() < 0.2);
        // The seed index points at the origin.
        assert!(sl.points[sl.seed_index].norm() < 1e-9);
    }

    #[test]
    fn streamline_follows_vortex_circle() {
        let f = Vortex {
            omega: 1.0,
            center: Vec2::ZERO,
            domain: Rect::new(Vec2::new(-2.0, -2.0), Vec2::new(2.0, 2.0)),
        };
        let sl = trace_streamline(&f, Vec2::new(1.0, 0.0), 1.0, &StreamlineOptions::default());
        // Every traced point stays on the unit circle.
        for p in &sl.points {
            assert!((p.norm() - 1.0).abs() < 1e-3, "point {p:?} off the circle");
        }
    }

    #[test]
    fn streamline_stops_at_stagnation() {
        let f = Uniform {
            velocity: Vec2::ZERO,
            domain: Rect::UNIT,
        };
        let sl = trace_streamline(&f, Vec2::new(0.5, 0.5), 1.0, &StreamlineOptions::default());
        // Only the seed survives.
        assert_eq!(sl.points.len(), 1);
        assert_eq!(sl.seed_index, 0);
    }

    #[test]
    fn streamline_clamped_at_domain_boundary() {
        let f = Uniform {
            velocity: Vec2::new(1.0, 0.0),
            domain: Rect::UNIT,
        };
        let sl = trace_streamline(&f, Vec2::new(0.95, 0.5), 4.0, &StreamlineOptions::default());
        assert!(sl.points.iter().all(|p| p.x <= 1.0 + 1e-12));
    }

    #[test]
    fn resample_has_requested_count_and_endpoints() {
        let sl = Streamline {
            points: vec![Vec2::ZERO, Vec2::new(1.0, 0.0), Vec2::new(1.0, 1.0)],
            seed_index: 1,
        };
        let r = sl.resample(9);
        assert_eq!(r.len(), 9);
        assert_eq!(r[0], Vec2::ZERO);
        assert!((r[8] - Vec2::new(1.0, 1.0)).norm() < 1e-12);
        // Uniform arc-length spacing: each gap is total/8 = 0.25.
        for w in r.windows(2) {
            assert!(((w[1] - w[0]).norm() - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn resample_degenerate_streamline() {
        let sl = Streamline {
            points: vec![Vec2::new(0.3, 0.3)],
            seed_index: 0,
        };
        let r = sl.resample(5);
        assert_eq!(r.len(), 5);
        assert!(r.iter().all(|p| *p == Vec2::new(0.3, 0.3)));
    }

    #[test]
    fn tangents_point_along_polyline() {
        let pts = vec![Vec2::ZERO, Vec2::new(1.0, 0.0), Vec2::new(2.0, 0.0)];
        let t = Streamline::tangents(&pts);
        assert_eq!(t.len(), 3);
        for v in t {
            assert!((v - Vec2::UNIT_X).norm() < 1e-12);
        }
    }

    #[test]
    fn tangents_handle_single_point() {
        let t = Streamline::tangents(&[Vec2::ZERO]);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0], Vec2::UNIT_X);
    }
}
