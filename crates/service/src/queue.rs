//! Frame-request admission control.
//!
//! Synthesis requests that miss the cache pass through a [`FrameQueue`]
//! before any work is done. The queue gives the server three overload
//! properties the paper's interactive setting needs:
//!
//! * **bounded depth** — at most `watermark` jobs wait at any moment, so
//!   memory use is flat no matter how hard clients push;
//! * **shed, don't stall** — a submission beyond the watermark (or beyond a
//!   single session's fair share) is rejected immediately with
//!   [`AdmissionError::Busy`], which the front end turns into `503 Busy`;
//!   the client can retry, and latency of admitted work stays predictable;
//! * **per-session fairness** — workers drain sessions round-robin, so one
//!   chatty session cannot starve the others however many requests it has
//!   queued.

use softpipe::sync::{lock_recover, wait_timeout_recover};
use spotnoise::telemetry::Histogram;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Admission-control parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Maximum jobs waiting in the queue; submissions beyond it are shed.
    pub watermark: usize,
    /// Maximum jobs one session may have waiting; submissions beyond it are
    /// shed even when the queue has global room.
    pub per_session: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            watermark: 64,
            per_session: 16,
        }
    }
}

/// Why a submission was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionError {
    /// The queue is at its watermark — the server is saturated.
    Busy,
    /// This session already has its fair share of jobs waiting.
    SessionBusy,
    /// The queue has been closed for shutdown.
    Closed,
}

/// Counter snapshot for `/stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Jobs currently waiting.
    pub depth: usize,
    /// Highest depth ever observed.
    pub peak_depth: usize,
    /// Jobs admitted.
    pub accepted: u64,
    /// Submissions shed at the global watermark.
    pub shed_busy: u64,
    /// Submissions shed at the per-session cap.
    pub shed_session: u64,
    /// Jobs fully executed (reported by workers).
    pub completed: u64,
}

struct Inner<T> {
    /// Waiting jobs, one FIFO per session, each stamped with its admission
    /// instant so `pop` can record the queue wait.
    pending: HashMap<u64, VecDeque<(Instant, T)>>,
    /// Sessions with waiting jobs, in round-robin service order (each id
    /// appears at most once).
    rotation: VecDeque<u64>,
    depth: usize,
    peak_depth: usize,
    accepted: u64,
    shed_busy: u64,
    shed_session: u64,
    completed: u64,
    closed: bool,
    /// Optional queue-wait histogram: admission→pop latency in microseconds.
    wait: Option<Arc<Histogram>>,
}

/// Re-derives the queue's redundant state from the ground truth (the
/// per-session FIFOs) after a panic poisoned the lock: rotation order and
/// the cached depth are both recomputable, so a poisoned queue heals to a
/// consistent (if arbitrarily re-ordered) state instead of taking the
/// server down. Monotonic counters are left as they were — a panic
/// mid-update can at worst lose the single increment that was in flight.
fn revalidate_inner<T>(inner: &mut Inner<T>) {
    inner.pending.retain(|_, fifo| !fifo.is_empty());
    inner.rotation = inner.pending.keys().copied().collect();
    inner.depth = inner.pending.values().map(VecDeque::len).sum();
    inner.peak_depth = inner.peak_depth.max(inner.depth);
}

/// A bounded, session-fair frame-request queue.
pub struct FrameQueue<T> {
    config: AdmissionConfig,
    inner: Mutex<Inner<T>>,
    available: Condvar,
}

impl<T> FrameQueue<T> {
    /// Creates an empty queue with the given admission parameters.
    pub fn new(config: AdmissionConfig) -> Self {
        FrameQueue {
            config,
            inner: Mutex::new(Inner {
                pending: HashMap::new(),
                rotation: VecDeque::new(),
                depth: 0,
                peak_depth: 0,
                accepted: 0,
                shed_busy: 0,
                shed_session: 0,
                completed: 0,
                closed: false,
                wait: None,
            }),
            available: Condvar::new(),
        }
    }

    /// Locks the queue state, recovering from poison by re-deriving the
    /// redundant bookkeeping from the per-session FIFOs.
    fn locked(&self) -> MutexGuard<'_, Inner<T>> {
        lock_recover(&self.inner, revalidate_inner)
    }

    /// Installs a histogram recording each job's queue wait (admission to
    /// [`pop`](Self::pop)) in microseconds.
    pub fn set_wait_histogram(&self, histogram: Arc<Histogram>) {
        self.locked().wait = Some(histogram);
    }

    /// The admission parameters.
    pub fn config(&self) -> AdmissionConfig {
        self.config
    }

    /// Submits a job for `session`, shedding beyond the watermark or the
    /// session's fair share.
    pub fn submit(&self, session: u64, job: T) -> Result<(), AdmissionError> {
        let mut inner = self.locked();
        if inner.closed {
            return Err(AdmissionError::Closed);
        }
        if inner.depth >= self.config.watermark {
            inner.shed_busy += 1;
            return Err(AdmissionError::Busy);
        }
        // Check the cap before materializing the session's FIFO: a shed
        // submission must leave no empty deque behind (pop only cleans up
        // entries it drains, so leaked empties would accumulate forever
        // under a permanently-shedding configuration).
        let queued = inner.pending.get(&session).map_or(0, VecDeque::len);
        if queued >= self.config.per_session {
            inner.shed_session += 1;
            return Err(AdmissionError::SessionBusy);
        }
        let fifo = inner.pending.entry(session).or_default();
        let newly_pending = fifo.is_empty();
        fifo.push_back((Instant::now(), job));
        if newly_pending {
            inner.rotation.push_back(session);
        }
        inner.depth += 1;
        inner.peak_depth = inner.peak_depth.max(inner.depth);
        inner.accepted += 1;
        drop(inner);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until a job is available and returns it with its session id,
    /// or `None` once the queue is closed and drained (worker exit signal).
    pub fn pop(&self) -> Option<(u64, T)> {
        let mut inner = self.locked();
        loop {
            if let Some(session) = inner.rotation.pop_front() {
                let fifo = inner
                    .pending
                    .get_mut(&session)
                    .expect("rotation entry without fifo");
                let (queued_at, job) = fifo.pop_front().expect("empty fifo in rotation");
                if fifo.is_empty() {
                    inner.pending.remove(&session);
                } else {
                    // Round-robin: this session goes to the back of the
                    // service order while it still has work.
                    inner.rotation.push_back(session);
                }
                inner.depth -= 1;
                let wait = inner.wait.clone();
                drop(inner);
                // The queue fault site, deliberately outside the lock (an
                // injected panic must not poison it) and before the wait is
                // recorded (an injected delay shows up as queue pressure,
                // which is what the chaos suite steers the ladder with).
                softpipe::fault::fire("queue");
                if let Some(wait) = wait {
                    wait.record_duration(queued_at.elapsed());
                }
                return Some((session, job));
            }
            if inner.closed {
                return None;
            }
            // A bounded wait instead of an open-ended one: recovery from a
            // poisoned condvar re-checks the queue at worst one interval
            // later, and close() still short-circuits via notify_all.
            let (guard, _timed_out) = wait_timeout_recover(
                &self.available,
                inner,
                &self.inner,
                Duration::from_millis(100),
                revalidate_inner,
            );
            inner = guard;
        }
    }

    /// Records a fully executed job.
    pub fn complete(&self) {
        self.locked().completed += 1;
    }

    /// Closes the queue: further submissions fail with
    /// [`AdmissionError::Closed`]; workers drain what is left and then see
    /// `None` from [`pop`](Self::pop).
    pub fn close(&self) {
        self.locked().closed = true;
        self.available.notify_all();
    }

    /// Counter snapshot.
    pub fn stats(&self) -> QueueStats {
        let inner = self.locked();
        QueueStats {
            depth: inner.depth,
            peak_depth: inner.peak_depth,
            accepted: inner.accepted,
            shed_busy: inner.shed_busy,
            shed_session: inner.shed_session,
            completed: inner.completed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn queue(watermark: usize, per_session: usize) -> FrameQueue<u64> {
        FrameQueue::new(AdmissionConfig {
            watermark,
            per_session,
        })
    }

    #[test]
    fn sheds_beyond_watermark_without_growing() {
        let q = queue(3, 8);
        for i in 0..3 {
            q.submit(1, i).unwrap();
        }
        assert_eq!(q.submit(1, 99), Err(AdmissionError::Busy));
        assert_eq!(q.submit(2, 99), Err(AdmissionError::Busy));
        let s = q.stats();
        assert_eq!(s.depth, 3);
        assert_eq!(s.peak_depth, 3);
        assert_eq!(s.shed_busy, 2);
        assert_eq!(s.accepted, 3);
        // Draining reopens admission.
        q.pop().unwrap();
        q.submit(2, 7).unwrap();
        assert_eq!(q.stats().depth, 3);
        assert_eq!(q.stats().peak_depth, 3, "depth never exceeded watermark");
    }

    #[test]
    fn per_session_cap_protects_other_sessions() {
        let q = queue(16, 2);
        q.submit(1, 0).unwrap();
        q.submit(1, 1).unwrap();
        assert_eq!(q.submit(1, 2), Err(AdmissionError::SessionBusy));
        // Another session still has room.
        q.submit(2, 0).unwrap();
        assert_eq!(q.stats().shed_session, 1);
    }

    #[test]
    fn shed_submissions_leave_no_empty_fifos_behind() {
        // per_session = 0 sheds everything; the pending map must not grow.
        let q = queue(16, 0);
        for session in 0..100 {
            assert_eq!(q.submit(session, 0), Err(AdmissionError::SessionBusy));
        }
        assert_eq!(q.inner.lock().unwrap().pending.len(), 0);
        assert_eq!(q.stats().depth, 0);
        assert_eq!(q.stats().shed_session, 100);
    }

    #[test]
    fn pop_records_queue_wait_in_the_installed_histogram() {
        let q = queue(16, 8);
        let wait = Arc::new(Histogram::new());
        q.set_wait_histogram(Arc::clone(&wait));
        q.submit(1, 0).unwrap();
        q.submit(2, 1).unwrap();
        q.pop().unwrap();
        q.pop().unwrap();
        let snap = wait.snapshot();
        assert_eq!(snap.count, 2);
    }

    #[test]
    fn pop_serves_sessions_round_robin() {
        let q = queue(16, 8);
        // Session 1 floods first; session 2 arrives later with one job.
        for i in 0..4 {
            q.submit(1, 10 + i).unwrap();
        }
        q.submit(2, 20).unwrap();
        q.submit(3, 30).unwrap();
        let order: Vec<u64> = (0..6).map(|_| q.pop().unwrap().0).collect();
        // After the first pop, the rotation interleaves the sessions instead
        // of finishing session 1's backlog first.
        assert_eq!(order, vec![1, 2, 3, 1, 1, 1]);
        // FIFO within a session.
        let q = queue(16, 8);
        q.submit(1, 0).unwrap();
        q.submit(1, 1).unwrap();
        assert_eq!(q.pop().unwrap().1, 0);
        assert_eq!(q.pop().unwrap().1, 1);
    }

    #[test]
    fn close_wakes_blocked_workers_and_drains() {
        let q = Arc::new(queue(16, 8));
        q.submit(1, 5).unwrap();
        let worker = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut seen = Vec::new();
                while let Some((_, job)) = q.pop() {
                    seen.push(job);
                    q.complete();
                }
                seen
            })
        };
        // Give the worker a moment to drain and block.
        std::thread::sleep(std::time::Duration::from_millis(50));
        q.close();
        assert_eq!(q.submit(1, 9), Err(AdmissionError::Closed));
        let seen = worker.join().unwrap();
        assert_eq!(seen, vec![5]);
        assert_eq!(q.stats().completed, 1);
    }
}
