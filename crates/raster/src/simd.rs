//! Explicit SIMD kernels behind runtime dispatch.
//!
//! The span fills, blend sweeps and gather folds are the fragment-bound inner
//! loops of the software pipe. Until now they relied on the autovectorizer;
//! this module gives them explicit `core::arch` kernels — SSE2 (the x86_64
//! baseline) and AVX2 on x86_64, NEON on aarch64 — selected once per process
//! by runtime feature detection, with the previous scalar code retained as
//! the portable fallback and correctness oracle.
//!
//! # Bit identity
//!
//! `SamplingMode::Exact` is pinned to seed hashes, so every kernel here must
//! be **bit-identical** to its scalar fallback:
//!
//! * Kernels use separate multiply and add only — never fused multiply-add.
//!   FMA skips the intermediate rounding of the multiply, so a contracted
//!   `a*b + c` differs from the scalar path in the last ulp; `rustc` never
//!   contracts on its own, and neither do we.
//! * Texture coordinates are evaluated per lane in `f64` with exactly the
//!   scalar operation order (`row_base + ((px + 0.5) - ox) * ddx`) and then
//!   narrowed to `f32` (`cvtpd→ps` rounds to nearest-even, same as an `as`
//!   cast).
//! * `Max` blending is the explicit compare-select `if src > dst { src }
//!   else { dst }` in both the scalar path ([`BlendMode::apply`]) and the
//!   vector kernels (`cmpgt` + select). `f32::max`/`maxps` could not be used:
//!   their signed-zero tie results disagree with each other *and* between
//!   build profiles, while the compare-select keeps `dst` on every tie,
//!   everywhere.
//!
//! The proptest suite at the bottom pins every kernel to its scalar twin
//! bit-for-bit over random lengths (including sub-lane tails), blend modes
//! and slice offsets, at every level the host can run.
//!
//! # Dispatch
//!
//! [`active`] resolves once per process: the `SPOTNOISE_SIMD` environment
//! variable (`off`/`scalar`/`sse2`/`avx2`/`neon`) overrides detection when it
//! names a level the host supports; otherwise the best detected level wins.
//! [`force`] is a process-global test/bench hook that takes precedence over
//! both — safe to flip mid-run precisely because all levels produce identical
//! bits.

use crate::blend::BlendMode;
use crate::raster::{fill_lane_blocked, nearest_index, AttrRow};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// A SIMD dispatch level: which kernel implementation the hot loops run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum SimdLevel {
    /// Portable scalar fallback — the pre-SIMD code, and the oracle the
    /// vector kernels are pinned against.
    Scalar = 0,
    /// 128-bit SSE2 kernels (the x86_64 baseline, always available there).
    Sse2 = 1,
    /// 256-bit AVX2 kernels (x86_64, detected at runtime).
    Avx2 = 2,
    /// 128-bit NEON kernels (the aarch64 baseline).
    Neon = 3,
}

impl SimdLevel {
    /// Canonical lowercase name, as used by `SPOTNOISE_SIMD` and recorded in
    /// bench artifacts.
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Sse2 => "sse2",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Neon => "neon",
        }
    }

    /// Parses a `SPOTNOISE_SIMD` value; `off` is an alias for `scalar`.
    pub fn from_name(name: &str) -> Option<SimdLevel> {
        match name {
            "off" | "scalar" => Some(SimdLevel::Scalar),
            "sse2" => Some(SimdLevel::Sse2),
            "avx2" => Some(SimdLevel::Avx2),
            "neon" => Some(SimdLevel::Neon),
            _ => None,
        }
    }
}

/// The best level the host supports, by runtime feature detection.
pub fn detected() -> SimdLevel {
    dispatch().detected
}

/// Every level this process can run, scalar first. The bit-identity tests
/// iterate this to pin each available kernel set against the scalar oracle.
pub fn available() -> Vec<SimdLevel> {
    match detected() {
        SimdLevel::Scalar => vec![SimdLevel::Scalar],
        SimdLevel::Sse2 => vec![SimdLevel::Scalar, SimdLevel::Sse2],
        SimdLevel::Avx2 => vec![SimdLevel::Scalar, SimdLevel::Sse2, SimdLevel::Avx2],
        SimdLevel::Neon => vec![SimdLevel::Scalar, SimdLevel::Neon],
    }
}

/// The level the kernels dispatch to right now: a [`force`] override if one
/// is set, else the once-per-process resolution of `SPOTNOISE_SIMD` and
/// feature detection.
pub fn active() -> SimdLevel {
    match FORCED.load(Ordering::Relaxed) {
        FORCE_NONE => dispatch().resolved,
        raw => level_from_u8(raw),
    }
}

/// The raw `SPOTNOISE_SIMD` value this process was started with, if any —
/// recorded in bench artifacts so banked numbers name their dispatch leg.
pub fn env_override() -> Option<&'static str> {
    dispatch().env.as_deref()
}

/// Process-global dispatch override for tests and benches: `Some(level)`
/// pins every kernel to `level`, `None` restores normal resolution. Takes
/// precedence over `SPOTNOISE_SIMD`. Safe to flip while other threads run —
/// every level produces identical bits, so a racing kernel only changes
/// *which* implementation computes them.
///
/// # Panics
/// Panics when `level` is not in [`available`] on this host.
pub fn force(level: Option<SimdLevel>) {
    match level {
        None => FORCED.store(FORCE_NONE, Ordering::Relaxed),
        Some(level) => {
            assert!(
                available().contains(&level),
                "SIMD level {} is not available on this host (detected: {})",
                level.name(),
                detected().name()
            );
            FORCED.store(level as u8, Ordering::Relaxed);
        }
    }
}

const FORCE_NONE: u8 = u8::MAX;
static FORCED: AtomicU8 = AtomicU8::new(FORCE_NONE);

fn level_from_u8(raw: u8) -> SimdLevel {
    match raw {
        0 => SimdLevel::Scalar,
        1 => SimdLevel::Sse2,
        2 => SimdLevel::Avx2,
        _ => SimdLevel::Neon,
    }
}

struct Dispatch {
    detected: SimdLevel,
    resolved: SimdLevel,
    env: Option<String>,
}

fn dispatch() -> &'static Dispatch {
    static DISPATCH: OnceLock<Dispatch> = OnceLock::new();
    DISPATCH.get_or_init(|| {
        let detected = detect();
        let env = std::env::var("SPOTNOISE_SIMD")
            .ok()
            .filter(|v| !v.is_empty());
        let resolved = resolve(env.as_deref(), detected);
        Dispatch {
            detected,
            resolved,
            env,
        }
    })
}

/// Pure resolution of the `SPOTNOISE_SIMD` override against the detected
/// level: a recognized, host-supported request wins; anything else falls
/// back to detection (with a warning, so a typo in CI cannot silently run
/// the wrong leg).
fn resolve(env: Option<&str>, detected: SimdLevel) -> SimdLevel {
    let Some(raw) = env else {
        return detected;
    };
    match SimdLevel::from_name(raw) {
        Some(requested) => {
            let supported = match requested {
                SimdLevel::Scalar => true,
                SimdLevel::Sse2 => cfg!(target_arch = "x86_64"),
                SimdLevel::Avx2 => cfg!(target_arch = "x86_64") && detected >= SimdLevel::Avx2,
                SimdLevel::Neon => cfg!(target_arch = "aarch64"),
            };
            if supported {
                requested
            } else {
                eprintln!(
                    "SPOTNOISE_SIMD={raw}: level not supported on this host, \
                     using detected level '{}'",
                    detected.name()
                );
                detected
            }
        }
        None => {
            eprintln!(
                "SPOTNOISE_SIMD={raw}: unknown level (expected off|scalar|sse2|avx2|neon), \
                 using detected level '{}'",
                detected.name()
            );
            detected
        }
    }
}

fn detect() -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            SimdLevel::Avx2
        } else {
            // SSE2 is part of the x86_64 baseline.
            SimdLevel::Sse2
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        // NEON is part of the aarch64 baseline.
        SimdLevel::Neon
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        SimdLevel::Scalar
    }
}

// ---------------------------------------------------------------------------
// Level-dispatched kernels. Each entry point matches on the level once per
// call (the callers hoist `active()` per triangle / per compose pass, so the
// match runs per row fill or per chunk, not per texel). Arms for the other
// architecture fall through to scalar; they are unreachable in practice
// because `available()` never offers them.
// ---------------------------------------------------------------------------

/// [`BlendMode::apply_block`] at a dispatch level: blends `src` into `dst`
/// element-wise.
pub(crate) fn blend_block(level: SimdLevel, mode: BlendMode, dst: &mut [f32], src: &[f32]) {
    debug_assert_eq!(dst.len(), src.len());
    match level {
        SimdLevel::Scalar => mode.apply_block(dst, src),
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse2 => unsafe { x86::blend_block_sse2(mode, dst, src) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { x86::blend_block_avx2(mode, dst, src) },
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => unsafe { neon::blend_block_neon(mode, dst, src) },
        #[allow(unreachable_patterns)]
        _ => mode.apply_block(dst, src),
    }
}

/// [`BlendMode::apply_uniform`] at a dispatch level: blends one value across
/// `dst` (the uniform-row fast path of disc/flat spot fills).
pub(crate) fn blend_uniform(level: SimdLevel, mode: BlendMode, dst: &mut [f32], src: f32) {
    match level {
        SimdLevel::Scalar => mode.apply_uniform(dst, src),
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse2 => unsafe { x86::blend_uniform_sse2(mode, dst, src) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { x86::blend_uniform_avx2(mode, dst, src) },
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => unsafe { neon::blend_uniform_neon(mode, dst, src) },
        #[allow(unreachable_patterns)]
        _ => mode.apply_uniform(dst, src),
    }
}

/// The hoisted-bilinear span fill: `v` is constant along the row, so the
/// vertical half of the bilinear kernel (`tex_row0`/`tex_row1`, `ty`) is
/// precomputed and each pixel needs only the horizontal lerp. `span[0]`
/// corresponds to pixel column `lo`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn fill_hoisted(
    level: SimdLevel,
    span: &mut [f32],
    lo: usize,
    u_row: AttrRow,
    tex_row0: &[f32],
    tex_row1: &[f32],
    ty: f32,
    intensity: f32,
    blend: BlendMode,
) {
    match level {
        SimdLevel::Scalar => {
            scalar_fill_hoisted(span, lo, u_row, tex_row0, tex_row1, ty, intensity, blend)
        }
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse2 => unsafe {
            x86::fill_hoisted_sse2(span, lo, u_row, tex_row0, tex_row1, ty, intensity, blend)
        },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe {
            x86::fill_hoisted_avx2(span, lo, u_row, tex_row0, tex_row1, ty, intensity, blend)
        },
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => unsafe {
            neon::fill_hoisted_neon(span, lo, u_row, tex_row0, tex_row1, ty, intensity, blend)
        },
        #[allow(unreachable_patterns)]
        _ => scalar_fill_hoisted(span, lo, u_row, tex_row0, tex_row1, ty, intensity, blend),
    }
}

/// The row-constant nearest span fill of footprint mode: one prefetched
/// texture row serves the whole span, each pixel takes one clamped fetch.
pub(crate) fn fill_nearest_row(
    level: SimdLevel,
    span: &mut [f32],
    lo: usize,
    u_row: AttrRow,
    tex_row: &[f32],
    intensity: f32,
    blend: BlendMode,
) {
    match level {
        SimdLevel::Scalar => scalar_fill_nearest_row(span, lo, u_row, tex_row, intensity, blend),
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse2 => unsafe {
            x86::fill_nearest_row_sse2(span, lo, u_row, tex_row, intensity, blend)
        },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe {
            x86::fill_nearest_row_avx2(span, lo, u_row, tex_row, intensity, blend)
        },
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => unsafe {
            neon::fill_nearest_row_neon(span, lo, u_row, tex_row, intensity, blend)
        },
        #[allow(unreachable_patterns)]
        _ => scalar_fill_nearest_row(span, lo, u_row, tex_row, intensity, blend),
    }
}

/// The general nearest span fill of footprint mode: both texture coordinates
/// vary along the row, each pixel takes one 2-D clamped fetch from `texels`
/// (a `tw`×`th` texture).
#[allow(clippy::too_many_arguments)]
pub(crate) fn fill_nearest_2d(
    level: SimdLevel,
    span: &mut [f32],
    lo: usize,
    u_row: AttrRow,
    v_row: AttrRow,
    texels: &[f32],
    tw: usize,
    th: usize,
    intensity: f32,
    blend: BlendMode,
) {
    match level {
        SimdLevel::Scalar => {
            scalar_fill_nearest_2d(span, lo, u_row, v_row, texels, tw, th, intensity, blend)
        }
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse2 => unsafe {
            x86::fill_nearest_2d_sse2(span, lo, u_row, v_row, texels, tw, th, intensity, blend)
        },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe {
            x86::fill_nearest_2d_avx2(span, lo, u_row, v_row, texels, tw, th, intensity, blend)
        },
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => unsafe {
            neon::fill_nearest_2d_neon(span, lo, u_row, v_row, texels, tw, th, intensity, blend)
        },
        #[allow(unreachable_patterns)]
        _ => scalar_fill_nearest_2d(span, lo, u_row, v_row, texels, tw, th, intensity, blend),
    }
}

/// Gather-fold kernel, copy flavour: `dst = s0 + s1 + …` with the sequential
/// fold's left association. `srcs` holds 1–4 equal-length slices.
pub(crate) fn fold_copy(level: SimdLevel, dst: &mut [f32], srcs: &[&[f32]]) {
    debug_assert!((1..=4).contains(&srcs.len()));
    match level {
        SimdLevel::Scalar => scalar_fold_copy(dst, srcs),
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse2 => unsafe { x86::fold_copy_sse2(dst, srcs) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { x86::fold_copy_avx2(dst, srcs) },
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => unsafe { neon::fold_copy_neon(dst, srcs) },
        #[allow(unreachable_patterns)]
        _ => scalar_fold_copy(dst, srcs),
    }
}

/// Gather-fold kernel, accumulate flavour: `dst = ((dst + s0) + s1) + …`.
pub(crate) fn fold_acc(level: SimdLevel, dst: &mut [f32], srcs: &[&[f32]]) {
    debug_assert!((1..=4).contains(&srcs.len()));
    match level {
        SimdLevel::Scalar => scalar_fold_acc(dst, srcs),
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse2 => unsafe { x86::fold_acc_sse2(dst, srcs) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { x86::fold_acc_avx2(dst, srcs) },
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => unsafe { neon::fold_acc_neon(dst, srcs) },
        #[allow(unreachable_patterns)]
        _ => scalar_fold_acc(dst, srcs),
    }
}

/// Straight copy (the compose tile blit and the single-source copy fold):
/// explicit vector moves at SIMD levels, `copy_from_slice` on scalar.
pub(crate) fn copy_slice(level: SimdLevel, dst: &mut [f32], src: &[f32]) {
    debug_assert_eq!(dst.len(), src.len());
    match level {
        SimdLevel::Scalar => dst.copy_from_slice(src),
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse2 => unsafe { x86::copy_slice_sse2(dst, src) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { x86::copy_slice_avx2(dst, src) },
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => unsafe { neon::copy_slice_neon(dst, src) },
        #[allow(unreachable_patterns)]
        _ => dst.copy_from_slice(src),
    }
}

// ---------------------------------------------------------------------------
// Scalar fallbacks: exactly the pre-SIMD code (the sample closures formerly
// inlined in `fill_span_with` / `walk_spans_wide_nearest`, driven through the
// shared lane-block loop). These are the oracle every vector kernel is pinned
// against.
// ---------------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn scalar_fill_hoisted(
    span: &mut [f32],
    lo: usize,
    u_row: AttrRow,
    tex_row0: &[f32],
    tex_row1: &[f32],
    ty: f32,
    intensity: f32,
    blend: BlendMode,
) {
    let tex_w = tex_row0.len();
    let sample_at = |px: usize| -> f32 {
        let u = u_row.at(px) as f32;
        let fx = (u * tex_w as f32 - 0.5).clamp(0.0, tex_w as f32 - 1.0);
        let tx0 = fx.floor() as usize;
        let tx1 = (tx0 + 1).min(tex_w - 1);
        let tx = fx - tx0 as f32;
        let a = tex_row0[tx0];
        let b = tex_row0[tx1];
        let c = tex_row1[tx0];
        let d = tex_row1[tx1];
        let bottom = a + (b - a) * tx;
        let top = c + (d - c) * tx;
        (bottom + (top - bottom) * ty) * intensity
    };
    fill_lane_blocked(span, lo, SimdLevel::Scalar, blend, sample_at);
}

fn scalar_fill_nearest_row(
    span: &mut [f32],
    lo: usize,
    u_row: AttrRow,
    tex_row: &[f32],
    intensity: f32,
    blend: BlendMode,
) {
    let tw = tex_row.len();
    fill_lane_blocked(span, lo, SimdLevel::Scalar, blend, |px| {
        tex_row[nearest_index(u_row.at(px) as f32, tw)] * intensity
    });
}

#[allow(clippy::too_many_arguments)]
fn scalar_fill_nearest_2d(
    span: &mut [f32],
    lo: usize,
    u_row: AttrRow,
    v_row: AttrRow,
    texels: &[f32],
    tw: usize,
    th: usize,
    intensity: f32,
    blend: BlendMode,
) {
    fill_lane_blocked(span, lo, SimdLevel::Scalar, blend, |px| {
        let tx = nearest_index(u_row.at(px) as f32, tw);
        let ty = nearest_index(v_row.at(px) as f32, th);
        texels[ty * tw + tx] * intensity
    });
}

fn scalar_fold_copy(dst: &mut [f32], srcs: &[&[f32]]) {
    match *srcs {
        [a] => dst.copy_from_slice(a),
        [a, b] => {
            for (i, d) in dst.iter_mut().enumerate() {
                *d = a[i] + b[i];
            }
        }
        [a, b, c] => {
            for (i, d) in dst.iter_mut().enumerate() {
                *d = (a[i] + b[i]) + c[i];
            }
        }
        [a, b, c, e] => {
            for (i, d) in dst.iter_mut().enumerate() {
                *d = ((a[i] + b[i]) + c[i]) + e[i];
            }
        }
        _ => unreachable!("fold_copy takes 1-4 sources"),
    }
}

fn scalar_fold_acc(dst: &mut [f32], srcs: &[&[f32]]) {
    match *srcs {
        [a] => {
            for (d, v) in dst.iter_mut().zip(a) {
                *d += *v;
            }
        }
        [a, b] => {
            for (i, d) in dst.iter_mut().enumerate() {
                *d = (*d + a[i]) + b[i];
            }
        }
        [a, b, c] => {
            for (i, d) in dst.iter_mut().enumerate() {
                *d = ((*d + a[i]) + b[i]) + c[i];
            }
        }
        [a, b, c, e] => {
            for (i, d) in dst.iter_mut().enumerate() {
                *d = (((*d + a[i]) + b[i]) + c[i]) + e[i];
            }
        }
        _ => unreachable!("fold_acc takes 1-4 sources"),
    }
}

// ---------------------------------------------------------------------------
// x86_64 kernels: SSE2 (baseline, 4 lanes) and AVX2 (detected, 8 lanes).
//
// All functions carry `#[target_feature]`, so calls are `unsafe`; the safety
// contract is feature availability, which the dispatcher guarantees (SSE2 is
// part of the x86_64 baseline; AVX2 arms are only reachable when
// `is_x86_feature_detected!("avx2")` held at resolution or `force` validated
// the level against it).
// ---------------------------------------------------------------------------
#[cfg(target_arch = "x86_64")]
mod x86 {
    use crate::blend::BlendMode;
    use crate::raster::{nearest_index, AttrRow};
    use core::arch::x86_64::*;

    #[inline]
    #[target_feature(enable = "sse2")]
    fn load4(s: &[f32], i: usize) -> __m128 {
        debug_assert!(i + 4 <= s.len());
        unsafe { _mm_loadu_ps(s.as_ptr().add(i)) }
    }

    #[inline]
    #[target_feature(enable = "sse2")]
    fn store4(s: &mut [f32], i: usize, v: __m128) {
        debug_assert!(i + 4 <= s.len());
        unsafe { _mm_storeu_ps(s.as_mut_ptr().add(i), v) }
    }

    #[inline]
    #[target_feature(enable = "sse2")]
    fn lanes_i32(v: __m128i) -> [i32; 4] {
        unsafe { core::mem::transmute(v) }
    }

    #[inline]
    #[target_feature(enable = "sse2")]
    fn from_lanes(a: [f32; 4]) -> __m128 {
        unsafe { core::mem::transmute(a) }
    }

    /// The Max blend lane-wise: `if s > d { s } else { d }`, the exact
    /// compare-select [`BlendMode::apply`] uses (deterministic on signed-zero
    /// ties, unlike `maxps`, which returns its second operand on equal
    /// inputs).
    #[inline]
    #[target_feature(enable = "sse2")]
    fn max4(d: __m128, s: __m128) -> __m128 {
        let take_s = _mm_cmpgt_ps(s, d);
        _mm_or_ps(_mm_and_ps(take_s, s), _mm_andnot_ps(take_s, d))
    }

    /// `v.clamp(lo, hi)` lane-wise (`min(max(v, lo), hi)`); matches the
    /// scalar clamp for every value the fills produce (no NaN, and the
    /// pre-clamp value is never `-0.0` because `x - 0.5` cannot produce it).
    #[inline]
    #[target_feature(enable = "sse2")]
    fn clamp4(v: __m128, lo: __m128, hi: __m128) -> __m128 {
        _mm_min_ps(_mm_max_ps(v, lo), hi)
    }

    /// The affine row form at 4 consecutive pixel centres, evaluated in
    /// `f64` with the scalar operation order and narrowed to `f32`
    /// (`cvtpd2ps` rounds to nearest-even, exactly like `as f32`).
    #[inline]
    #[target_feature(enable = "sse2")]
    fn u4(px: usize, row_base: __m128d, ddx: __m128d, ox: __m128d) -> __m128 {
        let c01 = _mm_set_pd((px + 1) as f64 + 0.5, px as f64 + 0.5);
        let c23 = _mm_set_pd((px + 3) as f64 + 0.5, (px + 2) as f64 + 0.5);
        let u01 = _mm_add_pd(_mm_mul_pd(_mm_sub_pd(c01, ox), ddx), row_base);
        let u23 = _mm_add_pd(_mm_mul_pd(_mm_sub_pd(c23, ox), ddx), row_base);
        _mm_movelh_ps(_mm_cvtpd_ps(u01), _mm_cvtpd_ps(u23))
    }

    /// Blends a 4-lane sample block into `span[i..i+4]`. `va`/`vb` are the
    /// splatted alpha/(1-alpha) coefficients (only read in the Alpha arm).
    #[inline]
    #[target_feature(enable = "sse2")]
    fn blend4(
        blend: BlendMode,
        span: &mut [f32],
        i: usize,
        sample: __m128,
        va: __m128,
        vb: __m128,
    ) {
        match blend {
            BlendMode::Replace => store4(span, i, sample),
            BlendMode::Additive => store4(span, i, _mm_add_ps(load4(span, i), sample)),
            BlendMode::Max => store4(span, i, max4(load4(span, i), sample)),
            BlendMode::Alpha(_) => {
                let d = load4(span, i);
                store4(
                    span,
                    i,
                    _mm_add_ps(_mm_mul_ps(sample, va), _mm_mul_ps(d, vb)),
                );
            }
        }
    }

    /// Splatted alpha coefficients for the Alpha arm (zeros otherwise).
    #[inline]
    #[target_feature(enable = "sse2")]
    fn alpha4(blend: BlendMode) -> (__m128, __m128) {
        match blend {
            BlendMode::Alpha(a) => {
                let alpha = a.value();
                (_mm_set1_ps(alpha), _mm_set1_ps(1.0 - alpha))
            }
            _ => (_mm_setzero_ps(), _mm_setzero_ps()),
        }
    }

    #[target_feature(enable = "sse2")]
    pub(super) fn blend_block_sse2(mode: BlendMode, dst: &mut [f32], src: &[f32]) {
        let n = dst.len() - dst.len() % 4;
        match mode {
            BlendMode::Replace => dst.copy_from_slice(src),
            BlendMode::Additive => {
                let mut i = 0;
                while i < n {
                    store4(dst, i, _mm_add_ps(load4(dst, i), load4(src, i)));
                    i += 4;
                }
                for (d, s) in dst[n..].iter_mut().zip(&src[n..]) {
                    *d += *s;
                }
            }
            BlendMode::Max => {
                let mut i = 0;
                while i < n {
                    store4(dst, i, max4(load4(dst, i), load4(src, i)));
                    i += 4;
                }
                for (d, s) in dst[n..].iter_mut().zip(&src[n..]) {
                    *d = if *s > *d { *s } else { *d };
                }
            }
            BlendMode::Alpha(a) => {
                let alpha = a.value();
                let va = _mm_set1_ps(alpha);
                let vb = _mm_set1_ps(1.0 - alpha);
                let mut i = 0;
                while i < n {
                    let blended =
                        _mm_add_ps(_mm_mul_ps(load4(src, i), va), _mm_mul_ps(load4(dst, i), vb));
                    store4(dst, i, blended);
                    i += 4;
                }
                for (d, s) in dst[n..].iter_mut().zip(&src[n..]) {
                    *d = *s * alpha + *d * (1.0 - alpha);
                }
            }
        }
    }

    #[target_feature(enable = "sse2")]
    pub(super) fn blend_uniform_sse2(mode: BlendMode, dst: &mut [f32], src: f32) {
        let n = dst.len() - dst.len() % 4;
        let vs = _mm_set1_ps(src);
        match mode {
            BlendMode::Replace => dst.fill(src),
            BlendMode::Additive => {
                let mut i = 0;
                while i < n {
                    store4(dst, i, _mm_add_ps(load4(dst, i), vs));
                    i += 4;
                }
                for d in dst[n..].iter_mut() {
                    *d += src;
                }
            }
            BlendMode::Max => {
                let mut i = 0;
                while i < n {
                    store4(dst, i, max4(load4(dst, i), vs));
                    i += 4;
                }
                for d in dst[n..].iter_mut() {
                    *d = if src > *d { src } else { *d };
                }
            }
            BlendMode::Alpha(a) => {
                let alpha = a.value();
                let va = _mm_set1_ps(alpha);
                let vb = _mm_set1_ps(1.0 - alpha);
                let mut i = 0;
                while i < n {
                    let blended = _mm_add_ps(_mm_mul_ps(vs, va), _mm_mul_ps(load4(dst, i), vb));
                    store4(dst, i, blended);
                    i += 4;
                }
                for d in dst[n..].iter_mut() {
                    *d = src * alpha + *d * (1.0 - alpha);
                }
            }
        }
    }

    #[target_feature(enable = "sse2")]
    pub(super) fn copy_slice_sse2(dst: &mut [f32], src: &[f32]) {
        let n = dst.len() - dst.len() % 4;
        let mut i = 0;
        while i < n {
            store4(dst, i, load4(src, i));
            i += 4;
        }
        dst[n..].copy_from_slice(&src[n..]);
    }

    #[target_feature(enable = "sse2")]
    pub(super) fn fold_copy_sse2(dst: &mut [f32], srcs: &[&[f32]]) {
        let n = dst.len() - dst.len() % 4;
        match *srcs {
            [a] => copy_slice_sse2(dst, a),
            [a, b] => {
                let mut i = 0;
                while i < n {
                    store4(dst, i, _mm_add_ps(load4(a, i), load4(b, i)));
                    i += 4;
                }
                for (i, d) in dst.iter_mut().enumerate().skip(n) {
                    *d = a[i] + b[i];
                }
            }
            [a, b, c] => {
                let mut i = 0;
                while i < n {
                    let sum = _mm_add_ps(_mm_add_ps(load4(a, i), load4(b, i)), load4(c, i));
                    store4(dst, i, sum);
                    i += 4;
                }
                for (i, d) in dst.iter_mut().enumerate().skip(n) {
                    *d = (a[i] + b[i]) + c[i];
                }
            }
            [a, b, c, e] => {
                let mut i = 0;
                while i < n {
                    let sum = _mm_add_ps(
                        _mm_add_ps(_mm_add_ps(load4(a, i), load4(b, i)), load4(c, i)),
                        load4(e, i),
                    );
                    store4(dst, i, sum);
                    i += 4;
                }
                for (i, d) in dst.iter_mut().enumerate().skip(n) {
                    *d = ((a[i] + b[i]) + c[i]) + e[i];
                }
            }
            _ => unreachable!("fold_copy takes 1-4 sources"),
        }
    }

    #[target_feature(enable = "sse2")]
    pub(super) fn fold_acc_sse2(dst: &mut [f32], srcs: &[&[f32]]) {
        let n = dst.len() - dst.len() % 4;
        match *srcs {
            [a] => {
                let mut i = 0;
                while i < n {
                    store4(dst, i, _mm_add_ps(load4(dst, i), load4(a, i)));
                    i += 4;
                }
                for (i, d) in dst.iter_mut().enumerate().skip(n) {
                    *d += a[i];
                }
            }
            [a, b] => {
                let mut i = 0;
                while i < n {
                    let sum = _mm_add_ps(_mm_add_ps(load4(dst, i), load4(a, i)), load4(b, i));
                    store4(dst, i, sum);
                    i += 4;
                }
                for (i, d) in dst.iter_mut().enumerate().skip(n) {
                    *d = (*d + a[i]) + b[i];
                }
            }
            [a, b, c] => {
                let mut i = 0;
                while i < n {
                    let sum = _mm_add_ps(
                        _mm_add_ps(_mm_add_ps(load4(dst, i), load4(a, i)), load4(b, i)),
                        load4(c, i),
                    );
                    store4(dst, i, sum);
                    i += 4;
                }
                for (i, d) in dst.iter_mut().enumerate().skip(n) {
                    *d = ((*d + a[i]) + b[i]) + c[i];
                }
            }
            [a, b, c, e] => {
                let mut i = 0;
                while i < n {
                    let sum = _mm_add_ps(
                        _mm_add_ps(
                            _mm_add_ps(_mm_add_ps(load4(dst, i), load4(a, i)), load4(b, i)),
                            load4(c, i),
                        ),
                        load4(e, i),
                    );
                    store4(dst, i, sum);
                    i += 4;
                }
                for (i, d) in dst.iter_mut().enumerate().skip(n) {
                    *d = (((*d + a[i]) + b[i]) + c[i]) + e[i];
                }
            }
            _ => unreachable!("fold_acc takes 1-4 sources"),
        }
    }

    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "sse2")]
    pub(super) fn fill_hoisted_sse2(
        span: &mut [f32],
        lo: usize,
        u_row: AttrRow,
        r0: &[f32],
        r1: &[f32],
        ty: f32,
        intensity: f32,
        blend: BlendMode,
    ) {
        let tex_w = r0.len();
        let rb = _mm_set1_pd(u_row.row_base);
        let ddx = _mm_set1_pd(u_row.ddx);
        let ox = _mm_set1_pd(u_row.ox);
        let vw = _mm_set1_ps(tex_w as f32);
        let vhalf = _mm_set1_ps(0.5);
        let vzero = _mm_setzero_ps();
        let vhi = _mm_set1_ps(tex_w as f32 - 1.0);
        let vone = _mm_set1_ps(1.0);
        let vty = _mm_set1_ps(ty);
        let vint = _mm_set1_ps(intensity);
        let (va, vb) = alpha4(blend);
        let n = span.len() - span.len() % 4;
        let mut i = 0;
        while i < n {
            let u = u4(lo + i, rb, ddx, ox);
            let fx = clamp4(_mm_sub_ps(_mm_mul_ps(u, vw), vhalf), vzero, vhi);
            let tx0i = _mm_cvttps_epi32(fx);
            let tx0f = _mm_cvtepi32_ps(tx0i);
            let tx = _mm_sub_ps(fx, tx0f);
            let tx1f = _mm_min_ps(_mm_add_ps(tx0f, vone), vhi);
            let tx1i = _mm_cvttps_epi32(tx1f);
            let i0 = lanes_i32(tx0i);
            let i1 = lanes_i32(tx1i);
            let a = from_lanes([
                r0[i0[0] as usize],
                r0[i0[1] as usize],
                r0[i0[2] as usize],
                r0[i0[3] as usize],
            ]);
            let b = from_lanes([
                r0[i1[0] as usize],
                r0[i1[1] as usize],
                r0[i1[2] as usize],
                r0[i1[3] as usize],
            ]);
            let c = from_lanes([
                r1[i0[0] as usize],
                r1[i0[1] as usize],
                r1[i0[2] as usize],
                r1[i0[3] as usize],
            ]);
            let d = from_lanes([
                r1[i1[0] as usize],
                r1[i1[1] as usize],
                r1[i1[2] as usize],
                r1[i1[3] as usize],
            ]);
            let bottom = _mm_add_ps(a, _mm_mul_ps(_mm_sub_ps(b, a), tx));
            let top = _mm_add_ps(c, _mm_mul_ps(_mm_sub_ps(d, c), tx));
            let lerped = _mm_add_ps(bottom, _mm_mul_ps(_mm_sub_ps(top, bottom), vty));
            blend4(blend, span, i, _mm_mul_ps(lerped, vint), va, vb);
            i += 4;
        }
        for (offset, dst) in span[n..].iter_mut().enumerate() {
            let px = lo + n + offset;
            let u = u_row.at(px) as f32;
            let fx = (u * tex_w as f32 - 0.5).clamp(0.0, tex_w as f32 - 1.0);
            let tx0 = fx.floor() as usize;
            let tx1 = (tx0 + 1).min(tex_w - 1);
            let tx = fx - tx0 as f32;
            let a = r0[tx0];
            let b = r0[tx1];
            let c = r1[tx0];
            let d = r1[tx1];
            let bottom = a + (b - a) * tx;
            let top = c + (d - c) * tx;
            let sample = (bottom + (top - bottom) * ty) * intensity;
            *dst = blend.apply(*dst, sample);
        }
    }

    #[target_feature(enable = "sse2")]
    pub(super) fn fill_nearest_row_sse2(
        span: &mut [f32],
        lo: usize,
        u_row: AttrRow,
        tex_row: &[f32],
        intensity: f32,
        blend: BlendMode,
    ) {
        let tw = tex_row.len();
        let rb = _mm_set1_pd(u_row.row_base);
        let ddx = _mm_set1_pd(u_row.ddx);
        let ox = _mm_set1_pd(u_row.ox);
        let vw = _mm_set1_ps(tw as f32);
        let vzero = _mm_setzero_ps();
        let vhi = _mm_set1_ps(tw as f32 - 1.0);
        let vint = _mm_set1_ps(intensity);
        let (va, vb) = alpha4(blend);
        let n = span.len() - span.len() % 4;
        let mut i = 0;
        while i < n {
            let u = u4(lo + i, rb, ddx, ox);
            let t = clamp4(_mm_mul_ps(u, vw), vzero, vhi);
            let ti = lanes_i32(_mm_cvttps_epi32(t));
            let fetched = from_lanes([
                tex_row[ti[0] as usize],
                tex_row[ti[1] as usize],
                tex_row[ti[2] as usize],
                tex_row[ti[3] as usize],
            ]);
            blend4(blend, span, i, _mm_mul_ps(fetched, vint), va, vb);
            i += 4;
        }
        for (offset, dst) in span[n..].iter_mut().enumerate() {
            let px = lo + n + offset;
            let sample = tex_row[nearest_index(u_row.at(px) as f32, tw)] * intensity;
            *dst = blend.apply(*dst, sample);
        }
    }

    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "sse2")]
    pub(super) fn fill_nearest_2d_sse2(
        span: &mut [f32],
        lo: usize,
        u_row: AttrRow,
        v_row: AttrRow,
        texels: &[f32],
        tw: usize,
        th: usize,
        intensity: f32,
        blend: BlendMode,
    ) {
        let u_rb = _mm_set1_pd(u_row.row_base);
        let u_ddx = _mm_set1_pd(u_row.ddx);
        let u_ox = _mm_set1_pd(u_row.ox);
        let v_rb = _mm_set1_pd(v_row.row_base);
        let v_ddx = _mm_set1_pd(v_row.ddx);
        let v_ox = _mm_set1_pd(v_row.ox);
        let vww = _mm_set1_ps(tw as f32);
        let vwh = _mm_set1_ps(th as f32);
        let vzero = _mm_setzero_ps();
        let vxhi = _mm_set1_ps(tw as f32 - 1.0);
        let vyhi = _mm_set1_ps(th as f32 - 1.0);
        let vint = _mm_set1_ps(intensity);
        let (va, vb) = alpha4(blend);
        let n = span.len() - span.len() % 4;
        let mut i = 0;
        while i < n {
            let px = lo + i;
            let u = u4(px, u_rb, u_ddx, u_ox);
            let v = u4(px, v_rb, v_ddx, v_ox);
            let tu = clamp4(_mm_mul_ps(u, vww), vzero, vxhi);
            let tv = clamp4(_mm_mul_ps(v, vwh), vzero, vyhi);
            let xi = lanes_i32(_mm_cvttps_epi32(tu));
            let yi = lanes_i32(_mm_cvttps_epi32(tv));
            let fetched = from_lanes([
                texels[yi[0] as usize * tw + xi[0] as usize],
                texels[yi[1] as usize * tw + xi[1] as usize],
                texels[yi[2] as usize * tw + xi[2] as usize],
                texels[yi[3] as usize * tw + xi[3] as usize],
            ]);
            blend4(blend, span, i, _mm_mul_ps(fetched, vint), va, vb);
            i += 4;
        }
        for (offset, dst) in span[n..].iter_mut().enumerate() {
            let px = lo + n + offset;
            let tx = nearest_index(u_row.at(px) as f32, tw);
            let ty = nearest_index(v_row.at(px) as f32, th);
            let sample = texels[ty * tw + tx] * intensity;
            *dst = blend.apply(*dst, sample);
        }
    }

    // -- AVX2: 8-lane versions of the same kernels, with hardware gathers. --

    #[inline]
    #[target_feature(enable = "avx2")]
    fn load8(s: &[f32], i: usize) -> __m256 {
        debug_assert!(i + 8 <= s.len());
        unsafe { _mm256_loadu_ps(s.as_ptr().add(i)) }
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    fn store8(s: &mut [f32], i: usize, v: __m256) {
        debug_assert!(i + 8 <= s.len());
        unsafe { _mm256_storeu_ps(s.as_mut_ptr().add(i), v) }
    }

    /// Hardware gather of 8 texels; every index must be in bounds (the
    /// callers clamp to `[0, len)` first).
    #[inline]
    #[target_feature(enable = "avx2")]
    fn gather8(s: &[f32], idx: __m256i) -> __m256 {
        unsafe { _mm256_i32gather_ps::<4>(s.as_ptr(), idx) }
    }

    /// 8-lane twin of [`max4`] (same compare-select semantics).
    #[inline]
    #[target_feature(enable = "avx2")]
    fn max8(d: __m256, s: __m256) -> __m256 {
        let take_s = _mm256_cmp_ps::<_CMP_GT_OQ>(s, d);
        _mm256_blendv_ps(d, s, take_s)
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    fn clamp8(v: __m256, lo: __m256, hi: __m256) -> __m256 {
        _mm256_min_ps(_mm256_max_ps(v, lo), hi)
    }

    /// 8-lane twin of [`u4`]: two 4-wide `f64` evaluations narrowed and
    /// concatenated.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn u8v(px: usize, row_base: __m256d, ddx: __m256d, ox: __m256d) -> __m256 {
        let c_lo = _mm256_set_pd(
            (px + 3) as f64 + 0.5,
            (px + 2) as f64 + 0.5,
            (px + 1) as f64 + 0.5,
            px as f64 + 0.5,
        );
        let c_hi = _mm256_set_pd(
            (px + 7) as f64 + 0.5,
            (px + 6) as f64 + 0.5,
            (px + 5) as f64 + 0.5,
            (px + 4) as f64 + 0.5,
        );
        let lo = _mm256_cvtpd_ps(_mm256_add_pd(
            _mm256_mul_pd(_mm256_sub_pd(c_lo, ox), ddx),
            row_base,
        ));
        let hi = _mm256_cvtpd_ps(_mm256_add_pd(
            _mm256_mul_pd(_mm256_sub_pd(c_hi, ox), ddx),
            row_base,
        ));
        _mm256_set_m128(hi, lo)
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    fn blend8(
        blend: BlendMode,
        span: &mut [f32],
        i: usize,
        sample: __m256,
        va: __m256,
        vb: __m256,
    ) {
        match blend {
            BlendMode::Replace => store8(span, i, sample),
            BlendMode::Additive => store8(span, i, _mm256_add_ps(load8(span, i), sample)),
            BlendMode::Max => store8(span, i, max8(load8(span, i), sample)),
            BlendMode::Alpha(_) => {
                let d = load8(span, i);
                store8(
                    span,
                    i,
                    _mm256_add_ps(_mm256_mul_ps(sample, va), _mm256_mul_ps(d, vb)),
                );
            }
        }
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    fn alpha8(blend: BlendMode) -> (__m256, __m256) {
        match blend {
            BlendMode::Alpha(a) => {
                let alpha = a.value();
                (_mm256_set1_ps(alpha), _mm256_set1_ps(1.0 - alpha))
            }
            _ => (_mm256_setzero_ps(), _mm256_setzero_ps()),
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) fn blend_block_avx2(mode: BlendMode, dst: &mut [f32], src: &[f32]) {
        let n = dst.len() - dst.len() % 8;
        match mode {
            BlendMode::Replace => dst.copy_from_slice(src),
            BlendMode::Additive => {
                let mut i = 0;
                while i < n {
                    store8(dst, i, _mm256_add_ps(load8(dst, i), load8(src, i)));
                    i += 8;
                }
                blend_block_sse2(mode, &mut dst[n..], &src[n..]);
            }
            BlendMode::Max => {
                let mut i = 0;
                while i < n {
                    store8(dst, i, max8(load8(dst, i), load8(src, i)));
                    i += 8;
                }
                blend_block_sse2(mode, &mut dst[n..], &src[n..]);
            }
            BlendMode::Alpha(a) => {
                let alpha = a.value();
                let va = _mm256_set1_ps(alpha);
                let vb = _mm256_set1_ps(1.0 - alpha);
                let mut i = 0;
                while i < n {
                    let blended = _mm256_add_ps(
                        _mm256_mul_ps(load8(src, i), va),
                        _mm256_mul_ps(load8(dst, i), vb),
                    );
                    store8(dst, i, blended);
                    i += 8;
                }
                blend_block_sse2(mode, &mut dst[n..], &src[n..]);
            }
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) fn blend_uniform_avx2(mode: BlendMode, dst: &mut [f32], src: f32) {
        let n = dst.len() - dst.len() % 8;
        let vs = _mm256_set1_ps(src);
        match mode {
            BlendMode::Replace => dst.fill(src),
            BlendMode::Additive => {
                let mut i = 0;
                while i < n {
                    store8(dst, i, _mm256_add_ps(load8(dst, i), vs));
                    i += 8;
                }
                blend_uniform_sse2(mode, &mut dst[n..], src);
            }
            BlendMode::Max => {
                let mut i = 0;
                while i < n {
                    store8(dst, i, max8(load8(dst, i), vs));
                    i += 8;
                }
                blend_uniform_sse2(mode, &mut dst[n..], src);
            }
            BlendMode::Alpha(a) => {
                let alpha = a.value();
                let va = _mm256_set1_ps(alpha);
                let vb = _mm256_set1_ps(1.0 - alpha);
                let mut i = 0;
                while i < n {
                    let blended =
                        _mm256_add_ps(_mm256_mul_ps(vs, va), _mm256_mul_ps(load8(dst, i), vb));
                    store8(dst, i, blended);
                    i += 8;
                }
                blend_uniform_sse2(mode, &mut dst[n..], src);
            }
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) fn copy_slice_avx2(dst: &mut [f32], src: &[f32]) {
        let n = dst.len() - dst.len() % 8;
        let mut i = 0;
        while i < n {
            store8(dst, i, load8(src, i));
            i += 8;
        }
        dst[n..].copy_from_slice(&src[n..]);
    }

    #[target_feature(enable = "avx2")]
    pub(super) fn fold_copy_avx2(dst: &mut [f32], srcs: &[&[f32]]) {
        let n = dst.len() - dst.len() % 8;
        match *srcs {
            [a] => copy_slice_avx2(dst, a),
            [a, b] => {
                let mut i = 0;
                while i < n {
                    store8(dst, i, _mm256_add_ps(load8(a, i), load8(b, i)));
                    i += 8;
                }
                fold_copy_sse2(&mut dst[n..], &[&a[n..], &b[n..]]);
            }
            [a, b, c] => {
                let mut i = 0;
                while i < n {
                    let sum = _mm256_add_ps(_mm256_add_ps(load8(a, i), load8(b, i)), load8(c, i));
                    store8(dst, i, sum);
                    i += 8;
                }
                fold_copy_sse2(&mut dst[n..], &[&a[n..], &b[n..], &c[n..]]);
            }
            [a, b, c, e] => {
                let mut i = 0;
                while i < n {
                    let sum = _mm256_add_ps(
                        _mm256_add_ps(_mm256_add_ps(load8(a, i), load8(b, i)), load8(c, i)),
                        load8(e, i),
                    );
                    store8(dst, i, sum);
                    i += 8;
                }
                fold_copy_sse2(&mut dst[n..], &[&a[n..], &b[n..], &c[n..], &e[n..]]);
            }
            _ => unreachable!("fold_copy takes 1-4 sources"),
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) fn fold_acc_avx2(dst: &mut [f32], srcs: &[&[f32]]) {
        let n = dst.len() - dst.len() % 8;
        match *srcs {
            [a] => {
                let mut i = 0;
                while i < n {
                    store8(dst, i, _mm256_add_ps(load8(dst, i), load8(a, i)));
                    i += 8;
                }
                fold_acc_sse2(&mut dst[n..], &[&a[n..]]);
            }
            [a, b] => {
                let mut i = 0;
                while i < n {
                    let sum = _mm256_add_ps(_mm256_add_ps(load8(dst, i), load8(a, i)), load8(b, i));
                    store8(dst, i, sum);
                    i += 8;
                }
                fold_acc_sse2(&mut dst[n..], &[&a[n..], &b[n..]]);
            }
            [a, b, c] => {
                let mut i = 0;
                while i < n {
                    let sum = _mm256_add_ps(
                        _mm256_add_ps(_mm256_add_ps(load8(dst, i), load8(a, i)), load8(b, i)),
                        load8(c, i),
                    );
                    store8(dst, i, sum);
                    i += 8;
                }
                fold_acc_sse2(&mut dst[n..], &[&a[n..], &b[n..], &c[n..]]);
            }
            [a, b, c, e] => {
                let mut i = 0;
                while i < n {
                    let sum = _mm256_add_ps(
                        _mm256_add_ps(
                            _mm256_add_ps(_mm256_add_ps(load8(dst, i), load8(a, i)), load8(b, i)),
                            load8(c, i),
                        ),
                        load8(e, i),
                    );
                    store8(dst, i, sum);
                    i += 8;
                }
                fold_acc_sse2(&mut dst[n..], &[&a[n..], &b[n..], &c[n..], &e[n..]]);
            }
            _ => unreachable!("fold_acc takes 1-4 sources"),
        }
    }

    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    pub(super) fn fill_hoisted_avx2(
        span: &mut [f32],
        lo: usize,
        u_row: AttrRow,
        r0: &[f32],
        r1: &[f32],
        ty: f32,
        intensity: f32,
        blend: BlendMode,
    ) {
        let tex_w = r0.len();
        let rb = _mm256_set1_pd(u_row.row_base);
        let ddx = _mm256_set1_pd(u_row.ddx);
        let ox = _mm256_set1_pd(u_row.ox);
        let vw = _mm256_set1_ps(tex_w as f32);
        let vhalf = _mm256_set1_ps(0.5);
        let vzero = _mm256_setzero_ps();
        let vhi = _mm256_set1_ps(tex_w as f32 - 1.0);
        let vone = _mm256_set1_ps(1.0);
        let vty = _mm256_set1_ps(ty);
        let vint = _mm256_set1_ps(intensity);
        let (va, vb) = alpha8(blend);
        let n = span.len() - span.len() % 8;
        let mut i = 0;
        while i < n {
            let u = u8v(lo + i, rb, ddx, ox);
            let fx = clamp8(_mm256_sub_ps(_mm256_mul_ps(u, vw), vhalf), vzero, vhi);
            let tx0i = _mm256_cvttps_epi32(fx);
            let tx0f = _mm256_cvtepi32_ps(tx0i);
            let tx = _mm256_sub_ps(fx, tx0f);
            let tx1f = _mm256_min_ps(_mm256_add_ps(tx0f, vone), vhi);
            let tx1i = _mm256_cvttps_epi32(tx1f);
            let a = gather8(r0, tx0i);
            let b = gather8(r0, tx1i);
            let c = gather8(r1, tx0i);
            let d = gather8(r1, tx1i);
            let bottom = _mm256_add_ps(a, _mm256_mul_ps(_mm256_sub_ps(b, a), tx));
            let top = _mm256_add_ps(c, _mm256_mul_ps(_mm256_sub_ps(d, c), tx));
            let lerped = _mm256_add_ps(bottom, _mm256_mul_ps(_mm256_sub_ps(top, bottom), vty));
            blend8(blend, span, i, _mm256_mul_ps(lerped, vint), va, vb);
            i += 8;
        }
        fill_hoisted_sse2(&mut span[n..], lo + n, u_row, r0, r1, ty, intensity, blend);
    }

    #[target_feature(enable = "avx2")]
    pub(super) fn fill_nearest_row_avx2(
        span: &mut [f32],
        lo: usize,
        u_row: AttrRow,
        tex_row: &[f32],
        intensity: f32,
        blend: BlendMode,
    ) {
        let tw = tex_row.len();
        let rb = _mm256_set1_pd(u_row.row_base);
        let ddx = _mm256_set1_pd(u_row.ddx);
        let ox = _mm256_set1_pd(u_row.ox);
        let vw = _mm256_set1_ps(tw as f32);
        let vzero = _mm256_setzero_ps();
        let vhi = _mm256_set1_ps(tw as f32 - 1.0);
        let vint = _mm256_set1_ps(intensity);
        let (va, vb) = alpha8(blend);
        let n = span.len() - span.len() % 8;
        let mut i = 0;
        while i < n {
            let u = u8v(lo + i, rb, ddx, ox);
            let t = clamp8(_mm256_mul_ps(u, vw), vzero, vhi);
            let fetched = gather8(tex_row, _mm256_cvttps_epi32(t));
            blend8(blend, span, i, _mm256_mul_ps(fetched, vint), va, vb);
            i += 8;
        }
        fill_nearest_row_sse2(&mut span[n..], lo + n, u_row, tex_row, intensity, blend);
    }

    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    pub(super) fn fill_nearest_2d_avx2(
        span: &mut [f32],
        lo: usize,
        u_row: AttrRow,
        v_row: AttrRow,
        texels: &[f32],
        tw: usize,
        th: usize,
        intensity: f32,
        blend: BlendMode,
    ) {
        let u_rb = _mm256_set1_pd(u_row.row_base);
        let u_ddx = _mm256_set1_pd(u_row.ddx);
        let u_ox = _mm256_set1_pd(u_row.ox);
        let v_rb = _mm256_set1_pd(v_row.row_base);
        let v_ddx = _mm256_set1_pd(v_row.ddx);
        let v_ox = _mm256_set1_pd(v_row.ox);
        let vww = _mm256_set1_ps(tw as f32);
        let vwh = _mm256_set1_ps(th as f32);
        let vzero = _mm256_setzero_ps();
        let vxhi = _mm256_set1_ps(tw as f32 - 1.0);
        let vyhi = _mm256_set1_ps(th as f32 - 1.0);
        let vtw = _mm256_set1_epi32(tw as i32);
        let vint = _mm256_set1_ps(intensity);
        let (va, vb) = alpha8(blend);
        let n = span.len() - span.len() % 8;
        let mut i = 0;
        while i < n {
            let px = lo + i;
            let u = u8v(px, u_rb, u_ddx, u_ox);
            let v = u8v(px, v_rb, v_ddx, v_ox);
            let tu = clamp8(_mm256_mul_ps(u, vww), vzero, vxhi);
            let tv = clamp8(_mm256_mul_ps(v, vwh), vzero, vyhi);
            let xi = _mm256_cvttps_epi32(tu);
            let yi = _mm256_cvttps_epi32(tv);
            let idx = _mm256_add_epi32(_mm256_mullo_epi32(yi, vtw), xi);
            let fetched = gather8(texels, idx);
            blend8(blend, span, i, _mm256_mul_ps(fetched, vint), va, vb);
            i += 8;
        }
        fill_nearest_2d_sse2(
            &mut span[n..],
            lo + n,
            u_row,
            v_row,
            texels,
            tw,
            th,
            intensity,
            blend,
        );
    }
}

// ---------------------------------------------------------------------------
// aarch64 kernels: NEON (part of the aarch64 baseline), 4 lanes of f32 with
// the texture-coordinate evaluation done on 2-lane f64 vectors. Written to
// the same bit-identity contract as the x86 kernels: mul-then-add only, f64
// coordinate math in scalar operation order, and the Max blend uses the
// AND-of-both-orders correction for signed zeros.
// ---------------------------------------------------------------------------
#[cfg(target_arch = "aarch64")]
mod neon {
    use crate::blend::BlendMode;
    use crate::raster::{nearest_index, AttrRow};
    use core::arch::aarch64::*;

    #[inline]
    #[target_feature(enable = "neon")]
    fn load4(s: &[f32], i: usize) -> float32x4_t {
        debug_assert!(i + 4 <= s.len());
        unsafe { vld1q_f32(s.as_ptr().add(i)) }
    }

    #[inline]
    #[target_feature(enable = "neon")]
    fn store4(s: &mut [f32], i: usize, v: float32x4_t) {
        debug_assert!(i + 4 <= s.len());
        unsafe { vst1q_f32(s.as_mut_ptr().add(i), v) }
    }

    #[inline]
    #[target_feature(enable = "neon")]
    fn lanes_i32(v: int32x4_t) -> [i32; 4] {
        unsafe { core::mem::transmute(v) }
    }

    #[inline]
    #[target_feature(enable = "neon")]
    fn from_lanes(a: [f32; 4]) -> float32x4_t {
        unsafe { core::mem::transmute(a) }
    }

    #[inline]
    #[target_feature(enable = "neon")]
    fn pair_f64(lo: f64, hi: f64) -> float64x2_t {
        unsafe { core::mem::transmute([lo, hi]) }
    }

    /// The Max blend lane-wise: the same compare-select as
    /// [`BlendMode::apply`] (`if s > d { s } else { d }`), deterministic on
    /// signed-zero ties.
    #[inline]
    #[target_feature(enable = "neon")]
    fn max4(d: float32x4_t, s: float32x4_t) -> float32x4_t {
        vbslq_f32(vcgtq_f32(s, d), s, d)
    }

    #[inline]
    #[target_feature(enable = "neon")]
    fn clamp4(v: float32x4_t, lo: float32x4_t, hi: float32x4_t) -> float32x4_t {
        vminq_f32(vmaxq_f32(v, lo), hi)
    }

    /// The affine row form at 4 consecutive pixel centres in `f64`, narrowed
    /// to `f32` (`fcvtn` rounds to nearest-even, same as an `as` cast).
    #[inline]
    #[target_feature(enable = "neon")]
    fn u4(px: usize, row: AttrRow) -> float32x4_t {
        let rb = vdupq_n_f64(row.row_base);
        let d = vdupq_n_f64(row.ddx);
        let o = vdupq_n_f64(row.ox);
        let c01 = pair_f64(px as f64 + 0.5, (px + 1) as f64 + 0.5);
        let c23 = pair_f64((px + 2) as f64 + 0.5, (px + 3) as f64 + 0.5);
        let u01 = vaddq_f64(vmulq_f64(vsubq_f64(c01, o), d), rb);
        let u23 = vaddq_f64(vmulq_f64(vsubq_f64(c23, o), d), rb);
        vcombine_f32(vcvt_f32_f64(u01), vcvt_f32_f64(u23))
    }

    #[inline]
    #[target_feature(enable = "neon")]
    fn blend4(
        blend: BlendMode,
        span: &mut [f32],
        i: usize,
        sample: float32x4_t,
        va: float32x4_t,
        vb: float32x4_t,
    ) {
        match blend {
            BlendMode::Replace => store4(span, i, sample),
            BlendMode::Additive => store4(span, i, vaddq_f32(load4(span, i), sample)),
            BlendMode::Max => store4(span, i, max4(load4(span, i), sample)),
            BlendMode::Alpha(_) => {
                let d = load4(span, i);
                store4(span, i, vaddq_f32(vmulq_f32(sample, va), vmulq_f32(d, vb)));
            }
        }
    }

    #[inline]
    #[target_feature(enable = "neon")]
    fn alpha4(blend: BlendMode) -> (float32x4_t, float32x4_t) {
        match blend {
            BlendMode::Alpha(a) => {
                let alpha = a.value();
                (vdupq_n_f32(alpha), vdupq_n_f32(1.0 - alpha))
            }
            _ => (vdupq_n_f32(0.0), vdupq_n_f32(0.0)),
        }
    }

    #[target_feature(enable = "neon")]
    pub(super) fn blend_block_neon(mode: BlendMode, dst: &mut [f32], src: &[f32]) {
        let n = dst.len() - dst.len() % 4;
        match mode {
            BlendMode::Replace => dst.copy_from_slice(src),
            BlendMode::Additive => {
                let mut i = 0;
                while i < n {
                    store4(dst, i, vaddq_f32(load4(dst, i), load4(src, i)));
                    i += 4;
                }
                for (d, s) in dst[n..].iter_mut().zip(&src[n..]) {
                    *d += *s;
                }
            }
            BlendMode::Max => {
                let mut i = 0;
                while i < n {
                    store4(dst, i, max4(load4(dst, i), load4(src, i)));
                    i += 4;
                }
                for (d, s) in dst[n..].iter_mut().zip(&src[n..]) {
                    *d = if *s > *d { *s } else { *d };
                }
            }
            BlendMode::Alpha(a) => {
                let alpha = a.value();
                let va = vdupq_n_f32(alpha);
                let vb = vdupq_n_f32(1.0 - alpha);
                let mut i = 0;
                while i < n {
                    let blended =
                        vaddq_f32(vmulq_f32(load4(src, i), va), vmulq_f32(load4(dst, i), vb));
                    store4(dst, i, blended);
                    i += 4;
                }
                for (d, s) in dst[n..].iter_mut().zip(&src[n..]) {
                    *d = *s * alpha + *d * (1.0 - alpha);
                }
            }
        }
    }

    #[target_feature(enable = "neon")]
    pub(super) fn blend_uniform_neon(mode: BlendMode, dst: &mut [f32], src: f32) {
        let n = dst.len() - dst.len() % 4;
        let vs = vdupq_n_f32(src);
        match mode {
            BlendMode::Replace => dst.fill(src),
            BlendMode::Additive => {
                let mut i = 0;
                while i < n {
                    store4(dst, i, vaddq_f32(load4(dst, i), vs));
                    i += 4;
                }
                for d in dst[n..].iter_mut() {
                    *d += src;
                }
            }
            BlendMode::Max => {
                let mut i = 0;
                while i < n {
                    store4(dst, i, max4(load4(dst, i), vs));
                    i += 4;
                }
                for d in dst[n..].iter_mut() {
                    *d = if src > *d { src } else { *d };
                }
            }
            BlendMode::Alpha(a) => {
                let alpha = a.value();
                let va = vdupq_n_f32(alpha);
                let vb = vdupq_n_f32(1.0 - alpha);
                let mut i = 0;
                while i < n {
                    let blended = vaddq_f32(vmulq_f32(vs, va), vmulq_f32(load4(dst, i), vb));
                    store4(dst, i, blended);
                    i += 4;
                }
                for d in dst[n..].iter_mut() {
                    *d = src * alpha + *d * (1.0 - alpha);
                }
            }
        }
    }

    #[target_feature(enable = "neon")]
    pub(super) fn copy_slice_neon(dst: &mut [f32], src: &[f32]) {
        let n = dst.len() - dst.len() % 4;
        let mut i = 0;
        while i < n {
            store4(dst, i, load4(src, i));
            i += 4;
        }
        dst[n..].copy_from_slice(&src[n..]);
    }

    #[target_feature(enable = "neon")]
    pub(super) fn fold_copy_neon(dst: &mut [f32], srcs: &[&[f32]]) {
        let n = dst.len() - dst.len() % 4;
        match *srcs {
            [a] => copy_slice_neon(dst, a),
            [a, b] => {
                let mut i = 0;
                while i < n {
                    store4(dst, i, vaddq_f32(load4(a, i), load4(b, i)));
                    i += 4;
                }
                for (i, d) in dst.iter_mut().enumerate().skip(n) {
                    *d = a[i] + b[i];
                }
            }
            [a, b, c] => {
                let mut i = 0;
                while i < n {
                    let sum = vaddq_f32(vaddq_f32(load4(a, i), load4(b, i)), load4(c, i));
                    store4(dst, i, sum);
                    i += 4;
                }
                for (i, d) in dst.iter_mut().enumerate().skip(n) {
                    *d = (a[i] + b[i]) + c[i];
                }
            }
            [a, b, c, e] => {
                let mut i = 0;
                while i < n {
                    let sum = vaddq_f32(
                        vaddq_f32(vaddq_f32(load4(a, i), load4(b, i)), load4(c, i)),
                        load4(e, i),
                    );
                    store4(dst, i, sum);
                    i += 4;
                }
                for (i, d) in dst.iter_mut().enumerate().skip(n) {
                    *d = ((a[i] + b[i]) + c[i]) + e[i];
                }
            }
            _ => unreachable!("fold_copy takes 1-4 sources"),
        }
    }

    #[target_feature(enable = "neon")]
    pub(super) fn fold_acc_neon(dst: &mut [f32], srcs: &[&[f32]]) {
        let n = dst.len() - dst.len() % 4;
        match *srcs {
            [a] => {
                let mut i = 0;
                while i < n {
                    store4(dst, i, vaddq_f32(load4(dst, i), load4(a, i)));
                    i += 4;
                }
                for (i, d) in dst.iter_mut().enumerate().skip(n) {
                    *d += a[i];
                }
            }
            [a, b] => {
                let mut i = 0;
                while i < n {
                    let sum = vaddq_f32(vaddq_f32(load4(dst, i), load4(a, i)), load4(b, i));
                    store4(dst, i, sum);
                    i += 4;
                }
                for (i, d) in dst.iter_mut().enumerate().skip(n) {
                    *d = (*d + a[i]) + b[i];
                }
            }
            [a, b, c] => {
                let mut i = 0;
                while i < n {
                    let sum = vaddq_f32(
                        vaddq_f32(vaddq_f32(load4(dst, i), load4(a, i)), load4(b, i)),
                        load4(c, i),
                    );
                    store4(dst, i, sum);
                    i += 4;
                }
                for (i, d) in dst.iter_mut().enumerate().skip(n) {
                    *d = ((*d + a[i]) + b[i]) + c[i];
                }
            }
            [a, b, c, e] => {
                let mut i = 0;
                while i < n {
                    let sum = vaddq_f32(
                        vaddq_f32(
                            vaddq_f32(vaddq_f32(load4(dst, i), load4(a, i)), load4(b, i)),
                            load4(c, i),
                        ),
                        load4(e, i),
                    );
                    store4(dst, i, sum);
                    i += 4;
                }
                for (i, d) in dst.iter_mut().enumerate().skip(n) {
                    *d = (((*d + a[i]) + b[i]) + c[i]) + e[i];
                }
            }
            _ => unreachable!("fold_acc takes 1-4 sources"),
        }
    }

    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "neon")]
    pub(super) fn fill_hoisted_neon(
        span: &mut [f32],
        lo: usize,
        u_row: AttrRow,
        r0: &[f32],
        r1: &[f32],
        ty: f32,
        intensity: f32,
        blend: BlendMode,
    ) {
        let tex_w = r0.len();
        let vw = vdupq_n_f32(tex_w as f32);
        let vhalf = vdupq_n_f32(0.5);
        let vzero = vdupq_n_f32(0.0);
        let vhi = vdupq_n_f32(tex_w as f32 - 1.0);
        let vone = vdupq_n_f32(1.0);
        let vty = vdupq_n_f32(ty);
        let vint = vdupq_n_f32(intensity);
        let (va, vb) = alpha4(blend);
        let n = span.len() - span.len() % 4;
        let mut i = 0;
        while i < n {
            let u = u4(lo + i, u_row);
            let fx = clamp4(vsubq_f32(vmulq_f32(u, vw), vhalf), vzero, vhi);
            let tx0i = vcvtq_s32_f32(fx);
            let tx0f = vcvtq_f32_s32(tx0i);
            let tx = vsubq_f32(fx, tx0f);
            let tx1f = vminq_f32(vaddq_f32(tx0f, vone), vhi);
            let tx1i = vcvtq_s32_f32(tx1f);
            let i0 = lanes_i32(tx0i);
            let i1 = lanes_i32(tx1i);
            let a = from_lanes([
                r0[i0[0] as usize],
                r0[i0[1] as usize],
                r0[i0[2] as usize],
                r0[i0[3] as usize],
            ]);
            let b = from_lanes([
                r0[i1[0] as usize],
                r0[i1[1] as usize],
                r0[i1[2] as usize],
                r0[i1[3] as usize],
            ]);
            let c = from_lanes([
                r1[i0[0] as usize],
                r1[i0[1] as usize],
                r1[i0[2] as usize],
                r1[i0[3] as usize],
            ]);
            let d = from_lanes([
                r1[i1[0] as usize],
                r1[i1[1] as usize],
                r1[i1[2] as usize],
                r1[i1[3] as usize],
            ]);
            let bottom = vaddq_f32(a, vmulq_f32(vsubq_f32(b, a), tx));
            let top = vaddq_f32(c, vmulq_f32(vsubq_f32(d, c), tx));
            let lerped = vaddq_f32(bottom, vmulq_f32(vsubq_f32(top, bottom), vty));
            blend4(blend, span, i, vmulq_f32(lerped, vint), va, vb);
            i += 4;
        }
        for (offset, dst) in span[n..].iter_mut().enumerate() {
            let px = lo + n + offset;
            let u = u_row.at(px) as f32;
            let fx = (u * tex_w as f32 - 0.5).clamp(0.0, tex_w as f32 - 1.0);
            let tx0 = fx.floor() as usize;
            let tx1 = (tx0 + 1).min(tex_w - 1);
            let tx = fx - tx0 as f32;
            let a = r0[tx0];
            let b = r0[tx1];
            let c = r1[tx0];
            let d = r1[tx1];
            let bottom = a + (b - a) * tx;
            let top = c + (d - c) * tx;
            let sample = (bottom + (top - bottom) * ty) * intensity;
            *dst = blend.apply(*dst, sample);
        }
    }

    #[target_feature(enable = "neon")]
    pub(super) fn fill_nearest_row_neon(
        span: &mut [f32],
        lo: usize,
        u_row: AttrRow,
        tex_row: &[f32],
        intensity: f32,
        blend: BlendMode,
    ) {
        let tw = tex_row.len();
        let vw = vdupq_n_f32(tw as f32);
        let vzero = vdupq_n_f32(0.0);
        let vhi = vdupq_n_f32(tw as f32 - 1.0);
        let vint = vdupq_n_f32(intensity);
        let (va, vb) = alpha4(blend);
        let n = span.len() - span.len() % 4;
        let mut i = 0;
        while i < n {
            let u = u4(lo + i, u_row);
            let t = clamp4(vmulq_f32(u, vw), vzero, vhi);
            let ti = lanes_i32(vcvtq_s32_f32(t));
            let fetched = from_lanes([
                tex_row[ti[0] as usize],
                tex_row[ti[1] as usize],
                tex_row[ti[2] as usize],
                tex_row[ti[3] as usize],
            ]);
            blend4(blend, span, i, vmulq_f32(fetched, vint), va, vb);
            i += 4;
        }
        for (offset, dst) in span[n..].iter_mut().enumerate() {
            let px = lo + n + offset;
            let sample = tex_row[nearest_index(u_row.at(px) as f32, tw)] * intensity;
            *dst = blend.apply(*dst, sample);
        }
    }

    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "neon")]
    pub(super) fn fill_nearest_2d_neon(
        span: &mut [f32],
        lo: usize,
        u_row: AttrRow,
        v_row: AttrRow,
        texels: &[f32],
        tw: usize,
        th: usize,
        intensity: f32,
        blend: BlendMode,
    ) {
        let vww = vdupq_n_f32(tw as f32);
        let vwh = vdupq_n_f32(th as f32);
        let vzero = vdupq_n_f32(0.0);
        let vxhi = vdupq_n_f32(tw as f32 - 1.0);
        let vyhi = vdupq_n_f32(th as f32 - 1.0);
        let vint = vdupq_n_f32(intensity);
        let (va, vb) = alpha4(blend);
        let n = span.len() - span.len() % 4;
        let mut i = 0;
        while i < n {
            let px = lo + i;
            let u = u4(px, u_row);
            let v = u4(px, v_row);
            let tu = clamp4(vmulq_f32(u, vww), vzero, vxhi);
            let tv = clamp4(vmulq_f32(v, vwh), vzero, vyhi);
            let xi = lanes_i32(vcvtq_s32_f32(tu));
            let yi = lanes_i32(vcvtq_s32_f32(tv));
            let fetched = from_lanes([
                texels[yi[0] as usize * tw + xi[0] as usize],
                texels[yi[1] as usize * tw + xi[1] as usize],
                texels[yi[2] as usize * tw + xi[2] as usize],
                texels[yi[3] as usize * tw + xi[3] as usize],
            ]);
            blend4(blend, span, i, vmulq_f32(fetched, vint), va, vb);
            i += 4;
        }
        for (offset, dst) in span[n..].iter_mut().enumerate() {
            let px = lo + n + offset;
            let tx = nearest_index(u_row.at(px) as f32, tw);
            let ty = nearest_index(v_row.at(px) as f32, th);
            let sample = texels[ty * tw + tx] * intensity;
            *dst = blend.apply(*dst, sample);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blend::AlphaFactor;
    use proptest::prelude::*;
    use proptest::TestRng;

    /// Deterministic mixed-sign data with signed zeros sprinkled in, so the
    /// Max blend's `±0.0` corner is exercised by every run.
    fn data(tag: &str, seed: u64, len: usize) -> Vec<f32> {
        let mut rng = TestRng::deterministic(&format!("simd-{tag}-{seed}"));
        (0..len)
            .map(|_| {
                let bits = rng.next_u64();
                match bits & 0x1F {
                    0 => 0.0,
                    1 => -0.0,
                    _ => ((bits >> 40) as f32 / (1u64 << 24) as f32) * 4.0 - 2.0,
                }
            })
            .collect()
    }

    fn mode_from(raw: u8) -> BlendMode {
        match raw {
            0 => BlendMode::Replace,
            1 => BlendMode::Additive,
            2 => BlendMode::Max,
            _ => BlendMode::Alpha(AlphaFactor::new(0.375)),
        }
    }

    /// Non-scalar levels this host can run.
    fn vector_levels() -> Vec<SimdLevel> {
        available()
            .into_iter()
            .filter(|l| *l != SimdLevel::Scalar)
            .collect()
    }

    fn assert_bits_eq(got: &[f32], want: &[f32], what: &str) -> Result<(), TestCaseError> {
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            prop_assert_eq!(
                g.to_bits(),
                w.to_bits(),
                "{} diverged at index {}: got {:?} ({:#x}), want {:?} ({:#x})",
                what,
                i,
                g,
                g.to_bits(),
                w,
                w.to_bits()
            );
        }
        Ok(())
    }

    #[test]
    fn from_name_roundtrip_and_off_alias() {
        for level in [
            SimdLevel::Scalar,
            SimdLevel::Sse2,
            SimdLevel::Avx2,
            SimdLevel::Neon,
        ] {
            assert_eq!(SimdLevel::from_name(level.name()), Some(level));
        }
        assert_eq!(SimdLevel::from_name("off"), Some(SimdLevel::Scalar));
        assert_eq!(SimdLevel::from_name("avx512"), None);
        assert_eq!(SimdLevel::from_name(""), None);
    }

    #[test]
    fn resolve_honours_supported_requests_and_falls_back() {
        let detected = detect();
        // No override: detection wins.
        assert_eq!(resolve(None, detected), detected);
        // `off` always resolves to scalar.
        assert_eq!(resolve(Some("off"), detected), SimdLevel::Scalar);
        assert_eq!(resolve(Some("scalar"), detected), SimdLevel::Scalar);
        // Unknown levels fall back to detection.
        assert_eq!(resolve(Some("avx512"), detected), detected);
        // Every available level is honoured when requested explicitly.
        for level in available() {
            assert_eq!(resolve(Some(level.name()), detected), level);
        }
        // A level from the other architecture is unsupported, so detection
        // wins.
        #[cfg(target_arch = "x86_64")]
        assert_eq!(resolve(Some("neon"), detected), detected);
        #[cfg(target_arch = "aarch64")]
        assert_eq!(resolve(Some("avx2"), detected), detected);
    }

    #[test]
    fn available_is_scalar_first_and_contains_detected() {
        let levels = available();
        assert_eq!(levels[0], SimdLevel::Scalar);
        assert!(levels.contains(&detected()));
    }

    #[test]
    fn force_overrides_and_restores_active() {
        let resolved = active();
        for level in available() {
            force(Some(level));
            assert_eq!(active(), level);
        }
        force(None);
        assert_eq!(active(), resolved);
    }

    #[test]
    fn max_blend_matches_scalar_on_signed_zeros() {
        let dst0 = [0.0f32, -0.0, 0.0, -0.0, 0.0, -0.0, 0.0, -0.0, -0.0, 0.0];
        let src = [-0.0f32, 0.0, 0.0, -0.0, -0.0, 0.0, 0.0, -0.0, 0.0, -0.0];
        for level in vector_levels() {
            let mut want = dst0;
            blend_block(SimdLevel::Scalar, BlendMode::Max, &mut want, &src);
            let mut got = dst0;
            blend_block(level, BlendMode::Max, &mut got, &src);
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                assert_eq!(
                    g.to_bits(),
                    w.to_bits(),
                    "{} Max blend signed-zero mismatch at {i}",
                    level.name()
                );
            }
        }
    }

    proptest! {
        #[test]
        fn blend_block_bit_identical(seed in 0u64..1_000_000, len in 0usize..41, raw_mode in 0u8..4) {
            let mode = mode_from(raw_mode);
            let dst0 = data("dst", seed, len);
            let src = data("src", seed, len);
            let mut want = dst0.clone();
            blend_block(SimdLevel::Scalar, mode, &mut want, &src);
            for level in vector_levels() {
                let mut got = dst0.clone();
                blend_block(level, mode, &mut got, &src);
                assert_bits_eq(&got, &want, level.name())?;
            }
        }

        #[test]
        fn blend_uniform_bit_identical(seed in 0u64..1_000_000, len in 0usize..41, raw_mode in 0u8..4, src in -2.0f32..2.0) {
            let mode = mode_from(raw_mode);
            let dst0 = data("udst", seed, len);
            let mut want = dst0.clone();
            blend_uniform(SimdLevel::Scalar, mode, &mut want, src);
            for level in vector_levels() {
                let mut got = dst0.clone();
                blend_uniform(level, mode, &mut got, src);
                assert_bits_eq(&got, &want, level.name())?;
            }
        }

        #[test]
        fn copy_and_folds_bit_identical(seed in 0u64..1_000_000, len in 0usize..41, k in 1usize..5) {
            let sources: Vec<Vec<f32>> = (0..k)
                .map(|s| data(&format!("fold{s}"), seed, len))
                .collect();
            let refs: Vec<&[f32]> = sources.iter().map(|v| v.as_slice()).collect();
            let dst0 = data("folddst", seed, len);
            for level in vector_levels() {
                let mut want = dst0.clone();
                fold_copy(SimdLevel::Scalar, &mut want, &refs);
                let mut got = dst0.clone();
                fold_copy(level, &mut got, &refs);
                assert_bits_eq(&got, &want, level.name())?;

                let mut want = dst0.clone();
                fold_acc(SimdLevel::Scalar, &mut want, &refs);
                let mut got = dst0.clone();
                fold_acc(level, &mut got, &refs);
                assert_bits_eq(&got, &want, level.name())?;

                let mut got = dst0.clone();
                copy_slice(level, &mut got, &sources[0]);
                assert_bits_eq(&got, &sources[0], level.name())?;
            }
        }

        #[test]
        fn fill_hoisted_bit_identical(
            seed in 0u64..1_000_000,
            len in 0usize..41,
            lo in 0usize..23,
            raw_mode in 0u8..4,
            tex_w in 1usize..35,
            row_base in -0.4f64..1.4,
            ddx in -0.06f64..0.06,
            ty in 0.0f32..1.0,
        ) {
            let mode = mode_from(raw_mode);
            let u_row = AttrRow { row_base, ddx, ox: 0.25 };
            let r0 = data("hoist-r0", seed, tex_w);
            let r1 = data("hoist-r1", seed, tex_w);
            let dst0 = data("hoist-dst", seed, len);
            let mut want = dst0.clone();
            fill_hoisted(SimdLevel::Scalar, &mut want, lo, u_row, &r0, &r1, ty, 0.8, mode);
            for level in vector_levels() {
                let mut got = dst0.clone();
                fill_hoisted(level, &mut got, lo, u_row, &r0, &r1, ty, 0.8, mode);
                assert_bits_eq(&got, &want, level.name())?;
            }
        }

        #[test]
        fn fill_nearest_row_bit_identical(
            seed in 0u64..1_000_000,
            len in 0usize..41,
            lo in 0usize..23,
            raw_mode in 0u8..4,
            tw in 1usize..35,
            row_base in -0.4f64..1.4,
            ddx in -0.06f64..0.06,
        ) {
            let mode = mode_from(raw_mode);
            let u_row = AttrRow { row_base, ddx, ox: 0.25 };
            let tex_row = data("near-row", seed, tw);
            let dst0 = data("near-dst", seed, len);
            let mut want = dst0.clone();
            fill_nearest_row(SimdLevel::Scalar, &mut want, lo, u_row, &tex_row, 0.8, mode);
            for level in vector_levels() {
                let mut got = dst0.clone();
                fill_nearest_row(level, &mut got, lo, u_row, &tex_row, 0.8, mode);
                assert_bits_eq(&got, &want, level.name())?;
            }
        }

        #[test]
        fn fill_nearest_2d_bit_identical(
            seed in 0u64..1_000_000,
            len in 0usize..41,
            lo in 0usize..23,
            raw_mode in 0u8..4,
            tw in 1usize..19,
            th in 1usize..19,
            u_base in -0.4f64..1.4,
            v_base in -0.4f64..1.4,
            ddx in -0.06f64..0.06,
        ) {
            let mode = mode_from(raw_mode);
            let u_row = AttrRow { row_base: u_base, ddx, ox: 0.25 };
            let v_row = AttrRow { row_base: v_base, ddx: -ddx, ox: 0.25 };
            let texels = data("near2d-tex", seed, tw * th);
            let dst0 = data("near2d-dst", seed, len);
            let mut want = dst0.clone();
            fill_nearest_2d(SimdLevel::Scalar, &mut want, lo, u_row, v_row, &texels, tw, th, 0.8, mode);
            for level in vector_levels() {
                let mut got = dst0.clone();
                fill_nearest_2d(level, &mut got, lo, u_row, v_row, &texels, tw, th, 0.8, mode);
                assert_bits_eq(&got, &want, level.name())?;
            }
        }
    }
}
