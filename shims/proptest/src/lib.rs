//! Offline stand-in for `proptest`.
//!
//! Supports the subset the workspace uses: the `proptest!` block macro with
//! an optional `#![proptest_config(...)]` attribute, numeric range
//! strategies (`lo..hi`, `lo..=hi`), `collection::vec`, and
//! `prop_assert!`/`prop_assert_eq!`.
//! Instead of shrinking random failures, cases are generated from a
//! deterministic per-test seed, so failures reproduce exactly across runs.

use std::ops::{Range, RangeInclusive};

/// Everything the `proptest!` blocks need in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Per-block configuration (only the case count is honoured).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the suite fast while still
        // probing each property from many directions.
        ProptestConfig { cases: 64 }
    }
}

/// A failed property case; produced by the `prop_assert*` macros.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Deterministic SplitMix64 generator used for case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name, so every property gets its own
    /// reproducible stream.
    pub fn deterministic(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: hash }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / 9007199254740992.0)
    }
}

/// Value-generation strategies; numeric ranges implement this.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + (self.end() - self.start()) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (self.end - self.start) * (rng.unit_f64() as f32)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128) as u128;
                assert!(span > 0, "cannot generate from empty range");
                (self.start as i128 + ((rng.next_u64() as u128) % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                (*self.start() as i128 + ((rng.next_u64() as u128) % span) as i128) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from a range; built by
    /// [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `Vec` strategy drawing a length from `len`, then that many elements
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = Strategy::generate(&self.len, rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over deterministically generated
/// inputs; the failing case's inputs are reported on panic.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        $vis:vis fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            $vis fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut rng); )+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                            $body
                            Ok(())
                        })();
                    if let Err(err) = outcome {
                        panic!(
                            "property '{}' failed at case {}: {}\n  inputs: {}",
                            stringify!($name),
                            case,
                            err,
                            format!(
                                concat!($(stringify!($arg), " = {:?}  ",)+),
                                $($arg),+
                            ),
                        );
                    }
                }
            }
        )*
    };
}

/// Property-scoped assertion: fails only the current case, with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Property-scoped equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    proptest! {
        #[test]
        fn ranges_respected(x in 0.25f64..0.75, n in 3usize..7) {
            prop_assert!((0.25..0.75).contains(&x));
            prop_assert!((3..7).contains(&n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        /// Doc comments and config are accepted.
        #[test]
        fn config_controls_cases(seed in 0u64..100) {
            prop_assert_eq!(seed, seed);
        }
    }

    #[test]
    fn deterministic_rng_reproduces() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "property 'always_fails' failed")]
    fn failures_report_inputs() {
        mod inner {
            #[allow(unused_imports)]
            use crate::prelude::*;
            proptest! {
                pub fn always_fails(v in 0u32..10) {
                    prop_assert!(v > 100, "v was {}", v);
                }
            }
        }
        inner::always_fails();
    }
}
