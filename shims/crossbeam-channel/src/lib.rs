//! Offline stand-in for `crossbeam-channel`, backed by `std::sync::mpsc`.
//!
//! Covers the subset the workspace uses: `unbounded`, `bounded`, cloneable
//! senders, `recv`/`try_recv`/`iter` on the receiver, and crossbeam's error
//! types. Bounded channels block the sender when full, exactly like the
//! crossbeam semantics the pipe FIFO relies on.

use std::fmt;
use std::sync::mpsc;

/// Sending half of a channel.
pub enum Sender<T> {
    /// Unbounded (never blocks on send).
    Unbounded(mpsc::Sender<T>),
    /// Bounded (blocks when the queue is full).
    Bounded(mpsc::SyncSender<T>),
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        match self {
            Sender::Unbounded(s) => Sender::Unbounded(s.clone()),
            Sender::Bounded(s) => Sender::Bounded(s.clone()),
        }
    }
}

impl<T> Sender<T> {
    /// Sends a message, blocking if the channel is bounded and full.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        match self {
            Sender::Unbounded(s) => s.send(value).map_err(|e| SendError(e.0)),
            Sender::Bounded(s) => s.send(value).map_err(|e| SendError(e.0)),
        }
    }
}

/// Receiving half of a channel.
pub struct Receiver<T> {
    inner: mpsc::Receiver<T>,
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or all senders disconnect.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.inner.recv().map_err(|_| RecvError)
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.inner.try_recv().map_err(|e| match e {
            mpsc::TryRecvError::Empty => TryRecvError::Empty,
            mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
        })
    }

    /// Blocking iterator that ends when the channel is closed and drained.
    pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
        self.inner.iter()
    }
}

/// Creates a channel with unlimited capacity.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (Sender::Unbounded(tx), Receiver { inner: rx })
}

/// Creates a channel that holds at most `cap` in-flight messages.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::sync_channel(cap);
    (Sender::Bounded(tx), Receiver { inner: rx })
}

/// Error returned when sending into a channel with no receivers; carries the
/// unsent message back.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] on a closed, drained channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message available right now.
    Empty,
    /// Channel closed and drained.
    Disconnected,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_roundtrip_and_iter() {
        let (tx, rx) = unbounded();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded(1);
        tx.send(1u32).unwrap();
        let handle = std::thread::spawn(move || tx.send(2).unwrap());
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        handle.join().unwrap();
    }

    #[test]
    fn try_recv_reports_empty_then_disconnected() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_to_dropped_receiver_errors() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn cloned_senders_feed_one_receiver() {
        let (tx, rx) = bounded(16);
        let t2 = tx.clone();
        std::thread::scope(|s| {
            s.spawn(move || tx.send(1u8).unwrap());
            s.spawn(move || t2.send(2u8).unwrap());
            let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
            got.sort_unstable();
            assert_eq!(got, vec![1, 2]);
        });
    }
}
