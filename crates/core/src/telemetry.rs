//! End-to-end telemetry: lock-free latency histograms and frame-lifecycle
//! tracing.
//!
//! The paper's headline claim is a throughput number, but a live service
//! needs *distributions* — queue-wait tails, per-stage p99s — and a causal
//! view of where a slow frame spent its time. This module provides both,
//! std-only and allocation-free on the hot path:
//!
//! * [`Histogram`] — log-bucketed latency histograms over atomic `u64`
//!   buckets. Recording is a handful of relaxed atomic adds (no locks, no
//!   allocation); snapshots are mergeable and expose p50/p90/p99/max with a
//!   bounded relative error of about 3.2% (values below
//!   [`LINEAR_CUTOFF`] are exact).
//! * [`TraceSink`] — a bounded ring buffer of typed span events covering the
//!   frame lifecycle (admitted → queue-wait → advect → per-group raster →
//!   gather → cache-insert → delivered). Off by default; enabled via
//!   `SPOTNOISE_TRACE=off|ring|stderr` or programmatically with
//!   [`force_mode`]. A disabled sink is a single `Option` check per record
//!   call, so instrumented code pays nothing in production.
//! * [`TraceCtx`] — a thread-local `(actor, frame)` pair so deeply nested
//!   code (the scheduler, the cache) can tag spans with the session/channel
//!   and frame they belong to without threading ids through every call.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Values below this are recorded exactly (one bucket per integer); above
/// it, buckets are log-linear: 32 sub-buckets per octave, for a worst-case
/// relative error of `1/32` ≈ 3.2%.
pub const LINEAR_CUTOFF: u64 = 32;

/// Sub-bucket resolution: each octave above [`LINEAR_CUTOFF`] is split into
/// `2^SUB_BITS` equal-width buckets.
const SUB_BITS: u32 = 5;

/// Number of sub-buckets per octave.
const SUBS_PER_OCTAVE: usize = 1 << SUB_BITS;

/// Total bucket count: 32 exact buckets plus 32 sub-buckets for each of the
/// octaves `[2^5, 2^6) .. [2^63, 2^64)`.
pub const BUCKET_COUNT: usize = LINEAR_CUTOFF as usize + (64 - SUB_BITS as usize) * SUBS_PER_OCTAVE;

/// The bucket index a value lands in.
fn bucket_index(v: u64) -> usize {
    if v < LINEAR_CUTOFF {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros(); // >= SUB_BITS because v >= 32
        let sub = (v >> (exp - SUB_BITS)) & (SUBS_PER_OCTAVE as u64 - 1);
        LINEAR_CUTOFF as usize + (exp - SUB_BITS) as usize * SUBS_PER_OCTAVE + sub as usize
    }
}

/// The inclusive `[lower, upper]` value range of a bucket.
fn bucket_bounds(idx: usize) -> (u64, u64) {
    if idx < LINEAR_CUTOFF as usize {
        (idx as u64, idx as u64)
    } else {
        let block = (idx - LINEAR_CUTOFF as usize) / SUBS_PER_OCTAVE;
        let sub = ((idx - LINEAR_CUTOFF as usize) % SUBS_PER_OCTAVE) as u64;
        let exp = block as u32 + SUB_BITS;
        let width = 1u64 << (exp - SUB_BITS);
        let lower = (1u64 << exp) + sub * width;
        (lower, lower.wrapping_add(width - 1))
    }
}

/// A lock-free log-bucketed latency histogram.
///
/// Recording is wait-free (relaxed atomic adds); reading takes a consistent
/// *enough* [`HistogramSnapshot`] — counters may be mid-update while the
/// snapshot walks the buckets, but each bucket is individually exact and the
/// percentiles are computed against the snapshot's own total, so a snapshot
/// is always internally consistent with itself.
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count.load(Ordering::Relaxed))
            .field("sum", &self.sum.load(Ordering::Relaxed))
            .field("max", &self.max.load(Ordering::Relaxed))
            .finish()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..BUCKET_COUNT).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            buckets: buckets.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value (microseconds by convention). Wait-free.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a [`Duration`] in microseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_micros() as u64);
    }

    /// Number of values recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Takes a snapshot of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`], mergeable and queryable.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    /// Total number of recorded values.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Largest recorded value (exact).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: vec![0; BUCKET_COUNT],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Folds another snapshot into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// The nearest-rank percentile `q` (in `[0, 100]`). Values below
    /// [`LINEAR_CUTOFF`] are exact; above it the result overshoots the true
    /// value by at most one bucket width (≈ 3.2% relative). Returns 0 for an
    /// empty snapshot.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q / 100.0) * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let (_, upper) = bucket_bounds(idx);
                return upper.min(self.max);
            }
        }
        self.max
    }

    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Cumulative `(upper_bound, count_at_or_below)` pairs for every
    /// non-empty bucket, in ascending order — the shape a Prometheus
    /// histogram exposition wants (`le` buckets).
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            cum += n;
            out.push((bucket_bounds(idx).1, cum));
        }
        out
    }
}

/// Where trace events go.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMode {
    /// Tracing disabled (the default) — record calls are a single branch.
    Off,
    /// Events go to a bounded in-memory ring (served by `GET /trace`).
    Ring,
    /// Events go to the ring *and* are printed to stderr as they happen.
    Stderr,
}

/// Parses a `SPOTNOISE_TRACE` value. Unknown strings parse to `None` (the
/// caller falls back to [`TraceMode::Off`]).
pub fn parse_trace_mode(s: &str) -> Option<TraceMode> {
    match s {
        "off" => Some(TraceMode::Off),
        "ring" => Some(TraceMode::Ring),
        "stderr" => Some(TraceMode::Stderr),
        _ => None,
    }
}

/// Programmatic override of the trace mode: 0 = no override, 1 = Off,
/// 2 = Ring, 3 = Stderr.
static FORCED_MODE: AtomicU8 = AtomicU8::new(0);

/// Forces the trace mode for subsequently created sinks, overriding the
/// `SPOTNOISE_TRACE` environment variable. Pass `None` to restore
/// environment-driven resolution. Used by benchmarks (to measure overhead
/// deterministically) and tests; precedence is force > env > off.
pub fn force_mode(mode: Option<TraceMode>) {
    let v = match mode {
        None => 0,
        Some(TraceMode::Off) => 1,
        Some(TraceMode::Ring) => 2,
        Some(TraceMode::Stderr) => 3,
    };
    FORCED_MODE.store(v, Ordering::SeqCst);
}

/// Resolves the effective trace mode: a [`force_mode`] override wins, then
/// the `SPOTNOISE_TRACE` environment variable, then [`TraceMode::Off`].
pub fn trace_mode() -> TraceMode {
    match FORCED_MODE.load(Ordering::SeqCst) {
        1 => return TraceMode::Off,
        2 => return TraceMode::Ring,
        3 => return TraceMode::Stderr,
        _ => {}
    }
    std::env::var("SPOTNOISE_TRACE")
        .ok()
        .and_then(|v| parse_trace_mode(&v))
        .unwrap_or(TraceMode::Off)
}

/// A stage of the frame lifecycle, as traced by a [`TraceSink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceStage {
    /// A frame request, end to end (admission to reply).
    Request,
    /// Time a job spent waiting in the admission queue.
    QueueWait,
    /// Particle advection (pipeline step 2).
    Advect,
    /// Texture synthesis (pipeline step 3), all groups.
    Synthesize,
    /// One process group's rasterization inside a synthesis step.
    RasterGroup,
    /// The streaming gather composing partial textures.
    Gather,
    /// Display post-processing (pipeline step 4).
    Render,
    /// A frame-cache insertion.
    CacheInsert,
    /// A frame handed to a channel subscriber.
    Deliver,
    /// A graphics-pipe checkout from the pipe pool.
    PipeCheckout,
    /// A shared channel serving (and possibly synthesizing) a frame.
    ChannelServe,
}

impl TraceStage {
    /// Stable lower-case name (used by `/trace` and the stderr printer).
    pub fn name(&self) -> &'static str {
        match self {
            TraceStage::Request => "request",
            TraceStage::QueueWait => "queue_wait",
            TraceStage::Advect => "advect",
            TraceStage::Synthesize => "synthesize",
            TraceStage::RasterGroup => "raster_group",
            TraceStage::Gather => "gather",
            TraceStage::Render => "render",
            TraceStage::CacheInsert => "cache_insert",
            TraceStage::Deliver => "deliver",
            TraceStage::PipeCheckout => "pipe_checkout",
            TraceStage::ChannelServe => "channel_serve",
        }
    }
}

/// The `(actor, frame)` identity spans are tagged with. `actor` is a
/// session id for private sessions and a channel queue id for shared
/// channels; 0 means "unknown".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceCtx {
    /// Session or channel-queue id.
    pub actor: u64,
    /// Frame index being produced.
    pub frame: u64,
}

thread_local! {
    static CURRENT_CTX: Cell<TraceCtx> = const { Cell::new(TraceCtx { actor: 0, frame: 0 }) };
}

/// The calling thread's current trace context.
pub fn ctx() -> TraceCtx {
    CURRENT_CTX.with(Cell::get)
}

/// Sets the calling thread's trace context, restoring the previous one when
/// the returned guard drops.
pub fn set_ctx(new: TraceCtx) -> CtxGuard {
    let prev = CURRENT_CTX.with(|c| c.replace(new));
    CtxGuard {
        prev,
        _not_send: std::marker::PhantomData,
    }
}

/// Restores the previous thread-local [`TraceCtx`] on drop.
pub struct CtxGuard {
    prev: TraceCtx,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        CURRENT_CTX.with(|c| c.set(self.prev));
    }
}

impl std::fmt::Debug for CtxGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CtxGuard")
            .field("prev", &self.prev)
            .finish()
    }
}

/// One recorded span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// The lifecycle stage.
    pub stage: TraceStage,
    /// Span start, microseconds since the sink's epoch.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
    /// Session or channel-queue id (0 when unknown).
    pub actor: u64,
    /// Frame index (0 when unknown).
    pub frame: u64,
    /// Stage-specific detail: raster group index, pool-reuse flag,
    /// cache-lookahead flag; 0 otherwise.
    pub detail: u64,
}

/// Default ring capacity of [`TraceSink::from_env`].
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// Ring slot: the event plus its 1-based sequence number, so readers can
/// reassemble wrapped slots in recording order.
type TraceSlot = Mutex<Option<(u64, TraceEvent)>>;

struct SinkInner {
    stderr: bool,
    epoch: Instant,
    /// Events ever recorded; an event's 1-based sequence number places it at
    /// slot `(seq - 1) % slots.len()`.
    seq: AtomicU64,
    slots: Box<[TraceSlot]>,
}

/// A handle to the trace ring. Cheap to clone (an `Arc` bump) and cheap to
/// carry disabled (`Default` is a disabled sink; recording through it is one
/// branch). Instrumented layers hold a `TraceSink` unconditionally; whether
/// anything is recorded is decided once, at construction, from the resolved
/// [`trace_mode`].
#[derive(Clone, Default)]
pub struct TraceSink {
    inner: Option<Arc<SinkInner>>,
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSink")
            .field("enabled", &self.is_enabled())
            .field("recorded", &self.recorded())
            .finish()
    }
}

impl TraceSink {
    /// A sink that records nothing.
    pub fn disabled() -> Self {
        TraceSink { inner: None }
    }

    /// A sink in an explicit mode with the given ring capacity.
    pub fn with_mode(mode: TraceMode, capacity: usize) -> Self {
        let stderr = match mode {
            TraceMode::Off => return TraceSink::disabled(),
            TraceMode::Ring => false,
            TraceMode::Stderr => true,
        };
        let slots: Vec<Mutex<Option<(u64, TraceEvent)>>> =
            (0..capacity.max(1)).map(|_| Mutex::new(None)).collect();
        TraceSink {
            inner: Some(Arc::new(SinkInner {
                stderr,
                epoch: Instant::now(),
                seq: AtomicU64::new(0),
                slots: slots.into_boxed_slice(),
            })),
        }
    }

    /// A sink in the mode resolved by [`trace_mode`] (force > env > off).
    pub fn from_env(capacity: usize) -> Self {
        TraceSink::with_mode(trace_mode(), capacity)
    }

    /// Whether the sink records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Events ever recorded (including those already overwritten in the
    /// ring). 0 for a disabled sink.
    pub fn recorded(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.seq.load(Ordering::Relaxed))
    }

    /// Records a span tagged with the calling thread's [`TraceCtx`].
    pub fn record(&self, stage: TraceStage, start: Instant, dur: Duration) {
        if self.inner.is_some() {
            self.record_with(stage, ctx(), start, dur, 0);
        }
    }

    /// Records a span with an explicit context and detail value.
    pub fn record_with(
        &self,
        stage: TraceStage,
        ctx: TraceCtx,
        start: Instant,
        dur: Duration,
        detail: u64,
    ) {
        let Some(inner) = self.inner.as_ref() else {
            return;
        };
        let event = TraceEvent {
            stage,
            start_us: start
                .checked_duration_since(inner.epoch)
                .unwrap_or_default()
                .as_micros() as u64,
            dur_us: dur.as_micros() as u64,
            actor: ctx.actor,
            frame: ctx.frame,
            detail,
        };
        let seq = inner.seq.fetch_add(1, Ordering::Relaxed) + 1;
        let idx = ((seq - 1) % inner.slots.len() as u64) as usize;
        *inner.slots[idx].lock().expect("trace slot poisoned") = Some((seq, event));
        if inner.stderr {
            eprintln!(
                "[trace] {} actor={} frame={} start_us={} dur_us={} detail={}",
                event.stage.name(),
                event.actor,
                event.frame,
                event.start_us,
                event.dur_us,
                event.detail,
            );
        }
    }

    /// The most recent (up to) `last` events, oldest first.
    pub fn recent(&self, last: usize) -> Vec<TraceEvent> {
        let Some(inner) = self.inner.as_ref() else {
            return Vec::new();
        };
        let mut tagged: Vec<(u64, TraceEvent)> = inner
            .slots
            .iter()
            .filter_map(|s| *s.lock().expect("trace slot poisoned"))
            .collect();
        tagged.sort_by_key(|(seq, _)| *seq);
        let skip = tagged.len().saturating_sub(last);
        tagged.into_iter().skip(skip).map(|(_, e)| e).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn small_values_have_exact_buckets() {
        for v in 0..LINEAR_CUTOFF {
            let idx = bucket_index(v);
            assert_eq!(bucket_bounds(idx), (v, v));
        }
    }

    #[test]
    fn bucket_bounds_contain_their_values() {
        let probes = [
            0u64,
            1,
            31,
            32,
            33,
            63,
            64,
            65,
            100,
            1023,
            1024,
            1025,
            123_456_789,
            u64::MAX / 2,
            u64::MAX - 1,
            u64::MAX,
        ];
        for &v in &probes {
            let idx = bucket_index(v);
            let (lo, hi) = bucket_bounds(idx);
            assert!(lo <= v && v <= hi, "v={v} idx={idx} bounds=({lo},{hi})");
        }
        // Bucket widths stay within the advertised 1/32 relative error.
        for idx in LINEAR_CUTOFF as usize..BUCKET_COUNT {
            let (lo, hi) = bucket_bounds(idx);
            assert!(hi - lo <= lo / LINEAR_CUTOFF, "idx={idx} ({lo},{hi})");
        }
        // The top bucket reaches u64::MAX.
        assert_eq!(bucket_bounds(BUCKET_COUNT - 1).1, u64::MAX);
    }

    #[test]
    fn buckets_are_monotone_in_value() {
        let mut prev = 0usize;
        for v in 0..5000u64 {
            let idx = bucket_index(v);
            assert!(idx >= prev, "v={v}");
            prev = idx;
        }
    }

    #[test]
    fn exact_percentiles_below_cutoff() {
        let h = Histogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 32);
        // Nearest rank: rank(50) = 16 -> 16th smallest = 15.
        assert_eq!(s.percentile(50.0), 15);
        assert_eq!(s.percentile(100.0), 31);
        assert_eq!(s.max, 31);
        assert!((s.mean() - 15.5).abs() < 1e-9);
    }

    #[test]
    fn max_is_exact_and_caps_percentiles() {
        let h = Histogram::new();
        h.record(1_000_003);
        let s = h.snapshot();
        assert_eq!(s.max, 1_000_003);
        // The bucket upper bound overshoots, but the percentile is capped at
        // the exact max.
        assert_eq!(s.percentile(99.0), 1_000_003);
    }

    #[test]
    fn merge_combines_counts_and_max() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in 0..10u64 {
            a.record(v);
        }
        for v in 100..110u64 {
            b.record(v);
        }
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.count, 20);
        assert_eq!(s.max, 109);
        assert_eq!(s.percentile(25.0), 4);
        assert!(s.percentile(90.0) >= 107);
        let cum = s.cumulative_buckets();
        assert_eq!(cum.last().unwrap().1, 20, "cumulative count reaches total");
        assert!(cum.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 < w[1].1));
    }

    #[test]
    fn empty_snapshot_is_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.percentile(50.0), 0);
        assert_eq!(s.mean(), 0.0);
        assert!(s.cumulative_buckets().is_empty());
    }

    fn oracle_percentile(sorted: &[u64], q: f64) -> u64 {
        let rank = ((q / 100.0) * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The histogram's nearest-rank percentiles stay within one bucket
        /// width (1/32 relative) of a sorted-Vec oracle, for any value set.
        #[test]
        fn percentiles_match_sorted_oracle(
            values in proptest::collection::vec(0u64..2_000_000, 1..200),
            q in 1.0f64..100.0,
        ) {
            let h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            let mut values = values.clone();
            values.sort_unstable();
            let want = oracle_percentile(&values, q);
            let got = h.snapshot().percentile(q);
            prop_assert!(got >= want, "got {got} < oracle {want}");
            prop_assert!(
                got - want <= want / 32 + 1,
                "got {got} overshoots oracle {want} by more than a bucket"
            );
        }
    }

    #[test]
    fn trace_ring_wraps_and_keeps_the_newest() {
        let sink = TraceSink::with_mode(TraceMode::Ring, 8);
        assert!(sink.is_enabled());
        let t0 = Instant::now();
        for i in 0..20u64 {
            sink.record_with(
                TraceStage::Advect,
                TraceCtx { actor: 1, frame: i },
                t0,
                Duration::from_micros(i),
                i,
            );
        }
        assert_eq!(sink.recorded(), 20);
        let events = sink.recent(100);
        assert_eq!(events.len(), 8, "ring keeps only its capacity");
        let frames: Vec<u64> = events.iter().map(|e| e.frame).collect();
        assert_eq!(
            frames,
            (12..20).collect::<Vec<_>>(),
            "newest 8, oldest first"
        );
        assert_eq!(sink.recent(3).len(), 3);
        assert_eq!(sink.recent(3)[2].frame, 19);
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let sink = TraceSink::disabled();
        assert!(!sink.is_enabled());
        sink.record(TraceStage::Request, Instant::now(), Duration::ZERO);
        assert_eq!(sink.recorded(), 0);
        assert!(sink.recent(10).is_empty());
        assert!(!TraceSink::default().is_enabled());
        assert!(!TraceSink::with_mode(TraceMode::Off, 64).is_enabled());
    }

    #[test]
    fn parse_trace_mode_accepts_the_documented_values() {
        assert_eq!(parse_trace_mode("off"), Some(TraceMode::Off));
        assert_eq!(parse_trace_mode("ring"), Some(TraceMode::Ring));
        assert_eq!(parse_trace_mode("stderr"), Some(TraceMode::Stderr));
        assert_eq!(parse_trace_mode("on"), None);
        assert_eq!(parse_trace_mode(""), None);
    }

    /// The single test allowed to touch the global force override (tests run
    /// in parallel; other tests must not depend on [`trace_mode`]).
    #[test]
    fn force_mode_overrides_the_environment() {
        force_mode(Some(TraceMode::Ring));
        assert_eq!(trace_mode(), TraceMode::Ring);
        assert!(TraceSink::from_env(16).is_enabled());
        force_mode(Some(TraceMode::Off));
        assert_eq!(trace_mode(), TraceMode::Off);
        assert!(!TraceSink::from_env(16).is_enabled());
        force_mode(None);
        // Back to env-driven resolution (whatever the environment says).
        let _ = trace_mode();
    }

    #[test]
    fn ctx_guard_nests_and_restores() {
        assert_eq!(ctx(), TraceCtx::default());
        {
            let _a = set_ctx(TraceCtx { actor: 3, frame: 7 });
            assert_eq!(ctx(), TraceCtx { actor: 3, frame: 7 });
            {
                let _b = set_ctx(TraceCtx { actor: 3, frame: 8 });
                assert_eq!(ctx().frame, 8);
            }
            assert_eq!(ctx().frame, 7);
        }
        assert_eq!(ctx(), TraceCtx::default());
    }

    #[test]
    fn record_uses_the_thread_ctx() {
        let sink = TraceSink::with_mode(TraceMode::Ring, 4);
        let _g = set_ctx(TraceCtx {
            actor: 42,
            frame: 9,
        });
        sink.record(
            TraceStage::Synthesize,
            Instant::now(),
            Duration::from_micros(5),
        );
        let events = sink.recent(1);
        assert_eq!(events[0].actor, 42);
        assert_eq!(events[0].frame, 9);
        assert_eq!(events[0].stage, TraceStage::Synthesize);
        assert_eq!(events[0].dur_us, 5);
    }
}
