//! Colour legends.
//!
//! Figure 6 of the paper colormaps the pollutant concentration; an image
//! without a legend is hard to read quantitatively, so the examples add a
//! small colour bar with tick labels rendered from a tiny built-in 3x5 digit
//! font (no font dependencies).

use crate::colormap::Colormap;
use softpipe::{Framebuffer, Rgb};

/// Placement and appearance of a colour-bar legend.
#[derive(Debug, Clone, Copy)]
pub struct LegendOptions {
    /// Left edge of the bar in pixels.
    pub x: usize,
    /// Bottom edge of the bar in pixels.
    pub y: usize,
    /// Bar width in pixels.
    pub width: usize,
    /// Bar height in pixels.
    pub height: usize,
    /// Colour of the frame and tick labels.
    pub frame_color: Rgb,
}

impl Default for LegendOptions {
    fn default() -> Self {
        LegendOptions {
            x: 8,
            y: 8,
            width: 12,
            height: 96,
            frame_color: Rgb::new(255, 255, 255),
        }
    }
}

/// Draws a vertical colour bar for `colormap` spanning `range`, with numeric
/// labels at the bottom and top.
pub fn draw_legend(
    fb: &mut Framebuffer,
    colormap: Colormap,
    range: (f64, f64),
    opts: &LegendOptions,
) {
    let LegendOptions {
        x,
        y,
        width,
        height,
        frame_color,
    } = *opts;
    // Bar body.
    for dy in 0..height {
        let t = dy as f32 / (height.max(2) - 1) as f32;
        let color = colormap.map(t);
        for dx in 0..width {
            fb.set_checked((x + dx) as isize, (y + dy) as isize, color);
        }
    }
    // Frame.
    for dx in 0..=width {
        fb.set_checked((x + dx) as isize, y as isize - 1, frame_color);
        fb.set_checked((x + dx) as isize, (y + height) as isize, frame_color);
    }
    for dy in 0..=height {
        fb.set_checked(x as isize - 1, (y + dy) as isize, frame_color);
        fb.set_checked((x + width) as isize, (y + dy) as isize, frame_color);
    }
    // Labels: minimum at the bottom, maximum at the top.
    draw_number(fb, x + width + 3, y, range.0, frame_color);
    draw_number(fb, x + width + 3, y + height - 5, range.1, frame_color);
}

/// Draws a compact numeric label (two significant decimals) with a built-in
/// 3x5 pixel font. Returns the width in pixels actually used.
pub fn draw_number(fb: &mut Framebuffer, x: usize, y: usize, value: f64, color: Rgb) -> usize {
    let text = format_number(value);
    let mut cursor = x;
    for ch in text.chars() {
        cursor += draw_glyph(fb, cursor, y, ch, color) + 1;
    }
    cursor - x
}

/// Formats a value compactly for legend labels.
pub fn format_number(value: f64) -> String {
    if value == 0.0 {
        "0".to_string()
    } else if value.abs() >= 100.0 {
        format!("{value:.0}")
    } else if value.abs() >= 1.0 {
        format!("{value:.1}")
    } else {
        format!("{value:.2}")
    }
}

/// 3x5 bitmap font for digits, minus sign and decimal point. Each glyph row
/// is 3 bits, top row first.
fn glyph_rows(ch: char) -> Option<[u8; 5]> {
    Some(match ch {
        '0' => [0b111, 0b101, 0b101, 0b101, 0b111],
        '1' => [0b010, 0b110, 0b010, 0b010, 0b111],
        '2' => [0b111, 0b001, 0b111, 0b100, 0b111],
        '3' => [0b111, 0b001, 0b111, 0b001, 0b111],
        '4' => [0b101, 0b101, 0b111, 0b001, 0b001],
        '5' => [0b111, 0b100, 0b111, 0b001, 0b111],
        '6' => [0b111, 0b100, 0b111, 0b101, 0b111],
        '7' => [0b111, 0b001, 0b010, 0b010, 0b010],
        '8' => [0b111, 0b101, 0b111, 0b101, 0b111],
        '9' => [0b111, 0b101, 0b111, 0b001, 0b111],
        '-' => [0b000, 0b000, 0b111, 0b000, 0b000],
        '.' => [0b000, 0b000, 0b000, 0b000, 0b010],
        _ => return None,
    })
}

fn draw_glyph(fb: &mut Framebuffer, x: usize, y: usize, ch: char, color: Rgb) -> usize {
    let Some(rows) = glyph_rows(ch) else {
        return 0;
    };
    for (row_idx, bits) in rows.iter().enumerate() {
        // Row 0 is the top of the glyph; the framebuffer's y axis points up.
        let py = y as isize + (4 - row_idx as isize);
        for col in 0..3 {
            if bits & (0b100 >> col) != 0 {
                fb.set_checked(x as isize + col as isize, py, color);
            }
        }
    }
    3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legend_paints_bar_and_frame() {
        let mut fb = Framebuffer::new(64, 128);
        draw_legend(
            &mut fb,
            Colormap::Rainbow,
            (0.0, 1.0),
            &LegendOptions::default(),
        );
        // Bottom of the bar is blue-ish, top is red-ish (rainbow ends).
        let bottom = fb.pixel(10, 10);
        let top = fb.pixel(10, 100);
        assert!(bottom.b > bottom.r);
        assert!(top.r > top.b);
        // Frame pixels exist.
        let lit_white = fb
            .pixels()
            .iter()
            .filter(|p| **p == Rgb::new(255, 255, 255))
            .count();
        assert!(lit_white > 50);
    }

    #[test]
    fn number_formatting_ranges() {
        assert_eq!(format_number(0.0), "0");
        assert_eq!(format_number(123.4), "123");
        assert_eq!(format_number(3.25), "3.2");
        assert_eq!(format_number(0.1234), "0.12");
        assert_eq!(format_number(-2.5), "-2.5");
    }

    #[test]
    fn digits_have_glyphs_letters_do_not() {
        for ch in "0123456789-.".chars() {
            assert!(glyph_rows(ch).is_some(), "missing glyph for {ch}");
        }
        assert!(glyph_rows('x').is_none());
    }

    #[test]
    fn draw_number_marks_pixels_and_reports_width() {
        let mut fb = Framebuffer::new(64, 16);
        let w = draw_number(&mut fb, 2, 2, -1.5, Rgb::new(255, 0, 0));
        assert!(w >= 4 * 3, "width {w}");
        let lit = fb.pixels().iter().filter(|p| p.r == 255).count();
        assert!(lit > 10);
    }

    #[test]
    fn legend_near_border_does_not_panic() {
        let mut fb = Framebuffer::new(20, 20);
        draw_legend(
            &mut fb,
            Colormap::Heat,
            (-5.0, 5.0),
            &LegendOptions {
                x: 15,
                y: 15,
                width: 10,
                height: 30,
                frame_color: Rgb::gray(200),
            },
        );
    }
}
