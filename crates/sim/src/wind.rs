//! Synthetic continental-scale wind fields.
//!
//! The paper's smog-prediction application reads its wind field from an
//! atmospheric transport model (EUROS) that is not available; this module is
//! the documented substitution. Wind is generated from a time-varying
//! *streamfunction* built as a superposition of drifting pressure systems
//! (cyclones and anticyclones) over a westerly background flow. Because the
//! velocity is the curl of a scalar streamfunction, the synthetic wind is
//! divergence-free by construction — matching the qualitative character of
//! large-scale atmospheric flow and exercising exactly the same code path
//! (a time-varying 53x55 regular grid re-read every frame) as the original.

use flowfield::{Rect, RegularGrid, Vec2, VectorField};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A drifting pressure system contributing a Gaussian bump to the
/// streamfunction (positive strength = anticyclone, negative = cyclone).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PressureSystem {
    /// Centre position at time zero.
    pub center: Vec2,
    /// Drift velocity of the system.
    pub drift: Vec2,
    /// Peak streamfunction amplitude (sign selects rotation sense).
    pub strength: f64,
    /// Gaussian radius of the system.
    pub radius: f64,
}

impl PressureSystem {
    fn center_at(&self, time: f64, domain: Rect) -> Vec2 {
        // Systems drift and wrap around the domain horizontally (weather
        // keeps arriving from the west).
        let raw = self.center + self.drift * time;
        let w = domain.width();
        let mut x = (raw.x - domain.min.x) % w;
        if x < 0.0 {
            x += w;
        }
        Vec2::new(domain.min.x + x, raw.y.clamp(domain.min.y, domain.max.y))
    }

    fn streamfunction(&self, p: Vec2, time: f64, domain: Rect) -> f64 {
        let c = self.center_at(time, domain);
        let d2 = (p - c).norm_sq();
        self.strength * (-d2 / (2.0 * self.radius * self.radius)).exp()
    }
}

/// The synthetic wind model: background westerlies plus drifting systems.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindModel {
    /// Domain of the atmospheric slice ("Europe").
    pub domain: Rect,
    /// Background west-to-east wind speed.
    pub background: f64,
    /// The pressure systems.
    pub systems: Vec<PressureSystem>,
}

impl WindModel {
    /// Builds a model with `n_systems` randomly placed systems over `domain`.
    pub fn synthetic(domain: Rect, n_systems: usize, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let scale = domain.width().min(domain.height());
        let systems = (0..n_systems)
            .map(|i| {
                let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
                PressureSystem {
                    center: Vec2::new(
                        rng.gen_range(domain.min.x..domain.max.x),
                        rng.gen_range(domain.min.y..domain.max.y),
                    ),
                    drift: Vec2::new(
                        rng.gen_range(0.02..0.08) * scale,
                        rng.gen_range(-0.01..0.01) * scale,
                    ),
                    strength: sign * rng.gen_range(0.05..0.15) * scale * scale,
                    radius: rng.gen_range(0.12..0.3) * scale,
                }
            })
            .collect();
        WindModel {
            domain,
            background: 0.06 * scale,
            systems,
        }
    }

    /// The default "Europe" configuration used by the smog application: a
    /// unit-aspect domain with four systems.
    pub fn europe(seed: u64) -> Self {
        WindModel::synthetic(Rect::new(Vec2::ZERO, Vec2::new(10.0, 10.0)), 4, seed)
    }

    /// Streamfunction at a point and time.
    pub fn streamfunction(&self, p: Vec2, time: f64) -> f64 {
        // Background westerly flow u = U corresponds to psi = U * y.
        let mut psi = self.background * (p.y - self.domain.center().y);
        for s in &self.systems {
            psi += s.streamfunction(p, time, self.domain);
        }
        psi
    }

    /// Wind velocity at a point and time, computed as the curl of the
    /// streamfunction with central differences (divergence-free by
    /// construction up to discretisation error).
    pub fn velocity(&self, p: Vec2, time: f64) -> Vec2 {
        let h = self.domain.width().min(self.domain.height()) * 1e-4;
        let dpsidy = (self.streamfunction(p + Vec2::new(0.0, h), time)
            - self.streamfunction(p - Vec2::new(0.0, h), time))
            / (2.0 * h);
        let dpsidx = (self.streamfunction(p + Vec2::new(h, 0.0), time)
            - self.streamfunction(p - Vec2::new(h, 0.0), time))
            / (2.0 * h);
        Vec2::new(dpsidy, -dpsidx)
    }

    /// Samples the wind at `time` onto a regular grid (the 53x55 grid the
    /// smog application reads every frame).
    pub fn sample(&self, nx: usize, ny: usize, time: f64) -> RegularGrid {
        RegularGrid::from_fn(nx, ny, self.domain, |p| self.velocity(p, time))
    }

    /// A frozen view of the model at a fixed time, usable as a
    /// [`VectorField`].
    pub fn at_time(&self, time: f64) -> WindSnapshot<'_> {
        WindSnapshot { model: self, time }
    }
}

/// A [`VectorField`] view of a [`WindModel`] at a fixed time.
#[derive(Debug, Clone, Copy)]
pub struct WindSnapshot<'a> {
    model: &'a WindModel,
    time: f64,
}

impl VectorField for WindSnapshot<'_> {
    fn velocity(&self, p: Vec2) -> Vec2 {
        self.model.velocity(p, self.time)
    }
    fn domain(&self) -> Rect {
        self.model.domain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowfield::analytic::divergence;
    use flowfield::stats::field_stats;

    #[test]
    fn europe_model_is_deterministic_per_seed() {
        let a = WindModel::europe(3);
        let b = WindModel::europe(3);
        let c = WindModel::europe(4);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.systems.len(), 4);
    }

    #[test]
    fn wind_is_divergence_free() {
        let m = WindModel::europe(1);
        let snap = m.at_time(3.0);
        let d = m.domain;
        for &(u, v) in &[(0.2, 0.3), (0.5, 0.5), (0.8, 0.7), (0.35, 0.9)] {
            let p = d.from_unit(Vec2::new(u, v));
            let div = divergence(&snap, p, d.width() * 1e-3);
            let speed = snap.velocity(p).norm().max(1e-6);
            assert!(
                div.abs() / speed < 0.05,
                "relative divergence {} at {p:?}",
                div.abs() / speed
            );
        }
    }

    #[test]
    fn wind_changes_over_time() {
        let m = WindModel::europe(2);
        let p = m.domain.center();
        let v0 = m.velocity(p, 0.0);
        let v1 = m.velocity(p, 20.0);
        assert!((v0 - v1).norm() > 1e-6, "wind did not evolve");
    }

    #[test]
    fn background_produces_westerly_mean_flow() {
        let m = WindModel::europe(5);
        let snap = m.at_time(0.0);
        let stats = field_stats(&snap, 20, 20);
        // Mean flow points eastward (positive x) on average.
        assert!(stats.mean_velocity.x > 0.0, "{:?}", stats.mean_velocity);
        assert!(stats.max_speed > stats.mean_speed);
    }

    #[test]
    fn sampled_grid_has_paper_resolution_and_matches_model() {
        let m = WindModel::europe(7);
        let g = m.sample(53, 55, 1.5);
        assert_eq!(g.nx(), 53);
        assert_eq!(g.ny(), 55);
        // The sampled grid interpolates to roughly the model velocity.
        let p = m.domain.from_unit(Vec2::new(0.37, 0.61));
        let exact = m.velocity(p, 1.5);
        let interp = g.interpolate(p);
        assert!((exact - interp).norm() < 0.15 * exact.norm().max(1e-9) + 1e-6);
    }

    #[test]
    fn systems_drift_and_wrap_horizontally() {
        let m = WindModel::europe(9);
        let s = &m.systems[0];
        let c0 = s.center_at(0.0, m.domain);
        let c1 = s.center_at(5.0, m.domain);
        assert!(c0 != c1);
        // Even after a very long time the centre stays inside the domain.
        let far = s.center_at(1.0e4, m.domain);
        assert!(m.domain.contains(far));
    }
}
