//! Offline stand-in for `rayon`: the parallel-iterator subset this workspace
//! uses (`par_iter().map().collect()` and `par_chunks_mut().enumerate()
//! .for_each()`), executed on `std::thread::scope` with one chunk of work per
//! hardware thread. Unlike a stub, this shim really runs in parallel; unlike
//! rayon, there is no work stealing — work is split into contiguous chunks
//! up front, which is the right shape for the regular, uniform workloads
//! here (texture rows, spot chunks).

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Commonly imported traits, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParallelSliceMut};
}

/// Process-global thread-count override; 0 means "no override" (use the
/// detected parallelism). Real rayon configures this through thread-pool
/// builders; benchmark thread sweeps only need the global knob.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides [`current_num_threads`] for the whole process; `0` clears the
/// override and returns to detected parallelism. Lets thread-scaling sweeps
/// (`bench_raster --threads 1,2,4`) measure each worker count without
/// restarting the process.
pub fn set_current_num_threads(threads: usize) {
    THREAD_OVERRIDE.store(threads, Ordering::Relaxed);
}

/// Number of worker threads used for parallel execution. Cached: the std
/// query re-reads cgroup limits from the filesystem on every call, which is
/// far too slow for a value consulted on hot paths. An explicit
/// [`set_current_num_threads`] override takes precedence.
pub fn current_num_threads() -> usize {
    match THREAD_OVERRIDE.load(Ordering::Relaxed) {
        0 => {
            static THREADS: OnceLock<usize> = OnceLock::new();
            *THREADS.get_or_init(|| {
                std::thread::available_parallelism()
                    .map(NonZeroUsize::get)
                    .unwrap_or(1)
            })
        }
        n => n,
    }
}

/// Runs `f` over every element of `items` in parallel, preserving order.
fn parallel_map<'e, T, R, F>(items: &'e [T], f: &F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'e T) -> R + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n.max(1));
    if threads <= 1 || n <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut out: Vec<Option<R>> = Vec::new();
    out.resize_with(n, || None);
    std::thread::scope(|scope| {
        for (in_chunk, out_chunk) in items.chunks(chunk).zip(out.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (item, slot) in in_chunk.iter().zip(out_chunk.iter_mut()) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("parallel worker panicked"))
        .collect()
}

/// Borrowing parallel iteration over slices and slice-like containers.
pub trait IntoParallelRefIterator<'a> {
    /// Element type yielded by reference.
    type Item: Sync + 'a;

    /// Returns a parallel iterator over `&Self::Item`.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Parallel iterator over `&T`.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps each element through `f` (executed when consumed).
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Runs `f` on every element in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        parallel_map(self.items, &|item| f(item));
    }
}

/// Lazily mapped parallel iterator.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, R, F> ParMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    /// Executes the map in parallel and collects in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        parallel_map(self.items, &self.f).into_iter().collect()
    }
}

/// Parallel operations on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Splits the slice into chunks of at most `chunk_size` elements that can
    /// be processed in parallel.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksMut {
            chunks: self.chunks_mut(chunk_size).collect(),
        }
    }
}

/// Parallel iterator over disjoint mutable chunks.
pub struct ParChunksMut<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

fn distribute<'a, T, F>(chunks: Vec<&'a mut [T]>, f: &F)
where
    T: Send,
    F: Fn(usize, &'a mut [T]) + Sync,
{
    let n = chunks.len();
    let threads = current_num_threads().min(n.max(1));
    if threads <= 1 || n <= 1 {
        for (i, c) in chunks.into_iter().enumerate() {
            f(i, c);
        }
        return;
    }
    let per = n.div_ceil(threads);
    let mut batches: Vec<Vec<(usize, &'a mut [T])>> = Vec::new();
    let mut current = Vec::with_capacity(per);
    for (i, c) in chunks.into_iter().enumerate() {
        current.push((i, c));
        if current.len() == per {
            batches.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        batches.push(current);
    }
    std::thread::scope(|scope| {
        for batch in batches {
            scope.spawn(move || {
                for (i, c) in batch {
                    f(i, c);
                }
            });
        }
    });
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pairs each chunk with its index.
    pub fn enumerate(self) -> EnumerateChunksMut<'a, T> {
        EnumerateChunksMut {
            chunks: self.chunks,
        }
    }

    /// Runs `f` on every chunk in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a mut [T]) + Sync,
    {
        distribute(self.chunks, &|_, c| f(c));
    }
}

/// Enumerated variant of [`ParChunksMut`].
pub struct EnumerateChunksMut<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> EnumerateChunksMut<'a, T> {
    /// Runs `f` on every `(index, chunk)` pair in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &'a mut [T])) + Sync,
    {
        distribute(self.chunks, &|i, c| f((i, c)));
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_map_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = input.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_runs_closures_once_each() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let calls = AtomicUsize::new(0);
        let input: Vec<u32> = (0..257).collect();
        let out: Vec<u32> = input
            .par_iter()
            .map(|x| {
                calls.fetch_add(1, Ordering::Relaxed);
                *x
            })
            .collect();
        assert_eq!(out.len(), 257);
        assert_eq!(calls.load(Ordering::Relaxed), 257);
    }

    #[test]
    fn par_chunks_mut_enumerate_touches_every_element() {
        let mut data = vec![0usize; 100];
        data.par_chunks_mut(7).enumerate().for_each(|(i, chunk)| {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = i * 7 + j;
            }
        });
        assert_eq!(data, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn thread_override_is_respected_and_clearable() {
        crate::set_current_num_threads(3);
        assert_eq!(crate::current_num_threads(), 3);
        crate::set_current_num_threads(0);
        assert!(crate::current_num_threads() >= 1);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u8> = vec![];
        let out: Vec<u8> = empty.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
        let one = [5u8];
        let out: Vec<u8> = one[..].par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![6]);
    }
}
