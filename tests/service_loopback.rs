//! Integration tests of the synthesis service over real loopback HTTP.
//!
//! The headline property: a frame fetched from the server is **bit
//! identical** to calling the advect + `synthesize_dnc` path directly with
//! the same parameters — the service adds sessions, caching and admission
//! control around the engine without perturbing a single texel.

use flowfield::analytic::Vortex;
use flowfield::{Rect, Vec2};
use softpipe::machine::MachineConfig;
use spotnoise::advect::{PositionMode, SpotAnimator};
use spotnoise::config::SynthesisConfig;
use spotnoise::dnc::synthesize_dnc;
use spotnoise::json::Json;
use spotnoise_service::{serve, AdmissionConfig, ClientError, ServiceClient, ServiceOptions};
use std::time::Duration;

fn domain() -> Rect {
    Rect::new(Vec2::ZERO, Vec2::new(1.0, 1.0))
}

/// The test sessions' synthesis configuration, mirrored on both sides.
fn test_config(seed: u64) -> SynthesisConfig {
    SynthesisConfig {
        texture_size: 64,
        spot_count: 120,
        spot_texture_size: 16,
        seed,
        ..SynthesisConfig::small_test()
    }
}

// Two process groups, masters only: with no slaves there is no intra-group
// submission reordering, so the divide-and-conquer result is bit-identical
// run to run (the same property the tiled static-vs-dynamic equivalence
// test relies on) — which is what lets this suite demand exact bytes.
fn session_body(seed: u64, omega: f64) -> String {
    format!(
        concat!(
            "{{\"field\": {{\"kind\": \"vortex\", \"omega\": {}, \"cx\": 0.5, \"cy\": 0.5}}, ",
            "\"config\": {{\"texture_size\": 64, \"spot_count\": 120, ",
            "\"spot_texture_size\": 16, \"seed\": {}}}, ",
            "\"machine\": {{\"processors\": 2, \"pipes\": 2}}, \"dt\": 0.05}}"
        ),
        omega, seed
    )
}

/// Computes frame `index` exactly the way the paper's pipeline does, with
/// direct engine calls: advect `index + 1` steps from the seed, then one
/// divide-and-conquer synthesis, serialized as little-endian f32.
fn direct_frame_bytes(seed: u64, omega: f64, index: u64) -> Vec<u8> {
    let cfg = test_config(seed);
    let field = Vortex {
        omega,
        center: Vec2::new(0.5, 0.5),
        domain: domain(),
    };
    let mut animator =
        SpotAnimator::new(domain(), cfg.spot_count, PositionMode::Advected, cfg.seed);
    for _ in 0..=index {
        animator.advance(&field, 0.05);
    }
    let spots = animator.spots();
    let out = synthesize_dnc(&field, &spots, &cfg, &MachineConfig::new(2, 2));
    let mut bytes = Vec::with_capacity(out.texture.data().len() * 4);
    for v in out.texture.data() {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    bytes
}

#[test]
fn two_concurrent_sessions_match_direct_synthesis_bit_for_bit() {
    let handle = serve("127.0.0.1:0", ServiceOptions::default()).expect("bind loopback");
    let addr = handle.addr();
    // Two sessions with different seeds and steering, driven concurrently.
    let clients = [(11u64, 1.0f64), (23u64, -2.0f64)];
    let workers: Vec<_> = clients
        .into_iter()
        .map(|(seed, omega)| {
            std::thread::spawn(move || {
                let mut client = ServiceClient::connect(addr).expect("connect");
                let session = client
                    .create_session(&session_body(seed, omega))
                    .expect("create session");
                for frame in 0..3u64 {
                    let fetched = client.fetch_frame(&session, frame).expect("fetch frame");
                    assert_eq!(fetched.frame, frame);
                    assert!(!fetched.cache_hit, "first fetch must synthesize");
                    let expected = direct_frame_bytes(seed, omega, frame);
                    assert_eq!(
                        fetched.bytes, expected,
                        "seed {seed} frame {frame}: served texture diverged from direct \
                         synthesize_dnc"
                    );
                }
                // Re-fetching an old frame is a cache hit with identical bytes.
                let again = client.fetch_frame(&session, 1).expect("refetch");
                assert!(again.cache_hit);
                assert_eq!(again.bytes, direct_frame_bytes(seed, omega, 1));
                client.close_session(&session).expect("close");
            })
        })
        .collect();
    for w in workers {
        w.join().expect("session thread panicked");
    }
    handle.shutdown();
}

#[test]
fn overload_is_shed_with_busy_and_the_queue_stays_bounded() {
    let watermark = 2;
    let handle = serve(
        "127.0.0.1:0",
        ServiceOptions {
            workers: 1,
            cache_bytes: 0, // every request must synthesize
            admission: AdmissionConfig {
                watermark,
                per_session: 8,
            },
            ..ServiceOptions::default()
        },
    )
    .expect("bind loopback");
    let addr = handle.addr();
    // Ten one-shot cold requests, each on its own session, fired together.
    let sessions: Vec<String> = (0..10)
        .map(|i| {
            let mut c = ServiceClient::connect(addr).expect("connect setup");
            c.create_session(&format!(
                "{{\"config\": {{\"texture_size\": 64, \"spot_count\": 600, \"seed\": {}}}}}",
                500 + i
            ))
            .expect("create session")
        })
        .collect();
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(sessions.len()));
    let workers: Vec<_> = sessions
        .into_iter()
        .map(|session| {
            let barrier = std::sync::Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = ServiceClient::connect(addr).expect("connect");
                barrier.wait();
                match client.fetch_frame(&session, 0) {
                    Ok(fetched) => {
                        assert_eq!(fetched.bytes.len(), 64 * 64 * 4);
                        Ok(())
                    }
                    Err(ClientError::Busy) => Err(()),
                    Err(e) => panic!("unexpected failure: {e}"),
                }
            })
        })
        .collect();
    let outcomes: Vec<Result<(), ()>> = workers
        .into_iter()
        .map(|w| w.join().expect("client panicked"))
        .collect();
    let served = outcomes.iter().filter(|o| o.is_ok()).count();
    let shed = outcomes.len() - served;
    assert!(served > 0, "nothing was served under overload");
    assert!(
        shed > 0,
        "10 simultaneous requests against watermark {watermark} with one worker must shed"
    );

    // The server's own accounting agrees: requests were shed with Busy and
    // the queue never grew past the watermark.
    let mut stats_client = ServiceClient::connect(addr).expect("connect stats");
    let stats = stats_client.stats().expect("stats");
    let queue = stats.get("queue").expect("queue stats");
    let shed_busy = queue.get("shed_busy").and_then(Json::as_f64).unwrap();
    let peak_depth = queue.get("peak_depth").and_then(Json::as_f64).unwrap();
    assert!(shed_busy >= shed as f64);
    assert!(
        peak_depth <= watermark as f64,
        "queue grew to {peak_depth}, past watermark {watermark}"
    );
    handle.shutdown();
}

#[test]
fn steering_back_serves_cached_frames_without_synthesis() {
    let handle = serve("127.0.0.1:0", ServiceOptions::default()).expect("bind loopback");
    let mut client = ServiceClient::connect(handle.addr()).expect("connect");
    let session = client
        .create_session(&session_body(7, 1.0))
        .expect("create session");
    let original = client.fetch_frame(&session, 0).expect("frame 0");
    assert!(!original.cache_hit);

    // Steer to a different field: frame 0 changes and must be synthesized.
    client
        .steer(
            &session,
            r#"{"kind": "vortex", "omega": 3.0, "cx": 0.5, "cy": 0.5}"#,
        )
        .expect("steer away");
    let steered = client.fetch_frame(&session, 0).expect("steered frame 0");
    assert!(!steered.cache_hit);
    assert_ne!(steered.bytes, original.bytes);

    // Steer back: the frame is served from the cache, bit-identical.
    client
        .steer(
            &session,
            r#"{"kind": "vortex", "omega": 1.0, "cx": 0.5, "cy": 0.5}"#,
        )
        .expect("steer back");
    let back = client
        .fetch_frame(&session, 0)
        .expect("steered-back frame 0");
    assert!(back.cache_hit, "steered-back frame must hit the cache");
    assert_eq!(back.bytes, original.bytes);

    let stats = client.stats().expect("stats");
    let hits = stats
        .get("cache")
        .and_then(|c| c.get("hits"))
        .and_then(Json::as_f64)
        .unwrap();
    assert!(hits >= 1.0);
    handle.shutdown();
}

#[test]
fn session_lifecycle_crud_and_idle_eviction_over_http() {
    let handle = serve(
        "127.0.0.1:0",
        ServiceOptions {
            idle_timeout: Duration::from_millis(150),
            ..ServiceOptions::default()
        },
    )
    .expect("bind loopback");
    let mut client = ServiceClient::connect(handle.addr()).expect("connect");

    // Create twice; ids are distinct and readable back.
    let a = client.create_session("").expect("create a");
    let b = client.create_session("").expect("create b");
    assert_ne!(a, b);
    let info = client
        .request("GET", &format!("/sessions/{a}"), b"")
        .expect("session info");
    assert_eq!(info.status, 200);
    let doc = info.json().expect("info json");
    assert_eq!(doc.get("session").and_then(Json::as_str), Some(a.as_str()));
    assert_eq!(
        doc.get("frame_bytes").and_then(Json::as_f64),
        Some((128 * 128 * 4) as f64)
    );

    // Deleting one leaves the other; double delete is 404.
    client.close_session(&b).expect("delete b");
    assert!(matches!(
        client.close_session(&b),
        Err(ClientError::NotFound)
    ));
    assert!(matches!(
        client.fetch_frame(&b, 0),
        Err(ClientError::NotFound)
    ));

    // Idle eviction: after the timeout, a /stats call sweeps the registry.
    std::thread::sleep(Duration::from_millis(400));
    let stats = client.stats().expect("stats");
    let evicted = stats
        .get("sessions")
        .and_then(|s| s.get("evicted"))
        .and_then(Json::as_f64)
        .unwrap();
    assert!(evicted >= 1.0, "idle session was not evicted");
    assert!(matches!(
        client.fetch_frame(&a, 0),
        Err(ClientError::NotFound)
    ));
    handle.shutdown();
}

#[test]
fn unframed_post_body_gets_411_and_a_closed_connection() {
    use std::io::{Read, Write};

    let handle = serve("127.0.0.1:0", ServiceOptions::default()).expect("bind loopback");
    // Raw socket: a POST whose body was sent without Content-Length. The
    // server must answer 411 Length Required and close — if it instead
    // parsed on, the body bytes would desync the keep-alive stream and be
    // interpreted as the next request's head.
    let mut raw = std::net::TcpStream::connect(handle.addr()).expect("connect");
    raw.write_all(b"POST /sessions HTTP/1.1\r\nHost: x\r\n\r\n{\"field\": {\"kind\": \"shear\", \"rate\": 1.0}}")
        .expect("send");
    let mut reply = String::new();
    raw.read_to_string(&mut reply).expect("read until close");
    assert!(
        reply.starts_with("HTTP/1.1 411 Length Required"),
        "expected 411, got: {reply:?}"
    );
    assert!(reply.contains("Connection: close"));
    // read_to_string returning means the server closed the connection, so
    // the stray body can never be parsed as a follow-up request.

    // A bodyless POST without Content-Length (curl -X POST) still works.
    let mut raw = std::net::TcpStream::connect(handle.addr()).expect("connect");
    raw.write_all(b"POST /shutdown HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
        .expect("send");
    let mut reply = String::new();
    raw.read_to_string(&mut reply).expect("read reply");
    assert!(
        reply.starts_with("HTTP/1.1 200"),
        "bodyless POST broke: {reply:?}"
    );
    handle.join();
}

#[test]
fn advance_endpoint_and_shutdown_are_clean() {
    let handle = serve("127.0.0.1:0", ServiceOptions::default()).expect("bind loopback");
    let mut client = ServiceClient::connect(handle.addr()).expect("connect");
    let session = client
        .create_session(&session_body(99, 1.0))
        .expect("create session");
    let first = client.advance(&session).expect("advance 0");
    let second = client.advance(&session).expect("advance 1");
    assert_eq!(first.frame, 0);
    assert_eq!(second.frame, 1);
    assert_ne!(first.bytes, second.bytes);
    // A frame fetch of an advanced index hits the cache.
    let replay = client.fetch_frame(&session, 1).expect("replay");
    assert!(replay.cache_hit);
    assert_eq!(replay.bytes, second.bytes);

    client.shutdown().expect("shutdown request");
    handle.join();
}
