//! Loopback load bench of the synthesis service: sweeps concurrent clients
//! {1, 4, 16} × cache-hot/cache-cold against a real server on an ephemeral
//! port, runs an overload phase against a tiny one-worker server, and
//! writes `BENCH_service.json` (schema `bench_service/v1`).
//!
//! ```text
//! cargo run --release -p spotnoise-bench --bin bench_service -- \
//!     [--out BENCH_service.json] [--check] [--quick]
//! ```
//!
//! `--quick` shrinks the workload for CI smoke runs. `--check` re-reads the
//! written artifact and asserts the service-level SLOs hold: six sweep
//! cases, cache-hot p50 at least 5× below cache-cold at every concurrency,
//! and overload shed with `Busy` while the queue never grew past its
//! watermark. A failed check exits non-zero.

use spotnoise_bench::json::Json;
use spotnoise_bench::service_bench;
use std::path::PathBuf;
use std::process::ExitCode;

/// Validates the written artifact against the acceptance criteria.
fn check_artifact(path: &PathBuf) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path:?}: {e}"))?;
    let doc = Json::parse(&text)?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing schema field")?;
    if schema != "bench_service/v1" {
        return Err(format!("unexpected schema {schema:?}"));
    }
    let cases = doc
        .get("cases")
        .and_then(Json::as_array)
        .ok_or("missing cases array")?;
    if cases.len() < 6 {
        return Err(format!("{} cases recorded, need at least 6", cases.len()));
    }
    let field = |case: &Json, key: &str| -> Result<f64, String> {
        case.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("case missing numeric {key}"))
    };
    // Index p50 by (mode, concurrency) and sanity-check each case.
    let mut p50 = std::collections::HashMap::new();
    for case in cases {
        let name = case
            .get("name")
            .and_then(Json::as_str)
            .ok_or("case without a name")?
            .to_string();
        let mode = case
            .get("mode")
            .and_then(Json::as_str)
            .ok_or("case without a mode")?
            .to_string();
        let concurrency = field(case, "concurrency")? as usize;
        let p50_us = field(case, "p50_us")?;
        let p99_us = field(case, "p99_us")?;
        let fps = field(case, "frames_per_second")?;
        let hit_rate = field(case, "cache_hit_rate")?;
        if p50_us <= 0.0 || p99_us < p50_us {
            return Err(format!(
                "case {name}: implausible latencies p50={p50_us} p99={p99_us}"
            ));
        }
        if fps <= 0.0 {
            return Err(format!("case {name}: frames_per_second {fps} not positive"));
        }
        match mode.as_str() {
            "hot" if hit_rate < 0.999 => {
                return Err(format!("case {name}: hot hit rate {hit_rate} below 1"));
            }
            "cold" if hit_rate > 0.001 => {
                return Err(format!("case {name}: cold hit rate {hit_rate} above 0"));
            }
            _ => {}
        }
        p50.insert((mode, concurrency), p50_us);
    }
    let mut speedups = Vec::new();
    for (&(ref mode, concurrency), &cold_p50) in &p50 {
        if mode != "cold" {
            continue;
        }
        let hot_p50 = *p50
            .get(&("hot".to_string(), concurrency))
            .ok_or_else(|| format!("no hot case at concurrency {concurrency}"))?;
        let ratio = cold_p50 / hot_p50;
        if ratio < 5.0 {
            return Err(format!(
                "at concurrency {concurrency}: cold p50 {cold_p50:.1}us is only {ratio:.2}x hot \
                 p50 {hot_p50:.1}us (need >= 5x)"
            ));
        }
        speedups.push(format!("c{concurrency}: {ratio:.0}x"));
    }
    let overload = doc.get("overload").ok_or("missing overload object")?;
    let o_field = |key: &str| -> Result<f64, String> {
        overload
            .get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("overload missing numeric {key}"))
    };
    let watermark = o_field("watermark")?;
    let busy = o_field("busy")?;
    let completed = o_field("completed")?;
    let peak_depth = o_field("peak_depth")?;
    if busy <= 0.0 {
        return Err("overload shed no request with Busy".to_string());
    }
    if completed <= 0.0 {
        return Err("overload served no request at all".to_string());
    }
    if peak_depth > watermark {
        return Err(format!(
            "queue grew to depth {peak_depth}, past its watermark {watermark}"
        ));
    }
    Ok(format!(
        "{} cases, hot/cold p50 gaps [{}], overload shed {busy} of {} with queue depth <= {watermark}",
        cases.len(),
        speedups.join(", "),
        busy + completed,
    ))
}

fn main() -> ExitCode {
    let mut out = PathBuf::from("BENCH_service.json");
    let mut check = false;
    let mut quick = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                if let Some(path) = args.next() {
                    out = PathBuf::from(path);
                }
            }
            "--check" => check = true,
            "--quick" => quick = true,
            other => eprintln!("unknown argument: {other}"),
        }
    }
    if let Some(parent) = out.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent).expect("cannot create output directory");
    }
    let options = if quick {
        service_bench::ServiceBenchOptions::quick()
    } else {
        service_bench::ServiceBenchOptions::standard()
    };
    let report = service_bench::run_service_bench(options);
    println!("{}", service_bench::format_report(&report));
    std::fs::write(&out, service_bench::report_to_json(&report)).expect("write BENCH_service.json");
    println!("wrote {}", out.display());
    if check {
        match check_artifact(&out) {
            Ok(summary) => println!("check OK: {summary}"),
            Err(e) => {
                eprintln!("check FAILED: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
