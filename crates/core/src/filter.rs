//! Spot filtering — post-processing of the synthesised texture.
//!
//! Enhanced spot noise adds a filtering step after blending ("additional spot
//! filtering operations may be applied to the map", pipeline step 3). The
//! filters here are the standard ones used with spot noise: a box blur, a
//! high-pass filter that removes the low-frequency blotches caused by the
//! finite number of spots, and a contrast stretch that maps the result into
//! the displayable range.

use softpipe::Texture;

/// Box blur with a square kernel of half-width `radius` texels, using a
/// separable two-pass implementation with edge clamping.
pub fn box_blur(texture: &Texture, radius: usize) -> Texture {
    if radius == 0 {
        return texture.clone();
    }
    let w = texture.width();
    let h = texture.height();
    let r = radius as isize;
    let norm = 1.0 / (2 * radius + 1) as f32;

    // Horizontal pass.
    let mut tmp = Texture::new(w, h);
    for y in 0..h {
        for x in 0..w {
            let mut acc = 0.0f32;
            for dx in -r..=r {
                let sx = (x as isize + dx).clamp(0, w as isize - 1) as usize;
                acc += texture.texel(sx, y);
            }
            *tmp.texel_mut(x, y) = acc * norm;
        }
    }
    // Vertical pass.
    let mut out = Texture::new(w, h);
    for y in 0..h {
        for x in 0..w {
            let mut acc = 0.0f32;
            for dy in -r..=r {
                let sy = (y as isize + dy).clamp(0, h as isize - 1) as usize;
                acc += tmp.texel(x, sy);
            }
            *out.texel_mut(x, y) = acc * norm;
        }
    }
    out
}

/// High-pass filter: subtracts the local mean (a box blur of half-width
/// `radius`) from every texel. This removes the blotchy low-frequency
/// component of the noise while keeping the flow-aligned streaks.
pub fn highpass(texture: &Texture, radius: usize) -> Texture {
    let low = box_blur(texture, radius);
    let mut out = texture.clone();
    for (dst, lo) in out.data_mut().iter_mut().zip(low.data()) {
        *dst -= *lo;
    }
    out
}

/// Linearly rescales the texture so that `[mean - k*std, mean + k*std]` maps
/// onto `[0, 1]`, clamping outliers. This is the contrast enhancement applied
/// before the texture is mapped onto geometry for display.
pub fn contrast_stretch(texture: &Texture, k: f32) -> Texture {
    assert!(k > 0.0, "contrast factor must be positive");
    let mean = texture.mean();
    let std = texture.variance().sqrt();
    let mut out = texture.clone();
    if std <= f32::EPSILON {
        out.fill(0.5);
        return out;
    }
    let lo = mean - k * std;
    let span = 2.0 * k * std;
    for v in out.data_mut() {
        *v = ((*v - lo) / span).clamp(0.0, 1.0);
    }
    out
}

/// The standard display post-processing used by the examples and the figure
/// harness: high-pass with a kernel proportional to the spot radius, then a
/// 2-sigma contrast stretch.
pub fn standard_postprocess(texture: &Texture, spot_radius_pixels: f64) -> Texture {
    let radius = (spot_radius_pixels.round() as usize).max(1);
    contrast_stretch(&highpass(texture, radius), 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> Texture {
        Texture::from_fn(n, n, |u, v| u + 0.5 * v)
    }

    #[test]
    fn zero_radius_blur_is_identity() {
        let t = ramp(16);
        let b = box_blur(&t, 0);
        assert_eq!(t.absolute_difference(&b), 0.0);
    }

    #[test]
    fn blur_preserves_constant_textures() {
        let mut t = Texture::new(16, 16);
        t.fill(0.7);
        let b = box_blur(&t, 3);
        assert!(b.data().iter().all(|&v| (v - 0.7).abs() < 1e-5));
    }

    #[test]
    fn blur_reduces_variance() {
        let t = Texture::from_fn(32, 32, |u, v| (u * 37.0).sin() * (v * 23.0).cos());
        let b = box_blur(&t, 2);
        assert!(b.variance() < t.variance());
        // Mean is (approximately) preserved by the normalised kernel.
        assert!((b.mean() - t.mean()).abs() < 0.02);
    }

    #[test]
    fn highpass_removes_mean_and_low_frequency() {
        // A pure low-frequency ramp is almost entirely removed by the
        // high-pass filter (apart from edge effects).
        let t = ramp(64);
        let hp = highpass(&t, 8);
        assert!(hp.mean().abs() < 0.05);
        // Interior texels are close to zero.
        let mut interior_max: f32 = 0.0;
        for y in 16..48 {
            for x in 16..48 {
                interior_max = interior_max.max(hp.texel(x, y).abs());
            }
        }
        assert!(interior_max < 0.05, "interior residue {interior_max}");
    }

    #[test]
    fn highpass_keeps_high_frequency_detail() {
        let t = Texture::from_fn(
            64,
            64,
            |u, _| if (u * 32.0) as i32 % 2 == 0 { 1.0 } else { 0.0 },
        );
        let hp = highpass(&t, 8);
        // The checker pattern survives with roughly half amplitude around 0.
        assert!(hp.variance() > 0.1 * t.variance());
    }

    #[test]
    fn contrast_stretch_maps_into_unit_range() {
        let t = Texture::from_fn(32, 32, |u, v| 10.0 * (u - 0.5) + 3.0 * v);
        let c = contrast_stretch(&t, 2.0);
        let (lo, hi) = c.range();
        assert!(lo >= 0.0 && hi <= 1.0);
        assert!(hi > lo, "stretched texture is flat");
        // Constant textures map to 0.5 rather than dividing by zero.
        let mut flat = Texture::new(8, 8);
        flat.fill(3.0);
        assert!(contrast_stretch(&flat, 2.0)
            .data()
            .iter()
            .all(|&v| (v - 0.5).abs() < 1e-6));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn contrast_stretch_rejects_nonpositive_k() {
        let _ = contrast_stretch(&ramp(8), 0.0);
    }

    #[test]
    fn standard_postprocess_output_is_displayable() {
        let t = Texture::from_fn(64, 64, |u, v| (u * 31.0).sin() + (v * 17.0).cos());
        let p = standard_postprocess(&t, 4.0);
        let (lo, hi) = p.range();
        assert!(lo >= 0.0 && hi <= 1.0);
        assert!(p.variance() > 0.0);
    }
}
