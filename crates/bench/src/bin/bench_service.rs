//! Loopback load bench of the synthesis service: sweeps concurrent clients
//! {1, 4, 16} × cache-hot/cache-cold against a real server on an ephemeral
//! port, runs a shared-field fan-out phase (many subscribers streaming a
//! few broadcast channels), runs an overload phase against a tiny
//! one-worker server, and writes `BENCH_service.json` (schema
//! `bench_service/v1`).
//!
//! ```text
//! cargo run --release -p spotnoise-bench --bin bench_service -- \
//!     [--out BENCH_service.json] [--check] [--quick] [--threads 1,2,4]
//! ```
//!
//! `--quick` shrinks the workload for CI smoke runs. `--check` re-reads the
//! written artifact and asserts the service-level SLOs hold: six sweep
//! cases, each with ordered p50 ≤ p90 ≤ p99 percentiles and — on the
//! cache-hot path — a p99 within 64× of its p50 (a wider tail means
//! something stalls the pure-cache-hit common case),
//! cache-hot p50 at least 5× below cache-cold at every concurrency,
//! broadcast fan-out delivering more frames than it synthesizes (≥ 10× with
//! 64+ subscribers) at a steady-state gap within 2× of the hot single-client
//! p50, and overload shed with `Busy` while the queue never grew past its
//! watermark — with the degradation ladder engaged first: the pre-burst
//! snapshot must show `entered_saturated ≥ 1` and stale + degraded serves
//! > 0 before any request was refused. A failed check exits non-zero.
//!
//! `--threads 1,2,4` switches to sweep mode: the whole phase list runs once
//! per worker count — the rayon shim override and the server's synthesis
//! worker pool both pinned to the count — and the runs are written as one
//! `bench_service_sweep/v1` artifact.
//!
//! `--cluster` switches to the cluster-tier bench instead: two peer-linked
//! worker processes behind a router, measuring the routed-vs-direct hot
//! path, cross-node peer cache hits, shared co-location and bit identity
//! through the proxy. Writes `BENCH_cluster.json` (schema
//! `bench_cluster/v1`); with `--check` the artifact must show a routed hot
//! p50 within 16× of single-node, peer cache hits > 0, every shared
//! session co-located and byte-identical frames through the router.

use spotnoise_bench::json::Json;
use spotnoise_bench::{cluster_bench, service_bench};
use std::path::PathBuf;
use std::process::ExitCode;

/// Validates the written artifact against the acceptance criteria.
fn check_artifact(path: &PathBuf) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path:?}: {e}"))?;
    let doc = Json::parse(&text)?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing schema field")?;
    if schema != "bench_service/v1" {
        return Err(format!("unexpected schema {schema:?}"));
    }
    let cases = doc
        .get("cases")
        .and_then(Json::as_array)
        .ok_or("missing cases array")?;
    if cases.len() < 6 {
        return Err(format!("{} cases recorded, need at least 6", cases.len()));
    }
    let field = |case: &Json, key: &str| -> Result<f64, String> {
        case.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("case missing numeric {key}"))
    };
    // Index p50 by (mode, concurrency) and sanity-check each case.
    let mut p50 = std::collections::HashMap::new();
    for case in cases {
        let name = case
            .get("name")
            .and_then(Json::as_str)
            .ok_or("case without a name")?
            .to_string();
        let mode = case
            .get("mode")
            .and_then(Json::as_str)
            .ok_or("case without a mode")?
            .to_string();
        let concurrency = field(case, "concurrency")? as usize;
        let p50_us = field(case, "p50_us")?;
        let p90_us = field(case, "p90_us")?;
        let p99_us = field(case, "p99_us")?;
        let fps = field(case, "frames_per_second")?;
        let hit_rate = field(case, "cache_hit_rate")?;
        if p50_us <= 0.0 || p90_us < p50_us || p99_us < p90_us {
            return Err(format!(
                "case {name}: implausible latencies p50={p50_us} p90={p90_us} p99={p99_us}"
            ));
        }
        // The hot path serves pure cache hits; a p99 orders of magnitude
        // above its p50 means something stalls the common case (a lock
        // convoy, a blocking accept, telemetry overhead). The bound is
        // deliberately loose — scheduling jitter on a loaded CI box is
        // real — but catches the pathological regressions.
        if mode == "hot" && p99_us > 64.0 * p50_us {
            return Err(format!(
                "case {name}: hot p99 {p99_us:.1}us is {:.0}x its p50 {p50_us:.1}us (limit 64x)",
                p99_us / p50_us
            ));
        }
        if fps <= 0.0 {
            return Err(format!("case {name}: frames_per_second {fps} not positive"));
        }
        match mode.as_str() {
            "hot" if hit_rate < 0.999 => {
                return Err(format!("case {name}: hot hit rate {hit_rate} below 1"));
            }
            "cold" if hit_rate > 0.001 => {
                return Err(format!("case {name}: cold hit rate {hit_rate} above 0"));
            }
            _ => {}
        }
        p50.insert((mode, concurrency), p50_us);
    }
    let mut speedups = Vec::new();
    for (&(ref mode, concurrency), &cold_p50) in &p50 {
        if mode != "cold" {
            continue;
        }
        let hot_p50 = *p50
            .get(&("hot".to_string(), concurrency))
            .ok_or_else(|| format!("no hot case at concurrency {concurrency}"))?;
        let ratio = cold_p50 / hot_p50;
        if ratio < 5.0 {
            return Err(format!(
                "at concurrency {concurrency}: cold p50 {cold_p50:.1}us is only {ratio:.2}x hot \
                 p50 {hot_p50:.1}us (need >= 5x)"
            ));
        }
        speedups.push(format!("c{concurrency}: {ratio:.0}x"));
    }
    // The fan-out phase: broadcast leverage must be real, and the
    // steady-state delivery path must stay within 2x of the (single-client)
    // cache-hot request path.
    let fanout = doc.get("fanout").ok_or("missing fanout object")?;
    let f_field = |key: &str| -> Result<f64, String> {
        fanout
            .get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("fanout missing numeric {key}"))
    };
    let fields = f_field("fields")?;
    let subscribers = f_field("subscribers")?;
    let ratio = f_field("delivery_ratio")?;
    let fanout_p50 = f_field("p50_us")?;
    if subscribers < 8.0 {
        return Err(format!(
            "fanout ran with only {subscribers} subscribers, need at least 8"
        ));
    }
    if ratio <= 1.0 {
        return Err(format!(
            "fanout delivered/synthesized ratio {ratio:.2} is not > 1: the broadcast \
             layer is synthesizing per subscriber"
        ));
    }
    if subscribers >= 64.0 {
        if ratio < 10.0 {
            return Err(format!(
                "fanout ratio {ratio:.2} below 10x with {subscribers} subscribers"
            ));
        }
        if fields > 4.0 {
            return Err(format!(
                "fanout spread {subscribers} subscribers over {fields} fields, need <= 4"
            ));
        }
    }
    let hot_c1_p50 = *p50
        .get(&("hot".to_string(), 1))
        .ok_or("no hot case at concurrency 1 to compare fanout against")?;
    if fanout_p50 > 2.0 * hot_c1_p50 {
        return Err(format!(
            "fanout steady-state gap p50 {fanout_p50:.1}us exceeds 2x the hot_c1 \
             p50 {hot_c1_p50:.1}us"
        ));
    }
    let overload = doc.get("overload").ok_or("missing overload object")?;
    let o_field = |key: &str| -> Result<f64, String> {
        overload
            .get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("overload missing numeric {key}"))
    };
    let watermark = o_field("watermark")?;
    let busy = o_field("busy")?;
    let completed = o_field("completed")?;
    let peak_depth = o_field("peak_depth")?;
    if busy <= 0.0 {
        return Err("overload shed no request with Busy".to_string());
    }
    if completed <= 0.0 {
        return Err("overload served no request at all".to_string());
    }
    if peak_depth > watermark {
        return Err(format!(
            "queue grew to depth {peak_depth}, past its watermark {watermark}"
        ));
    }
    // The degradation ladder must engage before the server refuses work:
    // the pre-burst snapshot has to show stale (cached-frontier) or
    // degraded (footprint-sampled) serves — and the saturated rung itself —
    // strictly before any request was shed with Busy.
    let entered_saturated = o_field("entered_saturated")?;
    let stale = o_field("stale_serves")?;
    let degraded = o_field("degraded_serves")?;
    if busy > 0.0 && stale + degraded <= 0.0 {
        return Err(format!(
            "{busy} requests were shed but the ladder never degraded a serve \
             (stale {stale}, degraded {degraded}): shedding must be the last rung, not the first"
        ));
    }
    if busy > 0.0 && entered_saturated <= 0.0 {
        return Err("requests were shed without the gauge ever reaching saturated".to_string());
    }
    Ok(format!(
        "{} cases, hot/cold p50 gaps [{}], fanout {ratio:.1}x over {fields} fields, \
         ladder {stale} stale + {degraded} degraded before overload shed {busy} of {} \
         with queue depth <= {watermark}",
        cases.len(),
        speedups.join(", "),
        busy + completed,
    ))
}

/// Validates a `--threads` sweep artifact: the envelope schema, one run per
/// swept count, and a real broadcast leverage in every run.
fn check_sweep_artifact(path: &PathBuf, expected_runs: usize) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path:?}: {e}"))?;
    let doc = Json::parse(&text)?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing schema field")?;
    if schema != "bench_service_sweep/v1" {
        return Err(format!("unexpected sweep schema {schema:?}"));
    }
    let runs = doc
        .get("runs")
        .and_then(Json::as_array)
        .ok_or("missing runs array")?;
    if runs.len() != expected_runs {
        return Err(format!(
            "{} runs recorded, expected {expected_runs}",
            runs.len()
        ));
    }
    let mut cases = 0;
    for (i, run) in runs.iter().enumerate() {
        cases += run
            .get("cases")
            .and_then(Json::as_array)
            .ok_or_else(|| format!("run {i} has no cases array"))?
            .len();
        let ratio = run
            .get("fanout")
            .and_then(|f| f.get("delivery_ratio"))
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("run {i} has no fanout delivery_ratio"))?;
        if ratio <= 1.0 {
            return Err(format!("run {i}: fanout ratio {ratio:.2} is not > 1"));
        }
    }
    Ok(cases)
}

/// Validates a `--cluster` artifact: the price of the router hop is
/// bounded, the peer cache demonstrably crossed nodes, shared sessions
/// co-located, and the proxied bytes were the worker's bytes.
fn check_cluster_artifact(path: &PathBuf) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path:?}: {e}"))?;
    let doc = Json::parse(&text)?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing schema field")?;
    if schema != "bench_cluster/v1" {
        return Err(format!("unexpected schema {schema:?}"));
    }
    let num = |key: &str| -> Result<f64, String> {
        doc.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing numeric {key}"))
    };
    let flag = |key: &str| -> Result<bool, String> {
        doc.get(key)
            .and_then(Json::as_bool)
            .ok_or_else(|| format!("missing boolean {key}"))
    };
    let single = num("single_hot_p50_us")?;
    let routed = num("routed_hot_p50_us")?;
    if single <= 0.0 || routed <= 0.0 {
        return Err(format!(
            "implausible hot p50s: single {single}us, routed {routed}us"
        ));
    }
    // The router adds one loopback hop to a path that is otherwise a pure
    // cache lookup, so the routed p50 is a small multiple of the direct
    // one. The bound is loose — two extra socket traversals under CI
    // scheduling jitter — but catches the proxy accidentally re-entering
    // the synthesis path or serializing behind a lock.
    let ratio = routed / single;
    if ratio > 16.0 {
        return Err(format!(
            "routed hot p50 {routed:.1}us is {ratio:.1}x the single-node {single:.1}us (limit 16x)"
        ));
    }
    let peer_hits = num("peer_hits")?;
    let peer_serves = num("peer_serves")?;
    if peer_hits < 1.0 || peer_serves < 1.0 {
        return Err(format!(
            "no cross-node cache traffic recorded (peer_hits {peer_hits}, peer_serves \
             {peer_serves}): the peer lookup never fired"
        ));
    }
    if !flag("peer_frame_flagged")? {
        return Err("the peer-demo frame was not served with the peer flag".to_string());
    }
    if !flag("colocated")? {
        return Err(format!(
            "same-spec shared sessions spread over {} nodes, expected 1",
            num("shared_nodes")?
        ));
    }
    if !flag("bit_identical")? {
        return Err(
            "a frame through the router differed from the owning worker's bytes".to_string(),
        );
    }
    Ok(format!(
        "{} topology, routed hot p50 {routed:.1}us = {ratio:.2}x single-node, \
         {peer_hits} peer hits / {peer_serves} serves, shared co-located, bit-identical",
        doc.get("topology").and_then(Json::as_str).unwrap_or("?"),
    ))
}

fn main() -> ExitCode {
    let mut out: Option<PathBuf> = None;
    let mut check = false;
    let mut quick = false;
    let mut cluster = false;
    let mut threads: Option<Vec<usize>> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                if let Some(path) = args.next() {
                    out = Some(PathBuf::from(path));
                }
            }
            "--check" => check = true,
            "--quick" => quick = true,
            "--cluster" => cluster = true,
            "--threads" => match args.next().map(|list| {
                list.split(',')
                    .map(|n| n.trim().parse::<usize>())
                    .collect::<Result<Vec<usize>, _>>()
            }) {
                Some(Ok(counts)) if !counts.is_empty() && counts.iter().all(|&n| n >= 1) => {
                    threads = Some(counts);
                }
                _ => {
                    eprintln!("--threads needs a comma-separated list of counts >= 1, e.g. 1,2,4");
                    return ExitCode::FAILURE;
                }
            },
            other => eprintln!("unknown argument: {other}"),
        }
    }
    let out = out.unwrap_or_else(|| {
        PathBuf::from(if cluster {
            "BENCH_cluster.json"
        } else {
            "BENCH_service.json"
        })
    });
    if let Some(parent) = out.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent).expect("cannot create output directory");
    }
    if cluster {
        let options = if quick {
            cluster_bench::ClusterBenchOptions::quick()
        } else {
            cluster_bench::ClusterBenchOptions::standard()
        };
        let report = match cluster_bench::run_cluster_bench(options) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("cluster bench failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!("{}", cluster_bench::format_report(&report));
        std::fs::write(&out, cluster_bench::report_to_json(&report))
            .expect("write BENCH_cluster.json");
        println!("wrote {}", out.display());
        if check {
            match check_cluster_artifact(&out) {
                Ok(summary) => println!("check OK: {summary}"),
                Err(e) => {
                    eprintln!("check FAILED: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        return ExitCode::SUCCESS;
    }
    let options = if quick {
        service_bench::ServiceBenchOptions::quick()
    } else {
        service_bench::ServiceBenchOptions::standard()
    };
    if let Some(counts) = &threads {
        // Sweep mode: every phase once per worker count. Both sides of the
        // server scale together — the rayon shim override pins the synthesis
        // kernels' parallelism, the `workers` knob pins the service's worker
        // pool. The override is cleared afterwards even though the process
        // is about to exit — the invariant is cheap to keep.
        let mut reports = Vec::with_capacity(counts.len());
        for &n in counts {
            rayon::set_current_num_threads(n);
            println!("--- sweep: {n} worker thread(s) ---");
            let report = service_bench::run_service_bench(service_bench::ServiceBenchOptions {
                workers: n,
                ..options
            });
            println!("{}", service_bench::format_report(&report));
            reports.push(report);
        }
        rayon::set_current_num_threads(0);
        std::fs::write(&out, service_bench::sweep_to_json(&reports)).expect("write sweep artifact");
        println!("wrote {}", out.display());
        if check {
            match check_sweep_artifact(&out, reports.len()) {
                Ok(cases) => println!(
                    "check OK: {} runs, {cases} cases total, schema valid, fanout > 1x in each",
                    reports.len()
                ),
                Err(e) => {
                    eprintln!("check FAILED: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        return ExitCode::SUCCESS;
    }
    let report = service_bench::run_service_bench(options);
    println!("{}", service_bench::format_report(&report));
    std::fs::write(&out, service_bench::report_to_json(&report)).expect("write BENCH_service.json");
    println!("wrote {}", out.display());
    if check {
        match check_artifact(&out) {
            Ok(summary) => println!("check OK: {summary}"),
            Err(e) => {
                eprintln!("check FAILED: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
