//! Loopback load generator for the synthesis service.
//!
//! Boots a real [`spotnoise_service`] server on an ephemeral loopback port
//! and drives it over HTTP with keep-alive clients, sweeping concurrency
//! {1, 4, 16} × {cache-cold, cache-hot}:
//!
//! * **cold** — every client owns a session with a unique seed and walks its
//!   frames sequentially, so every request misses the cache and pays one
//!   full synthesis through the admission queue;
//! * **hot** — all clients replay the frames of one pre-warmed shared
//!   session, so every request is served straight from the LRU frame cache.
//!
//! A final overload phase floods a deliberately tiny server (one worker,
//! watermark 3) far past its watermark and records how many requests were
//! shed with `Busy` versus queued — the queue must shed, not grow. Results
//! feed `BENCH_service.json` (schema `bench_service/v1`).

use crate::json::Json;
use spotnoise_service::{serve, AdmissionConfig, ServiceClient, ServiceOptions};
use std::net::SocketAddr;
use std::sync::{Arc, Barrier};
use std::time::Instant;

/// Workload knobs of one bench run.
#[derive(Debug, Clone, Copy)]
pub struct ServiceBenchOptions {
    /// Texture side length of the bench sessions.
    pub texture_size: usize,
    /// Spots per frame of the bench sessions.
    pub spot_count: usize,
    /// Frame requests each client issues per case.
    pub requests_per_client: usize,
    /// Concurrency levels to sweep.
    pub concurrency: [usize; 3],
}

impl ServiceBenchOptions {
    /// The default measurement run.
    pub fn standard() -> Self {
        ServiceBenchOptions {
            texture_size: 128,
            spot_count: 800,
            requests_per_client: 24,
            concurrency: [1, 4, 16],
        }
    }

    /// A reduced run for CI smoke (`--quick`).
    pub fn quick() -> Self {
        ServiceBenchOptions {
            texture_size: 64,
            spot_count: 200,
            requests_per_client: 8,
            concurrency: [1, 4, 16],
        }
    }

    fn session_body(&self, seed: u64) -> String {
        format!(
            concat!(
                "{{\"field\": {{\"kind\": \"vortex\", \"omega\": 1.0}}, ",
                "\"config\": {{\"texture_size\": {}, \"spot_count\": {}, ",
                "\"spot_texture_size\": 16, \"seed\": {}}}}}"
            ),
            self.texture_size, self.spot_count, seed
        )
    }
}

/// One measured (concurrency, cache mode) case.
#[derive(Debug, Clone)]
pub struct ServiceCase {
    /// Case identifier, e.g. `cold_c16`.
    pub name: String,
    /// `"cold"` or `"hot"`.
    pub mode: &'static str,
    /// Concurrent clients.
    pub concurrency: usize,
    /// Total requests completed.
    pub requests: usize,
    /// Median request latency in microseconds.
    pub p50_us: f64,
    /// 99th-percentile request latency in microseconds.
    pub p99_us: f64,
    /// Mean request latency in microseconds.
    pub mean_us: f64,
    /// Aggregate served frames per second over the case's wall time.
    pub frames_per_second: f64,
    /// Fraction of requests served from the frame cache.
    pub cache_hit_rate: f64,
    /// Requests shed with `503 Busy` (retried until served).
    pub busy_retries: u64,
}

/// Outcome of the overload phase.
#[derive(Debug, Clone, Copy)]
pub struct OverloadResult {
    /// The tiny server's queue watermark.
    pub watermark: usize,
    /// Concurrent one-shot requests fired at it.
    pub submitted: usize,
    /// Requests shed with `503 Busy`.
    pub busy: usize,
    /// Requests that rendered successfully.
    pub completed: usize,
    /// Highest queue depth the server ever recorded.
    pub peak_depth: usize,
}

/// The full report.
#[derive(Debug, Clone)]
pub struct ServiceBenchReport {
    /// Host threads available to the server.
    pub threads: usize,
    /// SIMD dispatch level the synthesis kernels executed at
    /// ([`softpipe::simd::active`]).
    pub simd: String,
    /// Raw `SPOTNOISE_SIMD` override the process was started with, if any.
    pub simd_override: Option<String>,
    /// The workload knobs used.
    pub options: ServiceBenchOptions,
    /// Bytes of one frame on the wire.
    pub frame_bytes: usize,
    /// The sweep cases.
    pub cases: Vec<ServiceCase>,
    /// The overload phase outcome.
    pub overload: OverloadResult,
}

/// Nearest-rank percentile of an unsorted latency sample.
fn percentile_us(latencies: &mut [f64], q: f64) -> f64 {
    if latencies.is_empty() {
        return 0.0;
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let rank = ((q / 100.0) * latencies.len() as f64).ceil() as usize;
    latencies[rank.clamp(1, latencies.len()) - 1]
}

struct ClientOutcome {
    latencies_us: Vec<f64>,
    hits: u64,
    busy_retries: u64,
}

/// One client's request loop: fetch `frames` in order on `session`,
/// retrying shed requests until served.
fn run_client(
    addr: SocketAddr,
    session: String,
    frames: Vec<u64>,
    barrier: Arc<Barrier>,
) -> ClientOutcome {
    let mut client = ServiceClient::connect(addr).expect("connect bench client");
    let mut outcome = ClientOutcome {
        latencies_us: Vec::with_capacity(frames.len()),
        hits: 0,
        busy_retries: 0,
    };
    barrier.wait();
    for frame in frames {
        let start = Instant::now();
        loop {
            match client.fetch_frame(&session, frame) {
                Ok(fetched) => {
                    outcome
                        .latencies_us
                        .push(start.elapsed().as_secs_f64() * 1e6);
                    if fetched.cache_hit {
                        outcome.hits += 1;
                    }
                    break;
                }
                Err(spotnoise_service::ClientError::Busy) => {
                    outcome.busy_retries += 1;
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                Err(e) => panic!("bench client failed on frame {frame}: {e}"),
            }
        }
    }
    outcome
}

/// Runs one (concurrency, mode) case against the shared server.
fn run_case(
    addr: SocketAddr,
    opts: &ServiceBenchOptions,
    concurrency: usize,
    mode: &'static str,
    seed_base: u64,
) -> ServiceCase {
    let requests = opts.requests_per_client;
    // Session setup happens before the clock starts.
    let sessions: Vec<String> = if mode == "hot" {
        // One shared session, pre-warmed so every measured request hits.
        let mut warmup = ServiceClient::connect(addr).expect("connect warmup client");
        let session = warmup
            .create_session(&opts.session_body(seed_base))
            .expect("create hot session");
        for frame in 0..requests as u64 {
            warmup
                .fetch_frame(&session, frame)
                .expect("warm up hot session");
        }
        vec![session; concurrency]
    } else {
        (0..concurrency)
            .map(|i| {
                let mut c = ServiceClient::connect(addr).expect("connect setup client");
                c.create_session(&opts.session_body(seed_base + 1 + i as u64))
                    .expect("create cold session")
            })
            .collect()
    };

    let barrier = Arc::new(Barrier::new(concurrency + 1));
    let workers: Vec<_> = sessions
        .iter()
        .map(|session| {
            let barrier = Arc::clone(&barrier);
            let session = session.clone();
            let frames: Vec<u64> = (0..requests as u64).collect();
            std::thread::spawn(move || run_client(addr, session, frames, barrier))
        })
        .collect();
    barrier.wait();
    let started = Instant::now();
    let outcomes: Vec<ClientOutcome> = workers
        .into_iter()
        .map(|w| w.join().expect("bench client panicked"))
        .collect();
    let wall = started.elapsed().as_secs_f64();

    let mut latencies: Vec<f64> = outcomes
        .iter()
        .flat_map(|o| o.latencies_us.iter().copied())
        .collect();
    let total = latencies.len();
    let hits: u64 = outcomes.iter().map(|o| o.hits).sum();
    let busy_retries: u64 = outcomes.iter().map(|o| o.busy_retries).sum();
    let mean_us = latencies.iter().sum::<f64>() / total.max(1) as f64;
    let p50_us = percentile_us(&mut latencies, 50.0);
    let p99_us = percentile_us(&mut latencies, 99.0);
    ServiceCase {
        name: format!("{mode}_c{concurrency}"),
        mode,
        concurrency,
        requests: total,
        p50_us,
        p99_us,
        mean_us,
        frames_per_second: if wall > 0.0 { total as f64 / wall } else { 0.0 },
        cache_hit_rate: if total > 0 {
            hits as f64 / total as f64
        } else {
            0.0
        },
        busy_retries,
    }
}

/// Floods a one-worker, watermark-3 server with simultaneous cold requests
/// and records shed-vs-served counts. The queue must shed with `Busy`, never
/// grow past its watermark.
fn run_overload(opts: &ServiceBenchOptions) -> OverloadResult {
    let watermark = 3;
    let submitted = 12;
    let server_options = ServiceOptions {
        workers: 1,
        cache_bytes: 0, // force every request through synthesis
        admission: AdmissionConfig {
            watermark,
            per_session: 2,
        },
        ..ServiceOptions::default()
    };
    let handle = serve("127.0.0.1:0", server_options).expect("bind overload server");
    let addr = handle.addr();
    // Heavier frames than the sweep, so the flood overlaps the worker.
    let body = format!(
        "{{\"config\": {{\"texture_size\": 192, \"spot_count\": {}, \"seed\": 9}}}}",
        opts.spot_count.max(1500)
    );
    let sessions: Vec<String> = (0..submitted)
        .map(|i| {
            let mut c = ServiceClient::connect(addr).expect("connect overload setup");
            c.create_session(&body.replace("\"seed\": 9", &format!("\"seed\": {}", 100 + i)))
                .expect("create overload session")
        })
        .collect();
    let barrier = Arc::new(Barrier::new(submitted + 1));
    let workers: Vec<_> = sessions
        .into_iter()
        .map(|session| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = ServiceClient::connect(addr).expect("connect overload client");
                barrier.wait();
                match client.fetch_frame(&session, 0) {
                    Ok(_) => Ok(()),
                    Err(spotnoise_service::ClientError::Busy) => Err(()),
                    Err(e) => panic!("overload client failed: {e}"),
                }
            })
        })
        .collect();
    barrier.wait();
    let mut busy = 0;
    let mut completed = 0;
    for w in workers {
        match w.join().expect("overload client panicked") {
            Ok(()) => completed += 1,
            Err(()) => busy += 1,
        }
    }
    let mut stats_client = ServiceClient::connect(addr).expect("connect stats client");
    let stats = stats_client.stats().expect("overload stats");
    let peak_depth = stats
        .get("queue")
        .and_then(|q| q.get("peak_depth"))
        .and_then(Json::as_f64)
        .unwrap_or(f64::NAN) as usize;
    handle.shutdown();
    OverloadResult {
        watermark,
        submitted,
        busy,
        completed,
        peak_depth,
    }
}

/// Runs the full sweep and the overload phase.
pub fn run_service_bench(opts: ServiceBenchOptions) -> ServiceBenchReport {
    let server_options = ServiceOptions {
        cache_bytes: 64 << 20,
        ..ServiceOptions::default()
    };
    let handle = serve("127.0.0.1:0", server_options).expect("bind bench server");
    let addr = handle.addr();
    let mut cases = Vec::new();
    let mut seed_base = 1_000;
    for &concurrency in &opts.concurrency {
        for mode in ["cold", "hot"] {
            cases.push(run_case(addr, &opts, concurrency, mode, seed_base));
            // Seeds never repeat across cases, so "cold" stays cold.
            seed_base += 1_000;
        }
    }
    handle.shutdown();
    let overload = run_overload(&opts);
    ServiceBenchReport {
        threads: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        simd: softpipe::simd::active().name().to_string(),
        simd_override: softpipe::simd::env_override().map(str::to_string),
        options: opts,
        frame_bytes: opts.texture_size * opts.texture_size * 4,
        cases,
        overload,
    }
}

/// Human-readable table for stdout.
pub fn format_report(report: &ServiceBenchReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "service loopback bench ({} threads, {}x{} texture, {} spots, {} req/client)\n",
        report.threads,
        report.options.texture_size,
        report.options.texture_size,
        report.options.spot_count,
        report.options.requests_per_client,
    ));
    out.push_str(&format!(
        "{:<10} {:>5} {:>9} {:>12} {:>12} {:>12} {:>10} {:>6}\n",
        "case", "conc", "requests", "p50", "p99", "frames/s", "hit rate", "busy"
    ));
    for case in &report.cases {
        out.push_str(&format!(
            "{:<10} {:>5} {:>9} {:>9.1} us {:>9.1} us {:>12.1} {:>9.0}% {:>6}\n",
            case.name,
            case.concurrency,
            case.requests,
            case.p50_us,
            case.p99_us,
            case.frames_per_second,
            case.cache_hit_rate * 100.0,
            case.busy_retries,
        ));
    }
    let o = &report.overload;
    out.push_str(&format!(
        "overload: {} simultaneous requests vs watermark {}: {} busy, {} served, peak depth {}\n",
        o.submitted, o.watermark, o.busy, o.completed, o.peak_depth,
    ));
    out
}

/// Serializes the report in the `BENCH_service.json` schema.
pub fn report_to_json(report: &ServiceBenchReport) -> String {
    let o = &report.overload;
    let mut pairs: Vec<(&'static str, Json)> = vec![
        ("schema", Json::str("bench_service/v1")),
        ("threads", Json::num(report.threads as f64)),
        ("simd", Json::str(report.simd.clone())),
    ];
    if let Some(forced) = &report.simd_override {
        pairs.push(("simd_override", Json::str(forced.clone())));
    }
    pairs.extend([
        (
            "workload",
            Json::object([
                (
                    "texture_size",
                    Json::num(report.options.texture_size as f64),
                ),
                ("spot_count", Json::num(report.options.spot_count as f64)),
                (
                    "requests_per_client",
                    Json::num(report.options.requests_per_client as f64),
                ),
                ("frame_bytes", Json::num(report.frame_bytes as f64)),
            ]),
        ),
        (
            "cases",
            Json::array(report.cases.iter().map(|c| {
                Json::object([
                    ("name", Json::str(c.name.clone())),
                    ("mode", Json::str(c.mode)),
                    ("concurrency", Json::num(c.concurrency as f64)),
                    ("requests", Json::num(c.requests as f64)),
                    ("p50_us", Json::num(c.p50_us)),
                    ("p99_us", Json::num(c.p99_us)),
                    ("mean_us", Json::num(c.mean_us)),
                    ("frames_per_second", Json::num(c.frames_per_second)),
                    ("cache_hit_rate", Json::num(c.cache_hit_rate)),
                    ("busy_retries", Json::num(c.busy_retries as f64)),
                ])
            })),
        ),
        (
            "overload",
            Json::object([
                ("watermark", Json::num(o.watermark as f64)),
                ("submitted", Json::num(o.submitted as f64)),
                ("busy", Json::num(o.busy as f64)),
                ("completed", Json::num(o.completed as f64)),
                ("peak_depth", Json::num(o.peak_depth as f64)),
            ]),
        ),
    ]);
    Json::object(pairs).to_string_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let mut l = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile_us(&mut l, 50.0), 3.0);
        assert_eq!(percentile_us(&mut l, 99.0), 5.0);
        assert_eq!(percentile_us(&mut l, 100.0), 5.0);
        assert_eq!(percentile_us(&mut [][..].to_vec(), 50.0), 0.0);
        let mut one = vec![7.0];
        assert_eq!(percentile_us(&mut one, 50.0), 7.0);
    }

    #[test]
    fn report_json_has_schema_cases_and_overload() {
        let report = ServiceBenchReport {
            threads: 1,
            simd: "sse2".to_string(),
            simd_override: None,
            options: ServiceBenchOptions::quick(),
            frame_bytes: 64 * 64 * 4,
            cases: vec![ServiceCase {
                name: "cold_c1".to_string(),
                mode: "cold",
                concurrency: 1,
                requests: 8,
                p50_us: 1000.0,
                p99_us: 2000.0,
                mean_us: 1100.0,
                frames_per_second: 900.0,
                cache_hit_rate: 0.0,
                busy_retries: 0,
            }],
            overload: OverloadResult {
                watermark: 3,
                submitted: 12,
                busy: 8,
                completed: 4,
                peak_depth: 3,
            },
        };
        let text = report_to_json(&report);
        let doc = Json::parse(&text).expect("report parses");
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("bench_service/v1")
        );
        assert_eq!(doc.get("cases").and_then(Json::as_array).unwrap().len(), 1);
        assert_eq!(doc.get("simd").and_then(Json::as_str), Some("sse2"));
        // No SPOTNOISE_SIMD override ran, so the key is absent.
        assert!(doc.get("simd_override").is_none());
        assert_eq!(
            doc.get("overload")
                .and_then(|o| o.get("busy"))
                .and_then(Json::as_f64),
            Some(8.0)
        );
    }
}
