//! # spotnoise-bench — workload builders for the reproduction harness
//!
//! Every table and figure of the paper is regenerated from the workloads
//! defined here. A [`Workload`] bundles a vector field (produced by the
//! application substrates in `flowsim`), a spot population and a synthesis
//! configuration; the benchmark binaries and Criterion benches then run the
//! sequential, divide-and-conquer and CPU-only executors over it.
//!
//! Two sizes exist for each workload:
//!
//! * `*_paper()` — the exact parameters of the paper (512x512 texture, 2 500
//!   bent 32x17 spots for the atmospheric case, 40 000 bent 16x3 spots for
//!   the turbulence case). Used by the `reproduce` binary that regenerates
//!   Tables 1 and 2 through the calibrated cost model.
//! * `*_scaled()` — reduced versions (smaller texture, fewer spots, coarser
//!   meshes) with the same *structure*, used by the Criterion wall-clock
//!   benches so a full sweep completes in minutes on a laptop.

#![warn(missing_docs)]

pub mod cluster_bench;
pub mod json;
pub mod raster_bench;
pub mod service_bench;

use flowfield::{Rect, RegularGrid, Vec2, VectorField};
use flowsim::{DnsConfig, DnsSolver, SmogModel};
use serde::{Deserialize, Serialize};
use softpipe::machine::MachineConfig;
use spotnoise::config::{SpotKind, SynthesisConfig};
use spotnoise::dnc::synthesize_dnc;
use spotnoise::perfmodel::PerfPrediction;
use spotnoise::spot::{generate_spots, Spot};

/// A complete benchmark workload: field + spots + configuration.
pub struct Workload {
    /// Human-readable name used in reports.
    pub name: &'static str,
    /// The vector field being visualised.
    pub field: Box<dyn VectorField + Send + Sync>,
    /// The spot population.
    pub spots: Vec<Spot>,
    /// The synthesis configuration.
    pub config: SynthesisConfig,
}

impl Workload {
    fn from_grid(name: &'static str, grid: RegularGrid, config: SynthesisConfig) -> Self {
        let spots = generate_spots(
            config.spot_count,
            grid.domain(),
            config.intensity_amplitude,
            config.seed,
        );
        Workload {
            name,
            field: Box::new(grid),
            spots,
            config,
        }
    }
}

/// Builds the atmospheric-pollution wind field by stepping the smog model a
/// few frames, then freezing the wind grid of the last frame.
fn atmospheric_field() -> RegularGrid {
    let mut model = SmogModel::paper_resolution(1997);
    for _ in 0..5 {
        model.step(0.2);
    }
    model.wind_field().clone()
}

/// Builds the turbulence slice by running the DNS substitute until the wake
/// has developed. `nx`/`ny` control the solver resolution (the paper slice is
/// 278x208; the scaled workload uses a coarser solve).
fn turbulence_field(nx: usize, ny: usize, steps: usize) -> RegularGrid {
    let mut solver = DnsSolver::new(DnsConfig {
        nx,
        ny,
        ..DnsConfig::paper_resolution()
    });
    for _ in 0..steps {
        solver.step(0.02);
    }
    solver.velocity_grid()
}

/// Table 1 workload at the paper's full parameters.
pub fn atmospheric_paper() -> Workload {
    Workload::from_grid(
        "atmospheric (paper)",
        atmospheric_field(),
        SynthesisConfig::atmospheric_paper(),
    )
}

/// Table 1 workload scaled down for wall-clock benches: same 53x55 wind grid,
/// but a 256² texture, 600 bent spots and a 12x7 mesh.
pub fn atmospheric_scaled() -> Workload {
    let config = SynthesisConfig {
        texture_size: 256,
        spot_count: 600,
        spot_kind: SpotKind::Bent { rows: 12, cols: 7 },
        spot_texture_size: 16,
        ..SynthesisConfig::atmospheric_paper()
    };
    Workload::from_grid("atmospheric (scaled)", atmospheric_field(), config)
}

/// Table 2 workload at the paper's full parameters (the DNS solve itself runs
/// at a coarser resolution than 278x208 to keep the data-generation time
/// reasonable; the *visualization* workload — spot count, mesh size, texture
/// size — is exactly the paper's).
pub fn turbulence_paper() -> Workload {
    Workload::from_grid(
        "turbulence (paper)",
        turbulence_field(139, 104, 300),
        SynthesisConfig::turbulence_paper(),
    )
}

/// Table 2 workload scaled down for wall-clock benches.
pub fn turbulence_scaled() -> Workload {
    let config = SynthesisConfig {
        texture_size: 256,
        spot_count: 4000,
        spot_kind: SpotKind::Bent { rows: 8, cols: 3 },
        spot_texture_size: 16,
        ..SynthesisConfig::turbulence_paper()
    };
    Workload::from_grid("turbulence (scaled)", turbulence_field(90, 64, 150), config)
}

/// A tiny analytic workload for micro-benchmarks of the substrates.
pub fn analytic_small() -> Workload {
    let domain = Rect::new(Vec2::ZERO, Vec2::new(1.0, 1.0));
    let field = flowfield::analytic::Vortex {
        omega: 1.0,
        center: domain.center(),
        domain,
    };
    let config = SynthesisConfig::small_test();
    let spots = generate_spots(
        config.spot_count,
        domain,
        config.intensity_amplitude,
        config.seed,
    );
    Workload {
        name: "analytic vortex (small)",
        field: Box::new(field),
        spots,
        config,
    }
}

/// One cell of a reproduced table: machine shape plus the simulated and
/// measured throughput.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepCell {
    /// Number of processors (table row).
    pub processors: usize,
    /// Number of graphics pipes (table column).
    pub pipes: usize,
    /// Simulated (Onyx2 cost model) textures per second — the number that is
    /// compared against the paper's table.
    pub simulated_textures_per_second: f64,
    /// Wall-clock textures per second measured on the host for the same run.
    pub measured_textures_per_second: f64,
    /// The full prediction record.
    pub prediction: PerfPrediction,
}

/// Runs the divide-and-conquer executor over a workload for every machine
/// configuration in the paper's sweep and collects the table cells.
pub fn run_table_sweep(workload: &Workload) -> Vec<SweepCell> {
    MachineConfig::paper_sweep()
        .into_iter()
        .map(|machine| {
            let out = synthesize_dnc(
                workload.field.as_ref(),
                &workload.spots,
                &workload.config,
                &machine,
            );
            SweepCell {
                processors: machine.processors,
                pipes: machine.pipes,
                simulated_textures_per_second: out.predicted.textures_per_second,
                measured_textures_per_second: out.measured_textures_per_second(),
                prediction: out.report.predicted,
            }
        })
        .collect()
}

/// Formats a sweep as the paper formats its tables: rows = processors,
/// columns = pipes, entries = textures per second.
pub fn format_table(cells: &[SweepCell], simulated: bool) -> String {
    let mut processors: Vec<usize> = cells.iter().map(|c| c.processors).collect();
    processors.sort_unstable();
    processors.dedup();
    let mut pipes: Vec<usize> = cells.iter().map(|c| c.pipes).collect();
    pipes.sort_unstable();
    pipes.dedup();

    let mut out = String::new();
    out.push_str("procs\\pipes");
    for g in &pipes {
        out.push_str(&format!("{g:>8}"));
    }
    out.push('\n');
    for p in &processors {
        out.push_str(&format!("{p:>11}"));
        for g in &pipes {
            let cell = cells.iter().find(|c| c.processors == *p && c.pipes == *g);
            match cell {
                Some(c) => {
                    let v = if simulated {
                        c.simulated_textures_per_second
                    } else {
                        c.measured_textures_per_second
                    };
                    out.push_str(&format!("{v:>8.1}"));
                }
                None => out.push_str(&format!("{:>8}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

/// The paper's published Table 1 (textures/second), used for the
/// shape-comparison in EXPERIMENTS.md and the regression tests.
pub fn paper_table1() -> Vec<(usize, usize, f64)> {
    vec![
        (1, 1, 1.0),
        (2, 1, 2.0),
        (2, 2, 2.0),
        (4, 1, 2.8),
        (4, 2, 3.6),
        (4, 4, 3.9),
        (8, 1, 2.7),
        (8, 2, 4.9),
        (8, 4, 5.6),
    ]
}

/// The paper's published Table 2 (textures/second).
pub fn paper_table2() -> Vec<(usize, usize, f64)> {
    vec![
        (1, 1, 0.7),
        (2, 1, 1.3),
        (2, 2, 1.3),
        (4, 1, 2.1),
        (4, 2, 2.1),
        (4, 4, 2.4),
        (8, 1, 2.5),
        (8, 2, 3.2),
        (8, 4, 3.5),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_workloads_are_consistent() {
        let w = atmospheric_scaled();
        assert_eq!(w.spots.len(), w.config.spot_count);
        assert!(w.config.validate().is_ok());
        assert!(w.field.domain().area() > 0.0);
        let t = turbulence_scaled();
        assert_eq!(t.spots.len(), t.config.spot_count);
    }

    #[test]
    fn paper_workload_configs_match_paper_parameters() {
        let atm = SynthesisConfig::atmospheric_paper();
        assert_eq!(atm.texture_size, 512);
        assert_eq!(atm.spot_count, 2500);
        let dns = SynthesisConfig::turbulence_paper();
        assert_eq!(dns.spot_count, 40_000);
    }

    #[test]
    fn analytic_workload_sweeps_quickly_and_has_paper_shape() {
        // A full paper sweep of the tiny analytic workload must (a) run in a
        // test-friendly time and (b) reproduce the qualitative structure of
        // the tables: more processors help, and the (8,4) cell is the
        // fastest simulated configuration.
        let w = analytic_small();
        let cells = run_table_sweep(&w);
        assert_eq!(cells.len(), 9);
        let get = |p: usize, g: usize| {
            cells
                .iter()
                .find(|c| c.processors == p && c.pipes == g)
                .unwrap()
                .simulated_textures_per_second
        };
        assert!(get(2, 1) >= get(1, 1));
        assert!(get(8, 1) >= get(1, 1));
        // For such a tiny workload the sequential gather overhead dominates,
        // so adding pipes is NOT expected to help — which is itself the
        // behaviour eq. 3.2 predicts (the `c` term); just check everything is
        // positive and finite.
        assert!(cells
            .iter()
            .all(|c| c.simulated_textures_per_second.is_finite()
                && c.simulated_textures_per_second > 0.0));
        // Formatting produces one row per processor count plus the header.
        let table = format_table(&cells, true);
        assert_eq!(table.lines().count(), 1 + 4);
    }

    #[test]
    fn published_tables_have_nine_cells_each() {
        assert_eq!(paper_table1().len(), 9);
        assert_eq!(paper_table2().len(), 9);
        // Throughputs grow along the diagonal of each published table.
        let t1 = paper_table1();
        assert!(t1.last().unwrap().2 > t1.first().unwrap().2);
    }
}
