//! # flowviz — presentation layer for the spot-noise reproduction
//!
//! The final pipeline step maps the synthesised texture onto geometry and
//! superimposes other visualizations. This crate provides:
//!
//! * [`colormap`] — the rainbow map of the paper's Figure 6 and friends,
//! * [`render`] — texture / scalar-field to framebuffer conversion,
//! * [`overlay`] — colormapped scalar overlays and polyline drawing,
//! * [`arrows`] — the arrow-plot baseline the paper replaced,
//! * [`streamplot`] — stream-line plots as a second baseline,
//! * [`map`] — the schematic map outline standing in for the Europe map.

#![warn(missing_docs)]

pub mod arrows;
pub mod colormap;
pub mod legend;
pub mod map;
pub mod overlay;
pub mod render;
pub mod streamplot;

pub use arrows::{arrow_plot, ArrowPlotOptions};
pub use colormap::Colormap;
pub use legend::{draw_legend, LegendOptions};
pub use map::{draw_map, schematic_map};
pub use overlay::{draw_polyline, draw_rect_outline, overlay_scalar_field};
pub use render::{scalar_field_to_framebuffer, texture_to_framebuffer};
pub use streamplot::{stream_plot, StreamPlotOptions};
