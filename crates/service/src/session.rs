//! Sessions and the session registry.
//!
//! A [`Session`] is one client's running visualization: a
//! [`Pipeline`](spotnoise::pipeline::Pipeline) driving the scheduler engine
//! over the session's field, advanced frame by frame with a fixed time step.
//! Frames are deterministic: frame `i` is the texture produced by the
//! `(i+1)`-th pipeline advance after the session's (re)start, so any frame
//! can be re-derived from `(field, config, index)` alone — rewinding simply
//! rebuilds the pipeline from the seed and replays. Steering rebinds the
//! session to a new field and restarts its animation clock, which keeps the
//! frame-cache key sound (and makes steering *back* a pure cache hit).
//!
//! The [`SessionRegistry`] owns the sessions, hands out keyed ids, enforces
//! a session cap and evicts sessions that have been idle too long.
//!
//! A session's *frames* need not come from a pipeline it owns: a session
//! created in shared mode subscribes to a
//! [`FieldChannel`](crate::channel::FieldChannel) instead (its [`Backing`]
//! is the subscription, not a pipeline), and its frames come off the
//! channel's shared synthesis clock — usually straight out of the frame
//! cache. Steering a shared session forks it back into a private one.

use crate::cache::FrameKey;
use crate::channel::{ChannelSubscription, FieldChannel};
use crate::spec::{service_domain, FieldSpec, SessionSpec};
use flowfield::VectorField;
use softpipe::machine::MachineConfig;
use softpipe::{FrameArena, PipePool};
use spotnoise::config::SamplingMode;
use spotnoise::metrics::StageTimings;
use spotnoise::pipeline::{ExecutionMode, Pipeline};
use spotnoise::telemetry::{self, TraceCtx, TraceSink};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Service-wide buffer and worker pools attached to every session's
/// pipeline. Sharing one arena and one pipe pool across sessions keeps the
/// steady state zero-alloc and zero-spawn even as sessions come and go —
/// both pools are size-keyed, so sessions with different frame sizes never
/// exchange buffers or pipes. A `None` member leaves the pipeline's own
/// per-session default in place.
#[derive(Debug, Clone, Default)]
pub struct SharedPools {
    /// Frame-buffer arena shared by all sessions.
    pub arena: Option<Arc<FrameArena>>,
    /// Persistent pipe-worker pool shared by all sessions.
    pub pipes: Option<Arc<PipePool>>,
    /// Trace sink every attached pipeline reports its stage spans to (the
    /// default disabled sink records nothing).
    pub trace: TraceSink,
}

/// Why a frame could not be rendered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RenderError {
    /// The request would advance the session further than the per-request
    /// cap allows (admission control against unbounded synthesis bursts).
    TooFarAhead {
        /// Advances the request would need.
        needed: u64,
        /// The configured cap.
        max: u64,
    },
}

impl std::fmt::Display for RenderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RenderError::TooFarAhead { needed, max } => write!(
                f,
                "frame needs {needed} synthesis steps, above the per-request cap of {max}"
            ),
        }
    }
}

/// A frame served by a session or a channel: the payload plus how it was
/// produced.
#[derive(Debug, Clone)]
pub struct ServedFrame {
    /// Little-endian `f32` texels, row-major from the bottom row.
    pub bytes: Arc<Vec<u8>>,
    /// The frame index actually served. Equals the requested index except
    /// when a fallen-behind shared subscriber was skipped to the live
    /// frontier.
    pub frame: u64,
    /// True when the serve skipped a fallen-behind subscriber forward to
    /// the channel's live frontier instead of rewinding the shared clock.
    pub skipped: bool,
}

/// A private session's own synthesis state. Boxed inside [`Backing`]: a
/// pipeline is hundreds of bytes, and a shared session should not carry
/// that as dead weight in its enum footprint.
struct PrivateBacking {
    field: Box<dyn VectorField + Send + Sync>,
    pipeline: Pipeline,
}

/// How a session's frames are produced.
enum Backing {
    /// The session owns its field and pipeline (the classic per-session
    /// mode; every synthesis step is this session's own cost).
    Private(Box<PrivateBacking>),
    /// The session subscribes to a shared [`FieldChannel`]: it owns no
    /// pipeline, and its frames come off the channel's shared clock.
    Shared(ChannelSubscription),
}

/// One client's running visualization.
pub struct Session {
    spec: SessionSpec,
    backing: Backing,
    /// The shared pools the pipeline is (re)attached to — kept so steer and
    /// rewind rebuilds stay on the shared buffers and warm pipe workers.
    shared: SharedPools,
    /// Frame jobs admitted for this session but not yet finished by a
    /// worker. Idle eviction skips sessions with in-flight work: the
    /// session lock alone only covers *running* synthesis, while this
    /// covers the queued-but-not-yet-popped window too.
    in_flight: Arc<AtomicUsize>,
    field_key: u64,
    config_key: u64,
    last_touch: Instant,
    /// Total synthesis steps performed over the session's lifetime
    /// (monotonic across steers and rewinds).
    frames_rendered: u64,
    /// Summed stage timings of every frame synthesized while serving this
    /// session (shared sessions count the channel frames their serves
    /// triggered). Feeds the per-session breakdown on `/stats`.
    stage_totals: StageTimings,
    /// Times the pipeline was rebuilt to serve an earlier frame index.
    rewinds: u64,
    /// Times the session was steered to a (possibly new) field.
    steers: u64,
    /// One past the most recently *served* frame (cache hits included) —
    /// the index `advance` continues from. Kept separate from the
    /// pipeline's head because a cached serve never moves the pipeline.
    next_advance: u64,
    /// Set when a render for this session panicked: the session's pipeline
    /// state can no longer be trusted, every further frame request is
    /// refused, and the registry reaps it as soon as its in-flight work
    /// drains.
    quarantined: bool,
    /// Set while the pressure ladder has this session switched from exact
    /// to footprint sampling. Tracks only *service-imposed* degradation: a
    /// session that asked for footprint natively is not "degraded".
    degraded: bool,
}

/// Builds the synthesis pipeline for a spec on the given pools — the one
/// construction path for private sessions *and* broadcast channels, which is
/// what makes a channel's frames structurally bit-identical to a private
/// session's.
pub(crate) fn build_pipeline(spec: &SessionSpec, shared: &SharedPools) -> Pipeline {
    let machine = MachineConfig::new(spec.processors, spec.pipes);
    let mut pipeline = Pipeline::new(
        spec.config,
        ExecutionMode::DivideAndConquer(machine),
        service_domain(),
    );
    // The service serves the raw synthesis texture; skip the display-only
    // high-pass filter work — and the display texture entirely, which saves
    // a framebuffer-sized allocation + pass per frame.
    pipeline.set_postprocess(false);
    pipeline.set_display_enabled(false);
    // Attach the service-wide pools (arena first: replacing the arena
    // rebuilds a pipeline-owned pipe pool, which the shared pool then
    // replaces). A session rebuilt after a steer or rewind lands back on
    // the same warm buffers and workers.
    if let Some(arena) = &shared.arena {
        pipeline.set_frame_arena(Some(Arc::clone(arena)));
    }
    if let Some(pool) = &shared.pipes {
        pipeline.set_pipe_pool(Some(Arc::clone(pool)));
    }
    pipeline.set_trace_sink(shared.trace.clone());
    pipeline
}

/// One synthesis step: advances the pipeline over `field` by `dt`,
/// serializes the texture into the wire format, and recycles the frame
/// buffer back into the pipeline's arena (the last link of the steady-state
/// zero-allocation loop). Shared between private-session renders and
/// channel serves so both modes produce byte-identical frames by
/// construction.
pub(crate) fn advance_pipeline(
    pipeline: &mut Pipeline,
    field: &dyn VectorField,
    dt: f64,
) -> (Arc<Vec<u8>>, StageTimings) {
    // Stamp the frame index onto the thread's trace context (keeping the
    // worker's actor id) so every span this advance emits carries it.
    let _trace_ctx = telemetry::set_ctx(TraceCtx {
        actor: telemetry::ctx().actor,
        frame: pipeline.frames(),
    });
    let out = pipeline.advance(field, dt, 0);
    let bytes = Arc::new(texture_bytes(&out.texture));
    let timings = out.metrics.timings;
    if let Some(arena) = pipeline.frame_arena() {
        arena.recycle_texture(out.texture);
    }
    (bytes, timings)
}

/// Serializes a texture as little-endian `f32` bytes, row-major from the
/// bottom row — the frame-fetch wire format.
pub fn texture_bytes(texture: &softpipe::Texture) -> Vec<u8> {
    let mut out = Vec::with_capacity(texture.data().len() * 4);
    for v in texture.data() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// RAII marker for one admitted-but-unfinished frame job: holds the
/// session's in-flight count up until the worker has finished (or the job
/// was shed/dropped), which is what keeps idle eviction away from sessions
/// with queued work.
pub struct InFlightGuard(Arc<AtomicUsize>);

impl Drop for InFlightGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

impl Session {
    /// Creates a session from a validated spec, with per-session default
    /// pools.
    pub fn new(spec: SessionSpec) -> Self {
        Session::with_pools(spec, SharedPools::default())
    }

    /// Creates a session whose pipeline composes on the given shared pools.
    pub fn with_pools(spec: SessionSpec, shared: SharedPools) -> Self {
        let backing = Backing::Private(Box::new(PrivateBacking {
            field: spec.field.build(),
            pipeline: build_pipeline(&spec, &shared),
        }));
        Session::with_backing(spec, shared, backing)
    }

    /// Creates a session backed by a shared-channel subscription: the
    /// session owns no pipeline, its frames come off the channel's clock.
    pub fn subscribed(
        spec: SessionSpec,
        shared: SharedPools,
        subscription: ChannelSubscription,
    ) -> Self {
        Session::with_backing(spec, shared, Backing::Shared(subscription))
    }

    fn with_backing(spec: SessionSpec, shared: SharedPools, backing: Backing) -> Self {
        Session {
            backing,
            shared,
            in_flight: Arc::new(AtomicUsize::new(0)),
            field_key: spec.field.cache_key(),
            config_key: spec.config_cache_key(),
            last_touch: Instant::now(),
            frames_rendered: 0,
            stage_totals: StageTimings::default(),
            rewinds: 0,
            steers: 0,
            next_advance: 0,
            quarantined: false,
            degraded: false,
            spec,
        }
    }

    /// The channel a shared session subscribes to (`None` for private
    /// sessions).
    pub fn channel(&self) -> Option<&Arc<FieldChannel>> {
        match &self.backing {
            Backing::Shared(sub) => Some(sub.channel()),
            Backing::Private(_) => None,
        }
    }

    /// True when the session's frames come off a shared channel.
    pub fn is_shared(&self) -> bool {
        matches!(self.backing, Backing::Shared(_))
    }

    /// Marks one frame job as admitted for this session; the returned guard
    /// releases the mark when dropped. Take it *before* submitting to the
    /// admission queue and keep it alive through synthesis, so eviction can
    /// never reap the session between queue pop and render.
    pub fn begin_job(&self) -> InFlightGuard {
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        InFlightGuard(Arc::clone(&self.in_flight))
    }

    /// Number of admitted-but-unfinished frame jobs.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::SeqCst)
    }

    /// The session's spec.
    pub fn spec(&self) -> &SessionSpec {
        &self.spec
    }

    /// The frame-cache key of frame `frame` in the session's current
    /// (field, config) binding.
    pub fn key_for(&self, frame: u64) -> FrameKey {
        FrameKey {
            field: self.field_key,
            config: self.config_key,
            seed: self.spec.config.seed,
            frame,
        }
    }

    /// The index the next natural advance would render (for shared
    /// sessions: the channel's live frontier).
    pub fn head_frame(&self) -> u64 {
        match &self.backing {
            Backing::Private(private) => private.pipeline.frames(),
            Backing::Shared(sub) => sub.channel().head(),
        }
    }

    /// The frame index `advance` serves next: one past the most recently
    /// served frame, whether that serve rendered or hit the cache.
    pub fn next_advance(&self) -> u64 {
        self.next_advance
    }

    /// Records that `frame` was served to a client (rendered *or* cached),
    /// moving the advance cursor past it. A cached serve never touches the
    /// pipeline, so without this bookkeeping a rewound session's `advance`
    /// would hit the cache at the same index forever instead of
    /// progressing.
    pub fn note_served(&mut self, frame: u64) {
        self.next_advance = frame.saturating_add(1);
    }

    /// Total synthesis steps performed for this session.
    pub fn frames_rendered(&self) -> u64 {
        self.frames_rendered
    }

    /// Summed stage timings of every frame synthesized while serving this
    /// session.
    pub fn stage_totals(&self) -> StageTimings {
        self.stage_totals
    }

    /// Times the pipeline was rebuilt to serve an earlier frame.
    pub fn rewinds(&self) -> u64 {
        self.rewinds
    }

    /// Times the session was steered.
    pub fn steers(&self) -> u64 {
        self.steers
    }

    /// True when a panicked render has poisoned this session.
    pub fn is_quarantined(&self) -> bool {
        self.quarantined
    }

    /// Quarantines the session after a panicked render: its pipeline state
    /// can no longer be trusted, so every further frame request is refused
    /// and the registry reaps it once its in-flight work drains. Returns
    /// `true` on the transition only, so callers can count quarantined
    /// sessions without double-counting repeated panics.
    pub fn quarantine(&mut self) -> bool {
        let first = !self.quarantined;
        self.quarantined = true;
        first
    }

    /// True while the pressure ladder has this session switched to
    /// footprint sampling.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Switches an exact-sampling private session to footprint sampling —
    /// the pressure ladder's quality dial. Returns `true` when the switch
    /// happened; pinned, shared, already-degraded and natively-footprint
    /// sessions are left alone. Advection is sampling-independent, so the
    /// flip applies to the live pipeline without a rebuild and every frame
    /// from here on is bit-identical to a natively-footprint session's —
    /// which is what keeps the recomputed cache key sound.
    pub fn degrade(&mut self) -> bool {
        if self.degraded || self.spec.pinned || self.spec.config.sampling != SamplingMode::Exact {
            return false;
        }
        let Backing::Private(private) = &mut self.backing else {
            return false;
        };
        self.spec.config.sampling = SamplingMode::Footprint;
        private.pipeline.set_sampling(SamplingMode::Footprint);
        self.config_key = self.spec.config_cache_key();
        self.degraded = true;
        true
    }

    /// Undoes [`Session::degrade`] once pressure recovers; returns `true`
    /// when the session was switched back to exact sampling.
    pub fn restore(&mut self) -> bool {
        if !self.degraded {
            return false;
        }
        self.spec.config.sampling = SamplingMode::Exact;
        if let Backing::Private(private) = &mut self.backing {
            private.pipeline.set_sampling(SamplingMode::Exact);
        }
        self.config_key = self.spec.config_cache_key();
        self.degraded = false;
        true
    }

    /// Marks the session as used now (for idle eviction).
    pub fn touch(&mut self) {
        self.last_touch = Instant::now();
    }

    /// How long the session has been idle.
    pub fn idle_for(&self) -> Duration {
        self.last_touch.elapsed()
    }

    /// Steers the session: rebinds it to `field` and restarts the animation
    /// clock from the seed. Frames rendered under the previous binding stay
    /// in the cache under their own keys, so steering back re-serves them
    /// without synthesis.
    ///
    /// Steering a *shared* session forks it off its channel into a private
    /// one: the broadcast keeps running unperturbed for the other
    /// subscribers (a shared clock can't be steered by one viewer), and the
    /// steering session gets its own pipeline from here on.
    pub fn steer(&mut self, field: FieldSpec) {
        self.spec.field = field;
        self.spec.shared = false;
        self.field_key = field.cache_key();
        // Replacing the backing drops a shared session's subscription —
        // the channel-registry sweep retires the channel once the last
        // subscriber is gone.
        self.backing = Backing::Private(Box::new(PrivateBacking {
            field: field.build(),
            pipeline: build_pipeline(&self.spec, &self.shared),
        }));
        self.steers += 1;
        self.next_advance = 0;
        self.touch();
    }

    /// Renders frame `index`, replaying from the seed when the session is
    /// already past it. Every frame synthesized on the way (the requested
    /// one included) is handed to `on_frame` with its cache key and stage
    /// timings, so look-ahead work is never wasted.
    ///
    /// A *shared* session delegates to its channel's clock instead: the
    /// channel never rewinds, so a request behind the frontier that missed
    /// the cache is skipped forward to the live frontier
    /// ([`ServedFrame::skipped`]).
    pub fn render_frame(
        &mut self,
        index: u64,
        max_advances: u64,
        mut on_frame: impl FnMut(FrameKey, &Arc<Vec<u8>>, &StageTimings),
    ) -> Result<ServedFrame, RenderError> {
        self.touch();
        let (field_key, config_key, seed) =
            (self.field_key, self.config_key, self.spec.config.seed);
        // Accumulated locally (the shared arm's closure cannot borrow
        // `self`), then folded into the session after the match.
        let mut served_totals = StageTimings::default();
        let result = match &mut self.backing {
            Backing::Shared(sub) => {
                sub.channel()
                    .serve(index, max_advances, |key, bytes, timings| {
                        served_totals.accumulate(timings);
                        on_frame(key, bytes, timings);
                    })
            }
            Backing::Private(private) => {
                let PrivateBacking { field, pipeline } = &mut **private;
                if index < pipeline.frames() {
                    // The session is past the requested frame: replay from
                    // the seed.
                    *pipeline = build_pipeline(&self.spec, &self.shared);
                    self.rewinds += 1;
                }
                // The rewind above guarantees frames() <= index, so this
                // subtraction cannot wrap; comparing the off-by-one form
                // (`needed - 1 >= max`) keeps `index == u64::MAX` from
                // overflowing `needed` itself and sneaking past the cap into
                // an effectively unbounded render loop.
                let advances_after_first = index - pipeline.frames();
                if advances_after_first >= max_advances {
                    return Err(RenderError::TooFarAhead {
                        needed: advances_after_first.saturating_add(1),
                        max: max_advances,
                    });
                }
                let mut last = None;
                while pipeline.frames() <= index {
                    let frame_index = pipeline.frames();
                    let (bytes, timings) = advance_pipeline(pipeline, field.as_ref(), self.spec.dt);
                    self.frames_rendered += 1;
                    served_totals.accumulate(&timings);
                    let key = FrameKey {
                        field: field_key,
                        config: config_key,
                        seed,
                        frame: frame_index,
                    };
                    on_frame(key, &bytes, &timings);
                    last = Some(bytes);
                }
                Ok(ServedFrame {
                    bytes: last.expect("loop ran at least once"),
                    frame: index,
                    skipped: false,
                })
            }
        };
        self.stage_totals.accumulate(&served_totals);
        result
    }
}

/// Counter snapshot of the registry for `/stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Sessions currently live.
    pub live: usize,
    /// Sessions ever created.
    pub created: u64,
    /// Sessions removed by idle eviction.
    pub evicted: u64,
    /// Sessions closed by clients.
    pub closed: u64,
}

/// Why a session could not be created.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegistryError {
    /// The registry is at its session cap.
    TooManySessions,
}

/// Owns the sessions, keyed by opaque ids of the form `s-<n>`.
pub struct SessionRegistry {
    sessions: HashMap<u64, Arc<Mutex<Session>>>,
    next_id: u64,
    max_sessions: usize,
    idle_timeout: Duration,
    /// Pools attached to every created session's pipeline.
    shared: SharedPools,
    created: u64,
    evicted: u64,
    closed: u64,
}

/// Formats a session id the way it appears in URLs.
pub fn format_session_id(id: u64) -> String {
    format!("s-{id}")
}

/// Parses a session id from its URL form.
pub fn parse_session_id(text: &str) -> Option<u64> {
    text.strip_prefix("s-")?.parse().ok()
}

impl SessionRegistry {
    /// Creates a registry enforcing the given cap and idle timeout, with
    /// per-session default pools.
    pub fn new(max_sessions: usize, idle_timeout: Duration) -> Self {
        SessionRegistry::with_pools(max_sessions, idle_timeout, SharedPools::default())
    }

    /// Like [`SessionRegistry::new`], attaching the given shared pools to
    /// every session it creates.
    pub fn with_pools(max_sessions: usize, idle_timeout: Duration, shared: SharedPools) -> Self {
        SessionRegistry {
            sessions: HashMap::new(),
            next_id: 1,
            max_sessions,
            idle_timeout,
            shared,
            created: 0,
            evicted: 0,
            closed: 0,
        }
    }

    /// Creates a private session, returning its id and handle.
    pub fn create(
        &mut self,
        spec: SessionSpec,
    ) -> Result<(u64, Arc<Mutex<Session>>), RegistryError> {
        if self.sessions.len() >= self.max_sessions {
            return Err(RegistryError::TooManySessions);
        }
        self.insert(Session::with_pools(spec, self.shared.clone()))
    }

    /// Creates a session subscribed to a shared channel. On a cap rejection
    /// the subscription is dropped (its `Drop` unsubscribes), so a shed
    /// create never leaks a channel membership.
    pub fn create_shared(
        &mut self,
        spec: SessionSpec,
        subscription: ChannelSubscription,
    ) -> Result<(u64, Arc<Mutex<Session>>), RegistryError> {
        if self.sessions.len() >= self.max_sessions {
            return Err(RegistryError::TooManySessions);
        }
        self.insert(Session::subscribed(spec, self.shared.clone(), subscription))
    }

    fn insert(&mut self, session: Session) -> Result<(u64, Arc<Mutex<Session>>), RegistryError> {
        let id = self.next_id;
        self.next_id += 1;
        let session = Arc::new(Mutex::new(session));
        self.sessions.insert(id, Arc::clone(&session));
        self.created += 1;
        Ok((id, session))
    }

    /// Looks up a session.
    pub fn get(&self, id: u64) -> Option<Arc<Mutex<Session>>> {
        self.sessions.get(&id).map(Arc::clone)
    }

    /// Closes a session; returns whether it existed.
    pub fn close(&mut self, id: u64) -> bool {
        let existed = self.sessions.remove(&id).is_some();
        if existed {
            self.closed += 1;
        }
        existed
    }

    /// Removes sessions idle for longer than the timeout. A session whose
    /// lock is currently held is in use by definition and is skipped — and
    /// so is a session with admitted-but-unfinished frame jobs
    /// ([`Session::in_flight`]): a queued job holds no lock yet, but
    /// evicting its session between queue pop and synthesis would turn an
    /// admitted request into a spurious `404`.
    ///
    /// Quarantined sessions are reaped as soon as their in-flight work has
    /// drained, idle or not — they can never serve another frame, so
    /// keeping them alive for the timeout would only pin dead pipelines.
    pub fn evict_idle(&mut self) -> usize {
        let timeout = self.idle_timeout;
        let victims: Vec<u64> = self
            .sessions
            .iter()
            .filter_map(|(&id, session)| match session.try_lock() {
                Ok(s) if s.in_flight() == 0 && (s.is_quarantined() || s.idle_for() > timeout) => {
                    Some(id)
                }
                _ => None,
            })
            .collect();
        for id in &victims {
            self.sessions.remove(id);
        }
        self.evicted += victims.len() as u64;
        victims.len()
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// True when no session is live.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> RegistryStats {
        RegistryStats {
            live: self.sessions.len(),
            created: self.created,
            evicted: self.evicted,
            closed: self.closed,
        }
    }

    /// Ids of all live sessions (for `/stats`).
    pub fn ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.sessions.keys().copied().collect();
        ids.sort_unstable();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotnoise::config::SynthesisConfig;

    fn quick_spec() -> SessionSpec {
        SessionSpec {
            config: SynthesisConfig {
                texture_size: 32,
                spot_count: 40,
                spot_texture_size: 8,
                ..SynthesisConfig::small_test()
            },
            ..SessionSpec::default()
        }
    }

    #[test]
    fn frames_are_deterministic_and_rewind_replays_identically() {
        let mut a = Session::new(quick_spec());
        let mut b = Session::new(quick_spec());
        let f0a = a.render_frame(0, 16, |_, _, _| {}).unwrap();
        let f1a = a.render_frame(1, 16, |_, _, _| {}).unwrap();
        let f1b = b.render_frame(1, 16, |_, _, _| {}).unwrap();
        assert_eq!(f1a.bytes, f1b.bytes, "same spec, same frame, same bytes");
        assert_eq!((f1a.frame, f1a.skipped), (1, false));
        // Rewind: ask a for frame 0 again — replayed from the seed.
        let f0a2 = a.render_frame(0, 16, |_, _, _| {}).unwrap();
        assert_eq!(f0a.bytes, f0a2.bytes);
        assert_eq!(a.rewinds(), 1);
        assert!(f0a.bytes != f1a.bytes, "successive frames differ");
    }

    #[test]
    fn render_reports_every_intermediate_frame() {
        let mut s = Session::new(quick_spec());
        let mut seen = Vec::new();
        s.render_frame(2, 16, |key, bytes, timings| {
            assert_eq!(bytes.len(), 32 * 32 * 4);
            assert!(timings.synthesize_us > 0);
            seen.push(key.frame);
        })
        .unwrap();
        assert_eq!(seen, vec![0, 1, 2]);
        assert_eq!(s.frames_rendered(), 3);
        assert_eq!(s.head_frame(), 3);
        let totals = s.stage_totals();
        assert!(
            totals.synthesize_us > 0,
            "stage totals accumulate per-frame timings: {totals:?}"
        );
    }

    #[test]
    fn advance_cap_is_enforced() {
        let mut s = Session::new(quick_spec());
        let err = s.render_frame(99, 16, |_, _, _| {}).unwrap_err();
        assert_eq!(
            err,
            RenderError::TooFarAhead {
                needed: 100,
                max: 16
            }
        );
        // Nothing was rendered.
        assert_eq!(s.frames_rendered(), 0);
        // The boundary itself is allowed: exactly max advances.
        assert!(s.render_frame(15, 16, |_, _, _| {}).is_ok());
        // u64::MAX must hit the cap cleanly instead of wrapping past it
        // (debug builds would panic on the overflow, release builds would
        // loop ~2^64 synthesis steps).
        let err = s.render_frame(u64::MAX, 16, |_, _, _| {}).unwrap_err();
        assert!(matches!(err, RenderError::TooFarAhead { max: 16, .. }));
    }

    #[test]
    fn advance_cursor_tracks_served_frames_and_resets_on_steer() {
        let mut s = Session::new(quick_spec());
        assert_eq!(s.next_advance(), 0);
        s.note_served(0);
        assert_eq!(s.next_advance(), 1);
        // A rewound serve moves the cursor back too: advance continues
        // right after whatever the client last saw.
        s.note_served(4);
        s.note_served(0);
        assert_eq!(s.next_advance(), 1);
        s.note_served(u64::MAX);
        assert_eq!(s.next_advance(), u64::MAX);
        s.steer(FieldSpec::Shear { rate: 1.0 });
        assert_eq!(s.next_advance(), 0);
    }

    #[test]
    fn steering_restarts_the_clock_and_changes_keys() {
        let mut s = Session::new(quick_spec());
        let original = s.key_for(0);
        let f0 = s.render_frame(0, 16, |_, _, _| {}).unwrap();
        s.steer(FieldSpec::Shear { rate: 2.0 });
        assert_eq!(s.head_frame(), 0, "steer restarts the animation clock");
        let steered_key = s.key_for(0);
        assert_ne!(original, steered_key);
        let f0_steered = s.render_frame(0, 16, |_, _, _| {}).unwrap();
        assert!(
            f0.bytes != f0_steered.bytes,
            "different field, different frame"
        );
        // Steering back restores the original key (the cache-hit scenario).
        s.steer(SessionSpec::default().field);
        assert_eq!(s.key_for(0), original);
        let f0_back = s.render_frame(0, 16, |_, _, _| {}).unwrap();
        assert_eq!(f0.bytes, f0_back.bytes);
        assert_eq!(s.steers(), 2);
    }

    #[test]
    fn registry_creates_caps_and_closes() {
        let mut r = SessionRegistry::new(2, Duration::from_secs(300));
        let (a, _) = r.create(quick_spec()).unwrap();
        let (b, _) = r.create(quick_spec()).unwrap();
        assert_ne!(a, b);
        assert!(matches!(
            r.create(quick_spec()),
            Err(RegistryError::TooManySessions)
        ));
        assert!(r.get(a).is_some());
        assert!(r.close(a));
        assert!(!r.close(a));
        assert!(r.get(a).is_none());
        let stats = r.stats();
        assert_eq!((stats.live, stats.created, stats.closed), (1, 2, 1));
    }

    #[test]
    fn idle_sessions_are_evicted_busy_ones_spared() {
        let mut r = SessionRegistry::new(8, Duration::from_millis(10));
        let (idle, _) = r.create(quick_spec()).unwrap();
        let (busy, busy_handle) = r.create(quick_spec()).unwrap();
        std::thread::sleep(Duration::from_millis(30));
        // The busy session's lock is held (a worker is rendering).
        let guard = busy_handle.lock().unwrap();
        assert_eq!(r.evict_idle(), 1);
        drop(guard);
        assert!(r.get(idle).is_none());
        assert!(r.get(busy).is_some());
        assert_eq!(r.stats().evicted, 1);
        // Touched sessions are not idle.
        busy_handle.lock().unwrap().touch();
        assert_eq!(r.evict_idle(), 0);
    }

    #[test]
    fn queued_work_blocks_eviction_until_the_guard_drops() {
        let mut r = SessionRegistry::new(8, Duration::from_millis(5));
        let (id, handle) = r.create(quick_spec()).unwrap();
        // A job is admitted but no worker has popped it yet: the session
        // lock is free, only the in-flight guard marks the pending work.
        let guard = handle.lock().unwrap().begin_job();
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(r.evict_idle(), 0, "evicted a session with queued work");
        assert!(r.get(id).is_some());
        // Overlapping jobs: the session stays protected until the last one
        // finishes.
        let second = handle.lock().unwrap().begin_job();
        drop(guard);
        assert_eq!(r.evict_idle(), 0);
        drop(second);
        assert_eq!(r.evict_idle(), 1);
        assert!(r.get(id).is_none());
    }

    #[test]
    fn degrade_matches_a_native_footprint_session_and_restores() {
        let mut degraded = Session::new(quick_spec());
        let f0_exact = degraded.render_frame(0, 16, |_, _, _| {}).unwrap();
        assert!(degraded.degrade(), "exact private session must degrade");
        assert!(degraded.is_degraded());
        assert!(!degraded.degrade(), "second degrade is a no-op");
        let f1 = degraded.render_frame(1, 16, |_, _, _| {}).unwrap();

        // A session that asked for footprint from the start.
        let mut native_spec = quick_spec();
        native_spec.config.sampling = SamplingMode::Footprint;
        let mut native = Session::new(native_spec);
        native.render_frame(0, 16, |_, _, _| {}).unwrap();
        let f1_native = native.render_frame(1, 16, |_, _, _| {}).unwrap();
        assert_eq!(
            f1.bytes, f1_native.bytes,
            "degraded mid-stream differs from a native footprint session"
        );
        // And the degraded session's cache key now matches the native one.
        assert_eq!(degraded.key_for(1), native.key_for(1));

        assert!(degraded.restore());
        assert!(!degraded.restore(), "second restore is a no-op");
        let f2 = degraded.render_frame(2, 16, |_, _, _| {}).unwrap();
        let mut exact = Session::new(quick_spec());
        let f0_check = exact.render_frame(0, 16, |_, _, _| {}).unwrap();
        exact.render_frame(1, 16, |_, _, _| {}).unwrap();
        let f2_exact = exact.render_frame(2, 16, |_, _, _| {}).unwrap();
        assert_eq!(f0_exact.bytes, f0_check.bytes);
        assert_eq!(
            f2.bytes, f2_exact.bytes,
            "restored session differs from an always-exact session"
        );
        // A natively-footprint session never counts as degraded.
        assert!(!native.degrade());
        assert!(!native.is_degraded());
    }

    #[test]
    fn pinned_sessions_refuse_degradation() {
        let mut spec = quick_spec();
        spec.pinned = true;
        let mut s = Session::new(spec);
        assert!(!s.degrade());
        assert!(!s.is_degraded());
    }

    #[test]
    fn quarantined_sessions_are_reaped_once_work_drains() {
        let mut r = SessionRegistry::new(8, Duration::from_secs(300));
        let (id, handle) = r.create(quick_spec()).unwrap();
        let guard = handle.lock().unwrap().begin_job();
        assert!(handle.lock().unwrap().quarantine(), "first quarantine");
        assert!(
            !handle.lock().unwrap().quarantine(),
            "repeat quarantine is not a transition"
        );
        // In-flight work still pins the session (a worker may hold its
        // frame job).
        assert_eq!(r.evict_idle(), 0);
        drop(guard);
        // Freshly touched, nowhere near the idle timeout — reaped anyway.
        handle.lock().unwrap().touch();
        assert_eq!(r.evict_idle(), 1);
        assert!(r.get(id).is_none());
    }

    #[test]
    fn session_ids_round_trip() {
        assert_eq!(format_session_id(17), "s-17");
        assert_eq!(parse_session_id("s-17"), Some(17));
        assert_eq!(parse_session_id("17"), None);
        assert_eq!(parse_session_id("s-x"), None);
    }
}
