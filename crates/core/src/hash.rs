//! Stable content hashing for cache keys.
//!
//! The synthesis service caches rendered frames under a key derived from the
//! *content* of the inputs — the field parameters, the
//! [`SynthesisConfig`](crate::config::SynthesisConfig), the seed and the
//! frame index — so the hash must be stable across processes and runs (which
//! rules out [`std::collections::hash_map::DefaultHasher`]: its keys are
//! randomized per process). [`StableHasher`] is a fixed-parameter 64-bit
//! FNV-1a over an explicitly fed byte stream; floats are hashed by their IEEE
//! bit patterns so `0.25` hashes identically everywhere and distinct values
//! (including `0.0` vs `-0.0`) hash differently.

/// A deterministic 64-bit FNV-1a hasher with typed feed methods.
///
/// Every `write_*` method folds a fixed-width encoding of the value into the
/// state, so the resulting hash is a pure function of the fed value sequence
/// — the same sequence always yields the same key, in any process, on any
/// run.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl StableHasher {
    /// Creates a hasher in the standard FNV-1a initial state.
    pub fn new() -> Self {
        StableHasher { state: FNV_OFFSET }
    }

    /// Feeds raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.write_bytes(&[v]);
    }

    /// Feeds a `u64` as eight little-endian bytes.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds a `usize` widened to `u64` (stable across pointer widths).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Feeds a boolean as one byte.
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(u8::from(v));
    }

    /// Feeds an `f64` by its IEEE-754 bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Feeds an `f32` by its IEEE-754 bit pattern.
    pub fn write_f32(&mut self, v: f32) {
        self.write_bytes(&v.to_bits().to_le_bytes());
    }

    /// Feeds a string as its length followed by its UTF-8 bytes (the length
    /// prefix keeps `("ab", "c")` distinct from `("a", "bc")`).
    pub fn write_str(&mut self, v: &str) {
        self.write_usize(v.len());
        self.write_bytes(v.as_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_feeds_hash_identically() {
        let mut a = StableHasher::new();
        let mut b = StableHasher::new();
        for h in [&mut a, &mut b] {
            h.write_str("vortex");
            h.write_f64(1.5);
            h.write_u64(42);
            h.write_bool(true);
        }
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn distinct_feeds_hash_differently() {
        let hash = |f: &dyn Fn(&mut StableHasher)| {
            let mut h = StableHasher::new();
            f(&mut h);
            h.finish()
        };
        let base = hash(&|h| h.write_f64(1.0));
        assert_ne!(base, hash(&|h| h.write_f64(2.0)));
        assert_ne!(base, hash(&|h| h.write_f64(-1.0)));
        // Signed zero is a distinct bit pattern, hence a distinct key.
        assert_ne!(hash(&|h| h.write_f64(0.0)), hash(&|h| h.write_f64(-0.0)));
        // The string length prefix keeps concatenations apart.
        assert_ne!(
            hash(&|h| {
                h.write_str("ab");
                h.write_str("c");
            }),
            hash(&|h| {
                h.write_str("a");
                h.write_str("bc");
            })
        );
    }

    #[test]
    fn known_fnv_vector() {
        // FNV-1a of the empty input is the offset basis; of "a" it is the
        // published test vector 0xaf63dc4c8601ec8c.
        assert_eq!(StableHasher::new().finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = StableHasher::new();
        h.write_bytes(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }
}
