//! Micro-benchmarks of the substrates the pipeline is built on: field
//! interpolation, particle integration, stream-line tracing, spot
//! rasterization, texture gathering, and one step of each application model.

use criterion::{criterion_group, criterion_main, Criterion};
use flowfield::analytic::Vortex;
use flowfield::streamline::{trace_streamline, StreamlineOptions};
use flowfield::{Integrator, Rect, RegularGrid, Vec2, VectorField};
use flowsim::{DnsConfig, DnsSolver, SmogModel};
use softpipe::raster::{axis_aligned_spot_quad, rasterize_quad, RasterStats};
use softpipe::{disc_spot_texture, gather_additive, BlendMode, Texture};

fn bench_substrates(c: &mut Criterion) {
    let domain = Rect::new(Vec2::ZERO, Vec2::new(1.0, 1.0));
    let vortex = Vortex {
        omega: 1.0,
        center: domain.center(),
        domain,
    };
    let grid = RegularGrid::sample_field(53, 55, &vortex);

    c.bench_function("field/bilinear_interpolation_53x55", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = k.wrapping_add(1);
            let p = Vec2::new((k % 97) as f64 / 97.0, (k % 89) as f64 / 89.0);
            grid.interpolate(p)
        })
    });

    c.bench_function("field/rk4_step", |b| {
        b.iter(|| Integrator::RungeKutta4.step(&grid, Vec2::new(0.3, 0.4), 0.01))
    });

    c.bench_function("field/streamline_32_points", |b| {
        let opts = StreamlineOptions {
            step_fraction: 1.0 / 32.0,
            ..Default::default()
        };
        b.iter(|| trace_streamline(&grid, Vec2::new(0.4, 0.6), 0.2, &opts))
    });

    c.bench_function("raster/spot_quad_512", |b| {
        let mut target = Texture::new(512, 512);
        let spot = disc_spot_texture(32, 0.5);
        b.iter(|| {
            let mut stats = RasterStats::default();
            rasterize_quad(
                &mut target,
                &spot,
                axis_aligned_spot_quad(Vec2::new(256.0, 256.0), 12.0),
                0.5,
                BlendMode::Additive,
                &mut stats,
            );
            stats.fragments
        })
    });

    // The retained naive rasterizer, on the same workload: the before/after
    // pair that BENCH_raster.json records.
    c.bench_function("raster/spot_quad_512_reference", |b| {
        let mut target = Texture::new(512, 512);
        let spot = disc_spot_texture(32, 0.5);
        b.iter(|| {
            let mut stats = RasterStats::default();
            softpipe::raster::reference::rasterize_quad(
                &mut target,
                &spot,
                axis_aligned_spot_quad(Vec2::new(256.0, 256.0), 12.0),
                0.5,
                BlendMode::Additive,
                &mut stats,
            );
            stats.fragments
        })
    });

    c.bench_function("raster/gather_two_512_textures", |b| {
        let mut a = Texture::new(512, 512);
        a.fill(0.5);
        let mut d = Texture::new(512, 512);
        d.fill(0.25);
        let partials = vec![a, d];
        b.iter(|| gather_additive(&partials))
    });

    let mut group = c.benchmark_group("applications");
    group.sample_size(10);
    group.bench_function("smog_step_53x55", |b| {
        let mut model = SmogModel::paper_resolution(3);
        b.iter(|| model.step(0.1))
    });
    group.bench_function("dns_step_72x40", |b| {
        let mut solver = DnsSolver::new(DnsConfig::small_test());
        b.iter(|| solver.step(0.02))
    });
    group.finish();

    // Sanity use of the VectorField trait to keep the import honest.
    let _ = vortex.velocity(Vec2::ZERO);
}

criterion_group!(benches, bench_substrates);
criterion_main!(benches);
