//! The `spotnoise-service` server binary.
//!
//! ```text
//! spotnoise-service [--addr 127.0.0.1] [--port 7997] [--cache-bytes 67108864]
//!                   [--watermark 64] [--per-session 16] [--workers 0]
//!                   [--max-sessions 64] [--idle-timeout-secs 300]
//!                   [--node-id w0] [--peers host:port,host:port]
//! ```
//!
//! `--node-id` names this node in `X-Node-Id` headers and `/stats` (the
//! bound address by default); `--peers` lists sibling nodes whose frame
//! caches are consulted on a local cache miss before synthesizing.
//!
//! Prints `listening on http://<addr>` once bound (port 0 picks an
//! ephemeral port and prints the real one) and runs until `POST /shutdown`.

use spotnoise_service::{serve, AdmissionConfig, ServiceOptions};
use std::net::SocketAddr;
use std::process::ExitCode;
use std::time::Duration;

fn parse<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>, flag: &str) -> Option<T> {
    match args.next().map(|v| v.parse::<T>()) {
        Some(Ok(v)) => Some(v),
        _ => {
            eprintln!("{flag} needs a value");
            None
        }
    }
}

fn main() -> ExitCode {
    let mut addr = "127.0.0.1".to_string();
    let mut port: u16 = 7997;
    let mut options = ServiceOptions::default();
    let mut admission = AdmissionConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let ok = match arg.as_str() {
            "--addr" => parse::<String>(&mut args, "--addr")
                .map(|v| addr = v)
                .is_some(),
            "--port" => parse::<u16>(&mut args, "--port")
                .map(|v| port = v)
                .is_some(),
            "--cache-bytes" => parse::<usize>(&mut args, "--cache-bytes")
                .map(|v| options.cache_bytes = v)
                .is_some(),
            "--watermark" => parse::<usize>(&mut args, "--watermark")
                .map(|v| admission.watermark = v)
                .is_some(),
            "--per-session" => parse::<usize>(&mut args, "--per-session")
                .map(|v| admission.per_session = v)
                .is_some(),
            "--workers" => parse::<usize>(&mut args, "--workers")
                .map(|v| options.workers = v)
                .is_some(),
            "--max-sessions" => parse::<usize>(&mut args, "--max-sessions")
                .map(|v| options.max_sessions = v)
                .is_some(),
            "--idle-timeout-secs" => parse::<u64>(&mut args, "--idle-timeout-secs")
                .map(|v| options.idle_timeout = Duration::from_secs(v))
                .is_some(),
            "--node-id" => parse::<String>(&mut args, "--node-id")
                .map(|v| options.node_id = Some(v))
                .is_some(),
            "--peers" => match parse::<String>(&mut args, "--peers") {
                None => false,
                Some(list) => {
                    let parsed: Result<Vec<SocketAddr>, _> = list
                        .split(',')
                        .filter(|s| !s.is_empty())
                        .map(str::parse)
                        .collect();
                    match parsed {
                        Ok(peers) => {
                            options.peers = peers;
                            true
                        }
                        Err(e) => {
                            eprintln!("--peers: {e} (expected host:port,host:port)");
                            false
                        }
                    }
                }
            },
            other => {
                eprintln!("unknown argument: {other}");
                false
            }
        };
        if !ok {
            return ExitCode::FAILURE;
        }
    }
    options.admission = admission;
    let handle = match serve((addr.as_str(), port), options) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("bind {addr}:{port}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("listening on http://{}", handle.addr());
    // Line-buffer stdout so scripts polling for the banner see it promptly.
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    handle.join();
    println!("shut down cleanly");
    ExitCode::SUCCESS
}
