//! # flowsim — application substrates for divide-and-conquer spot noise
//!
//! The paper evaluates the parallel spot-noise implementation on two
//! applications whose original codes and data are not available; this crate
//! holds the documented substitutes (see DESIGN.md for the substitution
//! rationale):
//!
//! * [`wind`] + [`smog`] + [`steering`] — the *atmospheric pollution* steering
//!   application: a synthetic continental wind model and an
//!   advection–diffusion–emission pollutant model on the paper's 53x55 grid,
//!   with steerable emission/meteorology parameters (Table 1, Figure 6),
//! * [`dns`] + [`obstacle`] + [`browser`] — the *turbulent flow* browsing
//!   application: a 2-D incompressible solver producing vortex shedding
//!   behind a block, sampled on the paper's 278x208 slice grid and stored in
//!   a time-series data base for playback (Table 2, Figure 7),
//! * [`skin_friction`] — the reconstructed skin-friction pattern on the block
//!   face (Figure 2).

#![warn(missing_docs)]

pub mod browser;
pub mod diagnostics;
pub mod dns;
pub mod obstacle;
pub mod skin_friction;
pub mod smog;
pub mod steering;
pub mod wind;

pub use browser::{record_dns_run, DataBrowser, FrameInfo};
pub use diagnostics::{energy_report, EnergyReport, WakeProbe};
pub use dns::{DnsConfig, DnsSolver};
pub use obstacle::Block;
pub use skin_friction::{
    attachment_height, pattern_from_dns, skin_friction_field, SkinFrictionPattern,
};
pub use smog::{EmissionSource, SmogModel};
pub use steering::{SmogParameters, SteeringCommand, SteeringQueue};
pub use wind::{PressureSystem, WindModel};

#[cfg(test)]
mod proptests {
    use crate::steering::{SmogParameters, SteeringCommand, SteeringQueue};
    use crate::wind::WindModel;
    use flowfield::analytic::divergence;
    use flowfield::Vec2;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The synthetic wind stays (relatively) divergence free at any time
        /// and position — the property that makes it a fair stand-in for a
        /// large-scale atmospheric flow.
        #[test]
        fn wind_divergence_free_everywhere(seed in 0u64..50, t in 0.0f64..50.0,
                                           u in 0.1f64..0.9, v in 0.1f64..0.9) {
            let m = WindModel::europe(seed);
            let snap = m.at_time(t);
            let p = m.domain.from_unit(Vec2::new(u, v));
            let speed = m.velocity(p, t).norm().max(1e-6);
            let div = divergence(&snap, p, m.domain.width() * 1e-3);
            prop_assert!(div.abs() / speed < 0.1, "relative divergence {}", div.abs() / speed);
        }

        /// Steering commands always leave the parameter set finite and the
        /// multiplicative commands compose as expected.
        #[test]
        fn steering_scaling_composes(a in 0.1f64..10.0, b in 0.1f64..10.0) {
            let mut q = SteeringQueue::new();
            q.push(SteeringCommand::ScaleEmissions(a));
            q.push(SteeringCommand::ScaleEmissions(b));
            let p = q.apply_all(SmogParameters::default());
            prop_assert!((p.emission_multiplier - a * b).abs() < 1e-9);
            prop_assert!(p.emission_multiplier.is_finite());
        }
    }
}
