//! Quickstart: synthesise a spot-noise image of an analytic vortex field.
//!
//! ```text
//! cargo run --release -p spotnoise-apps --example quickstart
//! ```
//!
//! Demonstrates the minimal public-API path: build a field, generate spots,
//! run the divide-and-conquer synthesizer, post-process and save a PPM.

use flowfield::analytic::Vortex;
use flowfield::{Rect, Vec2};
use flowviz::{texture_to_framebuffer, Colormap};
use softpipe::machine::MachineConfig;
use spotnoise::config::{SpotKind, SynthesisConfig};
use spotnoise::dnc::synthesize_dnc;
use spotnoise::filter::standard_postprocess;
use spotnoise::spot::generate_spots;

fn main() {
    // 1. The data: a simple analytic vortex on the unit square.
    let domain = Rect::new(Vec2::ZERO, Vec2::new(1.0, 1.0));
    let field = Vortex {
        omega: 2.0,
        center: domain.center(),
        domain,
    };

    // 2. The synthesis configuration: 3 000 bent spots on a 512x512 texture.
    let cfg = SynthesisConfig {
        texture_size: 512,
        spot_count: 3000,
        spot_radius: 0.02,
        spot_kind: SpotKind::Bent { rows: 12, cols: 5 },
        ..SynthesisConfig::small_test()
    };
    let spots = generate_spots(cfg.spot_count, domain, cfg.intensity_amplitude, cfg.seed);

    // 3. Divide and conquer over a virtual 8-processor, 4-pipe machine.
    let machine = MachineConfig::onyx2_full();
    let out = synthesize_dnc(&field, &spots, &cfg, &machine);
    println!(
        "synthesised {} spots in {:.3} s wall clock ({:.1} textures/s measured)",
        spots.len(),
        out.wall_seconds,
        out.measured_textures_per_second()
    );
    println!(
        "simulated Onyx2 throughput for the same work: {:.1} textures/s",
        out.predicted.textures_per_second
    );
    for (g, report) in out.groups.iter().enumerate() {
        println!(
            "  group {g}: {} spots on {} processor(s), {} vertices, {} fragments",
            report.spots, report.processors, report.pipe_work.vertices, report.pipe_work.fragments
        );
    }

    // 4. Post-process for display and save.
    let display = standard_postprocess(&out.texture, cfg.spot_radius_pixels());
    let fb = texture_to_framebuffer(
        &display,
        cfg.texture_size,
        cfg.texture_size,
        Colormap::Grayscale,
    );
    let path = std::env::temp_dir().join("spotnoise_quickstart.ppm");
    fb.save_ppm(&path).expect("failed to write image");
    println!("wrote {}", path.display());
}
