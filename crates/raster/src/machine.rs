//! The simplified graphics-workstation model (paper figure 4).
//!
//! A machine consists of a number of general-purpose processors connected by
//! a bus to a graphics subsystem with one or more graphics pipes. The
//! configuration object here captures exactly the knobs the paper's tables
//! sweep — the number of processors `nP` and the number of pipes `nG` — plus
//! the cost model of the simulated hardware. It also implements the paper's
//! resource-assignment policy: processors are divided evenly over the pipes,
//! each pipe getting a process group of one master and zero or more slaves.

use crate::cost::CostModel;
use serde::{Deserialize, Serialize};

/// Configuration of the simulated workstation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Number of general-purpose processors (`nP`).
    pub processors: usize,
    /// Number of graphics pipes (`nG`).
    pub pipes: usize,
    /// Per-unit cost model of the simulated hardware.
    pub cost: CostModel,
}

impl MachineConfig {
    /// Creates a configuration; panics when either resource count is zero.
    pub fn new(processors: usize, pipes: usize) -> Self {
        assert!(processors >= 1, "need at least one processor");
        assert!(pipes >= 1, "need at least one graphics pipe");
        MachineConfig {
            processors,
            pipes,
            cost: CostModel::onyx2(),
        }
    }

    /// The full machine the paper used: 8 R10000 processors and 4
    /// InfiniteReality pipes.
    pub fn onyx2_full() -> Self {
        MachineConfig::new(8, 4)
    }

    /// Replaces the cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// The number of process groups, which is always the number of pipes:
    /// each particle set is processed by "one or more processors and exactly
    /// one graphics pipe".
    pub fn groups(&self) -> usize {
        self.pipes
    }

    /// Distributes the processors evenly over the pipes. Each entry is the
    /// number of processors assigned to that group (at least one — the master
    /// also computes spot shapes when it has no slaves, so a group never has
    /// zero workers even when `processors < pipes`).
    pub fn processors_per_group(&self) -> Vec<usize> {
        let base = self.processors / self.pipes;
        let extra = self.processors % self.pipes;
        (0..self.pipes)
            .map(|g| {
                let n = base + usize::from(g < extra);
                n.max(1)
            })
            .collect()
    }

    /// True when the configuration over-subscribes processors, i.e. fewer
    /// processors than pipes so masters must be time-shared. The paper's
    /// tables include such configurations (e.g. 1 processor, 2 pipes) and
    /// they show no speedup over the single-pipe column.
    pub fn oversubscribed(&self) -> bool {
        self.processors < self.pipes
    }

    /// All `(processors, pipes)` combinations measured in the paper's tables:
    /// processors in {1, 2, 4, 8} crossed with pipes in {1, 2, 4}, keeping
    /// only the lower-triangular combinations the tables report (pipes never
    /// exceed processors).
    pub fn paper_sweep() -> Vec<MachineConfig> {
        let mut out = Vec::new();
        for &p in &[1usize, 2, 4, 8] {
            for &g in &[1usize, 2, 4] {
                if g <= p {
                    out.push(MachineConfig::new(p, g));
                }
            }
        }
        out
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::onyx2_full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn onyx2_full_configuration() {
        let m = MachineConfig::onyx2_full();
        assert_eq!(m.processors, 8);
        assert_eq!(m.pipes, 4);
        assert_eq!(m.groups(), 4);
        assert_eq!(m.processors_per_group(), vec![2, 2, 2, 2]);
        assert!(!m.oversubscribed());
    }

    #[test]
    fn uneven_division_distributes_remainder_first() {
        let m = MachineConfig::new(7, 3);
        assert_eq!(m.processors_per_group(), vec![3, 2, 2]);
        let total: usize = m.processors_per_group().iter().sum();
        assert_eq!(total, 7);
    }

    #[test]
    fn oversubscribed_groups_still_get_a_worker() {
        let m = MachineConfig::new(1, 4);
        assert!(m.oversubscribed());
        assert_eq!(m.processors_per_group(), vec![1, 1, 1, 1]);
    }

    #[test]
    fn four_procs_one_pipe() {
        let m = MachineConfig::new(4, 1);
        assert_eq!(m.groups(), 1);
        assert_eq!(m.processors_per_group(), vec![4]);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_processors_rejected() {
        let _ = MachineConfig::new(0, 1);
    }

    #[test]
    #[should_panic(expected = "at least one graphics pipe")]
    fn zero_pipes_rejected() {
        let _ = MachineConfig::new(1, 0);
    }

    #[test]
    fn paper_sweep_matches_table_cells() {
        let sweep = MachineConfig::paper_sweep();
        // Table rows: 1, 2, 4, 8 processors; columns 1, 2, 4 pipes, lower
        // triangle only (the paper reports 8 of the 12 combinations):
        // (1,1), (2,1), (2,2), (4,1), (4,2), (4,4), (8,1), (8,2), (8,4).
        assert_eq!(sweep.len(), 9);
        assert!(sweep.iter().all(|m| m.pipes <= m.processors));
        assert!(sweep.contains(&MachineConfig::new(8, 4)));
        assert!(sweep.contains(&MachineConfig::new(1, 1)));
        assert!(!sweep.iter().any(|m| m.processors == 1 && m.pipes == 2));
    }

    #[test]
    fn with_cost_overrides_model() {
        let m = MachineConfig::new(2, 1).with_cost(crate::cost::CostModel::fast_pipe());
        assert_eq!(m.cost, crate::cost::CostModel::fast_pipe());
    }
}
